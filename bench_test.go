package repro

// Repository-level benchmarks: one per table/figure in the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
//
// Figure benches wrap the duration-based harness: each b.Run point executes
// the workload for a fixed short duration per b.N iteration and reports the
// paper's unit (ops/µs) as a custom metric. Use cmd/experiments for the
// full-length sweeps; these benches are the spot-checkable versions.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"repro/htm"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/harness"
	"repro/queue"
)

func benchCfg() harness.Config {
	return harness.Config{
		PointDuration: 60 * time.Millisecond,
		HeapWords:     1 << 19,
		Clock:         cycles.Calibrate(cycles.DefaultGHz),
		Threads:       16,
	}
}

var benchThreads = []int{1, 4, 16}

// BenchmarkFig1Queue regenerates Figure 1 (queue throughput vs threads).
func BenchmarkFig1Queue(b *testing.B) {
	for _, spec := range harness.QueueSpecs() {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", spec.Label, n), func(b *testing.B) {
				cfg := benchCfg()
				var r harness.Result
				for i := 0; i < b.N; i++ {
					r = harness.QueueThroughput(cfg, spec.New, n, 256)
				}
				b.ReportMetric(r.OpsPerUs(), "ops/µs")
			})
		}
	}
}

// BenchmarkTableUpdateLatency regenerates the §5.1 update-latency table; Go's
// native ns/op is the measurement.
func BenchmarkTableUpdateLatency(b *testing.B) {
	for _, spec := range harness.UpdateLatencySpecs() {
		b.Run(spec.Label, func(b *testing.B) {
			h := htm.NewHeap(htm.Config{Words: 1 << 19})
			col := spec.New(h, 1)
			c := col.NewCtx(h.NewThread())
			hd := col.Register(c, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col.Update(c, hd, uint64(i+1))
			}
		})
	}
}

// BenchmarkFig3CollectDominated regenerates Figure 3 (collect-dominated mix
// vs threads, all eight algorithms).
func BenchmarkFig3CollectDominated(b *testing.B) {
	for _, spec := range harness.Fig3Specs() {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", spec.Label, n), func(b *testing.B) {
				cfg := benchCfg()
				var r harness.Result
				for i := 0; i < b.N; i++ {
					r = harness.CollectDominated(cfg, harness.Bind(spec, n), n)
				}
				b.ReportMetric(r.OpsPerUs(), "ops/µs")
			})
		}
	}
}

var benchPeriods = []int{1000000, 20000, 2000, 400}

// BenchmarkFig4CollectUpdate regenerates Figure 4 (collect throughput vs
// update period).
func BenchmarkFig4CollectUpdate(b *testing.B) {
	for _, spec := range harness.Fig4Specs() {
		for _, p := range benchPeriods {
			b.Run(fmt.Sprintf("%s/period=%s", spec.Label, harness.FormatCycles(p)), func(b *testing.B) {
				cfg := benchCfg()
				var r harness.Result
				for i := 0; i < b.N; i++ {
					r = harness.CollectUpdate(cfg, harness.Bind(spec, 16), 15, p)
				}
				b.ReportMetric(r.OpsPerUs(), "ops/µs")
			})
		}
	}
}

// BenchmarkFig5StepSize regenerates Figure 5 (fixed vs adaptive step sizes
// for ArrayDynAppendDereg).
func BenchmarkFig5StepSize(b *testing.B) {
	type variant struct {
		name string
		opts core.Options
	}
	variants := []variant{
		{"step=32", core.Options{Step: 32}},
		{"step=16", core.Options{Step: 16}},
		{"step=8", core.Options{Step: 8}},
		{"step=32+trackcost", core.Options{Step: 32, TrackOutcomes: true}},
		{"adaptive", core.Options{Step: 8, Adaptive: true}},
	}
	for _, v := range variants {
		for _, p := range benchPeriods {
			b.Run(fmt.Sprintf("%s/period=%s", v.name, harness.FormatCycles(p)), func(b *testing.B) {
				cfg := benchCfg()
				spec := harness.SpecArrayDynAppendDereg(v.opts)
				var r harness.Result
				for i := 0; i < b.N; i++ {
					r = harness.CollectUpdate(cfg, harness.Bind(spec, 16), 15, p)
				}
				b.ReportMetric(r.OpsPerUs(), "ops/µs")
			})
		}
	}
}

// BenchmarkFig6StepDistribution regenerates Figure 6's underlying data: the
// share of elements collected at the largest step size under low vs high
// contention.
func BenchmarkFig6StepDistribution(b *testing.B) {
	for _, p := range []int{8000, 400} {
		b.Run(fmt.Sprintf("period=%s", harness.FormatCycles(p)), func(b *testing.B) {
			cfg := benchCfg()
			spec := harness.SpecArrayDynAppendDereg(core.Options{Step: 8, Adaptive: true})
			var r harness.Result
			for i := 0; i < b.N; i++ {
				r = harness.CollectUpdate(cfg, harness.Bind(spec, 16), 15, p)
			}
			var total, at32 uint64
			for s, n := range r.StepHist {
				total += n
				if s == 32 {
					at32 += n
				}
			}
			if total > 0 {
				b.ReportMetric(100*float64(at32)/float64(total), "%step32")
			}
			b.ReportMetric(r.OpsPerUs(), "ops/µs")
		})
	}
}

// BenchmarkFig7CollectDeregister regenerates Figure 7 (collect throughput vs
// deregister period).
func BenchmarkFig7CollectDeregister(b *testing.B) {
	periods := []int{1000000, 20000, 1000}
	for _, spec := range harness.Fig7Specs() {
		for _, p := range periods {
			b.Run(fmt.Sprintf("%s/period=%s", spec.Label, harness.FormatCycles(p)), func(b *testing.B) {
				cfg := benchCfg()
				var r harness.Result
				for i := 0; i < b.N; i++ {
					r = harness.CollectDeregister(cfg, harness.Bind(spec, 16), 15, harness.Fig7RegisterPeriod, p)
				}
				b.ReportMetric(r.OpsPerUs(), "ops/µs")
			})
		}
	}
}

// BenchmarkFig8VaryingSlots regenerates Figure 8's mechanism in miniature:
// throughput while the registered-slot count alternates between phases.
func BenchmarkFig8VaryingSlots(b *testing.B) {
	for _, spec := range harness.Fig8Specs() {
		b.Run(spec.Label, func(b *testing.B) {
			cfg := benchCfg()
			var buckets []harness.TimedBucket
			for i := 0; i < b.N; i++ {
				buckets = harness.VaryingSlots(cfg, harness.Bind(spec, 16), 15, 16, 64,
					100*time.Millisecond, 400*time.Millisecond, 50*time.Millisecond)
			}
			var sum float64
			for _, bk := range buckets {
				sum += bk.OpsPerUs
			}
			if len(buckets) > 0 {
				b.ReportMetric(sum/float64(len(buckets)), "ops/µs")
			}
		})
	}
}

// BenchmarkTableSpace regenerates the space comparison: peak live bytes for
// the Figure 3 workload per algorithm.
func BenchmarkTableSpace(b *testing.B) {
	for _, spec := range harness.Fig3Specs() {
		b.Run(spec.Label, func(b *testing.B) {
			cfg := benchCfg()
			cfg.TrackSpace = true // exact peak-bytes needs high-water tracking
			var r harness.Result
			for i := 0; i < b.N; i++ {
				r = harness.CollectDominated(cfg, harness.Bind(spec, 8), 8)
			}
			b.ReportMetric(float64(r.Stats.MaxLiveWords*8), "peak-bytes")
		})
	}
}

// --- Ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblationTelescoping isolates the benefit of telescoping: the
// Figure 2 algorithm's collect throughput at step 1 (no telescoping) versus
// larger steps, uncontended.
func BenchmarkAblationTelescoping(b *testing.B) {
	for _, step := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("step=%d", step), func(b *testing.B) {
			h := htm.NewHeap(htm.Config{Words: 1 << 19})
			col := core.NewArrayDynAppendDereg(h, 0, core.Options{Step: step})
			c := col.NewCtx(h.NewThread())
			for i := 0; i < 64; i++ {
				col.Register(c, uint64(i+1))
			}
			var out []core.Value
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = col.Collect(c, out[:0])
			}
			if len(out) != 64 {
				b.Fatalf("collect returned %d values", len(out))
			}
		})
	}
}

// BenchmarkAblationTLE compares best-effort retry against the TLE fallback
// under a workload whose transactions always fit (TLE should cost nothing)
// and one that always overflows (TLE is the only way to complete).
func BenchmarkAblationTLE(b *testing.B) {
	run := func(b *testing.B, cfg htm.Config, stores int) {
		h := htm.NewHeap(cfg)
		th := h.NewThread()
		a := th.Alloc(stores)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th.Atomic(func(t *htm.Txn) {
				for s := 0; s < stores; s++ {
					t.Store(a+htm.Addr(s), uint64(i))
				}
			})
		}
	}
	b.Run("fits/best-effort", func(b *testing.B) {
		run(b, htm.Config{Words: 1 << 16}, 8)
	})
	b.Run("fits/tle-enabled", func(b *testing.B) {
		run(b, htm.Config{Words: 1 << 16, EnableTLE: true}, 8)
	})
	b.Run("overflows/tle-fallback", func(b *testing.B) {
		run(b, htm.Config{Words: 1 << 16, EnableTLE: true, MaxRetries: 1}, htm.RockStoreBufferSize+8)
	})
	b.Run("overflows/tle-fallback-global", func(b *testing.B) {
		run(b, htm.Config{Words: 1 << 16, EnableTLE: true, MaxRetries: 1, GlobalFallback: true}, htm.RockStoreBufferSize+8)
	})
}

// BenchmarkAblationAllocInTxn compares the paper's pre-allocate-outside
// discipline (Rock) against a TM-aware allocator (future HTM, §6) on an
// enqueue-shaped transaction.
func BenchmarkAblationAllocInTxn(b *testing.B) {
	b.Run("prealloc-outside", func(b *testing.B) {
		h := htm.NewHeap(htm.Config{Words: 1 << 20})
		th := h.NewThread()
		slot := th.Alloc(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := th.Alloc(2)
			th.Atomic(func(t *htm.Txn) {
				t.Store(n, uint64(i))
				old := htm.Addr(t.Load(slot))
				t.Store(slot, uint64(n))
				if old != htm.NilAddr {
					t.FreeOnCommit(old)
				}
			})
		}
	})
	b.Run("alloc-in-txn", func(b *testing.B) {
		h := htm.NewHeap(htm.Config{Words: 1 << 20, AllowAllocInTxn: true})
		th := h.NewThread()
		slot := th.Alloc(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th.Atomic(func(t *htm.Txn) {
				n := t.Alloc(2)
				t.Store(n, uint64(i))
				old := htm.Addr(t.Load(slot))
				t.Store(slot, uint64(n))
				if old != htm.NilAddr {
					t.FreeOnCommit(old)
				}
			})
		}
	})
}

// BenchmarkAblationCompaction isolates what compaction buys Collect: scan
// cost with 8 registered handles after a historical maximum of 64, for the
// compact-on-deregister, no-compaction, and full-scan designs.
func BenchmarkAblationCompaction(b *testing.B) {
	specs := []harness.CollectorSpec{
		harness.SpecArrayStatAppendDereg(64, core.Options{Step: 32}),
		harness.SpecArrayStatSearchNo(64),
		harness.SpecStaticBaseline(64),
	}
	for _, spec := range specs {
		b.Run(spec.Label, func(b *testing.B) {
			h := htm.NewHeap(htm.Config{Words: 1 << 19})
			col := spec.New(h, 1)
			c := col.NewCtx(h.NewThread())
			handles := make([]core.Handle, 0, 64)
			for i := 0; i < 64; i++ {
				handles = append(handles, col.Register(c, uint64(i+1)))
			}
			for i := 8; i < 64; i++ {
				col.Deregister(c, handles[i])
			}
			var out []core.Value
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = col.Collect(c, out[:0])
			}
			if len(out) != 8 {
				b.Fatalf("collect returned %d values", len(out))
			}
		})
	}
}

// BenchmarkExtensionUpdOpt contrasts the paper's §4.1 unimplemented variant
// with the base algorithm: naked-store Update (fast) against transactional
// indirection, and the matching Collect-side costs.
func BenchmarkExtensionUpdOpt(b *testing.B) {
	mk := map[string]func(h *htm.Heap) core.Collector{
		"base": func(h *htm.Heap) core.Collector { return core.NewArrayDynAppendDereg(h, 0, core.Options{Step: 16}) },
		"updopt": func(h *htm.Heap) core.Collector {
			return core.NewArrayDynAppendDeregUpdOpt(h, 0, core.Options{Step: 16})
		},
	}
	for name, make := range mk {
		b.Run(name+"/update", func(b *testing.B) {
			h := htm.NewHeap(htm.Config{Words: 1 << 19})
			col := make(h)
			c := col.NewCtx(h.NewThread())
			hd := col.Register(c, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col.Update(c, hd, uint64(i+1))
			}
		})
		b.Run(name+"/collect64", func(b *testing.B) {
			h := htm.NewHeap(htm.Config{Words: 1 << 19})
			col := make(h)
			c := col.NewCtx(h.NewThread())
			for i := 0; i < 64; i++ {
				col.Register(c, uint64(i+1))
			}
			var out []core.Value
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = col.Collect(c, out[:0])
			}
		})
	}
}

// BenchmarkExtensionDeferredReuse shows §5.4's suggestion paying off for
// FastCollect: Register/Deregister churn with and without deferred reuse,
// measured as single-thread churn cost.
func BenchmarkExtensionDeferredReuse(b *testing.B) {
	b.Run("fastcollect/plain", func(b *testing.B) {
		h := htm.NewHeap(htm.Config{Words: 1 << 19})
		col := core.NewFastCollect(h, core.Options{Step: 16})
		c := col.NewCtx(h.NewThread())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hd := col.Register(c, uint64(i+1))
			col.Deregister(c, hd)
		}
	})
	b.Run("fastcollect/deferred-reuse", func(b *testing.B) {
		h := htm.NewHeap(htm.Config{Words: 1 << 19})
		col := core.NewDeferredReuse(core.NewFastCollect(h, core.Options{Step: 16}), 8)
		c := col.NewCtx(h.NewThread())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hd := col.Register(c, uint64(i+1))
			col.Deregister(c, hd)
		}
	})
}

// BenchmarkHTMPrimitives measures the substrate itself: transactional
// read-modify-write, NT store, and CAS — context for every other number.
func BenchmarkHTMPrimitives(b *testing.B) {
	h := htm.NewHeap(htm.Config{Words: 1 << 16})
	th := h.NewThread()
	a := th.Alloc(1)
	b.Run("txn-incr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			th.Atomic(func(t *htm.Txn) { t.Add(a, 1) })
		}
	})
	b.Run("txn-readonly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			th.Atomic(func(t *htm.Txn) { t.Load(a) })
		}
	})
	b.Run("storent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.StoreNT(a, uint64(i))
		}
	})
	b.Run("casnt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.CASNT(a, uint64(i), uint64(i+1))
		}
	})
	b.Run("alloc-free", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			th.Free(th.Alloc(4))
		}
	})
}

// BenchmarkQueueSingleOp measures per-operation queue cost without the
// duration harness (ns/op view of Figure 1's single-thread points).
func BenchmarkQueueSingleOp(b *testing.B) {
	for _, spec := range harness.QueueSpecs() {
		b.Run(spec.Label, func(b *testing.B) {
			h := htm.NewHeap(htm.Config{Words: 1 << 19})
			q := spec.New(h)
			c := q.NewCtx(h.NewThread())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(c, uint64(i+1))
				q.Dequeue(c)
			}
			b.StopTimer()
			queue.CloseCtx(q, c)
		})
	}
}
