package core

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/htm"
)

// TestArrayDynResizeInvariant checks Figure 2's capacity invariant
// max(count, MIN_SIZE) <= capacity <= 4*count at quiescent points of a grow
// and shrink cycle.
func TestArrayDynResizeInvariant(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	a := NewArrayDynAppendDereg(h, 4, Options{Step: 8})
	c := a.NewCtx(h.NewThread())
	check := func(when string) {
		t.Helper()
		count, capacity := a.Registered(), a.Capacity()
		min := count
		if min < 4 {
			min = 4
		}
		if capacity < min {
			t.Fatalf("%s: capacity %d < max(count=%d, MIN=4)", when, capacity, count)
		}
		if count > 0 && capacity > 4*count {
			t.Fatalf("%s: capacity %d > 4*count (%d)", when, capacity, count)
		}
	}
	var handles []Handle
	for i := 0; i < 300; i++ {
		handles = append(handles, a.Register(c, Value(i+1)))
		check("grow")
	}
	if a.Capacity() < 300 {
		t.Fatalf("capacity %d after 300 registers", a.Capacity())
	}
	for i := len(handles) - 1; i >= 0; i-- {
		a.Deregister(c, handles[i])
		check("shrink")
	}
	if got := a.Capacity(); got > 4*DefaultMinSize {
		t.Errorf("capacity %d did not shrink back", got)
	}
}

// TestArrayDynGrowShrinkReclaimsArrays verifies old arrays are freed: cycling
// up and down repeatedly must not grow live heap usage monotonically.
func TestArrayDynGrowShrinkReclaimsArrays(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	a := NewArrayDynAppendDereg(h, 4, Options{Step: 8})
	c := a.NewCtx(h.NewThread())
	var after1 uint64
	for cycle := 0; cycle < 5; cycle++ {
		var handles []Handle
		for i := 0; i < 200; i++ {
			handles = append(handles, a.Register(c, Value(i+1)))
		}
		for _, hd := range handles {
			a.Deregister(c, hd)
		}
		if cycle == 0 {
			after1 = h.Stats().LiveWords
		}
	}
	if after := h.Stats().LiveWords; after > after1 {
		t.Errorf("live words grew across cycles: %d -> %d", after1, after)
	}
}

// TestArrayStatSearchNoHighWater verifies the historical-maximum traversal
// behaviour the paper shows in Figure 8: the high-water mark never drops.
func TestArrayStatSearchNoHighWater(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	a := NewArrayStatSearchNo(h, 64, Options{Step: 8})
	c := a.NewCtx(h.NewThread())
	var handles []Handle
	for i := 0; i < 40; i++ {
		handles = append(handles, a.Register(c, Value(i+1)))
	}
	if hw := a.HighWater(); hw != 40 {
		t.Fatalf("high water = %d, want 40", hw)
	}
	for _, hd := range handles {
		a.Deregister(c, hd)
	}
	if hw := a.HighWater(); hw != 40 {
		t.Errorf("high water dropped to %d after deregistering", hw)
	}
	// Slots are reused from the low end, so the mark stays.
	hd := a.Register(c, 99)
	if hw := a.HighWater(); hw != 40 {
		t.Errorf("high water = %d after one re-register", hw)
	}
	a.Deregister(c, hd)
}

// TestHOHRCPinsDrainAndNodesFree: after concurrent Collects finish, all
// reference counts must be zero and deregistered nodes must be reclaimed.
func TestHOHRCPinsDrainAndNodesFree(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	l := NewHOHRC(h, Options{Step: 4})
	setup := l.NewCtx(h.NewThread())
	base := h.Stats().LiveWords
	var handles []Handle
	for i := 0; i < 32; i++ {
		handles = append(handles, l.Register(setup, Value(i+1)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := l.NewCtx(h.NewThread())
			defer c.Close()
			for i := 0; i < 200; i++ {
				l.Collect(c, nil)
			}
		}()
	}
	// Concurrently deregister half the nodes while collects are pinning.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(handles); i += 2 {
			l.Deregister(setup, handles[i])
		}
	}()
	wg.Wait()
	for i := 1; i < len(handles); i += 2 {
		l.Deregister(setup, handles[i])
	}
	// All nodes deregistered and no collects running: everything must be
	// unlinked and reclaimed (pins drained).
	if got := l.Collect(setup, nil); len(got) != 0 {
		t.Fatalf("collect after full deregister = %v", got)
	}
	setup.Close()
	if live := h.Stats().LiveWords; live > base {
		t.Errorf("nodes leaked: base=%d live=%d", base, live)
	}
}

// TestFastCollectRestartsUnderDeregister verifies that a Collect overlapping
// Deregisters still returns every stable handle (restart correctness).
func TestFastCollectRestartsUnderDeregister(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	l := NewFastCollect(h, Options{Step: 2})
	setup := l.NewCtx(h.NewThread())
	stable := make(map[Value]bool)
	for i := 0; i < 16; i++ {
		v := Value(0xAAA00 + i)
		l.Register(setup, v)
		stable[v] = true
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn registers/deregisters to force restarts
		defer wg.Done()
		c := l.NewCtx(h.NewThread())
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			hd := l.Register(c, Value(0xBBB00+i%7))
			l.Deregister(c, hd)
		}
	}()
	c := l.NewCtx(h.NewThread())
	for round := 0; round < 200; round++ {
		got := l.Collect(c, nil)
		found := 0
		for _, v := range got {
			if stable[v] {
				found++
			}
		}
		if found < len(stable) {
			close(stop)
			wg.Wait()
			t.Fatalf("round %d: found %d of %d stable handles", round, found, len(stable))
		}
	}
	close(stop)
	wg.Wait()
}

// TestStepHistogramRecorded checks Figure 6's instrumentation: adaptive
// contexts record how many elements were collected at each step size.
func TestStepHistogramRecorded(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	a := NewArrayDynAppendDereg(h, 0, Options{Step: 4, Adaptive: true})
	c := a.NewCtx(h.NewThread())
	for i := 0; i < 50; i++ {
		a.Register(c, Value(i+1))
	}
	for i := 0; i < 20; i++ {
		a.Collect(c, nil)
	}
	hist := c.StepHistogram()
	if len(hist) == 0 {
		t.Fatal("no histogram recorded")
	}
	var total uint64
	for step, n := range hist {
		if step < 1 || step > htm.RockStoreBufferSize {
			t.Errorf("histogram step %d out of range", step)
		}
		total += n
	}
	if total != 20*50 {
		t.Errorf("histogram total = %d, want %d", total, 20*50)
	}
	// Uncontended: the step should have adapted upward from 4.
	if _, only4 := hist[4]; only4 && len(hist) == 1 {
		t.Error("adaptive step never grew in an uncontended run")
	}
}

// TestNonAdaptiveHasNoHistogram confirms the fixed-step configuration skips
// the bookkeeping entirely (the overhead Figure 5 charges to "adapt cost" is
// only paid when requested).
func TestNonAdaptiveHasNoHistogram(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	a := NewArrayDynAppendDereg(h, 0, Options{Step: 4})
	c := a.NewCtx(h.NewThread())
	a.Register(c, 1)
	a.Collect(c, nil)
	if hist := c.StepHistogram(); hist != nil {
		t.Errorf("histogram = %v for non-adaptive ctx", hist)
	}
}

// TestTrackOutcomesKeepsStepFixed verifies the "Best (adapt cost)" mode:
// outcomes are recorded but the step never moves.
func TestTrackOutcomesKeepsStepFixed(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	a := NewArrayDynAppendDereg(h, 0, Options{Step: 8, TrackOutcomes: true})
	c := a.NewCtx(h.NewThread())
	for i := 0; i < 40; i++ {
		a.Register(c, Value(i+1))
	}
	for i := 0; i < 30; i++ {
		a.Collect(c, nil)
	}
	hist := c.StepHistogram()
	if len(hist) != 1 {
		t.Fatalf("step moved under TrackOutcomes: histogram %v", hist)
	}
	if _, ok := hist[8]; !ok {
		t.Errorf("expected all collects at step 8, got %v", hist)
	}
}

// TestDynamicBaselineRecyclesNodes: deregistered nodes are reused by later
// registrations rather than growing the list without bound.
func TestDynamicBaselineRecyclesNodes(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	b := NewDynamicBaseline(h)
	c := b.NewCtx(h.NewThread())
	for i := 0; i < 100; i++ {
		hd := b.Register(c, Value(i+1))
		b.Deregister(c, hd)
	}
	if n := b.ListLength(); n > 2 {
		t.Errorf("list length %d after serial register/deregister cycles", n)
	}
}

// TestDynamicBaselineConcurrentChurn hammers the counted-pointer protocol;
// the heap panics on any use-after-free, double free, or torn traversal.
// YieldEvery maximizes interleaving: the benchmark suite originally caught a
// use-after-free in tryUnlink (node dereferenced without holding the edge
// mark) only under yield-amplified schedules.
func TestDynamicBaselineConcurrentChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	h := htm.NewHeap(htm.Config{Words: 1 << 18, YieldEvery: 2})
	b := NewDynamicBaseline(h)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c := b.NewCtx(h.NewThread())
			var mine []Handle
			rng := seed | 1
			for i := 0; i < 1500; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				switch {
				case len(mine) < 4 && rng%2 == 0:
					mine = append(mine, b.Register(c, Value(rng|1)))
				case len(mine) > 0 && rng%3 == 0:
					i := int(rng % uint64(len(mine)))
					b.Deregister(c, mine[i])
					mine[i] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				case len(mine) > 0:
					b.Update(c, mine[int(rng%uint64(len(mine)))], Value(rng|1))
				default:
					b.Collect(c, nil)
				}
			}
			for _, hd := range mine {
				b.Deregister(c, hd)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	c := b.NewCtx(h.NewThread())
	if got := b.Collect(c, nil); len(got) != 0 {
		t.Errorf("leftover values after full deregister: %v", got)
	}
}

// TestQuickArrayDynSingleThreadModel is a property-based single-thread model
// check specifically for the flagship Figure 2 algorithm with tiny MIN_SIZE,
// maximizing resize traffic.
func TestQuickArrayDynSingleThreadModel(t *testing.T) {
	f := func(ops []uint16) bool {
		h := htm.NewHeap(htm.Config{Words: 1 << 18})
		a := NewArrayDynAppendDereg(h, 1, Options{Step: 3})
		c := a.NewCtx(h.NewThread())
		model := make(map[Handle]Value)
		var handles []Handle
		next := Value(1)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				hd := a.Register(c, next)
				model[hd] = next
				handles = append(handles, hd)
				next++
			case 1:
				if len(handles) > 0 {
					i := int(op/4) % len(handles)
					a.Update(c, handles[i], next)
					model[handles[i]] = next
					next++
				}
			case 2:
				if len(handles) > 0 {
					i := int(op/4) % len(handles)
					a.Deregister(c, handles[i])
					delete(model, handles[i])
					handles[i] = handles[len(handles)-1]
					handles = handles[:len(handles)-1]
				}
			case 3:
				got := a.Collect(c, nil)
				if len(got) != len(model) {
					return false
				}
				want := make(map[Value]int)
				for _, v := range model {
					want[v]++
				}
				for _, v := range got {
					want[v]--
					if want[v] < 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
