package core

import (
	"errors"

	"repro/htm"
)

// Shared-descriptor word offsets for the array algorithms, mirroring the
// shared data of Figure 2 (array, capacity, count, array_new, capacity_new,
// copied).
const (
	dArray = iota
	dCapacity
	dCount
	dArrayNew
	dCapacityNew
	dCopied
	descWords
)

// Array slots are two words: the value and a pointer back to the handle's
// slot reference (Figure 2's slot_t).
const (
	slotVal = iota
	slotRef
	slotWords
)

// resize/registration outcomes inside the operation loops (Figure 2's
// action_t).
type action uint8

const (
	actNothing action = iota
	actDone
	actGrow
	actShrink
	actHelp
)

// DefaultMinSize is the minimum array capacity in slots (Figure 2's
// MIN_SIZE).
const DefaultMinSize = 16

// ArrayDynAppendDereg is the paper's flagship algorithm (§4, Figure 2): a
// dynamic array with append registration and compaction on every Deregister.
// The array doubles when full and halves when 25% full, so space stays
// proportional to the number of registered handles. Handles are slot
// references — one-word cells pointing at the handle's current slot — so
// slots can move (during compaction and resizing) behind the handle's back.
type ArrayDynAppendDereg struct {
	h       *htm.Heap
	desc    htm.Addr
	minSize uint64
	opts    Options
}

var _ Collector = (*ArrayDynAppendDereg)(nil)

// NewArrayDynAppendDereg allocates the collect object on h. minSize is
// Figure 2's MIN_SIZE (≥1); pass 0 for DefaultMinSize.
func NewArrayDynAppendDereg(h *htm.Heap, minSize int, opts Options) *ArrayDynAppendDereg {
	if minSize <= 0 {
		minSize = DefaultMinSize
	}
	th := h.NewThread()
	desc := th.Alloc(descWords)
	arr := th.Alloc(slotWords * minSize)
	h.StoreNT(desc+dArray, uint64(arr))
	h.StoreNT(desc+dCapacity, uint64(minSize))
	return &ArrayDynAppendDereg{h: h, desc: desc, minSize: uint64(minSize), opts: opts.normalize(h)}
}

// Name implements Collector.
func (a *ArrayDynAppendDereg) Name() string { return "Array Dyn Append Dereg" }

// NewCtx implements Collector.
func (a *ArrayDynAppendDereg) NewCtx(th *htm.Thread) *Ctx { return newCtx(th, a.opts) }

func (a *ArrayDynAppendDereg) copying(t *htm.Txn) bool {
	return t.Load(a.desc+dArrayNew) != uint64(htm.NilAddr)
}

// appendSlot is Figure 2's append: claim slot number count, link it to the
// slot reference both ways, and bump count.
func (a *ArrayDynAppendDereg) appendSlot(t *htm.Txn, ref htm.Addr, v Value) {
	arr := htm.Addr(t.Load(a.desc + dArray))
	count := t.Load(a.desc + dCount)
	slot := arr + htm.Addr(slotWords*count)
	t.Store(slot+slotVal, v)
	t.Store(slot+slotRef, uint64(ref))
	t.Store(ref, uint64(slot))
	t.Store(a.desc+dCount, count+1)
}

// Register implements Collector (Figure 2 lines 18–43). The slot reference is
// allocated outside the transaction, as Rock's HTM cannot run malloc inside
// one.
func (a *ArrayDynAppendDereg) Register(c *Ctx, v Value) Handle {
	ref := c.th.Alloc(1)
	for {
		act := actNothing
		var countL uint64
		c.th.Atomic(func(t *htm.Txn) {
			act = actNothing
			if !a.copying(t) {
				count := t.Load(a.desc + dCount)
				if count < t.Load(a.desc+dCapacity) {
					a.appendSlot(t, ref, v)
					act = actDone
				} else {
					countL = count
					act = actGrow
				}
			} else {
				count := t.Load(a.desc + dCount)
				if count < t.Load(a.desc+dCapacity) && count < t.Load(a.desc+dCapacityNew) {
					// A Register may complete during resizing: the same
					// transaction that copies the last element installs the
					// new array, so a slot claimed now is guaranteed to be
					// copied (paper §4.2).
					a.appendSlot(t, ref, v)
					act = actDone
				} else {
					act = actHelp
				}
			}
		})
		switch act {
		case actDone:
			return Handle(ref)
		case actGrow:
			a.attemptResize(c, countL, countL)
		case actHelp:
			a.helpCopy(c)
		}
	}
}

// Deregister implements Collector (Figure 2 lines 45–66): move the last used
// slot into the vacated one, repoint the moved slot's reference, and shrink
// the array when it falls to 25% occupancy.
func (a *ArrayDynAppendDereg) Deregister(c *Ctx, h Handle) {
	ref := htm.Addr(h)
	for {
		act := actHelp
		var countL, capacityL uint64
		c.th.Atomic(func(t *htm.Txn) {
			act = actHelp
			countL = t.Load(a.desc + dCount)
			capacityL = t.Load(a.desc + dCapacity)
			switch {
			case countL*4 == capacityL && countL*2 >= a.minSize:
				act = actShrink
			case !a.copying(t):
				count := countL - 1
				t.Store(a.desc+dCount, count)
				arr := htm.Addr(t.Load(a.desc + dArray))
				last := arr + htm.Addr(slotWords*count)
				mine := htm.Addr(t.Load(ref))
				lv := t.Load(last + slotVal)
				lr := t.Load(last + slotRef)
				t.Store(mine+slotVal, lv)
				t.Store(mine+slotRef, lr)
				t.Store(htm.Addr(lr), uint64(mine))
				act = actDone
			}
		})
		switch act {
		case actDone:
			c.th.Free(ref)
			return
		case actShrink:
			a.attemptResize(c, countL, capacityL)
		case actHelp:
			a.helpCopy(c)
		}
	}
}

// Update implements Collector (Figure 2 lines 74–78): one indirection through
// the slot reference, inside a transaction because the slot may move
// concurrently.
func (a *ArrayDynAppendDereg) Update(c *Ctx, h Handle, v Value) {
	ref := htm.Addr(h)
	c.th.Atomic(func(t *htm.Txn) {
		slot := htm.Addr(t.Load(ref))
		t.Store(slot+slotVal, v)
	})
}

// Collect implements Collector (Figure 2 lines 80–93), generalized to copy
// `step` slots per transaction (telescoping, §3.4). It reads slots in reverse
// order so a concurrent Deregister's compaction cannot hide a slot, and it
// helps any in-progress resize to completion first so it cannot read a stale
// pre-copy slot.
func (a *ArrayDynAppendDereg) Collect(c *Ctx, out []Value) []Value {
	a.helpCopy(c)
	h := c.th.Heap()
	i := int64(h.LoadNT(a.desc+dCount)) - 1
	c.ensureScratch(int(i + 1))
	k := 0
	for i >= 0 {
		step := c.step()
		ii := i
		got := 0
		err := c.th.TryAtomic(func(t *htm.Txn) {
			ii = i
			got = 0
			count := int64(t.Load(a.desc + dCount))
			if ii >= count {
				ii = count - 1
			}
			arr := htm.Addr(t.Load(a.desc + dArray))
			for s := 0; s < step && ii >= 0; s++ {
				v := t.Load(arr + htm.Addr(slotWords*ii) + slotVal)
				t.Store(c.scratch+htm.Addr(k+got), v)
				ii--
				got++
			}
		})
		if err != nil {
			c.feed(step, false, 0)
			if isIllegal(err) {
				// The array moved and was freed under us; re-synchronize.
				a.helpCopy(c)
			}
			continue
		}
		c.feed(step, true, got)
		i = ii
		k += got
	}
	return c.drainScratch(k, out)
}

// attemptResize is Figure 2 lines 95–108: allocate outside the transaction,
// install if neither count nor capacity changed and no copy is in progress,
// otherwise discard, then help the (new or pre-existing) copy to completion.
func (a *ArrayDynAppendDereg) attemptResize(c *Ctx, countL, capacityL uint64) {
	if countL == 0 {
		return
	}
	tmp := c.th.Alloc(int(slotWords * countL * 2))
	freeTmp := true
	c.th.Atomic(func(t *htm.Txn) {
		freeTmp = true
		if !a.copying(t) && t.Load(a.desc+dCount) == countL && t.Load(a.desc+dCapacity) == capacityL {
			t.Store(a.desc+dArrayNew, uint64(tmp))
			t.Store(a.desc+dCapacityNew, countL*2)
			t.Store(a.desc+dCopied, 0)
			freeTmp = false
		}
	})
	if freeTmp {
		c.th.Free(tmp)
	}
	a.helpCopy(c)
}

// helpCopy is Figure 2 lines 110–112.
func (a *ArrayDynAppendDereg) helpCopy(c *Ctx) {
	for a.h.LoadNT(a.desc+dArrayNew) != uint64(htm.NilAddr) {
		a.helpCopyOne(c)
	}
}

// helpCopyOne is Figure 2 lines 114–131: copy one slot from the old array to
// the new (repointing its slot reference), or — when all slots are copied —
// install the new array and free the old one.
func (a *ArrayDynAppendDereg) helpCopyOne(c *Ctx) {
	var toFree htm.Addr
	c.th.Atomic(func(t *htm.Txn) {
		toFree = htm.NilAddr
		if !a.copying(t) {
			return
		}
		copied := t.Load(a.desc + dCopied)
		count := t.Load(a.desc + dCount)
		if copied < count {
			arr := htm.Addr(t.Load(a.desc + dArray))
			arrNew := htm.Addr(t.Load(a.desc + dArrayNew))
			src := arr + htm.Addr(slotWords*copied)
			dst := arrNew + htm.Addr(slotWords*copied)
			v := t.Load(src + slotVal)
			r := t.Load(src + slotRef)
			t.Store(dst+slotVal, v)
			t.Store(dst+slotRef, r)
			t.Store(htm.Addr(r), uint64(dst))
			t.Store(a.desc+dCopied, copied+1)
		} else {
			toFree = htm.Addr(t.Load(a.desc + dArray))
			t.Store(a.desc+dArray, t.Load(a.desc+dArrayNew))
			t.Store(a.desc+dCapacity, t.Load(a.desc+dCapacityNew))
			t.Store(a.desc+dArrayNew, uint64(htm.NilAddr))
		}
	})
	if toFree != htm.NilAddr {
		c.th.Free(toFree)
	}
}

// Registered returns the current number of registered handles (diagnostic).
func (a *ArrayDynAppendDereg) Registered() int { return int(a.h.LoadNT(a.desc + dCount)) }

// Capacity returns the current array capacity in slots (diagnostic).
func (a *ArrayDynAppendDereg) Capacity() int { return int(a.h.LoadNT(a.desc + dCapacity)) }

func isIllegal(err error) bool {
	var ab *htm.AbortError
	return errors.As(err, &ab) && ab.Code == htm.AbortIllegal
}
