package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/htm"
)

// impl describes one Collector implementation under conformance test.
type impl struct {
	name string
	mk   func(h *htm.Heap) Collector
	// dynamic reports whether the algorithm actually solves the Dynamic
	// Collect problem (reclaims and resizes); the two Stat arrays and the
	// Static baseline do not.
	dynamic bool
	// maxThreads limits concurrency for implementations with static thread
	// maps (0 = unlimited).
	maxThreads int
}

const testCapacity = 256

func implementations() []impl {
	return []impl{
		{name: "HOHRC", mk: func(h *htm.Heap) Collector { return NewHOHRC(h, Options{Step: 4}) }, dynamic: true},
		{name: "HOHRC/step1", mk: func(h *htm.Heap) Collector { return NewHOHRC(h, Options{Step: 1}) }, dynamic: true},
		{name: "FastCollect", mk: func(h *htm.Heap) Collector { return NewFastCollect(h, Options{Step: 8}) }, dynamic: true},
		{name: "FastCollect/adaptive", mk: func(h *htm.Heap) Collector { return NewFastCollect(h, Options{Step: 8, Adaptive: true}) }, dynamic: true},
		{name: "ArrayStatSearchNo", mk: func(h *htm.Heap) Collector { return NewArrayStatSearchNo(h, testCapacity, Options{Step: 8}) }},
		{name: "ArrayStatAppendDereg", mk: func(h *htm.Heap) Collector { return NewArrayStatAppendDereg(h, testCapacity, Options{Step: 8}) }},
		{name: "ArrayDynSearchResize", mk: func(h *htm.Heap) Collector { return NewArrayDynSearchResize(h, 0, Options{Step: 8}) }, dynamic: true},
		{name: "ArrayDynAppendDereg", mk: func(h *htm.Heap) Collector { return NewArrayDynAppendDereg(h, 0, Options{Step: 8}) }, dynamic: true},
		{name: "ArrayDynAppendDereg/adaptive", mk: func(h *htm.Heap) Collector { return NewArrayDynAppendDereg(h, 0, Options{Step: 8, Adaptive: true}) }, dynamic: true},
		{name: "StaticBaseline", mk: func(h *htm.Heap) Collector { return NewStaticBaseline(h, testCapacity) }, maxThreads: 16},
		{name: "DynamicBaseline", mk: func(h *htm.Heap) Collector { return NewDynamicBaseline(h) }, dynamic: true},
	}
}

func forEachImpl(t *testing.T, f func(t *testing.T, im impl, col Collector, h *htm.Heap)) {
	t.Helper()
	for _, im := range implementations() {
		t.Run(im.name, func(t *testing.T) {
			h := htm.NewHeap(htm.Config{Words: 1 << 18})
			f(t, im, im.mk(h), h)
		})
	}
}

// sortedValues returns a sorted copy for multiset comparison.
func sortedValues(vs []Value) []Value {
	out := append([]Value(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func assertMultisetEqual(t *testing.T, got, want []Value, msg string) {
	t.Helper()
	g, w := sortedValues(got), sortedValues(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d values %v, want %d values %v", msg, len(g), g, len(w), w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: got %v, want %v", msg, g, w)
		}
	}
}

func TestCollectEmpty(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		c := col.NewCtx(h.NewThread())
		if got := col.Collect(c, nil); len(got) != 0 {
			t.Errorf("Collect on empty object = %v", got)
		}
	})
}

func TestRegisterCollectDeregister(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		c := col.NewCtx(h.NewThread())
		h1 := col.Register(c, 10)
		h2 := col.Register(c, 20)
		h3 := col.Register(c, 30)
		assertMultisetEqual(t, col.Collect(c, nil), []Value{10, 20, 30}, "after 3 registers")
		col.Deregister(c, h2)
		assertMultisetEqual(t, col.Collect(c, nil), []Value{10, 30}, "after deregister")
		col.Update(c, h1, 11)
		col.Update(c, h3, 33)
		assertMultisetEqual(t, col.Collect(c, nil), []Value{11, 33}, "after updates")
		col.Deregister(c, h1)
		col.Deregister(c, h3)
		if got := col.Collect(c, nil); len(got) != 0 {
			t.Errorf("Collect after deregistering all = %v", got)
		}
	})
}

func TestHandleReuseAfterDeregister(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		c := col.NewCtx(h.NewThread())
		for i := 0; i < 50; i++ {
			hd := col.Register(c, Value(i+1))
			assertMultisetEqual(t, col.Collect(c, nil), []Value{Value(i + 1)}, "single handle cycle")
			col.Deregister(c, hd)
		}
		if got := col.Collect(c, nil); len(got) != 0 {
			t.Errorf("leftover values: %v", got)
		}
	})
}

func TestCollectAppendsToOut(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		c := col.NewCtx(h.NewThread())
		col.Register(c, 7)
		prefix := []Value{1, 2, 3}
		got := col.Collect(c, prefix)
		if len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Errorf("Collect did not append: %v", got)
		}
	})
}

func TestManyHandlesSingleThread(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		n := 100
		if im.maxThreads != 0 {
			n = testCapacity / 16 // StaticBaseline partitions per thread
		}
		c := col.NewCtx(h.NewThread())
		want := make([]Value, 0, n)
		handles := make([]Handle, 0, n)
		for i := 0; i < n; i++ {
			v := Value(1000 + i)
			handles = append(handles, col.Register(c, v))
			want = append(want, v)
		}
		assertMultisetEqual(t, col.Collect(c, nil), want, "bulk registration")
		// Deregister every other handle.
		want2 := want[:0]
		for i, hd := range handles {
			if i%2 == 0 {
				col.Deregister(c, hd)
			} else {
				want2 = append(want2, Value(1000+i))
			}
		}
		assertMultisetEqual(t, col.Collect(c, nil), want2, "after alternating deregister")
	})
}

// TestModelCheck runs a random single-threaded operation sequence against a
// map model; with no concurrency, Collect must return the model's values
// exactly.
func TestModelCheck(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		rng := rand.New(rand.NewSource(42))
		c := col.NewCtx(h.NewThread())
		model := make(map[Handle]Value)
		var handles []Handle
		next := Value(1)
		limit := 60
		if im.maxThreads != 0 {
			limit = testCapacity/16 - 1
		}
		for op := 0; op < 2000; op++ {
			switch r := rng.Intn(10); {
			case r < 3 && len(handles) < limit:
				v := next
				next++
				hd := col.Register(c, v)
				if _, dup := model[hd]; dup {
					t.Fatalf("Register returned live handle %v twice", hd)
				}
				model[hd] = v
				handles = append(handles, hd)
			case r < 6 && len(handles) > 0:
				i := rng.Intn(len(handles))
				v := next
				next++
				col.Update(c, handles[i], v)
				model[handles[i]] = v
			case r < 8 && len(handles) > 0:
				i := rng.Intn(len(handles))
				hd := handles[i]
				handles[i] = handles[len(handles)-1]
				handles = handles[:len(handles)-1]
				col.Deregister(c, hd)
				delete(model, hd)
			default:
				want := make([]Value, 0, len(model))
				for _, v := range model {
					want = append(want, v)
				}
				assertMultisetEqual(t, col.Collect(c, nil), want, fmt.Sprintf("op %d", op))
			}
		}
	})
}

// TestStableHandlesAlwaysCollected is the key liveness/safety property under
// concurrency: handles registered before any churn begins and never updated
// or deregistered must appear in every concurrent Collect.
func TestStableHandlesAlwaysCollected(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	forEachImpl(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		setupCtx := col.NewCtx(h.NewThread())
		const stable = 8
		stableVals := make(map[Value]bool, stable)
		for i := 0; i < stable; i++ {
			v := Value(0xBEEF000 + i)
			col.Register(setupCtx, v)
			stableVals[v] = true
		}
		churners := 4
		if im.maxThreads != 0 && churners > im.maxThreads-2 {
			churners = im.maxThreads - 2
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < churners; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				c := col.NewCtx(h.NewThread())
				var mine []Handle
				vn := Value(seed) << 32
				for {
					select {
					case <-stop:
						for _, hd := range mine {
							col.Deregister(c, hd)
						}
						return
					default:
					}
					switch {
					case len(mine) < 6 && rng.Intn(2) == 0:
						vn++
						mine = append(mine, col.Register(c, vn))
					case len(mine) > 0 && rng.Intn(3) == 0:
						i := rng.Intn(len(mine))
						col.Deregister(c, mine[i])
						mine[i] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					case len(mine) > 0:
						vn++
						col.Update(c, mine[rng.Intn(len(mine))], vn)
					}
				}
			}(int64(w + 1))
		}
		collectCtx := col.NewCtx(h.NewThread())
		for round := 0; round < 100; round++ {
			got := col.Collect(collectCtx, nil)
			found := make(map[Value]bool)
			for _, v := range got {
				if stableVals[v] {
					found[v] = true
				}
			}
			if len(found) != stable {
				close(stop)
				wg.Wait()
				t.Fatalf("round %d: Collect missed %d stable handles (got %d values)",
					round, stable-len(found), len(got))
			}
		}
		close(stop)
		wg.Wait()
	})
}

// TestConcurrentQuiescentExactness runs churn, then quiesces and checks the
// final Collect equals the surviving bindings exactly.
func TestConcurrentQuiescentExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	forEachImpl(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		workers := 6
		if im.maxThreads != 0 && workers > im.maxThreads-1 {
			workers = im.maxThreads - 1
		}
		var mu sync.Mutex
		final := make(map[Value]int) // surviving value multiset
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				c := col.NewCtx(h.NewThread())
				type bind struct {
					h Handle
					v Value
				}
				var mine []bind
				vn := Value(seed) << 40
				for op := 0; op < 400; op++ {
					switch {
					case len(mine) < 8 && rng.Intn(2) == 0:
						vn++
						mine = append(mine, bind{col.Register(c, vn), vn})
					case len(mine) > 0 && rng.Intn(3) == 0:
						i := rng.Intn(len(mine))
						col.Deregister(c, mine[i].h)
						mine[i] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					case len(mine) > 0:
						vn++
						i := rng.Intn(len(mine))
						col.Update(c, mine[i].h, vn)
						mine[i].v = vn
					default:
						col.Collect(c, nil)
					}
				}
				mu.Lock()
				for _, b := range mine {
					final[b.v]++
				}
				mu.Unlock()
			}(int64(w + 1))
		}
		wg.Wait()
		c := col.NewCtx(h.NewThread())
		got := col.Collect(c, nil)
		gotCount := make(map[Value]int)
		for _, v := range got {
			gotCount[v]++
		}
		for v, n := range final {
			if gotCount[v] != n {
				t.Errorf("value %#x: collected %d times, want %d", v, gotCount[v], n)
			}
		}
		for v := range gotCount {
			if _, ok := final[v]; !ok {
				t.Errorf("collected stale value %#x", v)
			}
		}
	})
}

// TestSpaceReclaimed verifies the paper's space property for the dynamic
// algorithms: after deregistering everything, live heap usage returns to
// within a constant of the quiescent baseline rather than retaining the
// historical maximum.
func TestSpaceReclaimed(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		if !im.dynamic {
			t.Skip("static algorithms retain their arrays by design")
		}
		c := col.NewCtx(h.NewThread())
		base := h.Stats().LiveWords
		var handles []Handle
		for i := 0; i < 200; i++ {
			handles = append(handles, col.Register(c, Value(i+1)))
		}
		peak := h.Stats().LiveWords
		if peak < base+200 {
			t.Fatalf("peak usage %d implausibly low (base %d)", peak, base)
		}
		for _, hd := range handles {
			col.Deregister(c, hd)
		}
		after := h.Stats().LiveWords
		// Allow a small constant slack (minimum-size array, scratch buffer).
		slack := uint64(2*slotWords*DefaultMinSize + 128)
		if after > base+slack {
			t.Errorf("space not reclaimed: base=%d peak=%d after=%d (slack %d)", base, peak, after, slack)
		}
	})
}

func TestCollectDuplicatesAllowedButBounded(t *testing.T) {
	// Sanity: single-threaded collects must not contain duplicates at all.
	forEachImpl(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		c := col.NewCtx(h.NewThread())
		for i := 0; i < 12; i++ {
			col.Register(c, Value(100+i))
		}
		got := col.Collect(c, nil)
		seen := make(map[Value]bool)
		for _, v := range got {
			if seen[v] {
				t.Fatalf("duplicate value %d in quiescent collect", v)
			}
			seen[v] = true
		}
	})
}
