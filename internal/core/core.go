// Package core implements the Dynamic Collect problem (paper §2) and the
// paper's HTM-based and baseline algorithms for it.
//
// A Collect object binds values to dynamically registered handles:
//
//	h := c.Register(ctx, v)   // bind v to a fresh handle h
//	c.Update(ctx, h, v2)      // rebind h to v2
//	c.Deregister(ctx, h)      // release h
//	vals := c.Collect(ctx, nil)
//
// Collect returns a value for every handle whose registration completed
// before the Collect began and which is not deregistered; handle/value pairs
// being registered, updated or deregistered concurrently may "flicker" (be
// returned or not), and the same handle may contribute more than one value.
// Following the specification's noted variation, Collect returns a multiset
// of values rather than (handle, value) pairs, as the paper's own
// implementations do (Figure 2 records only array[i].val).
//
// Values are single machine words. The zero value is reserved as "null" by
// the two non-HTM baselines (as in the paper's Static baseline, whose Collect
// returns the non-null values seen); the HTM algorithms have no such
// restriction but workloads use non-zero values throughout for comparability.
//
// Implementations:
//
//	HOHRC                 §3.1.1  list, hand-over-hand reference counts
//	FastCollect           §3.1.2  list, deregister counter, restart on change
//	ArrayStatSearchNo     §3.2    static array, search, no compaction
//	ArrayStatAppendDereg  §3.2    static array, append, compact on Deregister
//	ArrayDynSearchResize  §3.2    dynamic array, search, compact on resize
//	ArrayDynAppendDereg   §4      dynamic array, append, compact on Deregister
//	StaticBaseline        §3.3    non-HTM fixed array (not a Dynamic Collect)
//	DynamicBaseline       §3.3    non-HTM reference-counted list ([11] Alg. 2)
//
// plus extensions the paper describes but did not implement (see their files).
//
// All algorithms operate on a shared simulated heap (package htm), so HTM
// and non-HTM algorithms compete on the same memory substrate, and memory
// reclamation is real: freed blocks are reusable immediately, and racing
// transactions abort via sandboxing rather than observing reuse.
package core

import (
	"repro/htm"
	"repro/internal/adapt"
)

// Value is the word-sized value bound to a handle.
type Value = uint64

// Handle identifies a registered binding. Its interpretation is
// algorithm-specific (a slot-reference address, a list-node address, or a
// slot address); clients must treat it as opaque.
type Handle uint64

// Collector is a Dynamic Collect object. Methods take a per-thread Ctx
// created by NewCtx; a Ctx must be used by a single goroutine. Handles may
// be updated or deregistered only by the thread that registered them and only
// while registered (the specification's well-formedness conditions); Collect
// may be invoked by any thread at any time outside its other operations.
type Collector interface {
	// Name returns the algorithm's name as used in the paper's figures.
	Name() string
	// NewCtx creates the per-thread execution context.
	NewCtx(th *htm.Thread) *Ctx
	// Register binds v to a fresh handle.
	Register(c *Ctx, v Value) Handle
	// Update rebinds h to v.
	Update(c *Ctx, h Handle, v Value)
	// Deregister releases h.
	Deregister(c *Ctx, h Handle)
	// Collect appends a value for each registered handle to out and returns
	// the extended slice.
	Collect(c *Ctx, out []Value) []Value
}

// Options configure telescoping (paper §3.4) for the HTM algorithms.
type Options struct {
	// Step is the telescoping step size: the number of elements a Collect
	// copies per hardware transaction. Values below 1 default to 1. When
	// Adaptive is set, Step is the initial step.
	Step int
	// Adaptive enables the paper's adaptive step-size mechanism.
	Adaptive bool
	// TrackOutcomes records transaction outcomes into the adaptation
	// machinery without acting on them, reproducing the "Best (adapt cost)"
	// configuration of Figure 5, which charges the bookkeeping overhead of
	// adaptation while pinning the step size.
	TrackOutcomes bool
	// MinStep and MaxStep bound the adaptive step. MaxStep defaults to the
	// heap's store buffer size (32 on Rock); MinStep defaults to 1.
	MinStep, MaxStep int
}

func (o Options) normalize(h *htm.Heap) Options {
	if o.MinStep < 1 {
		o.MinStep = 1
	}
	if o.MaxStep <= 0 {
		o.MaxStep = h.Config().StoreBufferSize
		if o.MaxStep <= 0 {
			o.MaxStep = htm.RockStoreBufferSize
		}
	}
	if o.Step < o.MinStep {
		o.Step = o.MinStep
	}
	if o.Step > o.MaxStep {
		o.Step = o.MaxStep
	}
	return o
}

// Ctx is the per-thread execution context for a Collector. It carries the
// htm thread, the telescoping controller, the transactional scratch buffer
// Collect results are staged in, and algorithm-private state.
//
// Collect stages results in a heap-resident scratch buffer written
// transactionally, so that — exactly as on Rock — every element copied by a
// Collect step consumes a store-buffer entry, which is what limits step sizes
// to 32 (paper §3.4).
type Ctx struct {
	th      *htm.Thread
	opts    Options
	ctrl    *adapt.Controller
	scratch htm.Addr
	scrLen  int
	// stepHist counts elements collected per step size, for Figure 6.
	stepHist map[int]uint64
	priv     any
}

func newCtx(th *htm.Thread, opts Options) *Ctx {
	c := &Ctx{th: th, opts: opts}
	if opts.Adaptive || opts.TrackOutcomes {
		c.ctrl = adapt.NewController(opts.MinStep, opts.MaxStep, opts.Step)
		c.stepHist = make(map[int]uint64)
	}
	return c
}

// Thread returns the underlying htm thread.
func (c *Ctx) Thread() *htm.Thread { return c.th }

// step returns the step size for the next Collect transaction.
func (c *Ctx) step() int {
	if c.ctrl != nil && c.opts.Adaptive {
		return c.ctrl.Step()
	}
	return c.opts.Step
}

// feed reports a Collect transaction outcome to the adaptation machinery;
// collected is the number of elements the attempt copied (0 on abort).
func (c *Ctx) feed(step int, committed bool, collected int) {
	if c.ctrl == nil {
		return
	}
	if committed {
		c.ctrl.RecordCommit()
		c.stepHist[step] += uint64(collected)
	} else {
		c.ctrl.RecordAbort()
	}
}

// StepHistogram returns a copy of this context's elements-collected-per-step
// histogram (Figure 6). It returns nil when adaptation is disabled.
func (c *Ctx) StepHistogram() map[int]uint64 {
	if c.stepHist == nil {
		return nil
	}
	out := make(map[int]uint64, len(c.stepHist))
	for k, v := range c.stepHist {
		out[k] = v
	}
	return out
}

// ensureScratch guarantees the scratch buffer holds at least n words,
// reallocating outside any transaction and preserving already-staged values.
func (c *Ctx) ensureScratch(n int) {
	if n <= c.scrLen {
		return
	}
	if n < 64 {
		n = 64
	}
	if n < 2*c.scrLen {
		n = 2 * c.scrLen
	}
	h := c.th.Heap()
	fresh := c.th.Alloc(n)
	if c.scratch != htm.NilAddr {
		for i := 0; i < c.scrLen; i++ {
			h.StoreNT(fresh+htm.Addr(i), h.LoadNT(c.scratch+htm.Addr(i)))
		}
		c.th.Free(c.scratch)
	}
	c.scratch = fresh
	c.scrLen = n
}

// drainScratch appends the first n staged values to out.
func (c *Ctx) drainScratch(n int, out []Value) []Value {
	h := c.th.Heap()
	for i := 0; i < n; i++ {
		out = append(out, h.LoadNT(c.scratch+htm.Addr(i)))
	}
	return out
}

// Close releases the context's heap resources. Contexts used for an entire
// experiment need not be closed.
func (c *Ctx) Close() {
	if c.scratch != htm.NilAddr {
		c.th.Free(c.scratch)
		c.scratch = htm.NilAddr
		c.scrLen = 0
	}
}
