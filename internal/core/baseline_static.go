package core

import (
	"fmt"
	"sync/atomic"

	"repro/htm"
)

// StaticBaseline (§3.3) is the paper's non-HTM comparison point: a fixed
// array with threads statically mapped to slots. Register and Deregister are
// (nearly) no-ops — a thread claims fresh slots from a bump counter the first
// time it needs them and thereafter recycles its own slots locally, with no
// cross-thread synchronization — Update writes the slot directly, and
// Collect scans the entire array, returning the non-null values seen. The
// zero value is reserved as null.
//
// It does not solve the Dynamic Collect problem: the array is never resized
// or reclaimed and slots, once claimed by a thread, belong to it forever.
// The paper uses it only to put the dynamic algorithms' performance in
// context.
type StaticBaseline struct {
	h        *htm.Heap
	arr      htm.Addr
	capacity int
	nextSlot atomic.Int64
}

var _ Collector = (*StaticBaseline)(nil)

type staticPriv struct {
	free []htm.Addr // this thread's claimed but unregistered slots
}

// NewStaticBaseline allocates a fixed array of capacity one-word slots.
func NewStaticBaseline(h *htm.Heap, capacity int) *StaticBaseline {
	if capacity < 1 {
		capacity = DefaultMinSize
	}
	th := h.NewThread()
	return &StaticBaseline{h: h, arr: th.Alloc(capacity), capacity: capacity}
}

// Name implements Collector.
func (b *StaticBaseline) Name() string { return "Static Baseline" }

// NewCtx implements Collector.
func (b *StaticBaseline) NewCtx(th *htm.Thread) *Ctx {
	c := newCtx(th, Options{Step: 1})
	c.priv = &staticPriv{}
	return c
}

// Register implements Collector: reuse one of the thread's own slots or claim
// the next unclaimed one, then publish v there. Values must be non-zero
// (zero is null). It panics when the static capacity is exhausted — static
// algorithms assume a known bound.
func (b *StaticBaseline) Register(c *Ctx, v Value) Handle {
	p := c.priv.(*staticPriv)
	var slot htm.Addr
	if n := len(p.free); n > 0 {
		slot = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		idx := b.nextSlot.Add(1) - 1
		if idx >= int64(b.capacity) {
			panic(fmt.Sprintf("core: StaticBaseline capacity %d exceeded", b.capacity))
		}
		slot = b.arr + htm.Addr(idx)
	}
	c.th.Heap().StoreNT(slot, v)
	return Handle(slot)
}

// Update implements Collector: a direct store to the thread's slot.
func (b *StaticBaseline) Update(c *Ctx, h Handle, v Value) {
	c.th.Heap().StoreNT(htm.Addr(h), v)
}

// Deregister implements Collector: null the slot and keep it on the thread's
// local free list.
func (b *StaticBaseline) Deregister(c *Ctx, h Handle) {
	c.th.Heap().StoreNT(htm.Addr(h), 0)
	p := c.priv.(*staticPriv)
	p.free = append(p.free, htm.Addr(h))
}

// Collect implements Collector: scan the whole array and take the non-null
// values. No transactions, no indirection — but always capacity words of
// work, however few handles are registered (Figure 3's "traverses the entire
// array, which is on average only half full").
func (b *StaticBaseline) Collect(c *Ctx, out []Value) []Value {
	h := c.th.Heap()
	for i := b.capacity - 1; i >= 0; i-- {
		if v := h.LoadNT(b.arr + htm.Addr(i)); v != 0 {
			out = append(out, v)
		}
	}
	return out
}

// Capacity returns the fixed array capacity (diagnostic).
func (b *StaticBaseline) Capacity() int { return b.capacity }
