package core

import (
	"repro/htm"
)

// NullValue is the reserved value a DeferredReuse wrapper binds to parked
// handles. Clients of a wrapped collector must not register or update the
// null value.
const NullValue Value = 0

// DeferredReuse implements the §5.4 suggestion: "For applications that
// perform frequent Register and DeRegister operations, it may make sense to
// defer deregistering handles, allowing them to be reused by subsequent
// Register operations."
//
// It wraps any Collector. Deregister rebinds the handle to NullValue and
// parks it on the thread's local reuse pool instead of deregistering;
// Register drafts a parked handle with a single Update when one is available.
// Collect filters NullValue out. Parked handles beyond the per-thread pool
// cap are truly deregistered, bounding the hidden registrations.
//
// The payoff is workload-dependent: Register/Deregister churn turns into
// Updates, which for FastCollect in particular means far fewer deregister-
// counter bumps and therefore far fewer Collect restarts (§5.4's point).
// The cost is that parked handles still occupy collect-object slots, so
// Collects traverse up to pool-cap extra elements per thread.
type DeferredReuse struct {
	inner   Collector
	poolCap int
}

var _ Collector = (*DeferredReuse)(nil)

type reusePriv struct {
	inner *Ctx
	pool  []Handle
}

// NewDeferredReuse wraps inner with per-thread reuse pools of at most
// poolCap parked handles (≤0 selects 8).
func NewDeferredReuse(inner Collector, poolCap int) *DeferredReuse {
	if poolCap <= 0 {
		poolCap = 8
	}
	return &DeferredReuse{inner: inner, poolCap: poolCap}
}

// Name implements Collector.
func (d *DeferredReuse) Name() string { return d.inner.Name() + " (deferred dereg)" }

// NewCtx implements Collector.
func (d *DeferredReuse) NewCtx(th *htm.Thread) *Ctx {
	c := &Ctx{th: th}
	c.priv = &reusePriv{inner: d.inner.NewCtx(th)}
	return c
}

// Register implements Collector, drafting a parked handle when possible.
func (d *DeferredReuse) Register(c *Ctx, v Value) Handle {
	p := c.priv.(*reusePriv)
	if n := len(p.pool); n > 0 {
		h := p.pool[n-1]
		p.pool = p.pool[:n-1]
		d.inner.Update(p.inner, h, v)
		return h
	}
	return d.inner.Register(p.inner, v)
}

// Update implements Collector.
func (d *DeferredReuse) Update(c *Ctx, h Handle, v Value) {
	d.inner.Update(c.priv.(*reusePriv).inner, h, v)
}

// Deregister implements Collector, parking the handle unless the pool is
// full.
func (d *DeferredReuse) Deregister(c *Ctx, h Handle) {
	p := c.priv.(*reusePriv)
	if len(p.pool) < d.poolCap {
		d.inner.Update(p.inner, h, NullValue)
		p.pool = append(p.pool, h)
		return
	}
	d.inner.Deregister(p.inner, h)
}

// Collect implements Collector, filtering parked (null) bindings.
func (d *DeferredReuse) Collect(c *Ctx, out []Value) []Value {
	p := c.priv.(*reusePriv)
	raw := d.inner.Collect(p.inner, nil)
	for _, v := range raw {
		if v != NullValue {
			out = append(out, v)
		}
	}
	return out
}

// Drain truly deregisters every parked handle of this context (teardown).
func (d *DeferredReuse) Drain(c *Ctx) {
	p := c.priv.(*reusePriv)
	for _, h := range p.pool {
		d.inner.Deregister(p.inner, h)
	}
	p.pool = nil
}
