package core

import (
	"sync"
	"testing"

	"repro/htm"
)

// extensionImpls adds the paper-described-but-unimplemented variants to the
// conformance matrix.
func extensionImpls() []impl {
	return []impl{
		{name: "ArrayDynAppendDeregUpdOpt",
			mk:      func(h *htm.Heap) Collector { return NewArrayDynAppendDeregUpdOpt(h, 0, Options{Step: 8}) },
			dynamic: true},
		{name: "FastCollectDeferredFree",
			mk:      func(h *htm.Heap) Collector { return NewFastCollectDeferredFree(h, Options{Step: 4}) },
			dynamic: true},
		{name: "DeferredReuse(ArrayDynAppendDereg)",
			mk: func(h *htm.Heap) Collector {
				return NewDeferredReuse(NewArrayDynAppendDereg(h, 0, Options{Step: 8}), 4)
			}},
		{name: "DeferredReuse(FastCollect)",
			mk: func(h *htm.Heap) Collector {
				return NewDeferredReuse(NewFastCollect(h, Options{Step: 8}), 4)
			}},
	}
}

func forEachExtension(t *testing.T, f func(t *testing.T, im impl, col Collector, h *htm.Heap)) {
	t.Helper()
	for _, im := range extensionImpls() {
		t.Run(im.name, func(t *testing.T) {
			h := htm.NewHeap(htm.Config{Words: 1 << 18})
			f(t, im, im.mk(h), h)
		})
	}
}

func TestExtensionBasicSemantics(t *testing.T) {
	forEachExtension(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		c := col.NewCtx(h.NewThread())
		h1 := col.Register(c, 10)
		h2 := col.Register(c, 20)
		assertMultisetEqual(t, col.Collect(c, nil), []Value{10, 20}, "two registers")
		col.Update(c, h1, 11)
		assertMultisetEqual(t, col.Collect(c, nil), []Value{11, 20}, "update")
		col.Deregister(c, h2)
		assertMultisetEqual(t, col.Collect(c, nil), []Value{11}, "deregister")
		col.Deregister(c, h1)
		if got := col.Collect(c, nil); len(got) != 0 {
			t.Errorf("leftovers: %v", got)
		}
	})
}

func TestExtensionModelCheck(t *testing.T) {
	forEachExtension(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		c := col.NewCtx(h.NewThread())
		model := make(map[Handle]Value)
		var handles []Handle
		next := Value(1)
		rng := uint64(7)
		for op := 0; op < 1500; op++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			switch {
			case rng%10 < 3 && len(handles) < 40:
				v := next
				next++
				hd := col.Register(c, v)
				if _, dup := model[hd]; dup {
					t.Fatalf("live handle %v handed out twice", hd)
				}
				model[hd] = v
				handles = append(handles, hd)
			case rng%10 < 6 && len(handles) > 0:
				i := int(rng>>8) % len(handles)
				v := next
				next++
				col.Update(c, handles[i], v)
				model[handles[i]] = v
			case rng%10 < 8 && len(handles) > 0:
				i := int(rng>>8) % len(handles)
				hd := handles[i]
				handles[i] = handles[len(handles)-1]
				handles = handles[:len(handles)-1]
				col.Deregister(c, hd)
				delete(model, hd)
			default:
				want := make([]Value, 0, len(model))
				for _, v := range model {
					want = append(want, v)
				}
				assertMultisetEqual(t, col.Collect(c, nil), want, "model check")
			}
		}
	})
}

func TestExtensionStableHandlesUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	forEachExtension(t, func(t *testing.T, im impl, col Collector, h *htm.Heap) {
		setup := col.NewCtx(h.NewThread())
		stable := map[Value]bool{}
		for i := 0; i < 6; i++ {
			v := Value(0xF00D00 + i)
			col.Register(setup, v)
			stable[v] = true
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				c := col.NewCtx(h.NewThread())
				rng := seed | 1
				var mine []Handle
				for {
					select {
					case <-stop:
						for _, hd := range mine {
							col.Deregister(c, hd)
						}
						return
					default:
					}
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					switch {
					case len(mine) < 5 && rng%2 == 0:
						mine = append(mine, col.Register(c, Value(rng|1)))
					case len(mine) > 0 && rng%3 == 0:
						i := int(rng>>8) % len(mine)
						col.Deregister(c, mine[i])
						mine[i] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					case len(mine) > 0:
						col.Update(c, mine[int(rng>>8)%len(mine)], Value(rng|1))
					}
				}
			}(uint64(w + 1))
		}
		collector := col.NewCtx(h.NewThread())
		for round := 0; round < 150; round++ {
			got := col.Collect(collector, nil)
			found := 0
			for _, v := range got {
				if stable[v] {
					found++
				}
			}
			if found < len(stable) {
				close(stop)
				wg.Wait()
				t.Fatalf("round %d: %d of %d stable handles", round, found, len(stable))
			}
		}
		close(stop)
		wg.Wait()
	})
}

// TestFastCollectDeferredFreeReclaimsAtQuiescence: the to-be-freed backlog
// drains once no Collect is active, restoring live memory.
func TestFastCollectDeferredFreeReclaims(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	l := NewFastCollectDeferredFree(h, Options{Step: 4})
	c := l.NewCtx(h.NewThread())
	base := h.Stats().LiveWords
	var handles []Handle
	for i := 0; i < 100; i++ {
		handles = append(handles, l.Register(c, Value(i+1)))
	}
	for _, hd := range handles {
		l.Deregister(c, hd)
	}
	if l.PendingFree() != 100 {
		t.Fatalf("pending = %d, want 100 before any collect", l.PendingFree())
	}
	l.Collect(c, nil) // quiescent collect triggers the drain
	if l.PendingFree() != 0 {
		t.Errorf("pending = %d after quiescent collect", l.PendingFree())
	}
	c.Close()
	if live := h.Stats().LiveWords; live > base {
		t.Errorf("live = %d, want <= %d", live, base)
	}
}

// TestDeferredReuseAvoidsInnerDeregister: churn within the pool cap must not
// shrink the inner object's registered count (handles are parked, not
// deregistered) and must reuse the same handles.
func TestDeferredReuseParksHandles(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	inner := NewArrayDynAppendDereg(h, 0, Options{Step: 8})
	d := NewDeferredReuse(inner, 4)
	c := d.NewCtx(h.NewThread())
	h1 := d.Register(c, 1)
	d.Deregister(c, h1)
	if got := inner.Registered(); got != 1 {
		t.Fatalf("inner registered = %d, want 1 (parked)", got)
	}
	h2 := d.Register(c, 2)
	if h2 != h1 {
		t.Errorf("expected handle reuse, got %v then %v", h1, h2)
	}
	if got := d.Collect(c, nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("collect = %v, want [2]", got)
	}
	d.Deregister(c, h2)
	d.Drain(c)
	if got := inner.Registered(); got != 0 {
		t.Errorf("inner registered = %d after drain", got)
	}
}

// TestDeferredReusePoolCapBounds: beyond the cap, handles are truly
// deregistered.
func TestDeferredReusePoolCapBounds(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	inner := NewArrayDynAppendDereg(h, 0, Options{Step: 8})
	d := NewDeferredReuse(inner, 2)
	c := d.NewCtx(h.NewThread())
	var handles []Handle
	for i := 0; i < 6; i++ {
		handles = append(handles, d.Register(c, Value(i+1)))
	}
	for _, hd := range handles {
		d.Deregister(c, hd)
	}
	if got := inner.Registered(); got != 2 {
		t.Errorf("inner registered = %d, want pool cap 2", got)
	}
}

// TestUpdOptNakedUpdateLatencyClass: the variant's Update must avoid
// transactions entirely — checked structurally via heap commit counts.
func TestUpdOptUpdateUsesNoTransactions(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	a := NewArrayDynAppendDeregUpdOpt(h, 0, Options{Step: 8})
	c := a.NewCtx(h.NewThread())
	hd := a.Register(c, 1)
	before := h.Stats().Starts
	for i := 0; i < 100; i++ {
		a.Update(c, hd, uint64(i+1))
	}
	if after := h.Stats().Starts; after != before {
		t.Errorf("UpdOpt Update started %d transactions", after-before)
	}
	if got := a.Collect(c, nil); len(got) != 1 || got[0] != 100 {
		t.Errorf("collect = %v, want [100]", got)
	}
}
