package core

import (
	"repro/htm"
)

// List-node layout for HOHRC: value, forward/backward links, a reference
// count ("pins") and a deferred-delete marker.
const (
	nVal = iota
	nNext
	nPrev
	nRC
	nMark
	hohrcNodeWords
)

// hohrcReservedStores is the number of store-buffer entries a telescoped
// HOHRC Collect transaction needs besides the per-element result stores: pin,
// unpin, and a possible unlink (two link updates).
const hohrcReservedStores = 4

// HOHRC (§3.1.1) is the hand-over-hand reference-counting list algorithm. A
// Collect pins each node (increments its reference count) before reading it
// and unpins its predecessor, so at most two nodes per ongoing Collect are
// kept alive beyond the registered ones. Deregister marks the node and the
// last unpinner — or the Deregister itself, if unpinned — unlinks and frees
// it.
//
// Handle storage never moves, so Update is a naked store (the paper's fast,
// ~135ns Update class). The price is an expensive Collect that writes every
// node it traverses; telescoping (§3.4) amortizes but cannot eliminate this.
type HOHRC struct {
	h    *htm.Heap
	head htm.Addr // sentinel node, never freed
	opts Options
}

var _ Collector = (*HOHRC)(nil)

// NewHOHRC allocates the collect object on h.
func NewHOHRC(h *htm.Heap, opts Options) *HOHRC {
	th := h.NewThread()
	opts = opts.normalize(h)
	if sb := h.Config().StoreBufferSize; sb > 0 && opts.MaxStep > sb-hohrcReservedStores {
		opts.MaxStep = sb - hohrcReservedStores
		if opts.Step > opts.MaxStep {
			opts.Step = opts.MaxStep
		}
	}
	return &HOHRC{h: h, head: th.Alloc(hohrcNodeWords), opts: opts}
}

// Name implements Collector.
func (l *HOHRC) Name() string { return "List HoH RC" }

// NewCtx implements Collector.
func (l *HOHRC) NewCtx(th *htm.Thread) *Ctx { return newCtx(th, l.opts) }

// Register implements Collector: allocate a node outside the transaction and
// splice it in at the head of the list.
func (l *HOHRC) Register(c *Ctx, v Value) Handle {
	n := c.th.Alloc(hohrcNodeWords)
	c.th.Heap().StoreNT(n+nVal, v) // unpublished; plain init
	c.th.Atomic(func(t *htm.Txn) {
		first := htm.Addr(t.Load(l.head + nNext))
		t.Store(n+nNext, uint64(first))
		t.Store(n+nPrev, uint64(l.head))
		if first != htm.NilAddr {
			t.Store(first+nPrev, uint64(n))
		}
		t.Store(l.head+nNext, uint64(n))
	})
	return Handle(n)
}

// Update implements Collector: handle storage never moves, so a naked
// strongly atomic store suffices.
func (l *HOHRC) Update(c *Ctx, h Handle, v Value) {
	c.th.Heap().StoreNT(htm.Addr(h)+nVal, v)
}

// unpin decrements n's pin count inside t; if it reaches zero and the node is
// marked for deletion, it unlinks the node and frees it after commit.
func unpin(t *htm.Txn, n htm.Addr) {
	rc := t.Load(n+nRC) - 1
	t.Store(n+nRC, rc)
	if rc == 0 && t.Load(n+nMark) != 0 {
		unlink(t, n)
		t.FreeOnCommit(n)
	}
}

// unlink splices n out of the list inside t. Neighbors' link fields are
// maintained on every unlink and head insertion, so prev is always n's live
// predecessor.
func unlink(t *htm.Txn, n htm.Addr) {
	prev := htm.Addr(t.Load(n + nPrev))
	next := htm.Addr(t.Load(n + nNext))
	t.Store(prev+nNext, uint64(next))
	if next != htm.NilAddr {
		t.Store(next+nPrev, uint64(prev))
	}
}

// Deregister implements Collector: set the delete marker; if the node is
// unpinned, unlink and free it now, otherwise the last unpinning Collect
// will.
func (l *HOHRC) Deregister(c *Ctx, h Handle) {
	n := htm.Addr(h)
	c.th.Atomic(func(t *htm.Txn) {
		t.Store(n+nMark, 1)
		if t.Load(n+nRC) == 0 {
			unlink(t, n)
			t.FreeOnCommit(n)
		}
	})
}

// Collect implements Collector with telescoping (§3.4): each transaction
// walks up to `step` nodes from the currently pinned node, records unmarked
// values, pins the last node reached and unpins the starting one. Only the
// two endpoint nodes are written, so intermediate nodes stay clean in other
// caches — the telescoping benefit the paper describes.
func (l *HOHRC) Collect(c *Ctx, out []Value) []Value {
	c.ensureScratch(64)
	cur := l.head // sentinel: traversal anchor, pinned by construction
	k := 0
	for {
		step := c.step()
		c.ensureScratch(k + step)
		var endReached bool
		var p htm.Addr
		got := 0
		err := c.th.TryAtomic(func(t *htm.Txn) {
			endReached = false
			got = 0
			p = cur
			for visited := 0; visited < step; visited++ {
				nxt := htm.Addr(t.Load(p + nNext))
				if nxt == htm.NilAddr {
					endReached = true
					break
				}
				p = nxt
				if t.Load(p+nMark) == 0 {
					t.Store(c.scratch+htm.Addr(k+got), t.Load(p+nVal))
					got++
				}
			}
			if !endReached && p != cur {
				t.Add(p+nRC, 1) // pin the new anchor
			}
			if cur != l.head {
				unpin(t, cur)
			}
		})
		if err != nil {
			c.feed(step, false, 0)
			continue
		}
		c.feed(step, true, got)
		k += got
		if endReached {
			break
		}
		cur = p
	}
	return c.drainScratch(k, out)
}
