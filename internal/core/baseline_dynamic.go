package core

import (
	"runtime"

	"repro/htm"
)

// DynamicBaseline node layout. fwd packs the successor pointer (low 32
// bits), a traversal reference count (16 bits) and a modification sequence
// number (16 bits) into one CAS-able word — the counted-pointer construction
// of Algorithm 2 of Herlihy, Luchangco and Moir [11], the paper's non-HTM
// Dynamic Collect baseline, extended with a sequence stamp that closes the
// ABA window on unlinking (see tryUnlink).
const (
	bFwd = iota
	bStatus
	bVal
	dynNodeWords
)

// Node claim states.
const (
	stFree     = 0
	stUsed     = 1
	stClaiming = 2
)

const (
	cntUnit = uint64(1) << 32
	seqUnit = uint64(1) << 48
	cntMask = uint64(0x7FFF) << 32
	markBit = uint64(1) << 47
	seqMask = uint64(0xFFFF) << 48
	fwdMask = uint64(0xFFFFFFFF)
)

func fwdPtr(f uint64) htm.Addr { return htm.Addr(f & fwdMask) }
func fwdCnt(f uint64) uint64   { return (f & cntMask) >> 32 }
func fwdMarked(f uint64) bool  { return f&markBit != 0 }

// bumpSeq returns f with the sequence stamp advanced; every CAS on an edge
// word goes through a seq bump so that a successful CAS proves the edge was
// untouched since it was read. The 16-bit stamp wraps; an ABA would need
// 65536 edge mutations inside one read-to-CAS window.
func bumpSeq(f uint64) uint64 {
	seq := (f >> 48) + 1
	return f&^seqMask | seq<<48
}

// withPtrCnt returns f with pointer and count replaced, the mark cleared,
// and seq advanced.
func withPtrCnt(f uint64, p htm.Addr, cnt uint64) uint64 {
	seq := (f >> 48) + 1
	return uint64(p) | cnt<<32 | seq<<48
}

// DynamicBaseline (§3.3) is the CAS-based Dynamic Collect baseline: a linked
// list whose forward pointers carry reference counts. An operation pins every
// edge on its path by incrementing the edge's count with CAS, which protects
// all nodes on the path from deallocation; releasing an edge whose count
// drops to zero unlinks and deallocates a deregistered successor. Register
// keeps its path pinned for the handle's lifetime and Deregister releases it.
//
// The per-edge CAS on every traversal step — in both directions for Collect —
// is what makes this baseline slow: it dirties every node it walks, exactly
// the cache behaviour the paper blames in Figure 3.
//
// Divergences from [11], documented per DESIGN.md: (1) the original uses back
// pointers for the reverse, count-releasing pass; we release from a
// thread-local stack of the pinned path, performing the identical CAS
// sequence without the back links. (2) Edge words carry a 16-bit sequence
// stamp; without HTM, the unlink step must atomically validate two edge words
// at once, and the stamp is the classic counted-pointer workaround. The
// contrast with the two-line transactional unlink of the HTM algorithms is
// the paper's §4.3 complexity argument in miniature.
type DynamicBaseline struct {
	h    *htm.Heap
	sent htm.Addr // sentinel node; its fwd edge anchors the list
}

var _ Collector = (*DynamicBaseline)(nil)

type dynPriv struct {
	stack []htm.Addr
}

// NewDynamicBaseline allocates the collect object on h.
func NewDynamicBaseline(h *htm.Heap) *DynamicBaseline {
	th := h.NewThread()
	return &DynamicBaseline{h: h, sent: th.Alloc(dynNodeWords)}
}

// Name implements Collector.
func (b *DynamicBaseline) Name() string { return "Dynamic Baseline" }

// NewCtx implements Collector.
func (b *DynamicBaseline) NewCtx(th *htm.Thread) *Ctx {
	c := newCtx(th, Options{Step: 1})
	c.priv = &dynPriv{}
	return c
}

// pinEdge increments the reference count of the edge out of prev, returning
// the packed edge value after the increment. Edges held exclusively by an
// unlinker (mark bit set) are waited out.
func (b *DynamicBaseline) pinEdge(c *Ctx, prev htm.Addr) uint64 {
	h := c.th.Heap()
	for {
		f := h.LoadNT(prev + bFwd)
		if fwdMarked(f) {
			runtime.Gosched()
			continue
		}
		nf := bumpSeq(f) + cntUnit
		if h.CASNT(prev+bFwd, f, nf) {
			return nf
		}
	}
}

// releaseEdge decrements the reference count of the edge out of prev,
// returning the packed edge value after the decrement.
func (b *DynamicBaseline) releaseEdge(c *Ctx, prev htm.Addr) uint64 {
	h := c.th.Heap()
	for {
		f := h.LoadNT(prev + bFwd)
		if fwdMarked(f) {
			runtime.Gosched()
			continue
		}
		nf := bumpSeq(f) - cntUnit
		if h.CASNT(prev+bFwd, f, nf) {
			return nf
		}
	}
}

// tryUnlink deallocates prev's successor if the edge into it is unreferenced,
// the node is free, and no traverser is pinned inside it.
//
// Safety: the node is only dereferenced while this thread holds the edge's
// mark bit, which it acquires by CASing the exact stamped value f the caller
// observed. A marked edge rejects pins, releases, appends and other unlink
// attempts, and a node's only incoming edge is this one, so while the mark is
// held nobody can reach — let alone free — the node. The mark holder then
// either swings the edge past the node and frees it, or restores the edge.
// (An earlier revision read the node before taking any mark; a full
// pin/claim/deregister/unlink cycle by another thread could slip into that
// window and free the node first.)
func (b *DynamicBaseline) tryUnlink(c *Ctx, prev htm.Addr, f uint64) {
	node := fwdPtr(f)
	if fwdCnt(f) != 0 || node == htm.NilAddr || fwdMarked(f) {
		return
	}
	h := c.th.Heap()
	marked := bumpSeq(f) | markBit
	if !h.CASNT(prev+bFwd, f, marked) {
		return // the edge moved on; some other thread is responsible now
	}
	// Exclusive: nobody can pin through or mutate this edge until we
	// publish an unmarked value.
	if h.LoadNT(node+bStatus) == stFree {
		nf := h.LoadNT(node + bFwd)
		if fwdCnt(nf) == 0 && !fwdMarked(nf) {
			h.StoreNT(prev+bFwd, withPtrCnt(marked, fwdPtr(nf), 0))
			c.th.Free(node)
			return
		}
	}
	h.StoreNT(prev+bFwd, withPtrCnt(marked, node, 0))
}

// Register implements Collector: walk from the sentinel pinning every edge,
// claim the first free node (or append a fresh one at the tail), and leave
// the path pinned for the handle's lifetime.
func (b *DynamicBaseline) Register(c *Ctx, v Value) Handle {
	h := c.th.Heap()
	prev := b.sent
	f := b.pinEdge(c, prev)
	for {
		node := fwdPtr(f)
		if node == htm.NilAddr {
			// Append a fresh node. We hold a pin on this edge, so it cannot
			// be unlinked; on CAS failure re-read and either retry (count
			// churn) or continue to the node someone else appended.
			n := c.th.Alloc(dynNodeWords)
			h.StoreNT(n+bStatus, stUsed)
			h.StoreNT(n+bVal, v)
			for node == htm.NilAddr {
				if fwdMarked(f) {
					// An unlinker holds this edge exclusively; wait it out
					// rather than clobbering its mark.
					runtime.Gosched()
					f = h.LoadNT(prev + bFwd)
					node = fwdPtr(f)
					continue
				}
				if h.CASNT(prev+bFwd, f, withPtrCnt(f, n, fwdCnt(f))) {
					return Handle(n)
				}
				f = h.LoadNT(prev + bFwd)
				node = fwdPtr(f)
			}
			c.th.Free(n)
		}
		if h.CASNT(node+bStatus, stFree, stClaiming) {
			h.StoreNT(node+bVal, v)
			h.StoreNT(node+bStatus, stUsed)
			return Handle(node)
		}
		prev = node
		f = b.pinEdge(c, prev)
	}
}

// Deregister implements Collector: re-walk the (pinned, hence immutable) path
// from the sentinel to the handle's node, then release the pins deepest
// first, unlinking newly unreferenced free nodes along the way, and finally
// mark the node free.
func (b *DynamicBaseline) Deregister(c *Ctx, h Handle) {
	heap := c.th.Heap()
	n := htm.Addr(h)
	p := c.priv.(*dynPriv)
	p.stack = p.stack[:0]
	// Forward pass: rebuild the pinned path (no CASes; the path cannot
	// change while pinned).
	for node := b.sent; node != n && node != htm.NilAddr; {
		p.stack = append(p.stack, node)
		node = fwdPtr(heap.LoadNT(node + bFwd))
	}
	// The handle's binding ends before its path pins are released, so a
	// racing Register that recycles the node sees a free node only after we
	// are done touching it.
	heap.StoreNT(n+bStatus, stFree)
	for i := len(p.stack) - 1; i >= 0; i-- {
		f := b.releaseEdge(c, p.stack[i])
		b.tryUnlink(c, p.stack[i], f)
	}
}

// Update implements Collector: a direct store — handle storage never moves
// while registered.
func (b *DynamicBaseline) Update(c *Ctx, h Handle, v Value) {
	c.th.Heap().StoreNT(htm.Addr(h)+bVal, v)
}

// Collect implements Collector: pin the whole list edge by edge collecting
// used values, then release the path deepest first, unlinking unreferenced
// free nodes — two CASes per node per Collect, the cost the paper measures.
func (b *DynamicBaseline) Collect(c *Ctx, out []Value) []Value {
	h := c.th.Heap()
	p := c.priv.(*dynPriv)
	p.stack = p.stack[:0]
	prev := b.sent
	for {
		f := b.pinEdge(c, prev)
		p.stack = append(p.stack, prev)
		node := fwdPtr(f)
		if node == htm.NilAddr {
			break
		}
		if h.LoadNT(node+bStatus) == stUsed {
			out = append(out, h.LoadNT(node+bVal))
		}
		prev = node
	}
	for i := len(p.stack) - 1; i >= 0; i-- {
		f := b.releaseEdge(c, p.stack[i])
		b.tryUnlink(c, p.stack[i], f)
	}
	return out
}

// ListLength returns the current list length (diagnostic; counts all nodes,
// free or used). Not safe against concurrent unlinks; use in quiescence.
func (b *DynamicBaseline) ListLength() int {
	h := b.h
	n := 0
	for node := fwdPtr(h.LoadNT(b.sent + bFwd)); node != htm.NilAddr; node = fwdPtr(h.LoadNT(node + bFwd)) {
		n++
	}
	return n
}
