package core

import (
	"repro/htm"
)

// FastCollect node layout: value and doubly-linked list pointers. No
// reference counts — Collect relies on the deregister counter for safety.
const (
	fVal = iota
	fNext
	fPrev
	fcNodeWords
)

// Descriptor layout for FastCollect: head pointer and the shared deregister
// counter dc.
const (
	fcHead = iota
	fcDC
	fcDescWords
)

// FastCollect (§3.1.2) improves on HOHRC's Collect for workloads with
// infrequent Deregisters: it drops the per-node reference counts and instead
// keeps a shared deregister counter. Deregister atomically unlinks the node
// and increments the counter, freeing the node immediately afterwards.
// Collect reads the counter in every transaction and restarts from the head
// whenever it changed. If a Collect holds a pointer to a node freed in the
// meantime, its next transaction either observes the changed counter and
// restarts, or dereferences the freed node first and is sandboxed into a
// clean abort — a direct reliance on the HTM property the paper calls out.
//
// The known weakness is that frequent Deregisters can starve Collects
// (measured in Figure 7); see FastCollectDeferredFree for the paper's
// suggested remedy.
type FastCollect struct {
	h    *htm.Heap
	desc htm.Addr
	opts Options
}

var _ Collector = (*FastCollect)(nil)

// NewFastCollect allocates the collect object on h.
func NewFastCollect(h *htm.Heap, opts Options) *FastCollect {
	th := h.NewThread()
	return &FastCollect{h: h, desc: th.Alloc(fcDescWords), opts: opts.normalize(h)}
}

// Name implements Collector.
func (l *FastCollect) Name() string { return "List Fast Collect" }

// NewCtx implements Collector.
func (l *FastCollect) NewCtx(th *htm.Thread) *Ctx { return newCtx(th, l.opts) }

// Register implements Collector: splice a pre-allocated node in at the head.
func (l *FastCollect) Register(c *Ctx, v Value) Handle {
	n := c.th.Alloc(fcNodeWords)
	c.th.Heap().StoreNT(n+fVal, v)
	c.th.Atomic(func(t *htm.Txn) {
		first := htm.Addr(t.Load(l.desc + fcHead))
		t.Store(n+fNext, uint64(first))
		t.Store(n+fPrev, 0)
		if first != htm.NilAddr {
			t.Store(first+fPrev, uint64(n))
		}
		t.Store(l.desc+fcHead, uint64(n))
	})
	return Handle(n)
}

// Update implements Collector: naked store — handle storage never moves.
func (l *FastCollect) Update(c *Ctx, h Handle, v Value) {
	c.th.Heap().StoreNT(htm.Addr(h)+fVal, v)
}

// Deregister implements Collector: atomically unlink the node and bump the
// deregister counter, then free the node immediately.
func (l *FastCollect) Deregister(c *Ctx, h Handle) {
	n := htm.Addr(h)
	c.th.Atomic(func(t *htm.Txn) {
		prev := htm.Addr(t.Load(n + fPrev))
		next := htm.Addr(t.Load(n + fNext))
		if prev == htm.NilAddr {
			t.Store(l.desc+fcHead, uint64(next))
		} else {
			t.Store(prev+fNext, uint64(next))
		}
		if next != htm.NilAddr {
			t.Store(next+fPrev, uint64(prev))
		}
		t.Add(l.desc+fcDC, 1)
		t.FreeOnCommit(n)
	})
}

// Collect implements Collector with telescoping: each transaction
// re-validates the deregister counter and walks up to `step` nodes. Any
// change of the counter restarts the whole Collect from the head.
func (l *FastCollect) Collect(c *Ctx, out []Value) []Value {
	c.ensureScratch(64)
	h := c.th.Heap()
	for { // restart loop
		dcStart := h.LoadNT(l.desc + fcDC)
		cur := htm.NilAddr // NilAddr: start from the head pointer
		k := 0
		restart := false
		done := false
		for !done && !restart {
			step := c.step()
			c.ensureScratch(k + step)
			var p htm.Addr
			var endReached bool
			got := 0
			err := c.th.TryAtomic(func(t *htm.Txn) {
				restart = false
				endReached = false
				got = 0
				if t.Load(l.desc+fcDC) != dcStart {
					restart = true
					return
				}
				if cur == htm.NilAddr {
					p = htm.Addr(t.Load(l.desc + fcHead))
				} else {
					p = htm.Addr(t.Load(cur + fNext))
				}
				for visited := 0; visited < step; visited++ {
					if p == htm.NilAddr {
						endReached = true
						break
					}
					t.Store(c.scratch+htm.Addr(k+got), t.Load(p+fVal))
					got++
					if visited+1 < step {
						p = htm.Addr(t.Load(p + fNext))
					}
				}
			})
			if err != nil {
				c.feed(step, false, 0)
				if h.LoadNT(l.desc+fcDC) != dcStart {
					restart = true
				}
				continue
			}
			c.feed(step, true, got)
			if restart {
				break
			}
			k += got
			if endReached {
				done = true
				break
			}
			cur = p
		}
		if done {
			return c.drainScratch(k, out)
		}
	}
}
