package core

import (
	"fmt"

	"repro/htm"
)

// ArrayStatAppendDereg (§3.2) is the static-array variant of
// ArrayDynAppendDereg: append registration and compaction on Deregister, but
// a fixed capacity and no resizing or copying machinery. It assumes a known
// bound on the number of simultaneously registered handles; like the paper,
// we use it to isolate registration/compaction behaviour from memory
// reclamation.
type ArrayStatAppendDereg struct {
	h        *htm.Heap
	desc     htm.Addr // dCount only
	arr      htm.Addr
	capacity uint64
	opts     Options
}

var _ Collector = (*ArrayStatAppendDereg)(nil)

// NewArrayStatAppendDereg allocates the object with a fixed capacity (slots).
func NewArrayStatAppendDereg(h *htm.Heap, capacity int, opts Options) *ArrayStatAppendDereg {
	if capacity < 1 {
		capacity = DefaultMinSize
	}
	th := h.NewThread()
	return &ArrayStatAppendDereg{
		h:        h,
		desc:     th.Alloc(1),
		arr:      th.Alloc(slotWords * capacity),
		capacity: uint64(capacity),
		opts:     opts.normalize(h),
	}
}

// Name implements Collector.
func (a *ArrayStatAppendDereg) Name() string { return "Array Stat Append Dereg" }

// NewCtx implements Collector.
func (a *ArrayStatAppendDereg) NewCtx(th *htm.Thread) *Ctx { return newCtx(th, a.opts) }

// Register implements Collector: append at index count. It panics if the
// static capacity is exceeded — static algorithms assume a known bound.
func (a *ArrayStatAppendDereg) Register(c *Ctx, v Value) Handle {
	ref := c.th.Alloc(1)
	full := false
	c.th.Atomic(func(t *htm.Txn) {
		full = false
		count := t.Load(a.desc)
		if count >= a.capacity {
			full = true
			return
		}
		slot := a.arr + htm.Addr(slotWords*count)
		t.Store(slot+slotVal, v)
		t.Store(slot+slotRef, uint64(ref))
		t.Store(ref, uint64(slot))
		t.Store(a.desc, count+1)
	})
	if full {
		panic(fmt.Sprintf("core: ArrayStatAppendDereg capacity %d exceeded", a.capacity))
	}
	return Handle(ref)
}

// Deregister implements Collector: move the last used slot into the vacated
// one.
func (a *ArrayStatAppendDereg) Deregister(c *Ctx, h Handle) {
	ref := htm.Addr(h)
	c.th.Atomic(func(t *htm.Txn) {
		count := t.Load(a.desc) - 1
		t.Store(a.desc, count)
		last := a.arr + htm.Addr(slotWords*count)
		mine := htm.Addr(t.Load(ref))
		lv := t.Load(last + slotVal)
		lr := t.Load(last + slotRef)
		t.Store(mine+slotVal, lv)
		t.Store(mine+slotRef, lr)
		t.Store(htm.Addr(lr), uint64(mine))
	})
	c.th.Free(ref)
}

// Update implements Collector: one transactional indirection, because
// compaction may move the slot concurrently (the paper measures this class of
// algorithms at ~215ns per Update versus ~135ns for direct writes).
func (a *ArrayStatAppendDereg) Update(c *Ctx, h Handle, v Value) {
	ref := htm.Addr(h)
	c.th.Atomic(func(t *htm.Txn) {
		slot := htm.Addr(t.Load(ref))
		t.Store(slot+slotVal, v)
	})
}

// Collect implements Collector: scan registered slots in reverse with
// telescoping, staging results transactionally.
func (a *ArrayStatAppendDereg) Collect(c *Ctx, out []Value) []Value {
	h := c.th.Heap()
	i := int64(h.LoadNT(a.desc)) - 1
	c.ensureScratch(int(i + 1))
	k := 0
	for i >= 0 {
		step := c.step()
		ii := i
		got := 0
		err := c.th.TryAtomic(func(t *htm.Txn) {
			ii = i
			got = 0
			count := int64(t.Load(a.desc))
			if ii >= count {
				ii = count - 1
			}
			for s := 0; s < step && ii >= 0; s++ {
				v := t.Load(a.arr + htm.Addr(slotWords*ii) + slotVal)
				t.Store(c.scratch+htm.Addr(k+got), v)
				ii--
				got++
			}
		})
		if err != nil {
			c.feed(step, false, 0)
			continue
		}
		c.feed(step, true, got)
		i = ii
		k += got
	}
	return c.drainScratch(k, out)
}

// Registered returns the number of registered handles (diagnostic).
func (a *ArrayStatAppendDereg) Registered() int { return int(a.h.LoadNT(a.desc)) }

// ArrayStatSearchNo (§3.2) is a static array with search-based registration
// and no compaction. Slots never move, so handles address their slot
// directly: Update is a plain store and Collect does not need transactions at
// all (the paper singles these two properties out in §5.3). The cost is that
// Collect must traverse up to the historical maximum number of registered
// slots (§5.5) — the high-water index never comes back down.
//
// Like the Static baseline, this algorithm does not solve the Dynamic Collect
// problem (the array is never reclaimed or resized); the paper uses it to put
// the dynamic algorithms' performance in context.
type ArrayStatSearchNo struct {
	h        *htm.Heap
	arr      htm.Addr // capacity slots of {val, used}
	hiWater  htm.Addr // historical maximum of (last used index + 1)
	capacity uint64
	opts     Options
}

var _ Collector = (*ArrayStatSearchNo)(nil)

// NewArrayStatSearchNo allocates the object with a fixed capacity (slots).
func NewArrayStatSearchNo(h *htm.Heap, capacity int, opts Options) *ArrayStatSearchNo {
	if capacity < 1 {
		capacity = DefaultMinSize
	}
	th := h.NewThread()
	return &ArrayStatSearchNo{
		h:        h,
		arr:      th.Alloc(slotWords * capacity),
		hiWater:  th.Alloc(1),
		capacity: uint64(capacity),
		opts:     opts.normalize(h),
	}
}

// Name implements Collector.
func (a *ArrayStatSearchNo) Name() string { return "Array Stat Search No" }

// NewCtx implements Collector.
func (a *ArrayStatSearchNo) NewCtx(th *htm.Thread) *Ctx { return newCtx(th, a.opts) }

// Register implements Collector: search for a free slot (used flag clear) and
// claim it in a transaction.
func (a *ArrayStatSearchNo) Register(c *Ctx, v Value) Handle {
	var slot htm.Addr
	full := false
	c.th.Atomic(func(t *htm.Txn) {
		full = false
		slot = htm.NilAddr
		for i := uint64(0); i < a.capacity; i++ {
			s := a.arr + htm.Addr(slotWords*i)
			if t.Load(s+slotUsed) == 0 {
				t.Store(s+slotUsed, 1)
				t.Store(s+slotVal, v)
				slot = s
				if hw := t.Load(a.hiWater); i+1 > hw {
					t.Store(a.hiWater, i+1)
				}
				return
			}
		}
		full = true
	})
	if full {
		panic(fmt.Sprintf("core: ArrayStatSearchNo capacity %d exceeded", a.capacity))
	}
	return Handle(slot)
}

// slotUsed aliases the second slot word for search-based algorithms, which
// store a used flag instead of a slot-reference pointer.
const slotUsed = slotRef

// Deregister implements Collector: clear the used flag. A single atomic store
// suffices because slots never move.
func (a *ArrayStatSearchNo) Deregister(c *Ctx, h Handle) {
	c.th.Heap().StoreNT(htm.Addr(h)+slotUsed, 0)
}

// Update implements Collector: a naked store through the handle — the fast
// (~135ns) Update class, possible because the slot never moves.
func (a *ArrayStatSearchNo) Update(c *Ctx, h Handle, v Value) {
	c.th.Heap().StoreNT(htm.Addr(h)+slotVal, v)
}

// Collect implements Collector without transactions: scan every slot below
// the high-water mark and take the used ones. Slots never move, values are
// single words, and the used flag and value are published atomically by
// Register's transaction, so plain strongly atomic loads observe a value for
// every stably registered handle.
func (a *ArrayStatSearchNo) Collect(c *Ctx, out []Value) []Value {
	h := c.th.Heap()
	hw := h.LoadNT(a.hiWater)
	for i := int64(hw) - 1; i >= 0; i-- {
		s := a.arr + htm.Addr(slotWords*uint64(i))
		if h.LoadNT(s+slotUsed) != 0 {
			out = append(out, h.LoadNT(s+slotVal))
		}
	}
	return out
}

// HighWater returns the historical maximum slot count traversed by Collect
// (diagnostic, §5.5).
func (a *ArrayStatSearchNo) HighWater() int { return int(a.h.LoadNT(a.hiWater)) }
