package core

import (
	"repro/htm"
)

// Deferred-free FastCollect node layout: value, list links, and a separate
// link for the to-be-freed list (a node's own next/prev are never modified
// after unlinking, so stranded traversers can keep walking through it).
const (
	fdVal = iota
	fdNext
	fdPrev
	fdTbf
	fdNodeWords
)

// Descriptor layout: head pointer, to-be-freed list head, and a count of
// Collects in progress.
const (
	fdHead = iota
	fdTbfHead
	fdActive
	fdDescWords
)

// FastCollectDeferredFree implements the remedy §3.1.2 sketches for
// FastCollect's starvation problem: "adding a mode in which DeRegister
// operations add nodes to a to-be-freed list that is freed by a Collect
// operation after it completes."
//
// Deregister unlinks the node but does not free it, and leaves the node's own
// outgoing pointers untouched. A Collect that is standing on a just-unlinked
// node can therefore simply keep walking — every stably registered node
// remains reachable through the unlinked node's preserved next pointer (the
// Harris-list argument) — so Collect needs neither reference counts nor the
// restart-on-deregister protocol, and concurrent Deregisters cannot starve
// it.
//
// Unlinked nodes go on a to-be-freed list. After a Collect finishes it tries
// to drain that list; the drain is taken only when no Collect is in progress
// (a conservative quiescence check via a shared active counter), because only
// Collects that began before a node was unlinked can still hold a pointer to
// it. Under continuous Collect activity reclamation is deferred — the
// space/progress trade the paper describes.
type FastCollectDeferredFree struct {
	h    *htm.Heap
	desc htm.Addr
	opts Options
}

var _ Collector = (*FastCollectDeferredFree)(nil)

// NewFastCollectDeferredFree allocates the collect object on h.
func NewFastCollectDeferredFree(h *htm.Heap, opts Options) *FastCollectDeferredFree {
	th := h.NewThread()
	return &FastCollectDeferredFree{h: h, desc: th.Alloc(fdDescWords), opts: opts.normalize(h)}
}

// Name implements Collector.
func (l *FastCollectDeferredFree) Name() string { return "List Fast Collect (deferred free)" }

// NewCtx implements Collector.
func (l *FastCollectDeferredFree) NewCtx(th *htm.Thread) *Ctx { return newCtx(th, l.opts) }

// Register implements Collector: splice a pre-allocated node in at the head.
func (l *FastCollectDeferredFree) Register(c *Ctx, v Value) Handle {
	n := c.th.Alloc(fdNodeWords)
	c.th.Heap().StoreNT(n+fdVal, v)
	c.th.Atomic(func(t *htm.Txn) {
		first := htm.Addr(t.Load(l.desc + fdHead))
		t.Store(n+fdNext, uint64(first))
		t.Store(n+fdPrev, 0)
		if first != htm.NilAddr {
			t.Store(first+fdPrev, uint64(n))
		}
		t.Store(l.desc+fdHead, uint64(n))
	})
	return Handle(n)
}

// Update implements Collector: naked store — handle storage never moves.
func (l *FastCollectDeferredFree) Update(c *Ctx, h Handle, v Value) {
	c.th.Heap().StoreNT(htm.Addr(h)+fdVal, v)
}

// Deregister implements Collector: unlink the node — touching only its
// neighbours, never its own links — and push it onto the to-be-freed list.
func (l *FastCollectDeferredFree) Deregister(c *Ctx, h Handle) {
	n := htm.Addr(h)
	c.th.Atomic(func(t *htm.Txn) {
		prev := htm.Addr(t.Load(n + fdPrev))
		next := htm.Addr(t.Load(n + fdNext))
		if prev == htm.NilAddr {
			// Only unlink from the head if we are still the head: a stranded
			// prev pointer of an already-bypassed node must not clobber it.
			if htm.Addr(t.Load(l.desc+fdHead)) == n {
				t.Store(l.desc+fdHead, uint64(next))
			}
		} else {
			t.Store(prev+fdNext, uint64(next))
		}
		if next != htm.NilAddr {
			t.Store(next+fdPrev, uint64(prev))
		}
		t.Store(n+fdTbf, t.Load(l.desc+fdTbfHead))
		t.Store(l.desc+fdTbfHead, uint64(n))
	})
}

// Collect implements Collector with telescoping and no restarts: unlinked
// nodes keep their outgoing pointers, so the walk simply continues through
// them (their values may flicker into the result, which the specification
// permits for concurrent Deregisters).
func (l *FastCollectDeferredFree) Collect(c *Ctx, out []Value) []Value {
	c.ensureScratch(64)
	h := c.th.Heap()
	h.AddNT(l.desc+fdActive, 1)
	cur := htm.NilAddr
	k := 0
	for {
		step := c.step()
		c.ensureScratch(k + step)
		var p htm.Addr
		var endReached bool
		got := 0
		err := c.th.TryAtomic(func(t *htm.Txn) {
			endReached = false
			got = 0
			if cur == htm.NilAddr {
				p = htm.Addr(t.Load(l.desc + fdHead))
			} else {
				p = htm.Addr(t.Load(cur + fdNext))
			}
			for visited := 0; visited < step; visited++ {
				if p == htm.NilAddr {
					endReached = true
					break
				}
				t.Store(c.scratch+htm.Addr(k+got), t.Load(p+fdVal))
				got++
				if visited+1 < step {
					p = htm.Addr(t.Load(p + fdNext))
				}
			}
		})
		if err != nil {
			c.feed(step, false, 0)
			continue
		}
		c.feed(step, true, got)
		k += got
		if endReached {
			break
		}
		cur = p
	}
	h.AddNT(l.desc+fdActive, ^uint64(0))
	l.tryDrain(c)
	return c.drainScratch(k, out)
}

// tryDrain frees the to-be-freed list if no Collect is in progress. Taking
// the chain and checking quiescence happen in one transaction, so a Collect
// that starts afterwards cannot reach the drained nodes (they are already
// unlinked from the main list).
func (l *FastCollectDeferredFree) tryDrain(c *Ctx) {
	var chain htm.Addr
	c.th.Atomic(func(t *htm.Txn) {
		chain = htm.NilAddr
		if t.Load(l.desc+fdActive) != 0 {
			return
		}
		chain = htm.Addr(t.Load(l.desc + fdTbfHead))
		if chain != htm.NilAddr {
			t.Store(l.desc+fdTbfHead, 0)
		}
	})
	h := c.th.Heap()
	for chain != htm.NilAddr {
		next := htm.Addr(h.LoadNT(chain + fdTbf))
		c.th.Free(chain)
		chain = next
	}
}

// PendingFree reports the current to-be-freed backlog (diagnostic).
func (l *FastCollectDeferredFree) PendingFree() int {
	h := l.h
	n := 0
	for p := htm.Addr(h.LoadNT(l.desc + fdTbfHead)); p != htm.NilAddr; p = htm.Addr(h.LoadNT(p + fdTbf)) {
		n++
	}
	return n
}
