package core

import (
	"repro/htm"
)

// dDest extends the Figure 2 descriptor with a destination index for
// compacting copies (used slots are packed to consecutive positions in the
// new array).
const (
	dDest           = descWords
	descWordsSearch = descWords + 1
)

// scanBatch bounds the number of source slots a single copy transaction
// examines while skipping free slots, keeping its read set small.
const scanBatch = 8

// ArrayDynSearchResize (§3.2) is a dynamic array with search-based
// registration and compaction only on resize. Between resizes the array
// accumulates holes, so Collect traverses the whole capacity rather than just
// the registered slots — the cost the paper observes in Figures 7 and 8.
// Slots move during resizes, so handles are slot references and Update needs
// a transactional indirection, like ArrayDynAppendDereg.
type ArrayDynSearchResize struct {
	h       *htm.Heap
	desc    htm.Addr
	minSize uint64
	opts    Options
}

var _ Collector = (*ArrayDynSearchResize)(nil)

// NewArrayDynSearchResize allocates the collect object on h; pass minSize 0
// for DefaultMinSize.
func NewArrayDynSearchResize(h *htm.Heap, minSize int, opts Options) *ArrayDynSearchResize {
	if minSize <= 0 {
		minSize = DefaultMinSize
	}
	th := h.NewThread()
	desc := th.Alloc(descWordsSearch)
	arr := th.Alloc(slotWords * minSize)
	h.StoreNT(desc+dArray, uint64(arr))
	h.StoreNT(desc+dCapacity, uint64(minSize))
	return &ArrayDynSearchResize{h: h, desc: desc, minSize: uint64(minSize), opts: opts.normalize(h)}
}

// Name implements Collector.
func (a *ArrayDynSearchResize) Name() string { return "Array Dyn Search Resize" }

// NewCtx implements Collector.
func (a *ArrayDynSearchResize) NewCtx(th *htm.Thread) *Ctx { return newCtx(th, a.opts) }

func (a *ArrayDynSearchResize) copying(t *htm.Txn) bool {
	return t.Load(a.desc+dArrayNew) != uint64(htm.NilAddr)
}

// Register implements Collector: search the array for a free slot (slotRef
// zero) and claim it; grow when the search fails.
func (a *ArrayDynSearchResize) Register(c *Ctx, v Value) Handle {
	ref := c.th.Alloc(1)
	for {
		act := actNothing
		var countL, capacityL uint64
		c.th.Atomic(func(t *htm.Txn) {
			act = actHelp
			if a.copying(t) {
				return
			}
			capacity := t.Load(a.desc + dCapacity)
			arr := htm.Addr(t.Load(a.desc + dArray))
			for i := uint64(0); i < capacity; i++ {
				s := arr + htm.Addr(slotWords*i)
				if t.Load(s+slotRef) == 0 {
					t.Store(s+slotVal, v)
					t.Store(s+slotRef, uint64(ref))
					t.Store(ref, uint64(s))
					t.Store(a.desc+dCount, t.Load(a.desc+dCount)+1)
					act = actDone
					return
				}
			}
			countL = t.Load(a.desc + dCount)
			capacityL = capacity
			act = actGrow
		})
		switch act {
		case actDone:
			return Handle(ref)
		case actGrow:
			a.attemptResize(c, countL, capacityL)
		case actHelp:
			a.helpCopy(c)
		}
	}
}

// Deregister implements Collector: clear the slot's reference pointer to mark
// it free; shrink via a compacting resize when occupancy falls to 25%.
func (a *ArrayDynSearchResize) Deregister(c *Ctx, h Handle) {
	ref := htm.Addr(h)
	for {
		act := actHelp
		var countL, capacityL uint64
		c.th.Atomic(func(t *htm.Txn) {
			act = actHelp
			countL = t.Load(a.desc + dCount)
			capacityL = t.Load(a.desc + dCapacity)
			switch {
			case countL*4 <= capacityL && countL*2 >= a.minSize:
				act = actShrink
			case !a.copying(t):
				slot := htm.Addr(t.Load(ref))
				t.Store(slot+slotRef, 0)
				t.Store(a.desc+dCount, countL-1)
				act = actDone
			}
		})
		switch act {
		case actDone:
			c.th.Free(ref)
			return
		case actShrink:
			a.attemptResize(c, countL, capacityL)
		case actHelp:
			a.helpCopy(c)
		}
	}
}

// Update implements Collector: transactional indirection through the slot
// reference (slots move on resize).
func (a *ArrayDynSearchResize) Update(c *Ctx, h Handle, v Value) {
	ref := htm.Addr(h)
	c.th.Atomic(func(t *htm.Txn) {
		slot := htm.Addr(t.Load(ref))
		t.Store(slot+slotVal, v)
	})
}

// Collect implements Collector: help any copy to completion, then scan the
// entire capacity in reverse, staging used slots' values transactionally.
func (a *ArrayDynSearchResize) Collect(c *Ctx, out []Value) []Value {
	a.helpCopy(c)
	h := c.th.Heap()
	i := int64(h.LoadNT(a.desc+dCapacity)) - 1
	c.ensureScratch(int(i + 1))
	k := 0
	for i >= 0 {
		step := c.step()
		ii := i
		got := 0
		err := c.th.TryAtomic(func(t *htm.Txn) {
			ii = i
			got = 0
			capacity := int64(t.Load(a.desc + dCapacity))
			if ii >= capacity {
				ii = capacity - 1
			}
			arr := htm.Addr(t.Load(a.desc + dArray))
			for s := 0; s < step && ii >= 0; s++ {
				slot := arr + htm.Addr(slotWords*ii)
				if t.Load(slot+slotRef) != 0 {
					t.Store(c.scratch+htm.Addr(k+got), t.Load(slot+slotVal))
					got++
				}
				ii--
			}
		})
		if err != nil {
			c.feed(step, false, 0)
			if isIllegal(err) {
				a.helpCopy(c)
			}
			continue
		}
		c.feed(step, true, got)
		i = ii
		k += got
	}
	return c.drainScratch(k, out)
}

// attemptResize installs a new array of 2*count slots unless the situation
// changed, then helps the copy.
func (a *ArrayDynSearchResize) attemptResize(c *Ctx, countL, capacityL uint64) {
	if countL == 0 {
		countL = a.minSize / 2
		if countL == 0 {
			countL = 1
		}
	}
	newCap := countL * 2
	if newCap < a.minSize {
		newCap = a.minSize
	}
	tmp := c.th.Alloc(int(slotWords * newCap))
	freeTmp := true
	c.th.Atomic(func(t *htm.Txn) {
		freeTmp = true
		if !a.copying(t) && t.Load(a.desc+dCount) == countL && t.Load(a.desc+dCapacity) == capacityL {
			t.Store(a.desc+dArrayNew, uint64(tmp))
			t.Store(a.desc+dCapacityNew, newCap)
			t.Store(a.desc+dCopied, 0)
			t.Store(a.desc+dDest, 0)
			freeTmp = false
		}
	})
	if freeTmp {
		c.th.Free(tmp)
	}
	a.helpCopy(c)
}

func (a *ArrayDynSearchResize) helpCopy(c *Ctx) {
	for a.h.LoadNT(a.desc+dArrayNew) != uint64(htm.NilAddr) {
		a.helpCopyOne(c)
	}
}

// helpCopyOne advances the compacting copy: skip free source slots (bounded
// batch), copy one used slot to the next destination position repointing its
// slot reference, or install the new array when the source is exhausted.
func (a *ArrayDynSearchResize) helpCopyOne(c *Ctx) {
	var toFree htm.Addr
	c.th.Atomic(func(t *htm.Txn) {
		toFree = htm.NilAddr
		if !a.copying(t) {
			return
		}
		src := t.Load(a.desc + dCopied)
		capacity := t.Load(a.desc + dCapacity)
		arr := htm.Addr(t.Load(a.desc + dArray))
		for n := 0; n < scanBatch && src < capacity; n++ {
			s := arr + htm.Addr(slotWords*src)
			r := t.Load(s + slotRef)
			if r == 0 {
				src++
				continue
			}
			dest := t.Load(a.desc + dDest)
			arrNew := htm.Addr(t.Load(a.desc + dArrayNew))
			d := arrNew + htm.Addr(slotWords*dest)
			t.Store(d+slotVal, t.Load(s+slotVal))
			t.Store(d+slotRef, r)
			t.Store(htm.Addr(r), uint64(d))
			t.Store(a.desc+dDest, dest+1)
			src++
			break
		}
		t.Store(a.desc+dCopied, src)
		if src >= capacity {
			toFree = arr
			t.Store(a.desc+dArray, t.Load(a.desc+dArrayNew))
			t.Store(a.desc+dCapacity, t.Load(a.desc+dCapacityNew))
			t.Store(a.desc+dArrayNew, uint64(htm.NilAddr))
		}
	})
	if toFree != htm.NilAddr {
		c.th.Free(toFree)
	}
}

// Registered returns the number of registered handles (diagnostic).
func (a *ArrayDynSearchResize) Registered() int { return int(a.h.LoadNT(a.desc + dCount)) }

// Capacity returns the current array capacity in slots (diagnostic).
func (a *ArrayDynSearchResize) Capacity() int { return int(a.h.LoadNT(a.desc + dCapacity)) }
