package core

import (
	"repro/htm"
)

// Handle block layout for the update-optimized variant: the value lives with
// the slot reference, outside the array.
const (
	uVal = iota
	uSlot
	updHandleWords
)

// ArrayDynAppendDeregUpdOpt is the variant of ArrayDynAppendDereg that §4.1
// describes but the authors did not implement: the value associated with a
// handle is stored together with the slot reference rather than in the array
// slot. Slot references never move, so Update is a naked store (the fast,
// ~135ns class) even though array slots are compacted and resized freely.
// The cost moves to Collect, which must dereference each array slot's pointer
// transactionally to reach the value — one extra transactional load per
// element.
//
// Array slots hold only the pointer to the handle block (one word of payload;
// the slot's second word keeps the back-pointer symmetry of Figure 2 so the
// resize/compaction machinery is shared).
type ArrayDynAppendDeregUpdOpt struct {
	h       *htm.Heap
	desc    htm.Addr
	minSize uint64
	opts    Options
}

var _ Collector = (*ArrayDynAppendDeregUpdOpt)(nil)

// NewArrayDynAppendDeregUpdOpt allocates the collect object on h; pass
// minSize 0 for DefaultMinSize.
func NewArrayDynAppendDeregUpdOpt(h *htm.Heap, minSize int, opts Options) *ArrayDynAppendDeregUpdOpt {
	if minSize <= 0 {
		minSize = DefaultMinSize
	}
	th := h.NewThread()
	desc := th.Alloc(descWords)
	arr := th.Alloc(slotWords * minSize)
	h.StoreNT(desc+dArray, uint64(arr))
	h.StoreNT(desc+dCapacity, uint64(minSize))
	return &ArrayDynAppendDeregUpdOpt{h: h, desc: desc, minSize: uint64(minSize), opts: opts.normalize(h)}
}

// Name implements Collector.
func (a *ArrayDynAppendDeregUpdOpt) Name() string { return "Array Dyn Append Dereg (upd-opt)" }

// NewCtx implements Collector.
func (a *ArrayDynAppendDeregUpdOpt) NewCtx(th *htm.Thread) *Ctx { return newCtx(th, a.opts) }

func (a *ArrayDynAppendDeregUpdOpt) copying(t *htm.Txn) bool {
	return t.Load(a.desc+dArrayNew) != uint64(htm.NilAddr)
}

// Register implements Collector: the handle block {value, slot pointer} is
// allocated outside the transaction; the array slot stores a pointer to it.
func (a *ArrayDynAppendDeregUpdOpt) Register(c *Ctx, v Value) Handle {
	hb := c.th.Alloc(updHandleWords)
	c.th.Heap().StoreNT(hb+uVal, v) // unpublished; plain init
	for {
		act := actNothing
		var countL uint64
		c.th.Atomic(func(t *htm.Txn) {
			act = actNothing
			count := t.Load(a.desc + dCount)
			if !a.copying(t) {
				if count < t.Load(a.desc+dCapacity) {
					a.appendSlot(t, hb, count)
					act = actDone
				} else {
					countL = count
					act = actGrow
				}
			} else {
				if count < t.Load(a.desc+dCapacity) && count < t.Load(a.desc+dCapacityNew) {
					a.appendSlot(t, hb, count)
					act = actDone
				} else {
					act = actHelp
				}
			}
		})
		switch act {
		case actDone:
			return Handle(hb)
		case actGrow:
			a.attemptResize(c, countL, countL)
		case actHelp:
			a.helpCopy(c)
		}
	}
}

func (a *ArrayDynAppendDeregUpdOpt) appendSlot(t *htm.Txn, hb htm.Addr, count uint64) {
	arr := htm.Addr(t.Load(a.desc + dArray))
	slot := arr + htm.Addr(slotWords*count)
	t.Store(slot+slotVal, uint64(hb)) // the slot points at the handle block
	t.Store(slot+slotRef, uint64(hb))
	t.Store(hb+uSlot, uint64(slot))
	t.Store(a.desc+dCount, count+1)
}

// Update implements Collector with a naked store: the handle block never
// moves, which is the entire point of this variant (§4.1).
func (a *ArrayDynAppendDeregUpdOpt) Update(c *Ctx, h Handle, v Value) {
	c.th.Heap().StoreNT(htm.Addr(h)+uVal, v)
}

// Deregister implements Collector: move the last slot's pointer into the
// vacated slot, repoint that handle block, free this handle block.
func (a *ArrayDynAppendDeregUpdOpt) Deregister(c *Ctx, h Handle) {
	hb := htm.Addr(h)
	for {
		act := actHelp
		var countL, capacityL uint64
		c.th.Atomic(func(t *htm.Txn) {
			act = actHelp
			countL = t.Load(a.desc + dCount)
			capacityL = t.Load(a.desc + dCapacity)
			switch {
			case countL*4 == capacityL && countL*2 >= a.minSize:
				act = actShrink
			case !a.copying(t):
				count := countL - 1
				t.Store(a.desc+dCount, count)
				arr := htm.Addr(t.Load(a.desc + dArray))
				last := arr + htm.Addr(slotWords*count)
				mine := htm.Addr(t.Load(hb + uSlot))
				moved := t.Load(last + slotVal) // handle block of the moved slot
				t.Store(mine+slotVal, moved)
				t.Store(mine+slotRef, moved)
				t.Store(htm.Addr(moved)+uSlot, uint64(mine))
				act = actDone
			}
		})
		switch act {
		case actDone:
			c.th.Free(hb)
			return
		case actShrink:
			a.attemptResize(c, countL, capacityL)
		case actHelp:
			a.helpCopy(c)
		}
	}
}

// Collect implements Collector: as in Figure 2, but each element costs two
// transactional loads — slot → handle block → value (the Collect-side price
// of naked Updates).
func (a *ArrayDynAppendDeregUpdOpt) Collect(c *Ctx, out []Value) []Value {
	a.helpCopy(c)
	h := c.th.Heap()
	i := int64(h.LoadNT(a.desc+dCount)) - 1
	c.ensureScratch(int(i + 1))
	k := 0
	for i >= 0 {
		step := c.step()
		ii := i
		got := 0
		err := c.th.TryAtomic(func(t *htm.Txn) {
			ii = i
			got = 0
			count := int64(t.Load(a.desc + dCount))
			if ii >= count {
				ii = count - 1
			}
			arr := htm.Addr(t.Load(a.desc + dArray))
			for s := 0; s < step && ii >= 0; s++ {
				hb := htm.Addr(t.Load(arr + htm.Addr(slotWords*ii) + slotVal))
				t.Store(c.scratch+htm.Addr(k+got), t.Load(hb+uVal))
				ii--
				got++
			}
		})
		if err != nil {
			c.feed(step, false, 0)
			if isIllegal(err) {
				a.helpCopy(c)
			}
			continue
		}
		c.feed(step, true, got)
		i = ii
		k += got
	}
	return c.drainScratch(k, out)
}

func (a *ArrayDynAppendDeregUpdOpt) attemptResize(c *Ctx, countL, capacityL uint64) {
	if countL == 0 {
		return
	}
	tmp := c.th.Alloc(int(slotWords * countL * 2))
	freeTmp := true
	c.th.Atomic(func(t *htm.Txn) {
		freeTmp = true
		if !a.copying(t) && t.Load(a.desc+dCount) == countL && t.Load(a.desc+dCapacity) == capacityL {
			t.Store(a.desc+dArrayNew, uint64(tmp))
			t.Store(a.desc+dCapacityNew, countL*2)
			t.Store(a.desc+dCopied, 0)
			freeTmp = false
		}
	})
	if freeTmp {
		c.th.Free(tmp)
	}
	a.helpCopy(c)
}

func (a *ArrayDynAppendDeregUpdOpt) helpCopy(c *Ctx) {
	for a.h.LoadNT(a.desc+dArrayNew) != uint64(htm.NilAddr) {
		a.helpCopyOne(c)
	}
}

func (a *ArrayDynAppendDeregUpdOpt) helpCopyOne(c *Ctx) {
	var toFree htm.Addr
	c.th.Atomic(func(t *htm.Txn) {
		toFree = htm.NilAddr
		if !a.copying(t) {
			return
		}
		copied := t.Load(a.desc + dCopied)
		count := t.Load(a.desc + dCount)
		if copied < count {
			arr := htm.Addr(t.Load(a.desc + dArray))
			arrNew := htm.Addr(t.Load(a.desc + dArrayNew))
			src := arr + htm.Addr(slotWords*copied)
			dst := arrNew + htm.Addr(slotWords*copied)
			hb := t.Load(src + slotVal)
			t.Store(dst+slotVal, hb)
			t.Store(dst+slotRef, hb)
			t.Store(htm.Addr(hb)+uSlot, uint64(dst))
			t.Store(a.desc+dCopied, copied+1)
		} else {
			toFree = htm.Addr(t.Load(a.desc + dArray))
			t.Store(a.desc+dArray, t.Load(a.desc+dArrayNew))
			t.Store(a.desc+dCapacity, t.Load(a.desc+dCapacityNew))
			t.Store(a.desc+dArrayNew, uint64(htm.NilAddr))
		}
	})
	if toFree != htm.NilAddr {
		c.th.Free(toFree)
	}
}

// Registered returns the current number of registered handles (diagnostic).
func (a *ArrayDynAppendDeregUpdOpt) Registered() int { return int(a.h.LoadNT(a.desc + dCount)) }
