package adapt

import (
	"sync"
	"testing"
	"testing/quick"
)

// The Knob tests mirror the Controller suite: same window mechanics, same
// clamping rules, plus the atomic-publication and Set semantics the Knob adds.

func TestNewKnobClamps(t *testing.T) {
	tests := []struct {
		name                       string
		min, max, initial          int
		wantMin, wantMax, wantInit int
	}{
		{"normal", 1, 32, 8, 1, 32, 8},
		{"initial below min", 4, 32, 1, 4, 32, 4},
		{"initial above max", 1, 16, 64, 1, 16, 16},
		{"min below one", -3, 8, 2, 1, 8, 2},
		{"max below min", 8, 2, 8, 8, 8, 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			k := NewKnob(tt.min, tt.max, tt.initial)
			if k.Min() != tt.wantMin || k.Max() != tt.wantMax || k.Value() != tt.wantInit {
				t.Errorf("got (min=%d max=%d value=%d), want (%d %d %d)",
					k.Min(), k.Max(), k.Value(), tt.wantMin, tt.wantMax, tt.wantInit)
			}
		})
	}
}

func TestKnobGrowAfterSevenUps(t *testing.T) {
	k := NewKnob(1, 32, 4)
	for i := 0; i < 6; i++ {
		if k.RecordUp() {
			t.Fatalf("value changed after only %d up-votes", i+1)
		}
	}
	if !k.RecordUp() { // diff reaches 7 > 6
		t.Fatal("7th straight up-vote did not resize")
	}
	if k.Value() != 8 {
		t.Errorf("value = %d after 7 straight up-votes, want 8", k.Value())
	}
	if k.Window() != 0 {
		t.Errorf("window not reset after resize: %d", k.Window())
	}
}

func TestKnobShrinkAfterDowns(t *testing.T) {
	k := NewKnob(1, 32, 16)
	k.RecordDown() // diff -1
	k.RecordDown() // diff -2
	if k.Value() != 16 {
		t.Fatalf("value changed too early: %d", k.Value())
	}
	if !k.RecordDown() { // diff -3 < -2
		t.Fatal("3rd straight down-vote did not resize")
	}
	if k.Value() != 8 {
		t.Errorf("value = %d after 3 straight down-votes, want 8", k.Value())
	}
}

func TestKnobBoundedByMinMax(t *testing.T) {
	k := NewKnob(2, 32, 32)
	for i := 0; i < 100; i++ {
		k.RecordUp()
	}
	if k.Value() != 32 {
		t.Errorf("value = %d, want capped at 32", k.Value())
	}
	for i := 0; i < 100; i++ {
		k.RecordDown()
	}
	if k.Value() != 2 {
		t.Errorf("value = %d, want floored at 2", k.Value())
	}
}

func TestKnobWindowAgesAtExactlyWindowSize(t *testing.T) {
	// Same boundary as the Controller test: the (windowSize+1)-th vote ages
	// out the oldest vote, so a down-vote after a balanced full window moves
	// the difference by −2 and the window stays pinned at windowSize.
	k := NewKnob(1, 32, 8)
	for i := 0; i < windowSize/2; i++ {
		k.RecordUp()
	}
	for i := 0; i < windowSize/2; i++ {
		k.RecordDown()
	}
	if k.Window() != windowSize || k.Diff() != 0 {
		t.Fatalf("after %d mixed votes: window=%d diff=%d, want %d and 0",
			windowSize, k.Window(), k.Diff(), windowSize)
	}
	k.RecordDown()
	if k.Window() != windowSize {
		t.Errorf("window = %d after aging, want pinned at %d", k.Window(), windowSize)
	}
	if k.Diff() != -2 {
		t.Errorf("diff = %d after aging out an up-vote, want -2", k.Diff())
	}
	if k.Value() != 8 {
		t.Errorf("value = %d, want unchanged 8 (diff -2 is not < -2)", k.Value())
	}
}

func TestKnobResetOnResize(t *testing.T) {
	grow := NewKnob(1, 32, 4)
	for grow.Value() == 4 {
		grow.RecordUp()
	}
	if grow.Window() != 0 || grow.Diff() != 0 {
		t.Errorf("grow resize kept window=%d diff=%d, want 0,0", grow.Window(), grow.Diff())
	}
	shrink := NewKnob(1, 32, 16)
	for shrink.Value() == 16 {
		shrink.RecordDown()
	}
	if shrink.Window() != 0 || shrink.Diff() != 0 {
		t.Errorf("shrink resize kept window=%d diff=%d, want 0,0", shrink.Window(), shrink.Diff())
	}
}

func TestKnobSetClampsAndResets(t *testing.T) {
	k := NewKnob(2, 32, 8)
	k.RecordUp()
	k.RecordUp()
	k.Set(64)
	if k.Value() != 32 {
		t.Errorf("Set(64) → %d, want clamped to 32", k.Value())
	}
	if k.Window() != 0 || k.Diff() != 0 {
		t.Errorf("Set kept window=%d diff=%d, want 0,0", k.Window(), k.Diff())
	}
	k.Set(1)
	if k.Value() != 2 {
		t.Errorf("Set(1) → %d, want clamped to 2", k.Value())
	}
}

func TestKnobConcurrentReaders(t *testing.T) {
	// Value must be safe to read while the tuning goroutine votes; run under
	// -race to verify the publication is properly atomic.
	k := NewKnob(1, 1024, 8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v := k.Value(); v < 1 || v > 1024 {
					t.Errorf("Value() = %d out of bounds", v)
					return
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		if i%3 == 0 {
			k.RecordDown()
		} else {
			k.RecordUp()
		}
	}
	close(stop)
	wg.Wait()
}

func TestQuickKnobAlwaysInBounds(t *testing.T) {
	f := func(votes []bool) bool {
		k := NewKnob(1, 32, 8)
		for _, up := range votes {
			if up {
				k.RecordUp()
			} else {
				k.RecordDown()
			}
			if k.Value() < 1 || k.Value() > 32 {
				return false
			}
			if k.Diff() < -windowSize || k.Diff() > windowSize {
				return false
			}
			if k.Window() > windowSize {
				return false
			}
			v := k.Value()
			if v&(v-1) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
