package adapt

import "sync/atomic"

// Knob generalizes the telescoping Controller into a self-tuning integer
// knob: a power-of-two-stepped value constrained to [min, max], driven by
// up/down votes through the same 8-outcome window the paper uses for step
// sizes. A sustained majority of up-votes doubles the value; a sustained
// majority of down-votes halves it; the window resets on every resize so only
// evidence gathered at the current value counts.
//
// The current value is published through an atomic, so any goroutine may call
// Value concurrently with the (single) tuning goroutine calling RecordUp /
// RecordDown / Set.
type Knob struct {
	val atomic.Int64

	min int
	max int
	win outcomeWindow
}

// NewKnob returns a knob constrained to [min, max] starting at initial.
// Arguments are clamped into a sane order, exactly like NewController.
func NewKnob(min, max, initial int) *Knob {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if initial < min {
		initial = min
	}
	if initial > max {
		initial = max
	}
	k := &Knob{min: min, max: max}
	k.val.Store(int64(initial))
	return k
}

// Value returns the current knob value. Safe for concurrent use.
func (k *Knob) Value() int { return int(k.val.Load()) }

// Min and Max expose the knob's bounds.
func (k *Knob) Min() int { return k.min }
func (k *Knob) Max() int { return k.max }

// Set forces the knob to v (clamped into [min, max]) and resets the outcome
// window, since accumulated evidence concerned the previous value. Only the
// tuning goroutine may call Set.
func (k *Knob) Set(v int) {
	if v < k.min {
		v = k.min
	}
	if v > k.max {
		v = k.max
	}
	k.val.Store(int64(v))
	k.win.reset()
}

// RecordUp feeds an "increase" vote. When the windowed up−down difference
// exceeds the grow threshold the value doubles (clamped to max) and the
// window resets. Reports whether the value changed.
func (k *Knob) RecordUp() bool {
	k.win.record(true)
	v := int(k.val.Load())
	if k.win.diff > growThreshold && v < k.max {
		v *= 2
		if v > k.max {
			v = k.max
		}
		k.val.Store(int64(v))
		k.win.reset()
		return true
	}
	return false
}

// RecordDown feeds a "decrease" vote. When the windowed up−down difference
// drops below the shrink threshold the value halves (clamped to min) and the
// window resets. Reports whether the value changed.
func (k *Knob) RecordDown() bool {
	k.win.record(false)
	v := int(k.val.Load())
	if k.win.diff < shrinkThresold && v > k.min {
		v /= 2
		if v < k.min {
			v = k.min
		}
		k.val.Store(int64(v))
		k.win.reset()
		return true
	}
	return false
}

// Diff exposes the current up−down difference for tests and diagnostics.
func (k *Knob) Diff() int { return k.win.diff }

// Window exposes how many outcomes are currently considered.
func (k *Knob) Window() int { return k.win.filled }
