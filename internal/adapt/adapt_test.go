package adapt

import (
	"testing"
	"testing/quick"
)

func TestNewControllerClamps(t *testing.T) {
	tests := []struct {
		name                       string
		min, max, initial          int
		wantMin, wantMax, wantInit int
	}{
		{"normal", 1, 32, 8, 1, 32, 8},
		{"initial below min", 4, 32, 1, 4, 32, 4},
		{"initial above max", 1, 16, 64, 1, 16, 16},
		{"min below one", -3, 8, 2, 1, 8, 2},
		{"max below min", 8, 2, 8, 8, 8, 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewController(tt.min, tt.max, tt.initial)
			if c.min != tt.wantMin || c.max != tt.wantMax || c.step != tt.wantInit {
				t.Errorf("got (min=%d max=%d step=%d), want (%d %d %d)",
					c.min, c.max, c.step, tt.wantMin, tt.wantMax, tt.wantInit)
			}
		})
	}
}

func TestGrowAfterSevenCommits(t *testing.T) {
	c := NewController(1, 32, 4)
	for i := 0; i < 6; i++ {
		c.RecordCommit()
		if c.Step() != 4 {
			t.Fatalf("step changed to %d after only %d commits", c.Step(), i+1)
		}
	}
	c.RecordCommit() // diff reaches 7 > 6
	if c.Step() != 8 {
		t.Errorf("step = %d after 7 straight commits, want 8", c.Step())
	}
	if c.Window() != 0 {
		t.Errorf("window not reset after resize: %d", c.Window())
	}
}

func TestShrinkAfterAborts(t *testing.T) {
	c := NewController(1, 32, 16)
	c.RecordAbort() // diff -1
	c.RecordAbort() // diff -2
	if c.Step() != 16 {
		t.Fatalf("step changed too early: %d", c.Step())
	}
	c.RecordAbort() // diff -3 < -2
	if c.Step() != 8 {
		t.Errorf("step = %d after 3 straight aborts, want 8", c.Step())
	}
}

func TestStepBoundedByMax(t *testing.T) {
	c := NewController(1, 32, 32)
	for i := 0; i < 100; i++ {
		c.RecordCommit()
	}
	if c.Step() != 32 {
		t.Errorf("step = %d, want capped at 32", c.Step())
	}
}

func TestStepBoundedByMin(t *testing.T) {
	c := NewController(2, 32, 2)
	for i := 0; i < 100; i++ {
		c.RecordAbort()
	}
	if c.Step() != 2 {
		t.Errorf("step = %d, want floored at 2", c.Step())
	}
}

func TestMixedOutcomesHoldSteady(t *testing.T) {
	// Alternating commit/abort keeps the difference counter near zero, so
	// the step should not change.
	c := NewController(1, 32, 8)
	for i := 0; i < 50; i++ {
		c.RecordCommit()
		c.RecordAbort()
	}
	if c.Step() != 8 {
		t.Errorf("step drifted to %d under alternating outcomes", c.Step())
	}
}

func TestWindowAgesOut(t *testing.T) {
	// 8 commits would trigger growth at the 7th; instead interleave one
	// abort early, then commits: the abort ages out of the 8-slot window and
	// growth eventually triggers.
	c := NewController(1, 32, 4)
	c.RecordAbort()
	for i := 0; i < 20 && c.Step() == 4; i++ {
		c.RecordCommit()
	}
	if c.Step() != 8 {
		t.Errorf("step = %d; an early abort should age out and allow growth", c.Step())
	}
}

func TestWindowAgesAtExactlyWindowSize(t *testing.T) {
	// Fill the window with exactly windowSize outcomes: 4 commits then 4
	// aborts (diff 0). The (windowSize+1)-th outcome must age out the oldest
	// recorded outcome — a commit — so one more abort moves the difference by
	// −2 (aged-out commit plus the new abort), not −1, and the window stays
	// pinned at windowSize entries.
	c := NewController(1, 32, 8)
	for i := 0; i < windowSize/2; i++ {
		c.RecordCommit()
	}
	for i := 0; i < windowSize/2; i++ {
		c.RecordAbort()
	}
	if c.Window() != windowSize || c.Diff() != 0 {
		t.Fatalf("after %d mixed outcomes: window=%d diff=%d, want %d and 0",
			windowSize, c.Window(), c.Diff(), windowSize)
	}
	c.RecordAbort()
	if c.Window() != windowSize {
		t.Errorf("window = %d after aging, want pinned at %d", c.Window(), windowSize)
	}
	if c.Diff() != -2 {
		t.Errorf("diff = %d after aging out a commit, want -2", c.Diff())
	}
	if c.Step() != 8 {
		t.Errorf("step = %d, want unchanged 8 (diff -2 is not < -2)", c.Step())
	}
}

func TestResetOnResize(t *testing.T) {
	// Both resize directions must clear the window: only attempts since the
	// last resize are relevant (§3.4).
	grow := NewController(1, 32, 4)
	for grow.Step() == 4 {
		grow.RecordCommit()
	}
	if grow.Window() != 0 || grow.Diff() != 0 {
		t.Errorf("grow resize kept window=%d diff=%d, want 0,0", grow.Window(), grow.Diff())
	}
	shrink := NewController(1, 32, 16)
	for shrink.Step() == 16 {
		shrink.RecordAbort()
	}
	if shrink.Window() != 0 || shrink.Diff() != 0 {
		t.Errorf("shrink resize kept window=%d diff=%d, want 0,0", shrink.Window(), shrink.Diff())
	}
}

func TestDiffTracksWindow(t *testing.T) {
	c := NewController(1, 64, 16)
	c.RecordCommit()
	c.RecordCommit()
	c.RecordAbort()
	if c.Diff() != 1 {
		t.Errorf("diff = %d, want 1", c.Diff())
	}
	if c.Window() != 3 {
		t.Errorf("window = %d, want 3", c.Window())
	}
}

func TestQuickStepAlwaysInBounds(t *testing.T) {
	f := func(outcomes []bool) bool {
		c := NewController(1, 32, 8)
		for _, commit := range outcomes {
			if commit {
				c.RecordCommit()
			} else {
				c.RecordAbort()
			}
			if c.Step() < 1 || c.Step() > 32 {
				return false
			}
			if c.Diff() < -windowSize || c.Diff() > windowSize {
				return false
			}
			if c.Window() > windowSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStepIsPowerOfTwoTimesInitial(t *testing.T) {
	// Starting from a power of two with power-of-two bounds, the step stays
	// a power of two.
	f := func(outcomes []bool) bool {
		c := NewController(1, 32, 8)
		for _, commit := range outcomes {
			if commit {
				c.RecordCommit()
			} else {
				c.RecordAbort()
			}
			s := c.Step()
			if s&(s-1) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
