// Package adapt implements the paper's adaptive telescoping step-size
// mechanism (§3.4).
//
// Telescoping executes several traversal steps of a Collect inside one
// hardware transaction, amortizing the fixed cost of starting and committing
// a transaction. Larger steps amortize better but abort more under
// contention. The controller tracks the outcome of the most recent 8
// transaction attempts in a bit vector and maintains the difference between
// commits and aborts among them: if the difference exceeds +6 after a commit
// the step size doubles; if it drops below −2 after an abort the step size
// halves. To avoid excessive resizing, only attempts since the last resize
// are considered (the window is cleared whenever the step changes).
package adapt

// Paper-determined thresholds and window size (§3.4).
const (
	windowSize     = 8
	growThreshold  = 6  // double the step when counter exceeds this after a commit
	shrinkThresold = -2 // halve the step when counter drops below this after an abort
)

// outcomeWindow is the paper's 8-attempt outcome tracker, shared by the
// telescoping Controller and the generalized Knob: a bit vector of the most
// recent attempt outcomes and the running good−bad difference over them.
type outcomeWindow struct {
	window uint8 // bit i set = i-th most recent attempt was good
	filled int   // number of valid bits in window (≤ 8)
	diff   int   // good − bad over the window
}

// record pushes an outcome into the window and updates the difference, aging
// out the oldest outcome when full.
func (w *outcomeWindow) record(good bool) {
	if w.filled == windowSize {
		if w.window&(1<<(windowSize-1)) != 0 {
			w.diff--
		} else {
			w.diff++
		}
	} else {
		w.filled++
	}
	w.window <<= 1
	if good {
		w.window |= 1
		w.diff++
	} else {
		w.diff--
	}
}

// reset clears the window, as required after each resize ("only transaction
// attempts since the last resize are relevant").
func (w *outcomeWindow) reset() {
	w.window = 0
	w.filled = 0
	w.diff = 0
}

// Controller adapts a telescoping step size to transaction abort feedback.
// It is not safe for concurrent use; each collecting thread owns one.
type Controller struct {
	step int
	min  int
	max  int

	win outcomeWindow
}

// NewController returns a controller constrained to [min, max] starting at
// initial. Arguments are clamped into a sane order; the paper uses min 1 and
// max 32 (Rock's store buffer size).
func NewController(min, max, initial int) *Controller {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if initial < min {
		initial = min
	}
	if initial > max {
		initial = max
	}
	return &Controller{step: initial, min: min, max: max}
}

// Step returns the step size to use for the next transaction attempt.
func (c *Controller) Step() int { return c.step }

// RecordCommit feeds a committed attempt into the controller, possibly
// doubling the step size.
func (c *Controller) RecordCommit() {
	c.win.record(true)
	if c.win.diff > growThreshold && c.step < c.max {
		c.step *= 2
		if c.step > c.max {
			c.step = c.max
		}
		c.win.reset()
	}
}

// RecordAbort feeds an aborted attempt into the controller, possibly halving
// the step size.
func (c *Controller) RecordAbort() {
	c.win.record(false)
	if c.win.diff < shrinkThresold && c.step > c.min {
		c.step /= 2
		if c.step < c.min {
			c.step = c.min
		}
		c.win.reset()
	}
}

// Diff exposes the current commit−abort difference for tests and
// diagnostics.
func (c *Controller) Diff() int { return c.win.diff }

// Window exposes how many outcomes are currently considered.
func (c *Controller) Window() int { return c.win.filled }
