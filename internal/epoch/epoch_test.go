package epoch

import (
	"sync"
	"testing"

	"repro/htm"
)

func TestAcquireReusesReleasedRecords(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 16})
	d := NewDomain(h)
	th := h.NewThread()
	r1 := d.Acquire(th)
	if d.Records() != 1 {
		t.Fatalf("records = %d, want 1", d.Records())
	}
	r1.Release()
	r2 := d.Acquire(th)
	if d.Records() != 1 {
		t.Errorf("released record not reused: %d records", d.Records())
	}
	if r2.addr != r1.addr {
		t.Errorf("expected record reuse, got %v vs %v", r2.addr, r1.addr)
	}
	r2.Release()
}

func TestRecordsGrowToConcurrentMax(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 16})
	d := NewDomain(h)
	th := h.NewThread()
	var recs []*Record
	for i := 0; i < 8; i++ {
		recs = append(recs, d.Acquire(th))
	}
	if d.Records() != 8 {
		t.Fatalf("records = %d, want 8", d.Records())
	}
	for _, r := range recs {
		r.Release()
	}
	// Historical maximum persists — the same space property as hazard
	// records (§1.2).
	if d.Records() != 8 {
		t.Errorf("records = %d after release, want 8 (historical max)", d.Records())
	}
}

// TestPinBlocksAdvance checks the advance rule: a thread pinned at the
// current epoch permits exactly one advance, then blocks further ones until
// it unpins or re-pins.
func TestPinBlocksAdvance(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 16})
	d := NewDomain(h)
	th := h.NewThread()
	r := d.Acquire(th)

	r.Pin()
	e := d.Epoch()
	if !d.TryAdvance() {
		t.Fatal("thread pinned at the current epoch must not block the first advance")
	}
	if got := d.Epoch(); got != e+1 {
		t.Fatalf("epoch = %d, want %d", got, e+1)
	}
	if d.TryAdvance() {
		t.Fatal("thread pinned one epoch behind must block the advance")
	}
	r.Unpin()
	if !d.TryAdvance() {
		t.Fatal("advance must succeed once the lagging thread unpins")
	}
	r.Release()
}

// TestRetireFreeOrdering checks the grace period: a retired block stays in
// limbo while any thread is pinned at an epoch that could still reference
// it, and is freed only after two advances past its retirement epoch.
func TestRetireFreeOrdering(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 16})
	d := NewDomain(h)
	th := h.NewThread()
	owner := d.Acquire(th)
	guard := d.Acquire(th)

	guard.Pin()
	blk := th.Alloc(2)
	h.StoreNT(blk, 42)
	owner.Retire(blk)
	for i := 0; i < 10; i++ {
		owner.Collect()
	}
	// Still guarded: the epoch cannot advance past guard's pin, so the
	// block must still be live and in limbo.
	if v := h.LoadNT(blk); v != 42 {
		t.Fatalf("guarded block damaged: %d", v)
	}
	if owner.RetiredLen() != 1 {
		t.Fatalf("retired len = %d, want 1", owner.RetiredLen())
	}
	guard.Unpin()
	live := h.Stats().LiveWords
	for i := 0; i < 4 && owner.RetiredLen() > 0; i++ {
		owner.Collect()
	}
	if owner.RetiredLen() != 0 {
		t.Errorf("block not freed after guard unpinned")
	}
	if got := h.Stats().LiveWords; got != live-2 {
		t.Errorf("live words = %d, want %d (block freed)", got, live-2)
	}
	guard.Release()
	owner.Release()
}

// TestRetireTriggersCollectAtThreshold checks the amortization: reaching the
// limbo threshold runs a collect, which advances the epoch, and a Release
// drains everything back to the baseline footprint.
func TestRetireTriggersCollectAtThreshold(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 16})
	d := NewDomain(h)
	th := h.NewThread()
	r := d.Acquire(th)
	live := h.Stats().LiveWords
	e := d.Epoch()
	for i := 0; i < r.collectThreshold; i++ {
		r.Retire(th.Alloc(1))
	}
	if d.Epoch() == e {
		t.Error("reaching the threshold did not attempt an epoch advance")
	}
	r.Release()
	if r.RetiredLen() != 0 {
		t.Errorf("retired backlog = %d after release", r.RetiredLen())
	}
	if got := h.Stats().LiveWords; got != live {
		t.Errorf("live words = %d, want %d (all retired blocks freed)", got, live)
	}
}

// TestPinUnpinCycleReclaims models the steady state: a mutator that pins
// around each operation lets its own retirements drain without an explicit
// Release, two epochs behind.
func TestPinUnpinCycleReclaims(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 16})
	d := NewDomain(h)
	th := h.NewThread()
	r := d.Acquire(th)
	live := h.Stats().LiveWords
	for i := 0; i < 4*r.collectThreshold; i++ {
		r.Pin()
		r.Retire(th.Alloc(1))
		r.Unpin()
	}
	r.Release()
	if got := h.Stats().LiveWords; got != live {
		t.Errorf("live words = %d, want %d", got, live)
	}
}

// TestConcurrentPinRetire is the safety stress: readers chase a published
// pointer inside pinned regions while a writer swaps and retires blocks. The
// simulated heap panics on any access to freed memory, so a premature free
// fails loudly; torn reads would mean the grace period is broken.
func TestConcurrentPinRetire(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	d := NewDomain(h)
	setup := h.NewThread()
	ptr := setup.Alloc(1)
	blk := setup.Alloc(2)
	h.StoreNT(blk, 7)
	h.StoreNT(blk+1, 7)
	h.StoreNT(ptr, uint64(blk))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := h.NewThread()
		w := d.Acquire(th)
		for i := uint64(8); ; i++ {
			select {
			case <-stop:
				w.Release()
				return
			default:
			}
			nb := th.Alloc(2)
			h.StoreNT(nb, i)
			h.StoreNT(nb+1, i)
			old := htm.Addr(h.LoadNT(ptr))
			h.StoreNT(ptr, uint64(nb))
			w.Retire(old)
		}
	}()
	var rwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			th := h.NewThread()
			r := d.Acquire(th)
			defer r.Release()
			for n := 0; n < 5000; n++ {
				r.Pin()
				b := htm.Addr(h.LoadNT(ptr))
				x := h.LoadNT(b)
				y := h.LoadNT(b + 1)
				if x != y {
					t.Errorf("torn read inside pinned region: %d vs %d", x, y)
				}
				r.Unpin()
			}
		}()
	}
	rwg.Wait()
	close(stop)
	wg.Wait()
}
