// Package epoch implements epoch-based safe memory reclamation (EBR, Fraser
// [2004]; also quiescent-state-based reclamation) over the simulated heap.
//
// EBR is the third standard point in the reclamation design space the paper's
// Figure 1 compares implicitly: HTM frees immediately, hazard pointers (ROP,
// package hazard) pay an announce/validate on every shared load, and EBR pays
// a single announcement per *operation* — a thread pins the global epoch on
// entry and unpins on exit, and retired blocks are only freed once every
// pinned thread has observed a newer epoch. Per-load overhead is zero, but a
// single stalled pinned thread delays all reclamation, so the quiescent
// memory bound is weaker than with hazard pointers.
//
// The API mirrors package hazard (Domain/Record, Retire, a collect step) so
// the queue harness can treat both mechanisms uniformly. Epoch records live
// in the simulated heap, so their space — proportional to the historical
// maximum number of participating threads, like hazard records — shows up in
// the heap's live-word accounting.
//
// Grace-period rule: a block retired while the global epoch reads e may be
// freed once the global epoch reaches e+2. Advancing from e to e+1 requires
// every pinned thread to have observed e, so by e+2 every thread that could
// have held a reference from epoch e has unpinned at least once.
package epoch

import (
	"runtime"

	"repro/htm"
)

// Epoch record layout in the simulated heap: link to the next record, an
// active flag, and the thread's local epoch (0 = not pinned).
const (
	rNext = iota
	rActive
	rEpoch
	rRecWords
)

// firstEpoch is the initial global epoch. It must be nonzero: a record's
// local epoch of 0 means "not pinned".
const firstEpoch = 1

// defaultCollectThreshold is the limbo-list length that triggers an
// amortized advance-and-collect from Retire.
const defaultCollectThreshold = 32

// Domain is a reclamation domain: the global epoch counter plus a lock-free
// list of per-thread epoch records. All pointers it manages are heap
// addresses.
type Domain struct {
	h     *htm.Heap
	head  htm.Addr // one word: address of the first epoch record
	epoch htm.Addr // one word: the global epoch counter
}

// NewDomain creates a reclamation domain on h.
func NewDomain(h *htm.Heap) *Domain {
	th := h.NewThread()
	d := &Domain{h: h, head: th.Alloc(1), epoch: th.Alloc(1)}
	h.StoreNT(d.epoch, firstEpoch)
	return d
}

// Epoch returns the current global epoch (diagnostics).
func (d *Domain) Epoch() uint64 { return d.h.LoadNT(d.epoch) }

// retiredBlock is one limbo entry: the block and the global epoch observed
// when it was retired.
type retiredBlock struct {
	addr htm.Addr
	at   uint64
}

// Record is a thread's acquired epoch record plus its private limbo list of
// retired blocks. A Record must be used by a single goroutine. The typical
// per-operation pattern is:
//
//	rec.Pin()
//	defer rec.Unpin() // or explicit Unpin on every return path
//	... traverse, CAS, rec.Retire(detached) ...
type Record struct {
	d     *Domain
	th    *htm.Thread
	addr  htm.Addr // this thread's record in the shared list
	limbo []retiredBlock
	// collectThreshold is the limbo length that triggers a collect.
	collectThreshold int
}

// Acquire finds an inactive epoch record to adopt or appends a fresh one —
// the Register step of the dynamic collect embedded in this mechanism,
// exactly as in package hazard.
func (d *Domain) Acquire(th *htm.Thread) *Record {
	h := d.h
	// Try to re-activate a released record.
	for r := htm.Addr(h.LoadNT(d.head)); r != htm.NilAddr; r = htm.Addr(h.LoadNT(r + rNext)) {
		if h.LoadNT(r+rActive) == 0 && h.CASNT(r+rActive, 0, 1) {
			h.StoreNT(r+rEpoch, 0)
			return &Record{d: d, th: th, addr: r, collectThreshold: defaultCollectThreshold}
		}
	}
	// Append a new record at the head.
	r := th.Alloc(rRecWords)
	h.StoreNT(r+rActive, 1)
	for {
		first := h.LoadNT(d.head)
		h.StoreNT(r+rNext, first)
		if h.CASNT(d.head, first, uint64(r)) {
			return &Record{d: d, th: th, addr: r, collectThreshold: defaultCollectThreshold}
		}
	}
}

// Pin announces that the thread is entering an epoch-protected region: it
// publishes the current global epoch in its record, blocking reclamation of
// anything retired from this epoch on. Unlike hazard.Record.Protect this
// happens once per operation, not once per shared load — the overhead
// contrast Figure 1 turns on.
func (r *Record) Pin() {
	h := r.d.h
	for {
		e := h.LoadNT(r.d.epoch)
		h.StoreNT(r.addr+rEpoch, e)
		// Re-validate: if the global epoch moved before our announcement
		// became visible, re-announce so we never lag more than one epoch.
		if h.LoadNT(r.d.epoch) == e {
			return
		}
	}
}

// Unpin retracts the announcement, marking the thread quiescent.
func (r *Record) Unpin() {
	r.d.h.StoreNT(r.addr+rEpoch, 0)
}

// Retire queues p for deallocation once two epoch advances have passed. When
// the private limbo list reaches the collect threshold, Collect runs.
func (r *Record) Retire(p htm.Addr) {
	r.limbo = append(r.limbo, retiredBlock{addr: p, at: r.d.h.LoadNT(r.d.epoch)})
	if len(r.limbo) >= r.collectThreshold {
		r.Collect()
	}
}

// Collect attempts one epoch advance and frees every limbo entry whose
// grace period has elapsed (retired at epoch e, global now >= e+2). This is
// the EBR analogue of hazard.Record.Scan, amortized the same way.
func (r *Record) Collect() {
	r.d.TryAdvance()
	e := r.d.h.LoadNT(r.d.epoch)
	kept := r.limbo[:0]
	for _, b := range r.limbo {
		if e >= b.at+2 {
			r.th.Free(b.addr)
		} else {
			kept = append(kept, b)
		}
	}
	r.limbo = kept
}

// TryAdvance increments the global epoch if every pinned thread has observed
// the current one, and reports whether it advanced. A thread pinned at an
// older epoch — including the caller itself, if its pin predates the last
// advance — blocks the attempt; that is the mechanism's liveness tradeoff.
func (d *Domain) TryAdvance() bool {
	h := d.h
	e := h.LoadNT(d.epoch)
	for rec := htm.Addr(h.LoadNT(d.head)); rec != htm.NilAddr; rec = htm.Addr(h.LoadNT(rec + rNext)) {
		if h.LoadNT(rec+rActive) == 0 {
			continue
		}
		if le := h.LoadNT(rec + rEpoch); le != 0 && le != e {
			return false
		}
	}
	return h.CASNT(d.epoch, e, e+1)
}

// Release unpins, drains the limbo backlog, and deactivates the record so
// another thread can adopt it (the Deregister step). Draining requires two
// epoch advances past the newest limbo entry, so Release loops — it blocks
// for as long as some other thread stays pinned at an old epoch, mirroring
// hazard.Record.Release blocking on a standing announcement.
func (r *Record) Release() {
	h := r.d.h
	h.StoreNT(r.addr+rEpoch, 0)
	for len(r.limbo) > 0 {
		r.Collect()
		runtime.Gosched()
	}
	h.StoreNT(r.addr+rActive, 0)
}

// RetiredLen reports the current limbo backlog (diagnostics).
func (r *Record) RetiredLen() int { return len(r.limbo) }

// Records reports how many epoch records exist in the domain (diagnostics;
// grows to the historical maximum thread count, the same space property as
// hazard records).
func (d *Domain) Records() int {
	h := d.h
	n := 0
	for rec := htm.Addr(h.LoadNT(d.head)); rec != htm.NilAddr; rec = htm.Addr(h.LoadNT(rec + rNext)) {
		n++
	}
	return n
}
