// Package harness drives the paper's benchmarks: it builds the workloads of
// §5 (collect-dominated mix, collect-update, collect-(de)register, varying
// registered slots, queue throughput, update latency) and renders the same
// series the figures plot.
//
// Throughput units follow the paper: operations per microsecond, where one
// benchmark operation is one Collect / Update / Register / Deregister /
// Enqueue / Dequeue call. Periods are in cycles via package cycles.
//
// The paper ran on a 16-core Rock machine; this harness runs the same thread
// counts as goroutines on whatever cores exist, yielding during simulated
// busy-wait periods so that time-slicing stands in for spare cores. Shapes —
// algorithm orderings, contention cliffs, crossovers — are the reproduction
// target, not absolute ops/µs (see EXPERIMENTS.md).
package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/htm"
	"repro/internal/core"
	"repro/internal/cycles"
)

// Config carries experiment-wide knobs.
type Config struct {
	// PointDuration is the measured duration of one data point. Defaults to
	// 200ms.
	PointDuration time.Duration
	// HeapWords sizes the fresh heap created per data point. Defaults to
	// 1<<20.
	HeapWords int
	// Clock converts cycle-denominated periods into spins; calibrated once
	// by the caller. Defaults to a fresh calibration.
	Clock *cycles.Clock
	// Threads is the maximum simulated thread count (the paper's machine
	// has 16).
	Threads int
	// YieldEvery is passed to htm.Config.YieldEvery so that transactions
	// occupy scheduler-visible time on hosts with fewer cores than simulated
	// threads. Defaults to 4 when the host has fewer cores than Threads and
	// 0 otherwise; set to a negative value to force 0.
	YieldEvery int
	// TrackSpace keeps exact LiveWords/MaxLiveWords accounting on the
	// allocation path of every per-point heap. Space-measured experiments
	// (SpaceTable, QueueSpace) set it; throughput sweeps leave it false so
	// allocation stays free of globally shared counters.
	TrackSpace bool
}

func (c Config) withDefaults() Config {
	if c.PointDuration <= 0 {
		c.PointDuration = 200 * time.Millisecond
	}
	if c.HeapWords <= 0 {
		c.HeapWords = 1 << 20
	}
	if c.Clock == nil {
		c.Clock = cycles.Calibrate(cycles.DefaultGHz)
	}
	if c.Threads <= 0 {
		c.Threads = 16
	}
	if c.YieldEvery == 0 && runtime.NumCPU() < c.Threads {
		c.YieldEvery = 12
	}
	if c.YieldEvery < 0 {
		c.YieldEvery = 0
	}
	return c
}

// newHeap builds the per-point heap with the experiment's yield policy.
func (c Config) newHeap() *htm.Heap {
	return htm.NewHeap(htm.Config{Words: c.HeapWords, YieldEvery: c.YieldEvery, NoMaxLive: !c.TrackSpace})
}

// Result is one measured data point.
type Result struct {
	// Ops is the number of benchmark operations completed before the
	// deadline and Elapsed the measured wall time.
	Ops     uint64
	Elapsed time.Duration
	// Heap statistics snapshot at the end of the run.
	Stats htm.Stats
	// StepHist aggregates elements-collected-per-step across collecting
	// threads (Figure 6); nil unless adaptation was enabled.
	StepHist map[int]uint64
}

// OpsPerUs returns throughput in the paper's unit.
func (r Result) OpsPerUs() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Elapsed.Microseconds())
}

// barrier coordinates simultaneous worker start.
type barrier struct {
	ready sync.WaitGroup
	start chan struct{}
}

func newBarrier(n int) *barrier {
	b := &barrier{start: make(chan struct{})}
	b.ready.Add(n)
	return b
}

// arrive marks the worker ready and blocks until the coordinator releases.
func (b *barrier) arrive() {
	b.ready.Done()
	<-b.start
}

// release waits for all workers and opens the gate, returning the start time.
func (b *barrier) release() time.Time {
	b.ready.Wait()
	t := time.Now()
	close(b.start)
	return t
}

// deadliner amortizes time.Now calls inside worker loops.
type deadliner struct {
	deadline time.Time
	n        int
}

func (d *deadliner) expired() bool {
	d.n++
	if d.n&0x3F != 0 {
		return false
	}
	return time.Now().After(d.deadline)
}

// mergeHists sums per-thread step histograms.
func mergeHists(dst, src map[int]uint64) map[int]uint64 {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = make(map[int]uint64)
	}
	for k, v := range src {
		dst[k] += v
	}
	return dst
}

// value constructs a distinct non-zero value for thread id and counter n.
func value(id uint64, n uint64) core.Value {
	return core.Value(id<<40 | (n + 1))
}

// opMix is the paper's collect-dominated distribution (§5.2): Collect 90%,
// Update 8%, Register 1%, Deregister 1%.
type opKind uint8

const (
	opCollect opKind = iota
	opUpdate
	opRegister
	opDeregister
)

func pickOp(rng *uint64) opKind {
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	switch r := x % 100; {
	case r < 90:
		return opCollect
	case r < 98:
		return opUpdate
	case r < 99:
		return opRegister
	default:
		return opDeregister
	}
}

// CollectDominated runs the §5.2 mixed workload (Figure 3): threads perform
// 90/8/1/1 Collect/Update/Register/Deregister, each managing a FIFO queue of
// at most 64/threads handles, with 32 handles pre-registered in total.
func CollectDominated(cfg Config, mk func(h *htm.Heap) core.Collector, threads int) Result {
	cfg = cfg.withDefaults()
	h := cfg.newHeap()
	col := mk(h)

	const totalSlots = 64
	const preRegistered = 32
	maxPer := totalSlots / threads
	if maxPer < 1 {
		maxPer = 1
	}
	prePer := preRegistered / threads
	if prePer < 1 {
		prePer = 1
	}
	if prePer > maxPer {
		prePer = maxPer
	}

	b := newBarrier(threads)
	var ops atomic.Uint64
	hists := make([]map[int]uint64, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := col.NewCtx(h.NewThread())
			rng := uint64(id+1) * 0x9E3779B97F4A7C15
			var queue []core.Handle
			vn := uint64(0)
			for i := 0; i < prePer; i++ {
				vn++
				queue = append(queue, col.Register(c, value(uint64(id+1), vn)))
			}
			b.arrive()
			d := deadliner{deadline: time.Now().Add(cfg.PointDuration)}
			n := uint64(0)
			var scratch []core.Value
			for !d.expired() {
				switch pickOp(&rng) {
				case opCollect:
					scratch = col.Collect(c, scratch[:0])
				case opUpdate:
					if len(queue) > 0 {
						vn++
						// Least recently used handle: front of the queue,
						// rotated to the back.
						hd := queue[0]
						copy(queue, queue[1:])
						queue[len(queue)-1] = hd
						col.Update(c, hd, value(uint64(id+1), vn))
					}
				case opRegister:
					if len(queue) < maxPer {
						vn++
						queue = append(queue, col.Register(c, value(uint64(id+1), vn)))
					}
				case opDeregister:
					if len(queue) > 0 {
						hd := queue[0]
						copy(queue, queue[1:])
						queue = queue[:len(queue)-1]
						col.Deregister(c, hd)
					}
				}
				n++
			}
			ops.Add(n)
			hists[id] = c.StepHistogram()
		}(w)
	}
	startedAt := b.release()
	wg.Wait()
	elapsed := time.Since(startedAt)

	res := Result{Ops: ops.Load(), Elapsed: elapsed, Stats: h.Stats()}
	for _, hist := range hists {
		res.StepHist = mergeHists(res.StepHist, hist)
	}
	return res
}
