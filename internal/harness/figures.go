package harness

import (
	"fmt"
	"time"

	"repro/htm"
	"repro/internal/core"
	"repro/queue"
)

// Default sweeps, matching the paper's axes.
var (
	// DefaultThreadCounts is the X axis of Figures 1 and 3.
	DefaultThreadCounts = []int{1, 2, 4, 6, 8, 10, 12, 14, 16}
	// Fig4Periods is the update-period axis of Figures 4 and 5 (cycles).
	Fig4Periods = []int{1000000, 500000, 200000, 100000, 50000, 20000, 10000,
		8000, 6000, 4000, 2000, 1000, 800, 600, 400}
	// Fig6Periods is the axis of Figure 6 (cycles).
	Fig6Periods = []int{8000, 6000, 4000, 2000, 1000, 800, 600, 400}
	// Fig7Periods is the deregister-period axis of Figure 7 (cycles).
	Fig7Periods = []int{1000000, 500000, 200000, 100000, 50000, 20000, 10000,
		8000, 6000, 4000, 2000, 1000}
	// Fig7RegisterPeriod is fixed in §5.4.
	Fig7RegisterPeriod = 20000
)

// The §5 experiments keep at most 64 handles registered, so the static
// arrays are sized 64 as on Rock.
const paperCapacity = 64

// Fig1 reproduces Figure 1: queue throughput versus thread count for the
// HTM queue, the Michael-Scott queue, Michael-Scott with ROP reclamation,
// and Michael-Scott with epoch-based reclamation.
func Fig1(cfg Config, threadCounts []int) *Table {
	if threadCounts == nil {
		threadCounts = DefaultThreadCounts
	}
	t := &Table{Title: "Figure 1: Queue performance [ops/us]", XLabel: "threads"}
	for _, n := range threadCounts {
		t.Xs = append(t.Xs, fmt.Sprint(n))
	}
	for _, spec := range QueueSpecs() {
		s := Series{Label: spec.Label}
		for _, n := range threadCounts {
			r := QueueThroughput(cfg, spec.New, n, 256)
			s.Ys = append(s.Ys, r.OpsPerUs())
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Fig3Specs is the algorithm set of Figure 3, in the paper's legend order.
func Fig3Specs() []CollectorSpec {
	return []CollectorSpec{
		SpecArrayStatSearchNo(paperCapacity),
		SpecArrayDynAppendDereg(stepOpts(32)),
		SpecArrayStatAppendDereg(paperCapacity, stepOpts(32)),
		SpecFastCollect(stepOpts(32)),
		SpecStaticBaseline(paperCapacity),
		SpecArrayDynSearchResize(stepOpts(32)),
		SpecHOHRC(stepOpts(28)),
		SpecDynamicBaseline(),
	}
}

// Fig3 reproduces Figure 3: collect-dominated throughput versus thread
// count for all eight algorithms.
func Fig3(cfg Config, threadCounts []int) *Table {
	if threadCounts == nil {
		threadCounts = DefaultThreadCounts
	}
	t := &Table{Title: "Figure 3: Collect-dominated [ops/us]", XLabel: "threads"}
	for _, n := range threadCounts {
		t.Xs = append(t.Xs, fmt.Sprint(n))
	}
	for _, spec := range Fig3Specs() {
		s := Series{Label: spec.Label}
		for _, n := range threadCounts {
			r := CollectDominated(cfg, Bind(spec, n), n)
			s.Ys = append(s.Ys, r.OpsPerUs())
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Fig4Specs is the algorithm set of Figure 4 (HOHRC and the Dynamic baseline
// are omitted, as in the paper, after Figure 3 shows them far behind).
func Fig4Specs() []CollectorSpec {
	return []CollectorSpec{
		SpecArrayDynAppendDereg(adaptOpts(8)),
		SpecArrayStatAppendDereg(paperCapacity, adaptOpts(8)),
		SpecFastCollect(adaptOpts(8)),
		SpecArrayDynSearchResize(adaptOpts(8)),
		SpecArrayStatSearchNo(paperCapacity),
		SpecStaticBaseline(paperCapacity),
	}
}

// Fig4 reproduces Figure 4: Collect throughput under concurrent Updates,
// sweeping the update period.
func Fig4(cfg Config, updaters int, periods []int) *Table {
	if periods == nil {
		periods = Fig4Periods
	}
	t := &Table{Title: "Figure 4: Collect-Update [ops/us]", XLabel: "update period"}
	for _, p := range periods {
		t.Xs = append(t.Xs, FormatCycles(p))
	}
	for _, spec := range Fig4Specs() {
		s := Series{Label: spec.Label}
		for _, p := range periods {
			r := CollectUpdate(cfg, Bind(spec, updaters+1), updaters, p)
			s.Ys = append(s.Ys, r.OpsPerUs())
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Fig5 reproduces Figure 5: fixed step sizes 8/16/32 versus the best fixed
// step with adaptation bookkeeping ("Best (adapt cost)") versus the adaptive
// mechanism, for ArrayDynAppendDereg on the collect-update workload.
func Fig5(cfg Config, updaters int, periods []int) *Table {
	if periods == nil {
		periods = Fig4Periods
	}
	t := &Table{Title: "Figure 5: Adapting step size (ArrayDynAppendDereg) [ops/us]", XLabel: "update period"}
	for _, p := range periods {
		t.Xs = append(t.Xs, FormatCycles(p))
	}
	fixedSteps := []int{32, 16, 8}
	for _, step := range fixedSteps {
		spec := SpecArrayDynAppendDereg(stepOpts(step))
		s := Series{Label: fmt.Sprintf("Step %d", step)}
		for _, p := range periods {
			r := CollectUpdate(cfg, Bind(spec, updaters+1), updaters, p)
			s.Ys = append(s.Ys, r.OpsPerUs())
		}
		t.Series = append(t.Series, s)
	}
	best := Series{Label: "Best (adapt cost)"}
	for _, p := range periods {
		bestY := 0.0
		for _, step := range fixedSteps {
			o := core.Options{Step: step, TrackOutcomes: true}
			r := CollectUpdate(cfg, Bind(SpecArrayDynAppendDereg(o), updaters+1), updaters, p)
			if y := r.OpsPerUs(); y > bestY {
				bestY = y
			}
		}
		best.Ys = append(best.Ys, bestY)
	}
	t.Series = append(t.Series, best)
	adaptive := Series{Label: "Adaptive"}
	for _, p := range periods {
		r := CollectUpdate(cfg, Bind(SpecArrayDynAppendDereg(adaptOpts(8)), updaters+1), updaters, p)
		adaptive.Ys = append(adaptive.Ys, r.OpsPerUs())
	}
	t.Series = append(t.Series, adaptive)
	return t
}

// Fig6 reproduces Figure 6: the fraction of slots collected at each step
// size by adaptive ArrayDynAppendDereg, per update period.
func Fig6(cfg Config, updaters int, periods []int) *HistTable {
	if periods == nil {
		periods = Fig6Periods
	}
	t := &HistTable{Title: "Figure 6: Step size distribution (ArrayDynAppendDereg, adaptive)"}
	for _, p := range periods {
		t.Xs = append(t.Xs, FormatCycles(p))
		r := CollectUpdate(cfg, Bind(SpecArrayDynAppendDereg(adaptOpts(8)), updaters+1), updaters, p)
		t.Hists = append(t.Hists, r.StepHist)
	}
	return t
}

// Fig7Specs is the algorithm set of Figure 7.
func Fig7Specs() []CollectorSpec {
	return []CollectorSpec{
		SpecArrayStatAppendDereg(paperCapacity, stepOpts(32)),
		SpecArrayDynAppendDereg(stepOpts(32)),
		SpecFastCollect(stepOpts(32)),
		SpecArrayDynSearchResize(stepOpts(32)),
		SpecArrayStatSearchNo(paperCapacity),
		SpecStaticBaseline(paperCapacity),
	}
}

// Fig7 reproduces Figure 7: Collect throughput under concurrent
// Register/Deregister churn, sweeping the deregister period with the
// register period fixed at 20k cycles.
func Fig7(cfg Config, churners int, periods []int) *Table {
	if periods == nil {
		periods = Fig7Periods
	}
	t := &Table{Title: "Figure 7: Collect-(De)Register [ops/us]", XLabel: "deregister period"}
	for _, p := range periods {
		t.Xs = append(t.Xs, FormatCycles(p))
	}
	for _, spec := range Fig7Specs() {
		s := Series{Label: spec.Label}
		for _, p := range periods {
			r := CollectDeregister(cfg, Bind(spec, churners+1), churners, Fig7RegisterPeriod, p)
			s.Ys = append(s.Ys, r.OpsPerUs())
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// Fig8Specs is the algorithm set of Figure 8.
func Fig8Specs() []CollectorSpec {
	return []CollectorSpec{
		SpecArrayStatAppendDereg(paperCapacity, stepOpts(32)),
		SpecArrayDynAppendDereg(stepOpts(32)),
		SpecFastCollect(stepOpts(32)),
		SpecArrayStatSearchNo(paperCapacity),
		SpecStaticBaseline(paperCapacity),
	}
}

// Fig8Point is one algorithm's Figure 8 time series.
type Fig8Point struct {
	Label   string
	Buckets []TimedBucket
}

// Fig8 reproduces Figure 8: Collect throughput over time while update
// threads alternate the registered-handle count between 16 and 64 every
// `phaseMs` milliseconds, for `totalMs` total, bucketed every `bucketMs`.
func Fig8(cfg Config, updaters int, phaseMs, totalMs, bucketMs int) []Fig8Point {
	var out []Fig8Point
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	for _, spec := range Fig8Specs() {
		buckets := VaryingSlots(cfg, Bind(spec, updaters+1), updaters, 16, 64,
			ms(phaseMs), ms(totalMs), ms(bucketMs))
		out = append(out, Fig8Point{Label: spec.Label, Buckets: buckets})
	}
	return out
}

// Fig8Table renders the Figure 8 series as a table with one column per
// bucket.
func Fig8Table(points []Fig8Point) *Table {
	t := &Table{Title: "Figure 8: Collect throughput with varying registered slots [ops/us]", XLabel: "time [ms]"}
	max := 0
	for _, p := range points {
		if len(p.Buckets) > max {
			max = len(p.Buckets)
		}
	}
	for i := 0; i < max; i++ {
		x := ""
		for _, p := range points {
			if i < len(p.Buckets) {
				x = fmt.Sprint(p.Buckets[i].AtMs)
				break
			}
		}
		t.Xs = append(t.Xs, x)
	}
	for _, p := range points {
		s := Series{Label: p.Label}
		for _, b := range p.Buckets {
			s.Ys = append(s.Ys, b.OpsPerUs)
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// UpdateLatencySpecs lists the algorithms of the §5.1 latency table.
func UpdateLatencySpecs() []CollectorSpec {
	return []CollectorSpec{
		SpecArrayStatSearchNo(paperCapacity),
		SpecArrayStatAppendDereg(paperCapacity, stepOpts(1)),
		SpecArrayDynSearchResize(stepOpts(1)),
		SpecArrayDynAppendDereg(stepOpts(1)),
		SpecFastCollect(stepOpts(1)),
		SpecHOHRC(stepOpts(1)),
		SpecStaticBaseline(paperCapacity),
		SpecDynamicBaseline(),
	}
}

// UpdateLatencyTable reproduces the §5.1 measurement: single-thread Update
// latency per algorithm. The paper's point is the ~215ns (transactional
// indirection) versus ~135ns (naked store) split.
func UpdateLatencyTable(cfg Config, iters int) *Table {
	t := &Table{Title: "Section 5.1: Update latency [ns/op]", XLabel: "algorithm", Xs: []string{"ns/op"}}
	for _, spec := range UpdateLatencySpecs() {
		ns := UpdateLatency(cfg, Bind(spec, 1), iters)
		t.Series = append(t.Series, Series{Label: spec.Label, Ys: []float64{ns}})
	}
	return t
}

// SpaceTable measures the space story (§1.1, §1.2): peak live heap bytes
// during a collect-dominated run per algorithm, and queue memory after
// growing to 10k entries and draining.
func SpaceTable(cfg Config) *Table {
	cfg = cfg.withDefaults()
	cfg.TrackSpace = true // peak-live columns need exact high-water marks
	t := &Table{Title: "Space: peak live heap during Figure 3 workload / queue residual after drain [bytes]",
		XLabel: "system", Xs: []string{"peak", "residual"}}
	for _, spec := range Fig3Specs() {
		r := CollectDominated(cfg, Bind(spec, 8), 8)
		t.Series = append(t.Series, Series{
			Label: spec.Label,
			Ys:    []float64{float64(r.Stats.MaxLiveWords * 8), float64(r.Stats.LiveWords * 8)},
		})
	}
	for _, spec := range QueueSpecs() {
		peak, quiescent := QueueSpace(cfg, spec, 10000)
		t.Series = append(t.Series, Series{
			Label: "Queue: " + spec.Label,
			Ys:    []float64{float64(peak), float64(quiescent)},
		})
	}
	return t
}

// QueueSpace grows a fresh queue to n entries, drains it, and reports the
// peak live bytes while full and the residual (quiescent) live bytes after
// draining and releasing the context — the §1.1 space comparison.
func QueueSpace(cfg Config, spec QueueSpec, n int) (peak, quiescent uint64) {
	cfg = cfg.withDefaults()
	h := htm.NewHeap(htm.Config{Words: cfg.HeapWords})
	q := spec.New(h)
	c := q.NewCtx(h.NewThread())
	for i := 0; i < n; i++ {
		q.Enqueue(c, uint64(i+1))
	}
	peak = h.Stats().MaxLiveWords * 8
	queue.DrainCount(q, c, queue.DrainLimit)
	queue.CloseCtx(q, c)
	return peak, h.Stats().LiveWords * 8
}

// QueueComparison summarizes the Figure 1 story at one thread count, with
// the columns the §1.1 discussion turns on for all four reclamation regimes:
// throughput, per-operation wall time and its overhead relative to the HTM
// queue, and the space story — peak live bytes while holding 10k entries and
// quiescent (post-drain) live bytes.
func QueueComparison(cfg Config, threads, prefill int) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: fmt.Sprintf(
			"Queue comparison at %d threads: throughput, per-op overhead, quiescent memory", threads),
		XLabel: "queue",
		Xs:     []string{"ops/us", "ns/op", "ovhd%", "peak B", "quiescent B"},
	}
	type row struct {
		label                        string
		opsUs, nsOp, peak, quiescent float64
	}
	var rows []row
	var htmNs float64
	for _, spec := range QueueSpecs() {
		r := QueueThroughput(cfg, spec.New, threads, prefill)
		opsUs := r.OpsPerUs()
		nsOp := 0.0
		if opsUs > 0 {
			// threads workers ran concurrently for Elapsed, so per-op wall
			// time on one thread is threads/throughput.
			nsOp = float64(threads) * 1000 / opsUs
		}
		if spec.Label == "HTM" {
			htmNs = nsOp
		}
		peak, quiescent := QueueSpace(cfg, spec, 10000)
		rows = append(rows, row{spec.Label, opsUs, nsOp, float64(peak), float64(quiescent)})
	}
	// The overhead column is relative to the HTM queue, found by label so
	// reordering QueueSpecs cannot silently shift the baseline.
	for _, r := range rows {
		ovhd := 0.0
		if htmNs > 0 {
			ovhd = (r.nsOp - htmNs) / htmNs * 100
		}
		t.Series = append(t.Series, Series{
			Label: r.label,
			Ys:    []float64{r.opsUs, r.nsOp, ovhd, r.peak, r.quiescent},
		})
	}
	return t
}

// Bind fixes a spec's thread count, yielding the constructor shape the
// workload functions take.
func Bind(spec CollectorSpec, threads int) func(h *htm.Heap) core.Collector {
	return func(h *htm.Heap) core.Collector { return spec.New(h, threads) }
}
