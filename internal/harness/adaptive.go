package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/htm"
)

// The phase-shift workload: the contended-overflow experiment (fallback.go)
// with a footprint that alternates mid-run. Disjoint phases are the regime
// the fine-grained fallback wins (footprints share nothing, the global lock
// serializes for no reason); shared phases are the regime the global lock
// wins (N fallbacks fighting over one lock-set lose to simply serializing).
// No static configuration is right for both — this is the experiment the
// adaptive Tuner exists for: it should match the best static choice in each
// phase, minus only the switching lag.

// adaptivePhases is how many alternating phases one measurement runs
// (disjoint, shared, disjoint, shared — starting disjoint).
const adaptivePhases = 4

// AdaptiveMode selects the substrate configuration of a phase-shift run.
type AdaptiveMode int

const (
	// AdaptiveFine is the static fine-grained fallback baseline.
	AdaptiveFine AdaptiveMode = iota
	// AdaptiveGlobal is the static global-lock baseline.
	AdaptiveGlobal
	// AdaptiveTuned runs the htm.Tuner with epochs much shorter than a
	// phase, switching modes from live abort feedback.
	AdaptiveTuned
)

func (m AdaptiveMode) String() string {
	switch m {
	case AdaptiveGlobal:
		return "global"
	case AdaptiveTuned:
		return "adaptive"
	default:
		return "fine"
	}
}

// PhaseResult is one phase-shift measurement, with ops split by phase type.
type PhaseResult struct {
	DisjointOps, SharedOps   uint64
	DisjointTime, SharedTime time.Duration
	Stats                    htm.Stats
}

func perUs(ops uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / float64(d.Microseconds())
}

// DisjointOpsPerUs, SharedOpsPerUs and OverallOpsPerUs return throughput for
// the disjoint phases, the shared phases, and the whole run.
func (r PhaseResult) DisjointOpsPerUs() float64 { return perUs(r.DisjointOps, r.DisjointTime) }
func (r PhaseResult) SharedOpsPerUs() float64   { return perUs(r.SharedOps, r.SharedTime) }
func (r PhaseResult) OverallOpsPerUs() float64 {
	return perUs(r.DisjointOps+r.SharedOps, r.DisjointTime+r.SharedTime)
}

// AdaptivePhaseShift runs the phase-shift overflow workload: `threads`
// workers run store-buffer-overflowing transactions whose footprints are
// private in even phases and one shared block in odd phases. In shared
// phases each worker traverses the block in a worker-specific rotation, so
// lock acquisitions collide both in order (convoys -> FallbackWaits) and out
// of order (release-and-retry -> FallbackRetries) — the evidence mix the
// Tuner's storm signal reads.
func AdaptivePhaseShift(cfg Config, threads int, mode AdaptiveMode) PhaseResult {
	cfg = cfg.withDefaults()
	h := htm.NewHeap(htm.Config{
		Words:           fallbackHeapWords,
		StoreBufferSize: fallbackStoreBuffer,
		EnableTLE:       true,
		MaxRetries:      1,
		GlobalFallback:  mode == AdaptiveGlobal,
		Adaptive:        mode == AdaptiveTuned,
		YieldEvery:      cfg.YieldEvery,
		NoMaxLive:       true,
	})
	phaseLen := cfg.PointDuration / adaptivePhases
	if phaseLen < 20*time.Millisecond {
		phaseLen = 20 * time.Millisecond // keep several tuner epochs per phase
	}
	if mode == AdaptiveTuned {
		tu := h.StartTuner(htm.TunerConfig{Interval: phaseLen / 10})
		defer tu.Stop()
	}

	setup := h.NewThread()
	shared := setup.Alloc(fallbackWrites)

	// phase holds the current phase index; -1 stops the workers. Workers read
	// it once per operation, so a flip takes effect within one op.
	var phase atomic.Int64
	var disjointOps, sharedOps atomic.Uint64

	b := newBarrier(threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := h.NewThread()
			private := th.Alloc(fallbackWrites)
			b.arrive()
			var dOps, sOps uint64
			for {
				p := phase.Load()
				if p < 0 {
					break
				}
				if inShared := p&1 == 1; inShared {
					th.Atomic(func(tx *htm.Txn) {
						for k := 0; k < fallbackWrites; k++ {
							a := shared + htm.Addr((k+id)%fallbackWrites)
							tx.Store(a, tx.Load(a)+1)
						}
					})
					sOps++
				} else {
					th.Atomic(func(tx *htm.Txn) {
						for k := 0; k < fallbackWrites; k++ {
							a := private + htm.Addr(k)
							tx.Store(a, tx.Load(a)+1)
						}
					})
					dOps++
				}
			}
			disjointOps.Add(dOps)
			sharedOps.Add(sOps)
		}(w)
	}
	b.release()
	var disjointTime, sharedTime time.Duration
	for i := 0; i < adaptivePhases; i++ {
		phaseStart := time.Now()
		time.Sleep(phaseLen)
		if i&1 == 1 {
			sharedTime += time.Since(phaseStart)
		} else {
			disjointTime += time.Since(phaseStart)
		}
		if i == adaptivePhases-1 {
			phase.Store(-1)
		} else {
			phase.Store(int64(i + 1))
		}
	}
	wg.Wait()
	return PhaseResult{
		DisjointOps:  disjointOps.Load(),
		SharedOps:    sharedOps.Load(),
		DisjointTime: disjointTime,
		SharedTime:   sharedTime,
		Stats:        h.Stats(),
	}
}

// AdaptiveScaling renders the adaptive-contention figure: phase-split
// throughput of the phase-shift workload under the two static baselines and
// the Tuner. The adaptive column should track the fine-grained baseline in
// the disjoint column and the global-lock baseline in the shared column —
// the best static configuration of each phase, from one run.
func AdaptiveScaling(cfg Config, threads int) *Table {
	t := &Table{
		Title:  "Adaptive contention management: phase-shift overflow [ops/us]",
		XLabel: "phase",
		Xs:     []string{"disjoint", "shared", "overall"},
	}
	for _, mode := range []AdaptiveMode{AdaptiveFine, AdaptiveGlobal, AdaptiveTuned} {
		r := AdaptivePhaseShift(cfg, threads, mode)
		t.Series = append(t.Series, Series{
			Label: mode.String(),
			Ys:    []float64{r.DisjointOpsPerUs(), r.SharedOpsPerUs(), r.OverallOpsPerUs()},
		})
	}
	return t
}
