package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cycles"
)

// quickCfg keeps harness tests fast: tiny points, fixed spin calibration.
func quickCfg() Config {
	return Config{
		PointDuration: 30 * time.Millisecond,
		HeapWords:     1 << 18,
		Clock:         cycles.NewFixed(1),
		Threads:       4,
	}
}

func TestCollectDominatedRuns(t *testing.T) {
	for _, spec := range Fig3Specs() {
		spec := spec
		t.Run(spec.Label, func(t *testing.T) {
			r := CollectDominated(quickCfg(), Bind(spec, 3), 3)
			if r.Ops == 0 {
				t.Error("no operations completed")
			}
			if r.OpsPerUs() <= 0 {
				t.Errorf("throughput = %f", r.OpsPerUs())
			}
		})
	}
}

func TestCollectUpdateRuns(t *testing.T) {
	for _, spec := range Fig4Specs() {
		spec := spec
		t.Run(spec.Label, func(t *testing.T) {
			r := CollectUpdate(quickCfg(), Bind(spec, 4), 3, 20000)
			if r.Ops == 0 {
				t.Error("no collects completed")
			}
		})
	}
}

func TestCollectUpdateRecordsHistogramWhenAdaptive(t *testing.T) {
	r := CollectUpdate(quickCfg(), Bind(SpecArrayDynAppendDereg(adaptOpts(8)), 3), 2, 50000)
	if len(r.StepHist) == 0 {
		t.Error("adaptive run produced no step histogram")
	}
}

func TestCollectDeregisterRuns(t *testing.T) {
	for _, spec := range Fig7Specs() {
		spec := spec
		t.Run(spec.Label, func(t *testing.T) {
			r := CollectDeregister(quickCfg(), Bind(spec, 4), 3, 20000, 50000)
			if r.Ops == 0 {
				t.Error("no collects completed")
			}
		})
	}
}

func TestVaryingSlotsProducesBuckets(t *testing.T) {
	cfg := quickCfg()
	buckets := VaryingSlots(cfg, Bind(SpecArrayDynAppendDereg(stepOpts(8)), 4), 3,
		4, 16, 40*time.Millisecond, 120*time.Millisecond, 20*time.Millisecond)
	if len(buckets) < 3 {
		t.Fatalf("got %d buckets", len(buckets))
	}
	for _, b := range buckets {
		if b.OpsPerUs < 0 {
			t.Errorf("negative throughput at %dms", b.AtMs)
		}
	}
}

func TestUpdateLatencyPositive(t *testing.T) {
	for _, spec := range UpdateLatencySpecs() {
		spec := spec
		t.Run(spec.Label, func(t *testing.T) {
			ns := UpdateLatency(quickCfg(), Bind(spec, 1), 5000)
			if ns <= 0 {
				t.Errorf("latency = %f", ns)
			}
		})
	}
}

func TestQueueThroughputRuns(t *testing.T) {
	for _, spec := range QueueSpecs() {
		spec := spec
		t.Run(spec.Label, func(t *testing.T) {
			r := QueueThroughput(quickCfg(), spec.New, 3, 64)
			if r.Ops == 0 {
				t.Error("no operations completed")
			}
		})
	}
}

func TestQueueComparisonShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every queue")
	}
	tab := QueueComparison(quickCfg(), 3, 64)
	if len(tab.Series) != len(QueueSpecs()) {
		t.Fatalf("series = %d, want %d", len(tab.Series), len(QueueSpecs()))
	}
	if len(tab.Xs) != 5 {
		t.Fatalf("columns = %d, want 5 (ops/us, ns/op, ovhd%%, peak, quiescent)", len(tab.Xs))
	}
	var pool, ebr float64
	for _, s := range tab.Series {
		if len(s.Ys) != len(tab.Xs) {
			t.Fatalf("series %q has %d values", s.Label, len(s.Ys))
		}
		if s.Ys[0] <= 0 {
			t.Errorf("series %q throughput = %f", s.Label, s.Ys[0])
		}
		switch s.Label {
		case "Michael-Scott":
			pool = s.Ys[4]
		case "Michael-Scott EBR":
			ebr = s.Ys[4]
		}
	}
	// Guard against label drift making the assertion below vacuous.
	if pool <= 0 || ebr <= 0 {
		t.Fatalf("missing series: pool quiescent = %f, EBR quiescent = %f", pool, ebr)
	}
	// The reclaiming variant must hold far less quiescent memory than the
	// pool variant after draining 10k entries.
	if ebr*10 > pool {
		t.Errorf("EBR quiescent bytes %f not far below pool quiescent bytes %f", ebr, pool)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		XLabel: "x",
		Xs:     []string{"1", "2"},
		Series: []Series{{Label: "a", Ys: []float64{1.5, 2.5}}, {Label: "b", Ys: []float64{0.5}}},
	}
	out := tab.Render()
	for _, want := range []string{"demo", "1.500", "2.500", "0.500", "-", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestHistTableRender(t *testing.T) {
	ht := &HistTable{
		Title: "hist",
		Xs:    []string{"8k", "4k"},
		Hists: []map[int]uint64{{8: 75, 16: 25}, {}},
	}
	out := ht.Render()
	if !strings.Contains(out, "75.0%") {
		t.Errorf("missing percentage:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("empty histogram should render '-':\n%s", out)
	}
}

func TestFormatCycles(t *testing.T) {
	tests := map[int]string{
		1000000: "1M",
		500000:  "500k",
		20000:   "20k",
		800:     "800",
		400:     "400",
	}
	for in, want := range tests {
		if got := FormatCycles(in); got != want {
			t.Errorf("FormatCycles(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestResultOpsPerUsZeroElapsed(t *testing.T) {
	if (Result{Ops: 5}).OpsPerUs() != 0 {
		t.Error("zero elapsed should yield 0 throughput")
	}
}

func TestSpaceTableShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every algorithm")
	}
	cfg := quickCfg()
	tab := SpaceTable(cfg)
	if len(tab.Series) != len(Fig3Specs())+len(QueueSpecs()) {
		t.Fatalf("series = %d", len(tab.Series))
	}
	var htmQueueResidual, msQueueResidual float64
	for _, s := range tab.Series {
		if len(s.Ys) != 2 {
			t.Fatalf("series %q has %d columns", s.Label, len(s.Ys))
		}
		switch s.Label {
		case "Queue: HTM":
			htmQueueResidual = s.Ys[1]
		case "Queue: Michael-Scott":
			msQueueResidual = s.Ys[1]
		}
	}
	// The paper's space claim: the pool-based MS queue retains its
	// historical maximum after draining; the HTM queue does not.
	if htmQueueResidual*10 > msQueueResidual {
		t.Errorf("HTM queue residual %f not far below MS pool residual %f",
			htmQueueResidual, msQueueResidual)
	}
}
