package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Series is one curve of a figure: a label and a Y value per X position.
type Series struct {
	Label string    `json:"label"`
	Ys    []float64 `json:"ys"`
}

// Table renders figure data in the layout the paper's plots encode: one row
// per series, one column per X value. The json tags make every figure
// directly emittable by the machine-readable bench pipeline (see json.go).
type Table struct {
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	Xs     []string `json:"xs"`
	Series []Series `json:"series"`
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	labelW := len(t.XLabel)
	for _, s := range t.Series {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	colW := 8
	for _, x := range t.Xs {
		if len(x)+1 > colW {
			colW = len(x) + 1
		}
	}
	for _, s := range t.Series {
		for _, y := range s.Ys {
			if w := len(fmt.Sprintf("%.3f", y)) + 1; w > colW {
				colW = w
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW+2, t.XLabel)
	for _, x := range t.Xs {
		fmt.Fprintf(&b, "%*s", colW, x)
	}
	b.WriteByte('\n')
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%-*s", labelW+2, s.Label)
		for i := range t.Xs {
			if i < len(s.Ys) {
				fmt.Fprintf(&b, "%*.3f", colW, s.Ys[i])
			} else {
				fmt.Fprintf(&b, "%*s", colW, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// HistTable renders a step-size distribution (Figure 6): percentage of
// elements collected at each step size, per X value.
type HistTable struct {
	Title string   `json:"title"`
	Xs    []string `json:"xs"`
	// Hists[i] is the step histogram at Xs[i].
	Hists []map[int]uint64 `json:"hists"`
}

// Render formats one row per step size observed anywhere in the sweep.
func (t *HistTable) Render() string {
	stepSet := make(map[int]bool)
	for _, h := range t.Hists {
		for s := range h {
			stepSet[s] = true
		}
	}
	steps := make([]int, 0, len(stepSet))
	for s := range stepSet {
		steps = append(steps, s)
	}
	sort.Ints(steps)

	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	fmt.Fprintf(&b, "%-10s", "step")
	for _, x := range t.Xs {
		fmt.Fprintf(&b, "%9s", x)
	}
	b.WriteByte('\n')
	for _, s := range steps {
		fmt.Fprintf(&b, "%-10d", s)
		for i := range t.Xs {
			var total, n uint64
			for _, v := range t.Hists[i] {
				total += v
			}
			n = t.Hists[i][s]
			if total == 0 {
				fmt.Fprintf(&b, "%9s", "-")
			} else {
				fmt.Fprintf(&b, "%8.1f%%", 100*float64(n)/float64(total))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatCycles renders a cycle count the way the paper's axes do (1M, 500k,
// 20k, 800, ...).
func FormatCycles(c int) string {
	switch {
	case c >= 1000000 && c%1000000 == 0:
		return fmt.Sprintf("%dM", c/1000000)
	case c >= 1000 && c%1000 == 0:
		return fmt.Sprintf("%dk", c/1000)
	default:
		return fmt.Sprintf("%d", c)
	}
}
