package harness

import (
	"testing"
	"time"
)

// TestAdaptivePhaseShift smoke-runs all three modes at a short point duration
// and checks each phase type did work and the measurement is well-formed.
func TestAdaptivePhaseShift(t *testing.T) {
	cfg := Config{PointDuration: 80 * time.Millisecond}
	for _, mode := range []AdaptiveMode{AdaptiveFine, AdaptiveGlobal, AdaptiveTuned} {
		r := AdaptivePhaseShift(cfg, 4, mode)
		if r.DisjointOps == 0 || r.SharedOps == 0 {
			t.Errorf("%v: empty phase: disjoint=%d shared=%d", mode, r.DisjointOps, r.SharedOps)
		}
		if r.DisjointTime <= 0 || r.SharedTime <= 0 {
			t.Errorf("%v: unmeasured phase time", mode)
		}
		if r.Stats.FallbackRuns == 0 {
			t.Errorf("%v: overflow workload never hit the fallback", mode)
		}
		if mode != AdaptiveTuned && r.Stats.ModeSwitches != 0 {
			t.Errorf("%v: static run reported %d mode switches", mode, r.Stats.ModeSwitches)
		}
	}
}

// TestAdaptiveScalingTable checks the figure's shape.
func TestAdaptiveScalingTable(t *testing.T) {
	tb := AdaptiveScaling(Config{PointDuration: 80 * time.Millisecond}, 4)
	if len(tb.Xs) != 3 || len(tb.Series) != 3 {
		t.Fatalf("table shape = %d Xs x %d series, want 3x3", len(tb.Xs), len(tb.Series))
	}
	for _, s := range tb.Series {
		if len(s.Ys) != len(tb.Xs) {
			t.Fatalf("series %q has %d points for %d Xs", s.Label, len(s.Ys), len(tb.Xs))
		}
		for i, y := range s.Ys {
			if y <= 0 {
				t.Errorf("series %q point %q is %v, want > 0", s.Label, tb.Xs[i], y)
			}
		}
	}
}
