package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/htm"
)

// The contended-overflow workload: every operation writes more distinct
// words than the store buffer holds, so every operation completes on the TLE
// fallback path. This is the §6 scenario the fine-grained fallback exists
// for — under the paper's single global fallback lock these operations
// serialize even when their footprints are disjoint, and every hardware
// transaction in the process waits out each critical section at begin.

// fallbackHeapWords sizes the per-point heap: each worker needs only its own
// small block, but keep headroom for thread-cache stranding.
const fallbackHeapWords = 1 << 18

// fallbackStoreBuffer is the deliberately tiny store buffer of the
// contended-overflow workload; fallbackWrites distinct stores overflow it on
// the first hardware attempt and MaxRetries 1 engages the fallback at once.
const (
	fallbackStoreBuffer = 2
	fallbackWrites      = 8
)

func fallbackHeap(cfg Config, global bool) *htm.Heap {
	return fallbackHeapSpins(cfg, global, 0)
}

// fallbackHeapSpins additionally sets the out-of-order acquire budget
// (htm.Config.FallbackSpins: 0 selects the engine default, negative means no
// spinning — release-and-retry immediately on any out-of-order conflict).
func fallbackHeapSpins(cfg Config, global bool, spins int) *htm.Heap {
	return htm.NewHeap(htm.Config{
		Words:           fallbackHeapWords,
		StoreBufferSize: fallbackStoreBuffer,
		EnableTLE:       true,
		MaxRetries:      1,
		GlobalFallback:  global,
		FallbackSpins:   spins,
		YieldEvery:      cfg.YieldEvery,
		NoMaxLive:       true,
	})
}

// FallbackOverflow measures fallback throughput: `threads` workers each run
// transactions that overflow the store buffer and complete on the fallback
// path. With disjoint=true every worker owns its block (the footprints share
// nothing); otherwise all workers hammer one shared block. global selects
// the global-lock baseline retained behind htm.Config.GlobalFallback.
func FallbackOverflow(cfg Config, threads int, disjoint, global bool) Result {
	cfg = cfg.withDefaults()
	return overflowOn(fallbackHeap(cfg, global), cfg, threads, disjoint)
}

// FallbackSpinsOverflow is the shared-footprint overflow workload run with an
// explicit out-of-order acquire budget: how long a fallback acquire spins on
// a lock held by a LOWER-addressed owner before releasing its whole set and
// retrying. spins=0 means no spinning at all (mapped to the config's
// negative encoding); the engine default is 128.
func FallbackSpinsOverflow(cfg Config, threads, spins int) Result {
	cfg = cfg.withDefaults()
	if spins == 0 {
		spins = -1 // Config.FallbackSpins: 0 would select the default
	}
	return overflowOn(fallbackHeapSpins(cfg, false, spins), cfg, threads, false)
}

// overflowOn runs the contended-overflow workload on a prepared heap.
func overflowOn(h *htm.Heap, cfg Config, threads int, disjoint bool) Result {
	setup := h.NewThread()
	shared := setup.Alloc(fallbackWrites)

	b := newBarrier(threads)
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := h.NewThread()
			blk := shared
			if disjoint {
				blk = th.Alloc(fallbackWrites)
			}
			b.arrive()
			d := deadliner{deadline: time.Now().Add(cfg.PointDuration)}
			n := uint64(0)
			for !d.expired() {
				th.Atomic(func(tx *htm.Txn) {
					for i := 0; i < fallbackWrites; i++ {
						a := blk + htm.Addr(i)
						tx.Store(a, tx.Load(a)+1)
					}
				})
				n++
			}
			ops.Add(n)
		}(w)
	}
	startedAt := b.release()
	wg.Wait()
	elapsed := time.Since(startedAt)
	return Result{Ops: ops.Load(), Elapsed: elapsed, Stats: h.Stats()}
}

// FallbackInterference measures what persistent fallback traffic costs the
// hardware path: one worker loops overflowing (fallback) operations on its
// private block while `threads` other workers run small hardware
// transactions on their own private words. Only the hardware workers'
// operations are counted. Under the global lock every hardware begin waits
// out every fallback critical section; under the fine-grained fallback the
// footprints are disjoint and the hardware path never waits.
func FallbackInterference(cfg Config, threads int, global bool) Result {
	cfg = cfg.withDefaults()
	h := fallbackHeap(cfg, global)

	b := newBarrier(threads + 1)
	stop := make(chan struct{})
	var ops atomic.Uint64
	var hwWg, fbWg sync.WaitGroup

	fbWg.Add(1)
	go func() { // the fallback looper
		defer fbWg.Done()
		th := h.NewThread()
		blk := th.Alloc(fallbackWrites)
		b.arrive()
		for {
			select {
			case <-stop:
				return
			default:
			}
			th.Atomic(func(tx *htm.Txn) {
				for i := 0; i < fallbackWrites; i++ {
					a := blk + htm.Addr(i)
					tx.Store(a, tx.Load(a)+1)
				}
			})
		}
	}()

	for w := 0; w < threads; w++ {
		hwWg.Add(1)
		go func(id int) {
			defer hwWg.Done()
			th := h.NewThread()
			word := th.Alloc(1)
			b.arrive()
			d := deadliner{deadline: time.Now().Add(cfg.PointDuration)}
			n := uint64(0)
			for !d.expired() {
				th.Atomic(func(tx *htm.Txn) {
					tx.Store(word, tx.Load(word)+1)
				})
				n++
			}
			ops.Add(n)
		}(w)
	}
	startedAt := b.release()
	// The hardware workers own the deadline; the fallback looper runs until
	// they are done, so they face fallback traffic for the whole window.
	hwWg.Wait()
	elapsed := time.Since(startedAt)
	close(stop)
	fbWg.Wait()
	return Result{Ops: ops.Load(), Elapsed: elapsed, Stats: h.Stats()}
}

// FallbackScaling renders the contended-overflow figure: fallback throughput
// versus thread count, fine-grained against the global-lock baseline, on
// disjoint and on fully shared footprints. The paper's global lock
// serializes all four series; the fine-grained fallback lets the disjoint
// series scale while the shared series stays (correctly) serialized by true
// data conflicts.
func FallbackScaling(cfg Config, threadCounts []int) *Table {
	if threadCounts == nil {
		threadCounts = DefaultThreadCounts
	}
	t := &Table{Title: "Fallback scaling: contended-overflow [ops/us]", XLabel: "threads"}
	for _, n := range threadCounts {
		t.Xs = append(t.Xs, fmt.Sprint(n))
	}
	variants := []struct {
		label            string
		disjoint, global bool
	}{
		{"fine-grained disjoint", true, false},
		{"global-lock disjoint", true, true},
		{"fine-grained shared", false, false},
		{"global-lock shared", false, true},
	}
	for _, v := range variants {
		s := Series{Label: v.label}
		for _, n := range threadCounts {
			r := FallbackOverflow(cfg, n, v.disjoint, v.global)
			s.Ys = append(s.Ys, r.OpsPerUs())
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// FallbackSpinsSweep renders shared-footprint overflow throughput across
// out-of-order acquire budgets (the Config.FallbackSpins knob) at a fixed
// thread count. Too small a budget releases and retries on every transient
// inversion; too large spins on locks whose owners are themselves spinning.
// The sweep locates the engine default (128) on that curve.
func FallbackSpinsSweep(cfg Config, threads int, spinsValues []int) *Table {
	t := &Table{
		Title:  "Fallback spins knob: shared contended-overflow [ops/us]",
		XLabel: "spins",
	}
	for _, sp := range spinsValues {
		t.Xs = append(t.Xs, fmt.Sprint(sp))
	}
	s := Series{Label: fmt.Sprintf("fine-grained shared, %d threads", threads)}
	for _, sp := range spinsValues {
		r := FallbackSpinsOverflow(cfg, threads, sp)
		s.Ys = append(s.Ys, r.OpsPerUs())
	}
	t.Series = append(t.Series, s)
	return t
}

// FallbackInterferenceTable renders hardware throughput beside one
// persistent fallback looper, fine-grained versus global-lock, across
// hardware thread counts.
func FallbackInterferenceTable(cfg Config, threadCounts []int) *Table {
	if threadCounts == nil {
		threadCounts = DefaultThreadCounts
	}
	t := &Table{Title: "Hardware throughput beside persistent fallback traffic [ops/us]", XLabel: "hw threads"}
	for _, n := range threadCounts {
		t.Xs = append(t.Xs, fmt.Sprint(n))
	}
	for _, global := range []bool{false, true} {
		label := "fine-grained fallback"
		if global {
			label = "global-lock fallback"
		}
		s := Series{Label: label}
		for _, n := range threadCounts {
			r := FallbackInterference(cfg, n, global)
			s.Ys = append(s.Ys, r.OpsPerUs())
		}
		t.Series = append(t.Series, s)
	}
	return t
}
