package harness

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"time"
)

// Report is the machine-readable record of a benchmark run: the same figure
// tables the text renderer prints, plus host metadata and (optionally) raw
// Go-benchmark numbers. One Report per PR is committed as BENCH_<PR>.json so
// the performance trajectory of the repository is diffable, and CI uploads
// one per run as a workflow artifact.
type Report struct {
	// Label identifies the run, e.g. "PR3" or "ci".
	Label     string `json:"label"`
	Timestamp string `json:"timestamp"`
	Host      Host   `json:"host"`
	// Config echoes the sweep parameters that shaped the run.
	Config map[string]string `json:"config,omitempty"`
	// Tables holds figure/series data (Fig1, comparisons, space, ...).
	Tables []*Table `json:"tables,omitempty"`
	// Hists holds step-size distributions (Fig6-shaped data).
	Hists []*HistTable `json:"histograms,omitempty"`
	// Benchmarks holds flat substrate microbenchmark numbers, typically
	// copied from `go test -bench` output.
	Benchmarks []Benchmark `json:"benchmarks,omitempty"`
	// Baseline optionally embeds the pre-change numbers the run is compared
	// against, so a single file tells the whole before/after story.
	Baseline *Report `json:"baseline,omitempty"`
	// Notes carries free-form context (host caveats, methodology).
	Notes string `json:"notes,omitempty"`
}

// Host describes the machine a Report was produced on.
type Host struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// Benchmark is one flat measurement (one `go test -bench` line or one
// derived figure point).
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	OpsPerUs    float64 `json:"ops_per_us,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Note        string  `json:"note,omitempty"`
}

// NewReport builds a Report labelled label with host metadata filled in.
func NewReport(label string) *Report {
	return &Report{
		Label:     label,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Host: Host{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
		},
	}
}

// AddTable records a figure table, replacing any existing table with the
// same title — so re-running a sweep with -append refreshes its figures in
// place instead of accumulating duplicates.
func (r *Report) AddTable(t *Table) {
	for i, old := range r.Tables {
		if old.Title == t.Title {
			r.Tables[i] = t
			return
		}
	}
	r.Tables = append(r.Tables, t)
}

// AddHist appends a histogram table to the report.
func (r *Report) AddHist(t *HistTable) { r.Hists = append(r.Hists, t) }

// SetConfig records one sweep parameter.
func (r *Report) SetConfig(k, v string) {
	if r.Config == nil {
		r.Config = make(map[string]string)
	}
	r.Config[k] = v
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSONFile writes the report to path, creating or truncating it.
func (r *Report) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSONFile loads a previously written Report (e.g. the prior PR's
// snapshot, for baseline embedding or trend tooling).
func ReadJSONFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
