package harness

import (
	"strings"
	"testing"

	"repro/htm"
)

func TestFallbackOverflowRuns(t *testing.T) {
	for _, c := range []struct {
		name             string
		disjoint, global bool
	}{
		{"fine-grained/disjoint", true, false},
		{"fine-grained/shared", false, false},
		{"global/disjoint", true, true},
		{"global/shared", false, true},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := FallbackOverflow(quickCfg(), 3, c.disjoint, c.global)
			if r.Ops == 0 {
				t.Error("no operations completed")
			}
			// Every operation overflows the 2-entry store buffer, so every
			// completed operation ran on the fallback path.
			if r.Stats.FallbackRuns < r.Ops {
				t.Errorf("FallbackRuns = %d < Ops = %d: operations bypassed the fallback",
					r.Stats.FallbackRuns, r.Ops)
			}
			if c.global && r.Stats.FallbackLocks != 0 {
				t.Errorf("global mode acquired %d per-word fallback locks", r.Stats.FallbackLocks)
			}
			if !c.global && r.Stats.FallbackLocks == 0 {
				t.Error("fine-grained mode acquired no per-word fallback locks")
			}
		})
	}
}

func TestFallbackInterferenceRuns(t *testing.T) {
	r := FallbackInterference(quickCfg(), 2, false)
	if r.Ops == 0 {
		t.Error("no hardware operations completed beside fallback traffic")
	}
	if r.Stats.FallbackRuns == 0 {
		t.Error("the fallback looper never ran")
	}
	// The hardware path must never abort on the global fallback lock in
	// fine-grained mode.
	if n := r.Stats.Aborts[htm.AbortFallback]; n != 0 {
		t.Errorf("fine-grained run produced %d AbortFallback aborts", n)
	}
}

func TestFallbackScalingShapes(t *testing.T) {
	tb := FallbackScaling(quickCfg(), []int{1, 2})
	if len(tb.Series) != 4 {
		t.Fatalf("FallbackScaling produced %d series, want 4", len(tb.Series))
	}
	for _, s := range tb.Series {
		if len(s.Ys) != 2 {
			t.Errorf("series %q has %d points, want 2", s.Label, len(s.Ys))
		}
		for i, y := range s.Ys {
			if y <= 0 {
				t.Errorf("series %q point %d = %f, want > 0", s.Label, i, y)
			}
		}
	}
	out := tb.Render()
	if !strings.Contains(out, "fine-grained disjoint") || !strings.Contains(out, "global-lock shared") {
		t.Errorf("rendered table missing series:\n%s", out)
	}
}
