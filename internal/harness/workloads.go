package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/htm"
	"repro/internal/core"
)

// CollectUpdate runs the §5.3 workload (Figures 4–6): one thread performs
// Collects while `updaters` others perform one Update each updatePeriod
// cycles. The update threads pre-register 64 handles in total; each uses only
// its first handle, the rest exist to keep the registered count independent
// of the thread count. Throughput counts the collector's operations only.
func CollectUpdate(cfg Config, mk func(h *htm.Heap) core.Collector, updaters, updatePeriod int) Result {
	cfg = cfg.withDefaults()
	h := cfg.newHeap()
	col := mk(h)

	const totalHandles = 64
	per := totalHandles / updaters
	if per < 1 {
		per = 1
	}

	b := newBarrier(updaters + 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := col.NewCtx(h.NewThread())
			n := per
			if id == 0 {
				n += totalHandles - per*updaters // remainder to the first
			}
			handles := make([]core.Handle, 0, n)
			vn := uint64(0)
			for i := 0; i < n; i++ {
				vn++
				handles = append(handles, col.Register(c, value(uint64(id+1), vn)))
			}
			b.arrive()
			// Workers also observe the point deadline directly: a Collect
			// can be starved indefinitely by sufficiently hot churn (the
			// paper's "do not complete" points), and the run must still end.
			d := deadliner{deadline: time.Now().Add(cfg.PointDuration + cfg.PointDuration/4)}
			for !d.expired() {
				select {
				case <-stop:
					return
				default:
				}
				cfg.Clock.SpinCoop(updatePeriod)
				vn++
				col.Update(c, handles[0], value(uint64(id+1), vn))
			}
		}(w)
	}

	var collects uint64
	var hist map[int]uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := col.NewCtx(h.NewThread())
		b.arrive()
		d := deadliner{deadline: time.Now().Add(cfg.PointDuration)}
		var scratch []core.Value
		n := uint64(0)
		for !d.expired() {
			scratch = col.Collect(c, scratch[:0])
			n++
		}
		collects = n
		hist = c.StepHistogram()
		close(stop)
	}()

	startedAt := b.release()
	wg.Wait()
	elapsed := time.Since(startedAt)
	return Result{Ops: collects, Elapsed: elapsed, Stats: h.Stats(), StepHist: hist}
}

// CollectDeregister runs the §5.4 workload (Figure 7): one collector thread
// plus `churners` threads running Deregister — wait(registerPeriod) —
// Register — wait(deregPeriod) loops over an initial total of 64 handles.
func CollectDeregister(cfg Config, mk func(h *htm.Heap) core.Collector, churners, registerPeriod, deregPeriod int) Result {
	cfg = cfg.withDefaults()
	h := cfg.newHeap()
	col := mk(h)

	const totalHandles = 64
	per := totalHandles / churners
	if per < 1 {
		per = 1
	}

	b := newBarrier(churners + 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := col.NewCtx(h.NewThread())
			handles := make([]core.Handle, 0, per)
			vn := uint64(0)
			for i := 0; i < per; i++ {
				vn++
				handles = append(handles, col.Register(c, value(uint64(id+1), vn)))
			}
			b.arrive()
			i := 0
			d := deadliner{deadline: time.Now().Add(cfg.PointDuration + cfg.PointDuration/4)}
			for !d.expired() {
				select {
				case <-stop:
					return
				default:
				}
				// Start with a Deregister so the registered total never
				// exceeds 64 (paper §5.4).
				col.Deregister(c, handles[i])
				cfg.Clock.SpinCoop(registerPeriod)
				vn++
				handles[i] = col.Register(c, value(uint64(id+1), vn))
				cfg.Clock.SpinCoop(deregPeriod)
				i = (i + 1) % len(handles)
			}
		}(w)
	}

	var collects uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := col.NewCtx(h.NewThread())
		b.arrive()
		d := deadliner{deadline: time.Now().Add(cfg.PointDuration)}
		var scratch []core.Value
		n := uint64(0)
		for !d.expired() {
			scratch = col.Collect(c, scratch[:0])
			n++
		}
		collects = n
		close(stop)
	}()

	startedAt := b.release()
	wg.Wait()
	elapsed := time.Since(startedAt)
	return Result{Ops: collects, Elapsed: elapsed, Stats: h.Stats()}
}

// TimedBucket is one point of the Figure 8 time series.
type TimedBucket struct {
	// AtMs is the bucket's end, in milliseconds since the run started.
	AtMs int
	// OpsPerUs is the collector's throughput within the bucket.
	OpsPerUs float64
}

// VaryingSlots runs the §5.5 workload (Figure 8): one collector and
// `updaters` update threads (20k-cycle period). The update threads alternate
// the total number of registered handles between lo and hi every phase
// (500ms in the paper), and the collector's throughput is recorded in
// buckets.
func VaryingSlots(cfg Config, mk func(h *htm.Heap) core.Collector, updaters int, lo, hi int, phase, total, bucket time.Duration) []TimedBucket {
	cfg = cfg.withDefaults()
	h := cfg.newHeap()
	col := mk(h)
	const updatePeriod = 20000

	// target holds the current per-thread handle count goal.
	var target atomic.Int64
	perLo, perHi := lo/updaters, hi/updaters
	if perLo < 1 {
		perLo = 1
	}
	if perHi < perLo {
		perHi = perLo
	}
	target.Store(int64(perLo))

	b := newBarrier(updaters + 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := col.NewCtx(h.NewThread())
			var handles []core.Handle
			vn := uint64(0)
			reg := func() {
				vn++
				handles = append(handles, col.Register(c, value(uint64(id+1), vn)))
			}
			for len(handles) < perLo {
				reg()
			}
			b.arrive()
			d := deadliner{deadline: time.Now().Add(total + total/4)}
			for !d.expired() {
				select {
				case <-stop:
					return
				default:
				}
				for t := int(target.Load()); len(handles) < t; {
					reg()
					t = int(target.Load())
				}
				for t := int(target.Load()); len(handles) > t && len(handles) > 1; {
					last := handles[len(handles)-1]
					handles = handles[:len(handles)-1]
					col.Deregister(c, last)
					t = int(target.Load())
				}
				cfg.Clock.SpinCoop(updatePeriod)
				vn++
				col.Update(c, handles[0], value(uint64(id+1), vn))
			}
		}(w)
	}

	var buckets []TimedBucket
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := col.NewCtx(h.NewThread())
		b.arrive()
		start := time.Now()
		deadline := start.Add(total)
		nextPhase := start.Add(phase)
		nextBucket := start.Add(bucket)
		bucketStart := start
		cur := perLo
		var scratch []core.Value
		n := uint64(0)
		for {
			scratch = col.Collect(c, scratch[:0])
			n++
			now := time.Now()
			if now.After(nextBucket) {
				el := now.Sub(bucketStart)
				buckets = append(buckets, TimedBucket{
					AtMs:     int(now.Sub(start).Milliseconds()),
					OpsPerUs: float64(n) / float64(el.Microseconds()),
				})
				n = 0
				bucketStart = now
				nextBucket = now.Add(bucket)
			}
			if now.After(nextPhase) {
				if cur == perLo {
					cur = perHi
				} else {
					cur = perLo
				}
				target.Store(int64(cur))
				nextPhase = now.Add(phase)
			}
			if now.After(deadline) {
				break
			}
		}
		close(stop)
	}()

	b.release()
	wg.Wait()
	return buckets
}

// UpdateLatency measures single-thread Update latency (§5.1's ~215ns vs
// ~135ns comparison) in nanoseconds per operation.
func UpdateLatency(cfg Config, mk func(h *htm.Heap) core.Collector, iters int) float64 {
	cfg = cfg.withDefaults()
	h := cfg.newHeap()
	col := mk(h)
	c := col.NewCtx(h.NewThread())
	hd := col.Register(c, 1)
	// Warm up.
	for i := 0; i < 1000; i++ {
		col.Update(c, hd, uint64(i+1))
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		col.Update(c, hd, uint64(i+1))
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}
