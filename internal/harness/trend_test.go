package harness

import (
	"path/filepath"
	"strings"
	"testing"
)

func trendFixture() (*Report, *Report) {
	oldR := &Report{Label: "old"}
	oldR.AddTable(&Table{
		Title: "Figure 1: Queue performance [ops/us]", XLabel: "threads",
		Xs: []string{"1", "2"},
		Series: []Series{
			{Label: "HTM", Ys: []float64{4.0, 3.8}},
			{Label: "MS", Ys: []float64{4.2, 3.9}},
		},
	})
	oldR.AddTable(&Table{
		Title: "Queue comparison at 8 threads", XLabel: "queue",
		Xs: []string{"ops/us", "ns/op", "quiescent B"},
		Series: []Series{
			{Label: "HTM", Ys: []float64{3.9, 2050, 16}},
		},
	})
	oldR.Benchmarks = []Benchmark{
		{Name: "BenchmarkAllocFree/fastpath", NsPerOp: 200, AllocsPerOp: 0},
		{Name: "BenchmarkOnlyInOld", NsPerOp: 1},
	}

	newR := &Report{Label: "new"}
	newR.AddTable(&Table{
		Title: "Figure 1: Queue performance [ops/us]", XLabel: "threads",
		Xs: []string{"1", "2"},
		Series: []Series{
			{Label: "HTM", Ys: []float64{4.1, 3.0}}, // @2: -21% -> regression
			{Label: "MS", Ys: []float64{4.3, 3.9}},
		},
	})
	newR.AddTable(&Table{
		Title: "Queue comparison at 8 threads", XLabel: "queue",
		Xs: []string{"ops/us", "ns/op", "quiescent B"},
		Series: []Series{
			// ns/op up 50% -> regression; bytes up 10x -> informational
			{Label: "HTM", Ys: []float64{4.0, 3075, 160}},
		},
	})
	newR.Benchmarks = []Benchmark{
		{Name: "BenchmarkAllocFree/fastpath", NsPerOp: 150, AllocsPerOp: 1},
		{Name: "BenchmarkOnlyInNew", NsPerOp: 1},
	}
	return oldR, newR
}

func TestDiffReportsRegressionGate(t *testing.T) {
	oldR, newR := trendFixture()
	tr := DiffReports(oldR, newR, 10)

	byName := make(map[string]TrendRow)
	for _, r := range tr.Rows {
		byName[r.Name] = r
	}

	reg := func(name string) TrendRow {
		t.Helper()
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing row %q; have %v", name, tr.Rows)
		}
		return r
	}

	if r := reg("Figure 1 / HTM @ 2"); !r.Regression || r.Direction != HigherIsBetter {
		t.Errorf("throughput drop of 21%% not flagged: %+v", r)
	}
	if r := reg("Figure 1 / HTM @ 1"); r.Regression {
		t.Errorf("throughput gain flagged as regression: %+v", r)
	}
	if r := reg("Queue comparison at 8 threads / HTM @ ns/op"); !r.Regression || r.Direction != LowerIsBetter {
		t.Errorf("ns/op increase of 50%% not flagged: %+v", r)
	}
	if r := reg("Queue comparison at 8 threads / HTM @ quiescent B"); r.Regression || r.Direction != Informational {
		t.Errorf("bytes column must be informational: %+v", r)
	}
	if r := reg("BenchmarkAllocFree/fastpath [ns/op]"); r.Regression {
		t.Errorf("25%% ns/op improvement flagged: %+v", r)
	}
	if r := reg("BenchmarkAllocFree/fastpath [allocs/op]"); !r.Regression {
		t.Errorf("allocs/op going 0 -> 1 must gate: %+v", r)
	}
	if tr.Unmatched != 2 { // BenchmarkOnlyInOld + BenchmarkOnlyInNew
		t.Errorf("Unmatched = %d, want 2", tr.Unmatched)
	}
	if tr.MissingInNew != 1 { // BenchmarkOnlyInOld vanished: shrunken coverage
		t.Errorf("MissingInNew = %d, want 1", tr.MissingInNew)
	}
	if tr.AddedInNew != 1 { // BenchmarkOnlyInNew: growth, never a failure
		t.Errorf("AddedInNew = %d, want 1", tr.AddedInNew)
	}
	if got, want := len(tr.Regressions()), 3; got != want {
		t.Errorf("Regressions() = %d rows, want %d", got, want)
	}

	out := tr.Render()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "3 regression(s)") {
		t.Errorf("Render missing regression flags:\n%s", out)
	}
}

func TestDiffReportsIdentical(t *testing.T) {
	oldR, _ := trendFixture()
	tr := DiffReports(oldR, oldR, 10)
	if len(tr.Regressions()) != 0 {
		t.Errorf("self-diff found regressions: %+v", tr.Regressions())
	}
	for _, r := range tr.Rows {
		if r.DeltaPct != 0 {
			t.Errorf("self-diff nonzero delta: %+v", r)
		}
	}
}

func TestTrendRoundTripThroughJSON(t *testing.T) {
	oldR, newR := trendFixture()
	dir := t.TempDir()
	po, pn := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	if err := oldR.WriteJSONFile(po); err != nil {
		t.Fatal(err)
	}
	if err := newR.WriteJSONFile(pn); err != nil {
		t.Fatal(err)
	}
	ro, err := ReadJSONFile(po)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := ReadJSONFile(pn)
	if err != nil {
		t.Fatal(err)
	}
	direct := DiffReports(oldR, newR, 10)
	viaJSON := DiffReports(ro, rn, 10)
	if len(direct.Rows) != len(viaJSON.Rows) || len(direct.Regressions()) != len(viaJSON.Regressions()) {
		t.Errorf("JSON round trip changed the diff: %d/%d rows, %d/%d regressions",
			len(direct.Rows), len(viaJSON.Rows), len(direct.Regressions()), len(viaJSON.Regressions()))
	}
}

func TestPointDirection(t *testing.T) {
	cases := []struct {
		title, x string
		want     Direction
	}{
		{"Figure 1: Queue performance [ops/us]", "8", HigherIsBetter},
		{"Section 5.1: Update latency [ns/op]", "ns/op", LowerIsBetter},
		{"Queue comparison", "ops/us", HigherIsBetter},
		{"Queue comparison", "ns/op", LowerIsBetter},
		{"Queue comparison", "ovhd%", Informational},
		{"Queue comparison", "peak B", Informational},
		{"Space: peak live heap [bytes]", "HTM queue", Informational},
	}
	for _, c := range cases {
		if got := pointDirection(c.title, c.x); got != c.want {
			t.Errorf("pointDirection(%q, %q) = %d, want %d", c.title, c.x, got, c.want)
		}
	}
}

func TestDiffReportsUnitMismatchCountsUnmatched(t *testing.T) {
	oldR := &Report{Label: "old", Benchmarks: []Benchmark{{Name: "BenchmarkX", NsPerOp: 134}}}
	newR := &Report{Label: "new", Benchmarks: []Benchmark{{Name: "BenchmarkX", OpsPerUs: 7.5}}}
	tr := DiffReports(oldR, newR, 10)
	if len(tr.Rows) != 0 {
		t.Errorf("unit-mismatched benchmark produced rows: %+v", tr.Rows)
	}
	if tr.Unmatched != 1 {
		t.Errorf("Unmatched = %d, want 1 (same name, no shared unit)", tr.Unmatched)
	}
	if tr.MissingInNew != 1 {
		t.Errorf("MissingInNew = %d, want 1: the old unit's measurement vanished", tr.MissingInNew)
	}
}

// TestDiffReportsShrunkenCoverage drops one whole series and one table column
// from the new report: every lost point must be counted as missing, not
// silently shrunk to a smaller intersection.
func TestDiffReportsShrunkenCoverage(t *testing.T) {
	oldR, _ := trendFixture()
	newR := &Report{Label: "new"}
	newR.AddTable(&Table{
		Title: "Figure 1: Queue performance [ops/us]", XLabel: "threads",
		Xs: []string{"1"}, // the @2 column vanished
		Series: []Series{
			{Label: "HTM", Ys: []float64{4.0}}, // the MS series vanished
		},
	})
	newR.Benchmarks = []Benchmark{
		{Name: "BenchmarkAllocFree/fastpath", NsPerOp: 200, AllocsPerOp: 0},
		{Name: "BenchmarkOnlyInOld", NsPerOp: 1},
	}
	tr := DiffReports(oldR, newR, 10)
	// Lost: Figure 1 HTM@2, MS@1, MS@2, and the whole second table's three
	// points (ops/us, ns/op, quiescent B for HTM) = 6 table points.
	if tr.MissingInNew != 6 {
		t.Errorf("MissingInNew = %d, want 6; report: %+v", tr.MissingInNew, tr)
	}
	if tr.AddedInNew != 0 {
		t.Errorf("AddedInNew = %d, want 0", tr.AddedInNew)
	}
	if len(tr.Regressions()) != 0 {
		t.Errorf("unchanged surviving points flagged as regressions: %+v", tr.Regressions())
	}
	out := tr.Render()
	if !strings.Contains(out, "6 missing from new") {
		t.Errorf("Render does not surface the shrunken coverage:\n%s", out)
	}

	// A superset new report shrinks nothing.
	oldR2, newR2 := trendFixture()
	newR2.AddTable(&Table{Title: "Extra", Xs: []string{"x"},
		Series: []Series{{Label: "S", Ys: []float64{1}}}})
	tr2 := DiffReports(oldR2, newR2, 10)
	if tr2.MissingInNew != 1 { // only BenchmarkOnlyInOld, as in the base fixture
		t.Errorf("superset diff MissingInNew = %d, want 1", tr2.MissingInNew)
	}
	if tr2.AddedInNew != 2 { // the extra table point + BenchmarkOnlyInNew
		t.Errorf("superset diff AddedInNew = %d, want 2", tr2.AddedInNew)
	}
}
