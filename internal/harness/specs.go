package harness

import (
	"fmt"

	"repro/htm"
	"repro/internal/core"
	"repro/queue"
)

// CollectorSpec names one collector configuration as it appears in the
// paper's figures.
type CollectorSpec struct {
	// Label is the legend string used in the figures.
	Label string
	// New constructs the collector on a fresh heap.
	New func(h *htm.Heap, threads int) core.Collector
}

// stepOpts builds fixed-step options.
func stepOpts(step int) core.Options { return core.Options{Step: step} }

// adaptOpts builds adaptive options starting at `initial`.
func adaptOpts(initial int) core.Options { return core.Options{Step: initial, Adaptive: true} }

// Spec constructors for each algorithm. capacity sizes the static arrays and
// the static baseline; the experiments of §5 never exceed 64 handles, so the
// paper-faithful capacity is 64 (passing a larger capacity is useful for
// custom runs).

// SpecArrayDynAppendDereg returns the Figure 2 algorithm with the given
// telescoping options.
func SpecArrayDynAppendDereg(o core.Options) CollectorSpec {
	return CollectorSpec{
		Label: "Array Dyn Append Dereg" + optSuffix(o),
		New:   func(h *htm.Heap, threads int) core.Collector { return core.NewArrayDynAppendDereg(h, 0, o) },
	}
}

// SpecArrayStatAppendDereg returns the static append/compact algorithm.
func SpecArrayStatAppendDereg(capacity int, o core.Options) CollectorSpec {
	return CollectorSpec{
		Label: "Array Stat Append Dereg" + optSuffix(o),
		New:   func(h *htm.Heap, threads int) core.Collector { return core.NewArrayStatAppendDereg(h, capacity, o) },
	}
}

// SpecArrayStatSearchNo returns the static search/no-compaction algorithm.
func SpecArrayStatSearchNo(capacity int) CollectorSpec {
	return CollectorSpec{
		Label: "Array Stat Search No",
		New: func(h *htm.Heap, threads int) core.Collector {
			return core.NewArrayStatSearchNo(h, capacity, stepOpts(1))
		},
	}
}

// SpecArrayDynSearchResize returns the dynamic search/compact-on-resize
// algorithm.
func SpecArrayDynSearchResize(o core.Options) CollectorSpec {
	return CollectorSpec{
		Label: "Array Dyn Search Resize" + optSuffix(o),
		New:   func(h *htm.Heap, threads int) core.Collector { return core.NewArrayDynSearchResize(h, 0, o) },
	}
}

// SpecFastCollect returns the FastCollect list algorithm.
func SpecFastCollect(o core.Options) CollectorSpec {
	return CollectorSpec{
		Label: "List Fast Collect" + optSuffix(o),
		New:   func(h *htm.Heap, threads int) core.Collector { return core.NewFastCollect(h, o) },
	}
}

// SpecHOHRC returns the hand-over-hand reference-counting list algorithm.
func SpecHOHRC(o core.Options) CollectorSpec {
	return CollectorSpec{
		Label: "List HoH RC" + optSuffix(o),
		New:   func(h *htm.Heap, threads int) core.Collector { return core.NewHOHRC(h, o) },
	}
}

// SpecStaticBaseline returns the non-HTM static baseline.
func SpecStaticBaseline(capacity int) CollectorSpec {
	return CollectorSpec{
		Label: "Static Baseline",
		New:   func(h *htm.Heap, threads int) core.Collector { return core.NewStaticBaseline(h, capacity) },
	}
}

// SpecDynamicBaseline returns the non-HTM CAS-based baseline.
func SpecDynamicBaseline() CollectorSpec {
	return CollectorSpec{
		Label: "Dynamic Baseline",
		New:   func(h *htm.Heap, threads int) core.Collector { return core.NewDynamicBaseline(h) },
	}
}

func optSuffix(o core.Options) string {
	switch {
	case o.Adaptive:
		return " (adapt)"
	case o.TrackOutcomes:
		return fmt.Sprintf(" (step %d, adapt cost)", o.Step)
	case o.Step > 1:
		return fmt.Sprintf(" (step %d)", o.Step)
	default:
		return ""
	}
}

// QueueSpec names one queue implementation for Figure 1.
type QueueSpec struct {
	Label string
	New   func(h *htm.Heap) queue.Queue
}

// QueueSpecs returns the four Figure 1 queues: the three the paper plots
// plus the epoch-based-reclamation variant, the standard third reclamation
// regime the reproduction adds for completeness.
func QueueSpecs() []QueueSpec {
	return []QueueSpec{
		{Label: "HTM", New: func(h *htm.Heap) queue.Queue { return queue.NewHTMQueue(h) }},
		{Label: "Michael-Scott", New: func(h *htm.Heap) queue.Queue { return queue.NewMSQueue(h) }},
		{Label: "Michael-Scott ROP", New: func(h *htm.Heap) queue.Queue { return queue.NewMSQueueROP(h) }},
		{Label: "Michael-Scott EBR", New: func(h *htm.Heap) queue.Queue { return queue.NewMSQueueEBR(h) }},
	}
}
