package harness

import (
	"fmt"
	"sort"
	"time"
)

// Chaos-run reduction: cmd/chaoskv drives a KV service under seeded fault
// injection and measures how gracefully it degrades. This file owns the
// figure shapes so the chaos report carries the same unit-tagged titles the
// trend gate understands ([ops/us] up, [ns/op] down, [count] informational);
// the binary only supplies numbers.

// ChaosPoint is one measured point of the overload sweep: the service driven
// at one injection probability for a fixed window.
type ChaosPoint struct {
	// Prob is the per-site injection probability driven at this point.
	Prob float64
	// Admitted counts requests that reached the engine and completed;
	// Rejected counts 503s (shed at admission or abandoned at the deadline).
	Admitted uint64
	Rejected uint64
	// Elapsed is the measured wall-clock window.
	Elapsed time.Duration
	// P50/P99 are admitted-request latency percentiles.
	P50, P99 time.Duration
	// Sheds is the governor's refusal count, Deadlines the operations
	// abandoned at the request deadline.
	Sheds     uint64
	Deadlines uint64
	// Spurious and Stalls count the injected events the engine observed
	// (injected aborts, fallback lock-holder stalls).
	Spurious uint64
	Stalls   uint64
}

// AdmittedOpsPerUs is the completed-request throughput at this point.
func (p ChaosPoint) AdmittedOpsPerUs() float64 {
	us := float64(p.Elapsed.Microseconds())
	if us <= 0 {
		return 0
	}
	return float64(p.Admitted) / us
}

// chaosXs renders the sweep's X axis (injection probabilities).
func chaosXs(points []ChaosPoint) []string {
	xs := make([]string, len(points))
	for i, p := range points {
		xs[i] = fmt.Sprintf("p=%.2f", p.Prob)
	}
	return xs
}

// ChaosThroughputTable is the degradation curve: admitted throughput as the
// injection probability rises. Tagged [ops/us] so the trend gate reads every
// point as higher-is-better.
func ChaosThroughputTable(points []ChaosPoint) *Table {
	t := &Table{
		Title:  "Chaos overload: admitted throughput vs injection [ops/us]",
		XLabel: "inject",
		Xs:     chaosXs(points),
	}
	s := Series{Label: "admitted"}
	for _, p := range points {
		s.Ys = append(s.Ys, p.AdmittedOpsPerUs())
	}
	t.Series = append(t.Series, s)
	return t
}

// ChaosLatencyTable is the bounded-latency claim: percentiles of ADMITTED
// requests only. Shed and abandoned requests answer fast 503s and are
// excluded — the table shows what clients that got through experienced.
func ChaosLatencyTable(points []ChaosPoint) *Table {
	t := &Table{
		Title:  "Chaos overload: admitted latency percentiles [ns/op]",
		XLabel: "inject",
		Xs:     chaosXs(points),
	}
	p50 := Series{Label: "p50"}
	p99 := Series{Label: "p99"}
	for _, p := range points {
		p50.Ys = append(p50.Ys, float64(p.P50))
		p99.Ys = append(p99.Ys, float64(p.P99))
	}
	t.Series = append(t.Series, p50, p99)
	return t
}

// ChaosSheddingTable records where the rejected traffic went and how much
// adversity was injected. Counts scale with run duration, so the table is
// informational ([count]) — diffed but never gating.
func ChaosSheddingTable(points []ChaosPoint) *Table {
	t := &Table{
		Title:  "Chaos overload: rejected requests and injected events [count]",
		XLabel: "inject",
		Xs:     chaosXs(points),
	}
	series := []struct {
		label string
		get   func(ChaosPoint) uint64
	}{
		{"rejected 503s", func(p ChaosPoint) uint64 { return p.Rejected }},
		{"admission sheds", func(p ChaosPoint) uint64 { return p.Sheds }},
		{"deadline abandons", func(p ChaosPoint) uint64 { return p.Deadlines }},
		{"spurious aborts", func(p ChaosPoint) uint64 { return p.Spurious }},
		{"fallback stalls", func(p ChaosPoint) uint64 { return p.Stalls }},
	}
	for _, sp := range series {
		s := Series{Label: sp.label}
		for _, p := range points {
			s.Ys = append(s.Ys, float64(sp.get(p)))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// ChaosTables bundles the three chaos figures in render order.
func ChaosTables(points []ChaosPoint) []*Table {
	return []*Table{
		ChaosThroughputTable(points),
		ChaosLatencyTable(points),
		ChaosSheddingTable(points),
	}
}

// ChaosBenchmarks flattens the sweep into named benchmark entries so the p99
// trajectory gates point-by-point across snapshots.
func ChaosBenchmarks(points []ChaosPoint) []Benchmark {
	var bs []Benchmark
	for _, p := range points {
		bs = append(bs, Benchmark{
			Name:    fmt.Sprintf("chaoskv/admitted-p99/p=%.2f", p.Prob),
			NsPerOp: float64(p.P99),
			Note: fmt.Sprintf("admitted=%d rejected=%d sheds=%d deadlines=%d",
				p.Admitted, p.Rejected, p.Sheds, p.Deadlines),
		})
	}
	return bs
}

// LatencyPercentile returns the q-quantile (0 ≤ q ≤ 1) of samples, sorting
// them in place. Zero samples yield zero.
func LatencyPercentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := int(q * float64(len(samples)))
	if i >= len(samples) {
		i = len(samples) - 1
	}
	return samples[i]
}
