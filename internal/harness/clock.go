package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/htm"
)

// The sharded-clock workload: every worker runs small read-write
// transactions on its own private block, so footprints are fully disjoint
// and no transaction ever conflicts with another. With a single version
// clock the commits still serialize on one cache line — the last global RMW
// on the otherwise contention-free path. With Config.ClockShards each
// worker's commit ticks only its home shard's padded clock word, so the
// workload's only shared writes disappear and throughput should track the
// thread count (modulo the host's real core count).

// clockHeapWords sizes the per-point heap for the disjoint workload.
const clockHeapWords = 1 << 18

// clockTxnWords is the footprint of one disjoint transaction: read all the
// words, rewrite one. Small enough to stay far from the store-buffer limit.
const clockTxnWords = 4

// DisjointCommits measures disjoint read-write transaction throughput with
// `threads` workers on a heap configured with `shards` clock shards and
// `stripeShift` metadata striping.
func DisjointCommits(cfg Config, threads, shards, stripeShift int) Result {
	cfg = cfg.withDefaults()
	h := htm.NewHeap(htm.Config{
		Words:       clockHeapWords,
		ClockShards: shards,
		StripeShift: stripeShift,
		YieldEvery:  cfg.YieldEvery,
		NoMaxLive:   true,
	})
	b := newBarrier(threads)
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := h.NewThread()
			blk := th.Alloc(clockTxnWords)
			b.arrive()
			d := deadliner{deadline: time.Now().Add(cfg.PointDuration)}
			n := uint64(0)
			for !d.expired() {
				th.Atomic(func(tx *htm.Txn) {
					var sum uint64
					for i := 0; i < clockTxnWords; i++ {
						sum += tx.Load(blk + htm.Addr(i))
					}
					tx.Store(blk, sum+1)
				})
				n++
			}
			ops.Add(n)
		}(w)
	}
	startedAt := b.release()
	wg.Wait()
	return Result{Ops: ops.Load(), Elapsed: time.Since(startedAt), Stats: h.Stats()}
}

// ClockScaling renders the sharded-clock figure: disjoint read-write
// transaction throughput versus thread count, one series per clock shard
// count. shards=1 is the pre-sharding single-clock baseline; on a machine
// with real cores the sharded series pull away as threads grow, and on a
// time-sliced host they must at least never fall below the baseline.
func ClockScaling(cfg Config, threadCounts, shardCounts []int) *Table {
	if threadCounts == nil {
		threadCounts = DefaultThreadCounts
	}
	if shardCounts == nil {
		shardCounts = []int{1, 4, 16, runtime.GOMAXPROCS(0)}
	}
	t := &Table{Title: "Sharded clock: disjoint read-write commits [ops/us]", XLabel: "threads"}
	for _, n := range threadCounts {
		t.Xs = append(t.Xs, fmt.Sprint(n))
	}
	seen := map[int]bool{}
	for _, shards := range shardCounts {
		if seen[shards] {
			continue // GOMAXPROCS may collide with a fixed count
		}
		seen[shards] = true
		s := Series{Label: fmt.Sprintf("shards=%d", shards)}
		for _, n := range threadCounts {
			r := DisjointCommits(cfg, n, shards, 0)
			s.Ys = append(s.Ys, r.OpsPerUs())
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// stripeNeighborWords is the block size of the stripe-aliasing workload:
// wide enough that at StripeShift 4 a block still spans a full stripe.
const stripeNeighborWords = 16

// StripeContention measures the striping tradeoff: `threads` workers share
// one block of stripeNeighborWords words, each transaction rewriting a
// single worker-owned word (all footprints disjoint at word granularity).
// With StripeShift 0 these never conflict; as the shift grows, more workers
// alias onto the same metadata word and commit-time CAS conflicts appear.
func StripeContention(cfg Config, threads, stripeShift int) Result {
	cfg = cfg.withDefaults()
	h := htm.NewHeap(htm.Config{
		Words:       clockHeapWords,
		StripeShift: stripeShift,
		YieldEvery:  cfg.YieldEvery,
		NoMaxLive:   true,
	})
	setup := h.NewThread()
	shared := setup.Alloc(stripeNeighborWords)
	b := newBarrier(threads)
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := h.NewThread()
			word := shared + htm.Addr(id%stripeNeighborWords)
			b.arrive()
			d := deadliner{deadline: time.Now().Add(cfg.PointDuration)}
			n := uint64(0)
			for !d.expired() {
				th.Atomic(func(tx *htm.Txn) {
					tx.Store(word, tx.Load(word)+1)
				})
				n++
			}
			ops.Add(n)
		}(w)
	}
	startedAt := b.release()
	wg.Wait()
	return Result{Ops: ops.Load(), Elapsed: time.Since(startedAt), Stats: h.Stats()}
}

// StripeConflictTable renders the striping tradeoff at a fixed thread
// count: neighbor-word throughput, the overall abort rate, and the share of
// aborts attributed to stripe aliasing, across StripeShift values. The
// memory saved by striping (one metadata word per 2^shift words) is bought
// with exactly the false conflicts this table makes visible.
func StripeConflictTable(cfg Config, threads int, shifts []int) *Table {
	if shifts == nil {
		shifts = []int{0, 1, 2, 4}
	}
	t := &Table{
		Title:  fmt.Sprintf("Stripe knob: neighbor-word commits, %d threads", threads),
		XLabel: "stripe shift",
	}
	for _, sh := range shifts {
		t.Xs = append(t.Xs, fmt.Sprint(sh))
	}
	tput := Series{Label: "throughput [ops/us]"}
	aborts := Series{Label: "aborts per 1k ops"}
	aliased := Series{Label: "stripe conflicts per 1k ops"}
	for _, sh := range shifts {
		r := StripeContention(cfg, threads, sh)
		tput.Ys = append(tput.Ys, r.OpsPerUs())
		perK := func(n uint64) float64 {
			if r.Ops == 0 {
				return 0
			}
			return 1000 * float64(n) / float64(r.Ops)
		}
		aborts.Ys = append(aborts.Ys, perK(r.Stats.TotalAborts()))
		aliased.Ys = append(aliased.Ys, perK(r.Stats.StripeConflicts))
	}
	t.Series = append(t.Series, tput, aborts, aliased)
	return t
}
