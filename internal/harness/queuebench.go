package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/htm"
	"repro/queue"
)

// QueueThroughput runs the §1.1 workload (Figure 1): threads perform a
// 50/50 mix of enqueues and dequeues on one queue, pre-filled so dequeues
// mostly succeed. Throughput counts all operations.
func QueueThroughput(cfg Config, mk func(h *htm.Heap) queue.Queue, threads, prefill int) Result {
	cfg = cfg.withDefaults()
	h := cfg.newHeap()
	q := mk(h)

	setup := q.NewCtx(h.NewThread())
	for i := 0; i < prefill; i++ {
		q.Enqueue(setup, uint64(i+1))
	}
	queue.CloseCtx(q, setup)

	b := newBarrier(threads)
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := q.NewCtx(h.NewThread())
			rng := uint64(id+1) * 0x9E3779B97F4A7C15
			b.arrive()
			d := deadliner{deadline: time.Now().Add(cfg.PointDuration)}
			n := uint64(0)
			vn := uint64(0)
			for !d.expired() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				if rng&1 == 0 {
					vn++
					q.Enqueue(c, uint64(id+1)<<32|vn)
				} else {
					q.Dequeue(c)
				}
				n++
			}
			ops.Add(n)
			queue.CloseCtx(q, c)
		}(w)
	}
	startedAt := b.release()
	wg.Wait()
	elapsed := time.Since(startedAt)
	return Result{Ops: ops.Load(), Elapsed: elapsed, Stats: h.Stats()}
}
