package harness

import (
	"fmt"
	"strings"
)

// Bench-trend diffing: compare two Reports point by point so successive
// BENCH_*.json snapshots (or a CI run against the committed snapshot) become
// a regression gate instead of an archive. Matching is by identity — table
// title + series label + x position, or benchmark name — so runs with
// different sweeps simply compare their intersection.

// Direction classifies how a metric should move to count as an improvement.
type Direction int

const (
	// Informational metrics (bytes, percentages, counts) are diffed and
	// printed but never gate.
	Informational Direction = 0
	// HigherIsBetter marks throughput-style metrics (ops/us).
	HigherIsBetter Direction = 1
	// LowerIsBetter marks latency-style metrics (ns/op, cycles).
	LowerIsBetter Direction = -1
)

// pointDirection infers a table point's Direction from its table title and
// column label. Column-level units (the QueueComparison table mixes ops/us,
// ns/op and bytes across columns) take precedence over the title-level unit.
func pointDirection(title, x string) Direction {
	lx := strings.ToLower(x)
	switch {
	case strings.Contains(lx, "ops/us"):
		return HigherIsBetter
	case strings.Contains(lx, "ns/op") || strings.Contains(lx, "cycles"):
		return LowerIsBetter
	case strings.Contains(lx, "%") || strings.Contains(lx, " b") || lx == "b":
		return Informational
	}
	lt := strings.ToLower(title)
	switch {
	case strings.Contains(lt, "[ops/us]"):
		return HigherIsBetter
	case strings.Contains(lt, "[ns/op]") || strings.Contains(lt, "[cycles]"):
		return LowerIsBetter
	default:
		return Informational
	}
}

// TrendRow is one matched measurement across the two reports.
type TrendRow struct {
	Name      string
	Old, New  float64
	DeltaPct  float64 // (new-old)/old in percent; sign is raw, not goodness
	Direction Direction
	// Regression is true when the metric moved against its Direction by more
	// than the threshold passed to DiffReports.
	Regression bool
}

// TrendReport is the result of diffing two Reports.
type TrendReport struct {
	OldLabel, NewLabel string
	ThresholdPct       float64
	Rows               []TrendRow
	// Unmatched counts points present in only one of the reports
	// (MissingInNew + AddedInNew).
	Unmatched int
	// MissingInNew counts points the old report had that the new one lacks —
	// shrunken coverage. A series silently dropped from a snapshot would
	// otherwise read as "no regressions"; callers that gate on trends should
	// treat MissingInNew > 0 as a failure (benchtrend -fail-shrunk does).
	MissingInNew int
	// AddedInNew counts points only the new report has — grown coverage,
	// never a failure.
	AddedInNew int
}

// noteMissing records n points of shrunken coverage.
func (tr *TrendReport) noteMissing(n int) {
	tr.MissingInNew += n
	tr.Unmatched += n
}

// noteAdded records n points of new coverage.
func (tr *TrendReport) noteAdded(n int) {
	tr.AddedInNew += n
	tr.Unmatched += n
}

func (tr *TrendReport) addPoint(name string, oldV, newV float64, dir Direction) {
	row := TrendRow{Name: name, Old: oldV, New: newV, Direction: dir}
	if oldV != 0 {
		row.DeltaPct = (newV - oldV) / oldV * 100
	} else if newV != 0 {
		// From zero, any movement is infinite in percent; gate on direction.
		row.DeltaPct = 100
	}
	switch dir {
	case HigherIsBetter:
		row.Regression = row.DeltaPct < -tr.ThresholdPct
	case LowerIsBetter:
		row.Regression = row.DeltaPct > tr.ThresholdPct
	}
	tr.Rows = append(tr.Rows, row)
}

// Regressions returns the rows that moved against their direction by more
// than the threshold.
func (tr *TrendReport) Regressions() []TrendRow {
	var out []TrendRow
	for _, r := range tr.Rows {
		if r.Regression {
			out = append(out, r)
		}
	}
	return out
}

// DiffReports matches every series point and benchmark of oldR and newR by
// identity and computes per-point deltas. thresholdPct is the regression
// gate in percent (e.g. 10 flags >10% moves against the metric's direction).
func DiffReports(oldR, newR *Report, thresholdPct float64) *TrendReport {
	tr := &TrendReport{
		OldLabel:     oldR.Label,
		NewLabel:     newR.Label,
		ThresholdPct: thresholdPct,
	}

	// Index the old report's table points by title/label/x.
	type key struct{ title, series, x string }
	oldPoints := make(map[key]float64)
	for _, t := range oldR.Tables {
		for _, s := range t.Series {
			for i, y := range s.Ys {
				if i < len(t.Xs) {
					oldPoints[key{t.Title, s.Label, t.Xs[i]}] = y
				}
			}
		}
	}
	matched := make(map[key]bool)
	for _, t := range newR.Tables {
		for _, s := range t.Series {
			for i, y := range s.Ys {
				if i >= len(t.Xs) {
					continue
				}
				k := key{t.Title, s.Label, t.Xs[i]}
				oldY, ok := oldPoints[k]
				if !ok {
					tr.noteAdded(1)
					continue
				}
				matched[k] = true
				name := fmt.Sprintf("%s / %s @ %s", trimTitle(t.Title), s.Label, t.Xs[i])
				tr.addPoint(name, oldY, y, pointDirection(t.Title, t.Xs[i]))
			}
		}
	}
	tr.noteMissing(len(oldPoints) - len(matched))

	// Benchmarks match by name; each carries its unit in its fields.
	oldBench := make(map[string]Benchmark)
	for _, b := range oldR.Benchmarks {
		oldBench[b.Name] = b
	}
	matchedBench := 0
	for _, b := range newR.Benchmarks {
		ob, ok := oldBench[b.Name]
		if !ok {
			tr.noteAdded(1)
			continue
		}
		matchedBench++
		switch {
		case ob.NsPerOp != 0 && b.NsPerOp != 0:
			tr.addPoint(b.Name+" [ns/op]", ob.NsPerOp, b.NsPerOp, LowerIsBetter)
		case ob.OpsPerUs != 0 && b.OpsPerUs != 0:
			tr.addPoint(b.Name+" [ops/us]", ob.OpsPerUs, b.OpsPerUs, HigherIsBetter)
		default:
			// Same name but no shared unit (one report records ns/op, the
			// other ops/us): the old measurement effectively vanished from
			// the new report, so it counts as shrunken coverage rather than
			// silently dropping out of the gate.
			tr.noteMissing(1)
		}
		if ob.AllocsPerOp != b.AllocsPerOp {
			tr.addPoint(b.Name+" [allocs/op]", ob.AllocsPerOp, b.AllocsPerOp, LowerIsBetter)
		}
	}
	tr.noteMissing(len(oldBench) - matchedBench)
	return tr
}

func trimTitle(t string) string {
	if i := strings.IndexByte(t, ':'); i > 0 {
		return t[:i]
	}
	return t
}

func dirMark(d Direction) string {
	switch d {
	case HigherIsBetter:
		return "↑"
	case LowerIsBetter:
		return "↓"
	default:
		return " "
	}
}

// Render formats the trend as an aligned table, regressions flagged, with a
// one-line summary at the end.
func (tr *TrendReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Bench trend: %s -> %s (gate: >%.0f%% against direction) ==\n",
		tr.OldLabel, tr.NewLabel, tr.ThresholdPct)
	nameW := len("series")
	for _, r := range tr.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	// The direction mark is its own one-display-column field: the arrows are
	// multi-byte UTF-8, so padding them with %-*s (byte widths) would skew
	// the numeric columns.
	fmt.Fprintf(&b, "%-*s %s  %12s  %12s  %9s\n", nameW, "series", " ", "old", "new", "delta")
	for _, r := range tr.Rows {
		flag := ""
		if r.Regression {
			flag = "  REGRESSION"
		}
		fmt.Fprintf(&b, "%-*s %s  %12.3f  %12.3f  %+8.1f%%%s\n",
			nameW, r.Name, dirMark(r.Direction), r.Old, r.New, r.DeltaPct, flag)
	}
	regs := len(tr.Regressions())
	fmt.Fprintf(&b, "%d matched points, %d unmatched (%d missing from %s, %d new), %d regression(s) beyond %.0f%%\n",
		len(tr.Rows), tr.Unmatched, tr.MissingInNew, tr.NewLabel, tr.AddedInNew, regs, tr.ThresholdPct)
	return b.String()
}
