package harness

import (
	"fmt"
	"time"
)

// Durability-run reduction: cmd/crashkv SIGKILLs a real kvserver process at
// seeded points and measures what recovery costs and preserves. This file
// owns the figure shapes (unit-tagged titles, benchmark names) so the crash
// report plugs into the same trend/coverage gates as every other figure; the
// binary only supplies numbers.

// DurabilityPoint is one kill/restart cycle's measurement.
type DurabilityPoint struct {
	// Cycle numbers the kill/restart cycle (1-based); 0 marks auxiliary
	// phases (torn-write injection).
	Cycle int
	// Label overrides the X label for auxiliary phases ("torn").
	Label string
	// Acked counts mutations acknowledged to clients before the kill (the
	// writes recovery must preserve); Verified the keys checked after
	// restart; Lost the acknowledged writes that did NOT survive — the
	// number the whole subsystem exists to keep at zero.
	Acked    uint64
	Verified uint64
	Lost     uint64
	// Recover is the restart-to-ready time: process spawn to the readiness
	// line, which includes snapshot+log replay.
	Recover time.Duration
	// LogRecords/SnapEntries is what recovery replayed (from /stats).
	LogRecords  uint64
	SnapEntries uint64
	// TruncatedBytes is the torn tail recovery cut (nonzero only when the
	// kill landed mid-write or the torn phase injected garbage).
	TruncatedBytes int64
}

func (p DurabilityPoint) xlabel() string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("cycle=%d", p.Cycle)
}

func durabilityXs(points []DurabilityPoint) []string {
	xs := make([]string, len(points))
	for i, p := range points {
		xs[i] = p.xlabel()
	}
	return xs
}

// DurabilityRecoveryTable is the recovery-cost curve: restart-to-ready time
// per cycle as the log/snapshot state grows. Tagged [ns/op] so the trend diff
// reads it lower-is-better (the hard CI gate is coverage-only; wall-clock
// varies across hosts).
func DurabilityRecoveryTable(points []DurabilityPoint) *Table {
	t := &Table{
		Title:  "Crash durability: restart-to-ready time [ns/op]",
		XLabel: "kill",
		Xs:     durabilityXs(points),
	}
	s := Series{Label: "recover"}
	for _, p := range points {
		s.Ys = append(s.Ys, float64(p.Recover))
	}
	t.Series = append(t.Series, s)
	return t
}

// DurabilityReplayTable records what each recovery replayed and — the
// headline — how many acknowledged writes it lost. Counts scale with kill
// timing, so the table is informational ([count]); the LOST series must
// nonetheless be zero everywhere, which crashkv enforces with its exit code.
func DurabilityReplayTable(points []DurabilityPoint) *Table {
	t := &Table{
		Title:  "Crash durability: replayed state and acked-write loss [count]",
		XLabel: "kill",
		Xs:     durabilityXs(points),
	}
	series := []struct {
		label string
		get   func(DurabilityPoint) float64
	}{
		{"acked writes", func(p DurabilityPoint) float64 { return float64(p.Acked) }},
		{"keys verified", func(p DurabilityPoint) float64 { return float64(p.Verified) }},
		{"LOST acked writes", func(p DurabilityPoint) float64 { return float64(p.Lost) }},
		{"log records replayed", func(p DurabilityPoint) float64 { return float64(p.LogRecords) }},
		{"snapshot entries", func(p DurabilityPoint) float64 { return float64(p.SnapEntries) }},
		{"torn bytes truncated", func(p DurabilityPoint) float64 { return float64(p.TruncatedBytes) }},
	}
	for _, sp := range series {
		s := Series{Label: sp.label}
		for _, p := range points {
			s.Ys = append(s.Ys, sp.get(p))
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// DurabilityTables bundles the crash figures in render order.
func DurabilityTables(points []DurabilityPoint) []*Table {
	return []*Table{
		DurabilityRecoveryTable(points),
		DurabilityReplayTable(points),
	}
}

// DurabilityBenchmarks flattens recovery times into named entries so the
// restart-cost trajectory is tracked point-by-point across snapshots.
func DurabilityBenchmarks(points []DurabilityPoint) []Benchmark {
	var bs []Benchmark
	for _, p := range points {
		bs = append(bs, Benchmark{
			Name:    "crashkv/recovery/" + p.xlabel(),
			NsPerOp: float64(p.Recover),
			Note: fmt.Sprintf("acked=%d verified=%d lost=%d replayed=%d+%d",
				p.Acked, p.Verified, p.Lost, p.SnapEntries, p.LogRecords),
		})
	}
	return bs
}
