// Package queue implements the paper's motivating example (§1.1, Figure 1):
// three concurrent FIFO queues on the simulated heap.
//
//   - HTMQueue: simple sequential code inside hardware transactions. A
//     dequeue frees its node immediately; a racing transaction that still
//     holds a reference aborts via sandboxing instead of crashing. This is
//     the "reasonable homework exercise" algorithm.
//   - MSQueue: the Michael-Scott lock-free queue with per-thread node pools.
//     Nodes are recycled but never freed, so quiescent memory is proportional
//     to the historical maximum queue size, and counted (tagged) pointers are
//     needed against ABA.
//   - MSQueueROP: the Michael-Scott queue with hazard-pointer (ROP)
//     reclamation, which can truly free nodes at the cost of
//     announce/validate/scan overhead on every operation.
//
// All three share a Queue interface over per-thread contexts.
package queue

import (
	"repro/internal/htm"
)

// Node layout shared by all queues: a value and a next pointer (the MS
// queues pack a modification tag into the next word's high bits).
const (
	qVal = iota
	qNext
	qNodeWords
)

// Queue is a concurrent FIFO of word-sized values.
type Queue interface {
	// Name returns the implementation's name as used in Figure 1.
	Name() string
	// NewCtx creates a per-goroutine execution context.
	NewCtx(th *htm.Thread) *Ctx
	// Enqueue appends v.
	Enqueue(c *Ctx, v uint64)
	// Dequeue removes and returns the head value; ok is false when empty.
	Dequeue(c *Ctx) (v uint64, ok bool)
}

// Ctx is a per-thread queue context (htm thread, node pool or hazard record).
type Ctx struct {
	th   *htm.Thread
	priv any
}

// Thread returns the underlying htm thread.
func (c *Ctx) Thread() *htm.Thread { return c.th }

// Drain dequeues until empty and returns the values (test helper).
func Drain(q Queue, c *Ctx) []uint64 {
	var out []uint64
	for {
		v, ok := q.Dequeue(c)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
