// Package hazard implements hazard-pointer-based safe memory reclamation
// (Michael [14], equivalently the "Repeat Offender Problem" ROP mechanism of
// Herlihy et al. [10]) over the simulated heap.
//
// This is the paper's non-HTM point of comparison for memory reclamation: a
// thread announces each pointer it is about to dereference in a shared
// hazard slot, re-validates the pointer after announcing, and before freeing
// a block must scan all other threads' announcements — a collect — to ensure
// the block is not in use. The announce-validate-scan traffic is the 35–75%
// overhead the paper measures on the Michael-Scott queue in Figure 1.
//
// Hazard records live in the simulated heap, so their space — proportional
// to the historical maximum number of participating threads (paper §1.2) —
// shows up in the heap's live-word accounting alongside everything else.
package hazard

import (
	"runtime"

	"repro/htm"
)

// Hazard record layout: link to the next record, an active flag, and K
// hazard-pointer slots.
const (
	rNext = iota
	rActive
	rHP0
	// record size = rHP0 + K
)

// Domain is a reclamation domain: a lock-free list of hazard records plus
// per-thread retirement lists. All pointers it manages are heap addresses.
type Domain struct {
	h    *htm.Heap
	head htm.Addr // one word: address of the first hazard record
	k    int      // hazard pointers per record
}

// NewDomain creates a reclamation domain whose records carry k hazard
// pointers each (the Michael-Scott queue needs 2).
func NewDomain(h *htm.Heap, k int) *Domain {
	if k < 1 {
		k = 1
	}
	th := h.NewThread()
	return &Domain{h: h, head: th.Alloc(1), k: k}
}

// Record is a thread's acquired hazard record plus its private retirement
// list. A Record must be used by a single goroutine.
type Record struct {
	d       *Domain
	th      *htm.Thread
	addr    htm.Addr // this thread's record in the shared list
	retired []htm.Addr
	// scanThreshold is the retirement-list length that triggers a scan.
	scanThreshold int
}

// Acquire finds an inactive hazard record to adopt or appends a fresh one —
// the Register step of the dynamic collect embedded in this mechanism.
func (d *Domain) Acquire(th *htm.Thread) *Record {
	h := d.h
	// Try to re-activate a released record.
	for r := htm.Addr(h.LoadNT(d.head)); r != htm.NilAddr; r = htm.Addr(h.LoadNT(r + rNext)) {
		if h.LoadNT(r+rActive) == 0 && h.CASNT(r+rActive, 0, 1) {
			rec := &Record{d: d, th: th, addr: r, scanThreshold: 2 * d.k * 8}
			rec.clear()
			return rec
		}
	}
	// Append a new record at the head.
	r := th.Alloc(rHP0 + d.k)
	h.StoreNT(r+rActive, 1)
	for {
		first := h.LoadNT(d.head)
		h.StoreNT(r+rNext, first)
		if h.CASNT(d.head, first, uint64(r)) {
			return &Record{d: d, th: th, addr: r, scanThreshold: 2 * d.k * 8}
		}
	}
}

func (r *Record) clear() {
	for i := 0; i < r.d.k; i++ {
		r.d.h.StoreNT(r.addr+rHP0+htm.Addr(i), 0)
	}
}

// Protect announces intent to dereference p in hazard slot i. The caller
// must re-validate that p is still reachable after Protect returns before
// dereferencing it (the announce-then-verify protocol).
func (r *Record) Protect(i int, p htm.Addr) {
	r.d.h.StoreNT(r.addr+rHP0+htm.Addr(i), uint64(p))
}

// ClearSlot retracts the announcement in slot i.
func (r *Record) ClearSlot(i int) {
	r.d.h.StoreNT(r.addr+rHP0+htm.Addr(i), 0)
}

// Retire queues p for deallocation once no thread announces it. When the
// private retirement list reaches the scan threshold, Scan runs.
func (r *Record) Retire(p htm.Addr) {
	r.retired = append(r.retired, p)
	if len(r.retired) >= r.scanThreshold {
		r.Scan()
	}
}

// Scan performs the collect over all hazard records and frees every retired
// block that no thread announces. This is precisely a Collect over the
// domain's announcements (paper §1.2).
func (r *Record) Scan() {
	h := r.d.h
	hazards := make(map[htm.Addr]bool)
	for rec := htm.Addr(h.LoadNT(r.d.head)); rec != htm.NilAddr; rec = htm.Addr(h.LoadNT(rec + rNext)) {
		for i := 0; i < r.d.k; i++ {
			if p := htm.Addr(h.LoadNT(rec + rHP0 + htm.Addr(i))); p != htm.NilAddr {
				hazards[p] = true
			}
		}
	}
	kept := r.retired[:0]
	for _, p := range r.retired {
		if hazards[p] {
			kept = append(kept, p)
		} else {
			r.th.Free(p)
		}
	}
	r.retired = kept
}

// Release retracts all announcements and deactivates the record so another
// thread can adopt it (the Deregister step). It first retracts this thread's
// own announcements — so concurrent Releases cannot block each other — then
// scans until its private retirement backlog drains.
func (r *Record) Release() {
	r.clear()
	for len(r.retired) > 0 {
		r.Scan()
		runtime.Gosched()
	}
	r.d.h.StoreNT(r.addr+rActive, 0)
}

// RetiredLen reports the current private retirement backlog (diagnostics).
func (r *Record) RetiredLen() int { return len(r.retired) }

// Records reports how many hazard records exist in the domain (diagnostics;
// grows to the historical maximum thread count, the space property §1.2
// discusses).
func (d *Domain) Records() int {
	h := d.h
	n := 0
	for rec := htm.Addr(h.LoadNT(d.head)); rec != htm.NilAddr; rec = htm.Addr(h.LoadNT(rec + rNext)) {
		n++
	}
	return n
}
