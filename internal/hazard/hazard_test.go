package hazard

import (
	"sync"
	"testing"

	"repro/htm"
)

func TestAcquireReusesReleasedRecords(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 16})
	d := NewDomain(h, 2)
	th := h.NewThread()
	r1 := d.Acquire(th)
	if d.Records() != 1 {
		t.Fatalf("records = %d, want 1", d.Records())
	}
	r1.Release()
	r2 := d.Acquire(th)
	if d.Records() != 1 {
		t.Errorf("released record not reused: %d records", d.Records())
	}
	if r2.addr != r1.addr {
		t.Errorf("expected record reuse, got %v vs %v", r2.addr, r1.addr)
	}
	r2.Release()
}

func TestRecordsGrowToConcurrentMax(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 16})
	d := NewDomain(h, 1)
	th := h.NewThread()
	var recs []*Record
	for i := 0; i < 8; i++ {
		recs = append(recs, d.Acquire(th))
	}
	if d.Records() != 8 {
		t.Fatalf("records = %d, want 8", d.Records())
	}
	for _, r := range recs {
		r.Release()
	}
	// Historical maximum persists — the space property of §1.2.
	if d.Records() != 8 {
		t.Errorf("records = %d after release, want 8 (historical max)", d.Records())
	}
}

func TestProtectPreventsFree(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 16})
	d := NewDomain(h, 1)
	th := h.NewThread()
	owner := d.Acquire(th)
	guard := d.Acquire(th)

	blk := th.Alloc(2)
	h.StoreNT(blk, 42)
	guard.Protect(0, blk)
	owner.Retire(blk)
	owner.Scan()
	// Still protected: must not have been freed.
	if v := h.LoadNT(blk); v != 42 {
		t.Fatalf("protected block damaged: %d", v)
	}
	if owner.RetiredLen() != 1 {
		t.Fatalf("retired len = %d, want 1", owner.RetiredLen())
	}
	guard.ClearSlot(0)
	owner.Scan()
	if owner.RetiredLen() != 0 {
		t.Errorf("block not freed after protection cleared")
	}
	guard.Release()
	owner.Release()
}

func TestRetireTriggersScanAtThreshold(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 16})
	d := NewDomain(h, 1)
	th := h.NewThread()
	r := d.Acquire(th)
	live := h.Stats().LiveWords
	for i := 0; i < r.scanThreshold; i++ {
		r.Retire(th.Alloc(1))
	}
	if r.RetiredLen() != 0 {
		t.Errorf("retired backlog = %d after threshold scan", r.RetiredLen())
	}
	if got := h.Stats().LiveWords; got != live {
		t.Errorf("live words = %d, want %d (all retired blocks freed)", got, live)
	}
	r.Release()
}

func TestConcurrentProtectRetire(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Readers chase a published pointer under hazard protection while a
	// writer swaps and retires blocks; the heap panics on any premature free.
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	d := NewDomain(h, 1)
	setup := h.NewThread()
	ptr := setup.Alloc(1)
	blk := setup.Alloc(2)
	h.StoreNT(blk, 7)
	h.StoreNT(blk+1, 7)
	h.StoreNT(ptr, uint64(blk))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := h.NewThread()
		w := d.Acquire(th)
		for i := uint64(8); ; i++ {
			select {
			case <-stop:
				w.Release()
				return
			default:
			}
			nb := th.Alloc(2)
			h.StoreNT(nb, i)
			h.StoreNT(nb+1, i)
			old := htm.Addr(h.LoadNT(ptr))
			h.StoreNT(ptr, uint64(nb))
			w.Retire(old)
		}
	}()
	var rwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			th := h.NewThread()
			r := d.Acquire(th)
			defer r.Release()
			for n := 0; n < 5000; n++ {
				for {
					b := htm.Addr(h.LoadNT(ptr))
					r.Protect(0, b)
					if htm.Addr(h.LoadNT(ptr)) != b {
						continue // revalidate after announcing
					}
					x := h.LoadNT(b)
					y := h.LoadNT(b + 1)
					if x != y {
						t.Errorf("torn read through hazard pointer: %d vs %d", x, y)
					}
					r.ClearSlot(0)
					break
				}
			}
		}()
	}
	rwg.Wait()
	close(stop)
	wg.Wait()
}
