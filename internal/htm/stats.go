package htm

import (
	"fmt"
	"strings"
	"sync/atomic"
)

const numAbortCodes = int(AbortCapacity) + 1

// stats is the heap-internal statistics block, updated with atomics.
type stats struct {
	starts       atomic.Uint64
	commits      atomic.Uint64
	aborts       [numAbortCodes]atomic.Uint64
	fallbackRuns atomic.Uint64
	allocCalls   atomic.Uint64
	freeCalls    atomic.Uint64
	liveWords    atomic.Uint64
	maxLiveWords atomic.Uint64
}

// Stats is a point-in-time snapshot of heap and transaction statistics.
type Stats struct {
	// Starts is the number of transaction attempts begun.
	Starts uint64
	// Commits is the number of attempts that committed.
	Commits uint64
	// Aborts counts failed attempts by reason.
	Aborts map[AbortCode]uint64
	// FallbackRuns is the number of operations executed under the TLE lock.
	FallbackRuns uint64
	// AllocCalls and FreeCalls count allocator operations.
	AllocCalls, FreeCalls uint64
	// LiveWords is the number of currently allocated payload words;
	// MaxLiveWords is its high-water mark. These drive the paper's
	// space-usage comparisons.
	LiveWords, MaxLiveWords uint64
}

// TotalAborts returns the sum of aborts across all reasons.
func (s Stats) TotalAborts() uint64 {
	var t uint64
	for _, n := range s.Aborts {
		t += n
	}
	return t
}

// AbortRate returns aborted attempts as a fraction of all attempts, or 0 if
// no attempts were made.
func (s Stats) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.TotalAborts()) / float64(s.Starts)
}

// String renders the snapshot as a single diagnostic line.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "starts=%d commits=%d aborts=%d (", s.Starts, s.Commits, s.TotalAborts())
	first := true
	for c := AbortConflict; c <= AbortCapacity; c++ {
		if n := s.Aborts[c]; n > 0 {
			if !first {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%d", c, n)
			first = false
		}
	}
	fmt.Fprintf(&b, ") fallback=%d alloc=%d free=%d live=%dw maxLive=%dw",
		s.FallbackRuns, s.AllocCalls, s.FreeCalls, s.LiveWords, s.MaxLiveWords)
	return b.String()
}

// Stats returns a snapshot of the heap's counters. Counters are read without
// mutual exclusion, so concurrent activity may be partially reflected; this
// is acceptable for the reporting the snapshot feeds.
func (h *Heap) Stats() Stats {
	s := Stats{
		Starts:       h.stats.starts.Load(),
		Commits:      h.stats.commits.Load(),
		Aborts:       make(map[AbortCode]uint64, numAbortCodes),
		FallbackRuns: h.stats.fallbackRuns.Load(),
		AllocCalls:   h.stats.allocCalls.Load(),
		FreeCalls:    h.stats.freeCalls.Load(),
		LiveWords:    h.stats.liveWords.Load(),
		MaxLiveWords: h.stats.maxLiveWords.Load(),
	}
	for c := 1; c < numAbortCodes; c++ {
		if n := h.stats.aborts[c].Load(); n > 0 {
			s.Aborts[AbortCode(c)] = n
		}
	}
	return s
}

// ResetMaxLive resets the live-words high-water mark to the current live
// count, so space measurements can be scoped to an experiment phase.
func (h *Heap) ResetMaxLive() {
	h.stats.maxLiveWords.Store(h.stats.liveWords.Load())
}
