package htm

// Rock-like defaults. RockStoreBufferSize is the size of the store buffer on
// Sun's Rock prototype, which bounds the number of distinct words a
// transaction may write (paper §3.4: "we could not use step sizes greater
// than 32, which is the size of Rock's store buffer").
const (
	RockStoreBufferSize = 32

	defaultHeapWords  = 1 << 20
	defaultMaxRetries = 256
	defaultMaxReadSet = 1 << 16
)

// Config parameterizes a simulated Heap and its transaction engine. The zero
// value selects Rock-like defaults via NewHeap.
type Config struct {
	// Words is the arena capacity in 64-bit words. Defaults to 1<<20.
	Words int

	// StoreBufferSize bounds the number of distinct words a single
	// transaction may write before aborting with AbortOverflow. Defaults to
	// RockStoreBufferSize (32). Set to a negative value for an unbounded
	// store buffer (a "future HTM", paper §6).
	StoreBufferSize int

	// MaxReadSet bounds the transactional read set; exceeding it aborts with
	// AbortCapacity. Rock tracks reads in the L1 cache, which is large
	// relative to the store buffer, so the default is generous (1<<16).
	// Set to a negative value for an unbounded read set.
	MaxReadSet int

	// Sandboxed selects Rock-style sandboxing: a transaction that
	// dereferences freed or nil memory aborts with AbortIllegal. When false,
	// such an access panics, modeling a segmentation fault on HTM designs
	// without sandboxing. Defaults to true (NewHeap flips the internal
	// representation so the zero Config is sandboxed).
	Sandboxed bool

	// NoSandbox disables sandboxing. Provided so that the zero Config is
	// Rock-like; use this instead of Sandboxed=false.
	NoSandbox bool

	// AllowAllocInTxn permits Txn.Alloc and Txn.Free. Rock could not run the
	// CAS-based malloc inside transactions (paper §6), so the paper's
	// algorithms pre-allocate outside transactions; this switch models a
	// TM-aware allocator on a future HTM.
	AllowAllocInTxn bool

	// MaxRetries is the number of attempts Thread.Atomic makes before either
	// engaging the TLE fallback lock (EnableTLE) or panicking. Defaults to
	// 256.
	MaxRetries int

	// EnableTLE enables the transactional-lock-elision fallback described in
	// paper §6: after MaxRetries failed attempts the operation runs under a
	// global lock that every transaction monitors.
	EnableTLE bool

	// NoMaxLive disables exact high-water tracking, removing the last
	// globally shared counters from the allocation fast path. Stats then
	// derives LiveWords from the per-thread cells and MaxLiveWords becomes
	// the largest live count observed at any Stats snapshot. Both are exact
	// when snapshots are taken at quiescence; a mid-run snapshot can tear
	// across cells and over- or under-state them. Throughput-only runs set
	// this; space-measured runs must leave it unset.
	NoMaxLive bool

	// YieldEvery makes a running transaction yield the processor after every
	// N transactional accesses (0 = never). On hosts with fewer cores than
	// simulated threads, goroutines otherwise run whole transactions within
	// one scheduler quantum and cross-thread conflicts almost never occur;
	// yielding mid-transaction restores the property that a transaction
	// occupies a window of real time during which other "cores" run, so the
	// conflict/abort gradient the paper sweeps is reproduced. Benchmarks set
	// this; unit tests of engine semantics leave it 0.
	YieldEvery int

	// trackMaxLive is the derived internal form of !NoMaxLive: exact
	// LiveWords/MaxLiveWords maintenance on the alloc/free path (a globally
	// shared live counter plus a CAS high-water loop per allocation), which
	// is what the paper's space figures need. Set by withDefaults so the
	// zero Config is exact.
	trackMaxLive bool
}

func (c Config) withDefaults() Config {
	if c.Words <= 0 {
		c.Words = defaultHeapWords
	}
	if c.StoreBufferSize == 0 {
		c.StoreBufferSize = RockStoreBufferSize
	}
	if c.MaxReadSet == 0 {
		c.MaxReadSet = defaultMaxReadSet
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = defaultMaxRetries
	}
	c.Sandboxed = !c.NoSandbox
	c.trackMaxLive = !c.NoMaxLive
	return c
}
