package htm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// orec encoding: bit 0 is the lock bit; the remaining 63 bits are the version
// number, drawn from the heap's global clock.
const orecLockBit uint64 = 1

func orecVersion(o uint64) uint64 { return o >> 1 }
func orecLocked(o uint64) bool    { return o&orecLockBit != 0 }
func makeOrec(version uint64) uint64 {
	return version << 1
}

// Heap is a simulated word-addressable memory with a built-in allocator and a
// transactional engine. All concurrent access — transactional or not — must
// go through its methods; a Heap is safe for use by multiple goroutines.
type Heap struct {
	cfg Config

	words []atomic.Uint64 // word values
	orecs []atomic.Uint64 // per-word versioned locks
	gens  []atomic.Uint32 // per-word allocation generation; odd = allocated

	clock atomic.Uint64 // global version clock

	// TLE fallback lock: fallbackSeq is even when free and odd while held;
	// transactions snapshot it at begin and validate it at commit.
	// activeCommits counts write transactions currently in their commit
	// write-back, so a fallback acquirer can wait them out.
	fallbackSeq   atomic.Uint64
	fallbackMu    sync.Mutex
	activeCommits atomic.Uint64

	alloc   allocator
	stats   stats
	nextTID atomic.Uint64

	// ntAccesses drives cooperative yields for non-transactional accesses
	// when Config.YieldEvery is set, so that HTM-free algorithms pay the
	// same simulated per-access time as transactional ones on
	// under-provisioned hosts. ntYieldThresh is 2^64/YieldEvery (0 = never),
	// making the per-access decision a hash-and-compare, not a division.
	ntAccesses    atomic.Uint64
	ntYieldThresh uint64
}

// NewHeap creates a Heap with the given configuration (zero value for
// Rock-like defaults).
func NewHeap(cfg Config) *Heap {
	cfg = cfg.withDefaults()
	h := &Heap{
		cfg:   cfg,
		words: make([]atomic.Uint64, cfg.Words),
		orecs: make([]atomic.Uint64, cfg.Words),
		gens:  make([]atomic.Uint32, cfg.Words),
	}
	h.ntYieldThresh = yieldThreshold(cfg.YieldEvery)
	h.alloc.init(h)
	return h
}

// Config returns the effective configuration of the heap.
func (h *Heap) Config() Config { return h.cfg }

// valid reports whether a is a non-nil address inside the arena.
func (h *Heap) valid(a Addr) bool {
	return a != NilAddr && int(a) < len(h.words)
}

// allocated reports whether the word at a is currently allocated.
func (h *Heap) allocated(a Addr) bool {
	return h.valid(a) && h.gens[a].Load()&1 == 1
}

// yieldThreshold converts Config.YieldEvery into the compare threshold used
// by the per-access yield checks: a uniformly random uint64 falls below it
// with probability 1/y. YieldEvery=1 saturates to always-yield (the naive
// 2^64/1+1 would wrap to zero and disable yielding entirely).
func yieldThreshold(y int) uint64 {
	switch {
	case y <= 0:
		return 0
	case y == 1:
		return ^uint64(0)
	default:
		return ^uint64(0)/uint64(y) + 1
	}
}

// maybeYieldNT models access time for non-transactional operations; see
// Config.YieldEvery. A shared counter (cheap on the hosts where this is on)
// spreads yields across all NT traffic; hashing it keeps the expected rate at
// one yield per YieldEvery accesses without a per-access division.
func (h *Heap) maybeYieldNT() {
	if h.ntYieldThresh != 0 {
		if h.ntAccesses.Add(1)*0x9E3779B97F4A7C15 < h.ntYieldThresh {
			runtime.Gosched()
		}
	}
}

func (h *Heap) checkNT(a Addr, op string) {
	if !h.valid(a) {
		panic(fmt.Sprintf("htm: non-transactional %s through invalid address %#x (simulated segmentation fault)", op, uint32(a)))
	}
	if h.gens[a].Load()&1 == 0 {
		panic(fmt.Sprintf("htm: non-transactional %s of freed word %#x (simulated segmentation fault)", op, uint32(a)))
	}
}

// lockOrec spin-acquires the ownership record for a and returns the
// pre-acquisition orec value.
func (h *Heap) lockOrec(a Addr) uint64 {
	for {
		o := h.orecs[a].Load()
		if !orecLocked(o) && h.orecs[a].CompareAndSwap(o, o|orecLockBit) {
			return o
		}
	}
}

// releaseOrec publishes a new version for a previously locked orec.
func (h *Heap) releaseOrec(a Addr, version uint64) {
	h.orecs[a].Store(makeOrec(version))
}

// releaseOrecUnchanged unlocks an orec without changing its version, used
// when a locked word was not actually modified.
func (h *Heap) releaseOrecUnchanged(a Addr, prev uint64) {
	h.orecs[a].Store(prev)
}

// LoadNT performs a non-transactional (strongly atomic) load of the word at
// a. It panics if a is invalid or freed, modeling a segmentation fault:
// correct non-transactional code never touches freed memory.
func (h *Heap) LoadNT(a Addr) uint64 {
	h.maybeYieldNT()
	h.checkNT(a, "load")
	for {
		o1 := h.orecs[a].Load()
		if orecLocked(o1) {
			continue
		}
		v := h.words[a].Load()
		if h.orecs[a].Load() == o1 {
			return v
		}
	}
}

// StoreNT performs a non-transactional (strongly atomic) store of v to the
// word at a. It is equivalent to — but cheaper than — a one-word transaction,
// and conflicts correctly with concurrent transactions.
func (h *Heap) StoreNT(a Addr, v uint64) {
	h.maybeYieldNT()
	h.checkNT(a, "store")
	h.lockOrec(a)
	h.words[a].Store(v)
	wv := h.clock.Add(1)
	h.releaseOrec(a, wv)
}

// CASNT performs a non-transactional compare-and-swap on the word at a,
// returning whether the swap was performed. It models the CAS instruction
// used by the paper's non-HTM baseline algorithms.
func (h *Heap) CASNT(a Addr, old, new uint64) bool {
	h.maybeYieldNT()
	h.checkNT(a, "cas")
	prev := h.lockOrec(a)
	if h.words[a].Load() != old {
		h.releaseOrecUnchanged(a, prev)
		return false
	}
	h.words[a].Store(new)
	wv := h.clock.Add(1)
	h.releaseOrec(a, wv)
	return true
}

// AddNT atomically adds delta to the word at a non-transactionally and
// returns the new value.
func (h *Heap) AddNT(a Addr, delta uint64) uint64 {
	h.maybeYieldNT()
	h.checkNT(a, "add")
	h.lockOrec(a)
	v := h.words[a].Load() + delta
	h.words[a].Store(v)
	wv := h.clock.Add(1)
	h.releaseOrec(a, wv)
	return v
}

// ClockNow returns the current value of the global version clock. It is
// exported for tests and diagnostics.
func (h *Heap) ClockNow() uint64 { return h.clock.Load() }
