package htm

import (
	"fmt"
	"runtime"
	"sync"
)

// The allocator hands out blocks of whole words from the arena. Each block
// has a one-word header holding the payload size and an allocated bit, so
// Free needs only the payload address. Freed blocks are kept on exact-size
// free lists (no splitting or coalescing — the experiments allocate a small
// set of block sizes, and exact-size recycling keeps the simulation simple
// and fast without affecting any measured behaviour).
//
// The arena is partitioned into shards, each with its own mutex, bump region
// and free lists. Threads are assigned shards round-robin, so allocation is
// uncontended when the number of worker threads does not exceed the shard
// count — mirroring the mostly-uncontended fast path of libumem, the
// allocator used in the paper's experiments.

const headerAllocBit uint64 = 1

type allocShard struct {
	mu   sync.Mutex
	free map[int][]Addr // payload size in words -> payload addresses
	bump Addr           // next unused word in this shard's region
	end  Addr           // one past the shard's region
}

type allocator struct {
	h      *Heap
	shards []allocShard
}

func (al *allocator) init(h *Heap) {
	al.h = h
	n := 1
	for n < runtime.NumCPU()*2 {
		n <<= 1
	}
	al.shards = make([]allocShard, n)
	// Word 0 is reserved so that NilAddr is never a valid payload address.
	lo := 1
	total := len(h.words) - lo
	per := total / n
	for i := range al.shards {
		s := &al.shards[i]
		s.free = make(map[int][]Addr)
		s.bump = Addr(lo + i*per)
		s.end = Addr(lo + (i+1)*per)
	}
	al.shards[n-1].end = Addr(len(h.words))
}

// allocFrom tries to carve or recycle a block of size payload words from
// shard si, returning NilAddr if the shard cannot satisfy the request.
func (al *allocator) allocFrom(si, size int) Addr {
	s := &al.shards[si]
	s.mu.Lock()
	if lst := s.free[size]; len(lst) > 0 {
		a := lst[len(lst)-1]
		s.free[size] = lst[:len(lst)-1]
		s.mu.Unlock()
		return a
	}
	need := Addr(size + 1)
	if s.end-s.bump >= need {
		a := s.bump + 1
		s.bump += need
		s.mu.Unlock()
		return a
	}
	s.mu.Unlock()
	return NilAddr
}

// alloc returns a zeroed, allocated block of size words, preferring the
// given home shard. It panics if the arena is exhausted.
func (al *allocator) alloc(home, size int) Addr {
	if size <= 0 {
		panic("htm: alloc of non-positive size")
	}
	a := al.allocFrom(home, size)
	if a == NilAddr {
		for i := range al.shards {
			if i == home {
				continue
			}
			if a = al.allocFrom(i, size); a != NilAddr {
				break
			}
		}
	}
	if a == NilAddr {
		panic(fmt.Sprintf("htm: arena exhausted allocating %d words (capacity %d)", size, len(al.h.words)))
	}
	h := al.h
	h.words[a-1].Store(uint64(size)<<1 | headerAllocBit)
	for w := a; w < a+Addr(size); w++ {
		g := h.gens[w].Load()
		if g&1 == 1 {
			panic(fmt.Sprintf("htm: allocator invariant violation: word %#x already allocated", uint32(w)))
		}
		h.words[w].Store(0)
		h.gens[w].Store(g + 1)
	}
	h.stats.allocCalls.Add(1)
	live := h.stats.liveWords.Add(uint64(size))
	for {
		m := h.stats.maxLiveWords.Load()
		if live <= m || h.stats.maxLiveWords.CompareAndSwap(m, live) {
			break
		}
	}
	return a
}

// free returns the block whose payload starts at a to its shard's free list.
// Every payload word's allocation generation is flipped to "free" and its
// ownership record's version is bumped, so that any in-flight transaction
// that read the block aborts at its next validation, and any later
// transactional access aborts immediately (sandboxing).
func (al *allocator) free(home int, a Addr) {
	h := al.h
	if !h.valid(a) {
		panic(fmt.Sprintf("htm: free of invalid address %#x", uint32(a)))
	}
	hdr := h.words[a-1].Load()
	if hdr&headerAllocBit == 0 {
		panic(fmt.Sprintf("htm: double free of %#x", uint32(a)))
	}
	size := int(hdr >> 1)
	h.words[a-1].Store(uint64(size) << 1)
	for w := a; w < a+Addr(size); w++ {
		h.lockOrec(w)
		g := h.gens[w].Load()
		if g&1 == 0 {
			panic(fmt.Sprintf("htm: free of already-free word %#x", uint32(w)))
		}
		h.gens[w].Store(g + 1)
		h.releaseOrec(w, h.clock.Add(1))
	}
	h.stats.freeCalls.Add(1)
	h.stats.liveWords.Add(^uint64(size - 1))
	s := &al.shards[home]
	s.mu.Lock()
	s.free[size] = append(s.free[size], a)
	s.mu.Unlock()
}

// blockSize returns the payload size in words of the allocated block at a.
func (al *allocator) blockSize(a Addr) int {
	hdr := al.h.words[a-1].Load()
	return int(hdr >> 1)
}
