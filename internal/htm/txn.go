package htm

import (
	"fmt"
	"runtime"
)

// txnAbort is the internal panic payload used to unwind a failed transaction
// attempt back to the retry loop. It is distinct from AbortError so that user
// panics are never mistaken for engine aborts.
type txnAbort struct {
	code AbortCode
	addr Addr
}

type readEntry struct {
	addr Addr
	ver  uint64
}

type writeEntry struct {
	addr Addr
	val  uint64
}

// Txn is a transaction in progress. A Txn is valid only inside the function
// passed to Thread.Atomic or Thread.TryAtomic, and only on that goroutine.
//
// The transaction body may be re-executed after an abort, so it must be
// restartable: accumulate results in locals that are reset at the top of the
// body, and publish them only after Atomic returns.
type Txn struct {
	th     *Thread
	h      *Heap
	rv     uint64 // read validity timestamp
	fbSeq  uint64 // fallback-lock sequence observed at begin
	reads  []readEntry
	writes []writeEntry
	frees  []Addr // to free after commit
	allocs []Addr // allocated inside the txn; rolled back on abort
	direct bool   // executing under the TLE fallback lock
}

func (t *Txn) abort(code AbortCode, a Addr) {
	panic(txnAbort{code: code, addr: a})
}

// Abort explicitly aborts the current transaction attempt. Thread.Atomic
// retries it; Thread.TryAtomic reports it as an *AbortError with
// AbortExplicit.
func (t *Txn) Abort() {
	t.abort(AbortExplicit, NilAddr)
}

// checkAccess validates that a names an allocated word, aborting with
// AbortIllegal under sandboxing or panicking (simulated segmentation fault)
// otherwise.
func (t *Txn) checkAccess(a Addr, op string) {
	if t.h.valid(a) && t.h.gens[a].Load()&1 == 1 {
		return
	}
	if t.h.cfg.Sandboxed && !t.direct {
		t.abort(AbortIllegal, a)
	}
	panic(fmt.Sprintf("htm: transactional %s of invalid or freed address %#x without sandboxing (simulated segmentation fault)", op, uint32(a)))
}

// validate checks that every read performed so far still holds the version
// it held when read. Words locked by this transaction's own commit are
// checked against their pre-lock versions by the caller.
func (t *Txn) validate() bool {
	for i := range t.reads {
		r := &t.reads[i]
		o := t.h.orecs[r.addr].Load()
		if orecLocked(o) || orecVersion(o) != r.ver {
			return false
		}
	}
	return true
}

// extend attempts to move the read validity timestamp forward after
// encountering a word newer than rv, aborting on any stale read. This gives
// the engine HTM-like conflict behaviour: transactions abort only when a word
// they actually read or wrote is modified concurrently.
func (t *Txn) extend() {
	// A timestamp extension across a TLE fallback acquisition could mix
	// pre- and post-critical-section state; abort instead, exactly as a
	// hardware transaction holding the lock word in its read set would.
	if t.h.fallbackSeq.Load() != t.fbSeq {
		t.abort(AbortFallback, NilAddr)
	}
	now := t.h.clock.Load()
	if !t.validate() {
		t.abort(AbortConflict, NilAddr)
	}
	t.rv = now
}

// maybeYield models transaction duration on under-provisioned hosts; see
// Config.YieldEvery. The yield decision is randomized (expected one yield per
// YieldEvery accesses): a deterministic cadence would park every attempt of a
// given transaction at the same point — e.g. right before commit — making
// hot-word conflicts certain instead of probable and livelocking retries.
func (t *Txn) maybeYield() {
	if y := t.h.cfg.YieldEvery; y > 0 {
		if t.th.rand()%uint64(y) == 0 {
			runtime.Gosched()
		}
	}
}

// Load transactionally reads the word at a.
func (t *Txn) Load(a Addr) uint64 {
	if t.direct {
		t.checkAccess(a, "load")
		return t.h.LoadNT(a)
	}
	t.maybeYield()
	t.checkAccess(a, "load")
	for i := range t.writes {
		if t.writes[i].addr == a {
			return t.writes[i].val
		}
	}
	for spins := 0; ; spins++ {
		o1 := t.h.orecs[a].Load()
		if orecLocked(o1) {
			if spins < 64 {
				continue // writer is in its (short) commit write-back
			}
			t.abort(AbortConflict, a)
		}
		v := t.h.words[a].Load()
		if t.h.orecs[a].Load() != o1 {
			continue
		}
		if orecVersion(o1) > t.rv {
			t.extend()
			// The word may have changed again between the value read and the
			// extension; re-read under the new timestamp.
			if t.h.orecs[a].Load() != o1 {
				continue
			}
		}
		if t.h.cfg.MaxReadSet >= 0 && len(t.reads) >= t.h.cfg.MaxReadSet {
			t.abort(AbortCapacity, a)
		}
		t.reads = append(t.reads, readEntry{addr: a, ver: orecVersion(o1)})
		return v
	}
}

// Store transactionally writes v to the word at a. Writes are buffered and
// become visible atomically at commit. Writing more distinct words than the
// configured store buffer size aborts with AbortOverflow, reproducing Rock's
// bounded transactions.
func (t *Txn) Store(a Addr, v uint64) {
	if t.direct {
		t.checkAccess(a, "store")
		t.h.StoreNT(a, v)
		return
	}
	t.maybeYield()
	t.checkAccess(a, "store")
	for i := range t.writes {
		if t.writes[i].addr == a {
			t.writes[i].val = v
			return
		}
	}
	if t.h.cfg.StoreBufferSize >= 0 && len(t.writes) >= t.h.cfg.StoreBufferSize {
		t.abort(AbortOverflow, a)
	}
	t.writes = append(t.writes, writeEntry{addr: a, val: v})
}

// Add transactionally adds delta to the word at a and returns the new value.
func (t *Txn) Add(a Addr, delta uint64) uint64 {
	v := t.Load(a) + delta
	t.Store(a, v)
	return v
}

// FreeOnCommit schedules the block whose payload starts at a to be freed
// after — and only if — this transaction commits. This is the paper's idiom
// of freeing memory immediately after the transaction that unlinks it (e.g.
// the HTM queue's dequeue, or line 130 of the ArrayDynAppendDereg
// pseudocode).
func (t *Txn) FreeOnCommit(a Addr) {
	t.frees = append(t.frees, a)
}

// Alloc allocates a zeroed block of size words inside the transaction,
// rolled back if the transaction aborts. It panics unless the heap was
// configured with AllowAllocInTxn: Rock could not execute the CAS-based
// malloc inside transactions (paper §6), so the paper's algorithms
// pre-allocate outside transactions.
func (t *Txn) Alloc(size int) Addr {
	if !t.h.cfg.AllowAllocInTxn {
		panic("htm: Txn.Alloc requires Config.AllowAllocInTxn (Rock cannot allocate inside transactions; pre-allocate outside, as the paper's algorithms do)")
	}
	a := t.th.Alloc(size)
	if !t.direct {
		t.allocs = append(t.allocs, a)
	}
	return a
}

// rollbackAllocs frees blocks allocated inside an aborted attempt.
func (t *Txn) rollbackAllocs() {
	for _, a := range t.allocs {
		t.th.Free(a)
	}
	t.allocs = t.allocs[:0]
}

// commit attempts to atomically publish the transaction's writes. It aborts
// (panics with txnAbort) on validation failure.
func (t *Txn) commit() {
	h := t.h
	if t.direct {
		t.runFrees()
		return
	}
	if len(t.writes) == 0 {
		// Read-only transactions hold a consistent snapshot as of rv at all
		// times thanks to incremental validation, so they commit for free —
		// as on real HTM, where an uncontended read-only transaction simply
		// commits.
		t.runFrees()
		return
	}
	// Guard against the TLE fallback lock: commits may not overlap a
	// fallback critical section.
	h.activeCommits.Add(1)
	committed := false
	defer func() {
		if !committed {
			h.activeCommits.Add(^uint64(0))
		}
	}()
	if h.fallbackSeq.Load() != t.fbSeq {
		t.abort(AbortFallback, NilAddr)
	}

	// Acquire ownership of the write set; on any failure release what was
	// taken and abort.
	acquired := 0
	prev := t.th.prevOrecs[:0]
	release := func() {
		for i := 0; i < acquired; i++ {
			h.releaseOrecUnchanged(t.writes[i].addr, prev[i])
		}
	}
	for i := range t.writes {
		a := t.writes[i].addr
		o := h.orecs[a].Load()
		if orecLocked(o) || !h.orecs[a].CompareAndSwap(o, o|orecLockBit) {
			release()
			t.abort(AbortConflict, a)
		}
		prev = append(prev, o)
		acquired++
		if h.gens[a].Load()&1 == 0 {
			// The word was freed between our access and commit.
			release()
			if h.cfg.Sandboxed {
				t.abort(AbortIllegal, a)
			}
			panic(fmt.Sprintf("htm: commit to freed word %#x without sandboxing", uint32(a)))
		}
	}
	t.th.prevOrecs = prev

	wv := h.clock.Add(1)

	// Validate the read set. Words we hold locked for writing are validated
	// against their pre-lock versions.
	for i := range t.reads {
		r := &t.reads[i]
		o := h.orecs[r.addr].Load()
		if orecLocked(o) {
			ok := false
			for j := range t.writes {
				if t.writes[j].addr == r.addr {
					ok = orecVersion(prev[j]) == r.ver
					break
				}
			}
			if ok {
				continue
			}
			release()
			t.abort(AbortConflict, r.addr)
		}
		if orecVersion(o) != r.ver {
			release()
			t.abort(AbortConflict, r.addr)
		}
	}

	for i := range t.writes {
		h.words[t.writes[i].addr].Store(t.writes[i].val)
	}
	for i := range t.writes {
		h.releaseOrec(t.writes[i].addr, wv)
	}
	committed = true
	h.activeCommits.Add(^uint64(0))
	t.runFrees()
}

func (t *Txn) runFrees() {
	for _, a := range t.frees {
		t.th.Free(a)
	}
}

// reset prepares the Txn for a fresh attempt.
func (t *Txn) reset() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	t.frees = t.frees[:0]
	t.allocs = t.allocs[:0]
	t.direct = false
	t.rv = 0
	t.fbSeq = 0
}

// ReadSetSize and WriteSetSize report the current footprint of the attempt;
// useful for tests and for algorithms that adapt transaction size.
func (t *Txn) ReadSetSize() int { return len(t.reads) }

// WriteSetSize reports the number of distinct words buffered for writing.
func (t *Txn) WriteSetSize() int { return len(t.writes) }
