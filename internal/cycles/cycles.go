// Package cycles provides cycle-denominated busy-wait delays.
//
// The paper's benchmarks parameterize contention in CPU cycles (e.g. "update
// period of 20,000 cycles" on a ~2 GHz Rock core). This package calibrates a
// spin loop against the wall clock so workloads can reproduce the paper's
// period sweeps with the same units. Absolute durations need not match Rock;
// what matters for reproducing the figures is that the sweep spans the same
// relative contention gradient.
package cycles

import (
	"runtime"
	"sync/atomic"
	"time"
)

// DefaultGHz is the clock rate used to convert cycles to time. Rock-class
// SPARC parts of the era clocked near 2 GHz.
const DefaultGHz = 2.0

// sink defeats dead-code elimination of spin loops.
var sink atomic.Uint64 //nolint:gochecknoglobals // write-only DCE sink

// Clock converts cycle counts into calibrated busy-wait spins. A Clock is
// immutable after creation and safe for concurrent use.
type Clock struct {
	itersPerCycle float64
	ghz           float64
}

// spin runs n iterations of a cheap integer loop and defeats elimination.
func spin(n uint64) {
	var x uint64 = 88172645463325252
	for i := uint64(0); i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	sink.Store(x)
}

// Calibrate measures the spin-loop rate of this machine and returns a Clock
// that converts cycles at the given clock rate (use DefaultGHz) into spins.
func Calibrate(ghz float64) *Clock {
	if ghz <= 0 {
		ghz = DefaultGHz
	}
	const probe = 1 << 21
	// Warm up, then take the best of three timings to reduce scheduling
	// noise.
	spin(probe)
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		spin(probe)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	itersPerNs := float64(probe) / float64(best.Nanoseconds())
	nsPerCycle := 1.0 / ghz
	c := &Clock{itersPerCycle: itersPerNs * nsPerCycle, ghz: ghz}
	if c.itersPerCycle <= 0 {
		c.itersPerCycle = 1
	}
	return c
}

// NewFixed returns a Clock with a fixed iterations-per-cycle ratio, for
// deterministic tests.
func NewFixed(itersPerCycle float64) *Clock {
	if itersPerCycle <= 0 {
		itersPerCycle = 1
	}
	return &Clock{itersPerCycle: itersPerCycle, ghz: DefaultGHz}
}

// Spin busy-waits for approximately the given number of CPU cycles.
func (c *Clock) Spin(cycles int) {
	if cycles <= 0 {
		return
	}
	spin(uint64(float64(cycles) * c.itersPerCycle))
}

// coopChunk is the spin length between scheduler yields in SpinCoop, in
// cycles. It bounds how long a waiting worker can hold the core away from
// the threads it contends with, so it directly sets the latency another
// goroutine pays per scheduler rotation on an under-provisioned host; keep
// it small relative to transaction lengths.
const coopChunk = 250

// SpinCoop busy-waits like Spin but yields the processor between chunks of
// roughly 2000 cycles, and always at least once. On hosts with fewer cores
// than simulated threads this stands in for the paper's dedicated-core busy
// waits: while one simulated thread waits out its period, others get to run —
// as they would on real hardware. Without the unconditional yield, a worker
// spinning short periods would monopolize a core for a whole preemption
// quantum and starve the threads it is supposed to merely contend with.
func (c *Clock) SpinCoop(cycles int) {
	for cycles > coopChunk {
		spin(uint64(coopChunk * c.itersPerCycle))
		runtime.Gosched()
		cycles -= coopChunk
	}
	c.Spin(cycles)
	runtime.Gosched()
}

// Duration reports the nominal wall-clock duration of the given number of
// cycles at the clock rate this Clock was calibrated for.
func (c *Clock) Duration(cycles int) time.Duration {
	ghz := c.ghz
	if ghz <= 0 {
		ghz = DefaultGHz
	}
	return time.Duration(float64(cycles) / ghz)
}

// ItersPerCycle exposes the calibration factor for diagnostics.
func (c *Clock) ItersPerCycle() float64 { return c.itersPerCycle }
