package cycles

import (
	"testing"
	"time"
)

func TestCalibrateProducesPositiveRate(t *testing.T) {
	c := Calibrate(DefaultGHz)
	if c.ItersPerCycle() <= 0 {
		t.Errorf("ItersPerCycle = %f", c.ItersPerCycle())
	}
}

func TestCalibrateBadGHzFallsBack(t *testing.T) {
	c := Calibrate(-1)
	if c.ItersPerCycle() <= 0 {
		t.Error("negative GHz not handled")
	}
	if d := c.Duration(2_000_000_000); d <= 0 {
		t.Errorf("Duration = %v", d)
	}
}

func TestSpinScalesRoughlyLinearly(t *testing.T) {
	c := Calibrate(DefaultGHz)
	timeSpin := func(cycles int) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			c.Spin(cycles)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	small := timeSpin(50_000)
	large := timeSpin(500_000)
	if large < small*3 {
		t.Errorf("10x cycles took %v vs %v; spin is not scaling", large, small)
	}
}

func TestSpinZeroAndNegative(t *testing.T) {
	c := NewFixed(1)
	c.Spin(0)
	c.Spin(-5) // must not hang or panic
}

func TestNewFixed(t *testing.T) {
	c := NewFixed(2.5)
	if c.ItersPerCycle() != 2.5 {
		t.Errorf("ItersPerCycle = %f", c.ItersPerCycle())
	}
	if NewFixed(-1).ItersPerCycle() != 1 {
		t.Error("non-positive ratio not clamped")
	}
}

func TestDuration(t *testing.T) {
	c := Calibrate(2.0)
	if d := c.Duration(2000); d != time.Microsecond {
		t.Errorf("2000 cycles at 2GHz = %v, want 1µs", d)
	}
}
