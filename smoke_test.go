package repro

// Smoke tests for the demo surface: every example and command must build and
// exit cleanly, so CI catches drift between the libraries and the binaries
// that showcase them. Binaries are DISCOVERED from cmd/ and examples/, not
// hand-listed — adding a binary without a smoke run is impossible; the args
// map only overrides how a binary is exercised.

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/harness"
)

// discoverPackages returns "./dir/name" for every subdirectory of the given
// roots (each is a main package in this repo's layout).
func discoverPackages(t *testing.T, roots ...string) []string {
	t.Helper()
	var pkgs []string
	for _, root := range roots {
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatalf("reading %s: %v", root, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				pkgs = append(pkgs, "./"+filepath.ToSlash(filepath.Join(root, e.Name())))
			}
		}
	}
	if len(pkgs) == 0 {
		t.Fatal("discovered no binaries")
	}
	return pkgs
}

func TestSmokeExamplesAndCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every demo binary")
	}
	tmp := t.TempDir()
	collectJSON := filepath.Join(tmp, "collect.json")

	// Per-binary invocation overrides. Anything not listed here runs with
	// -help: flag's ExitOnError usage path exits 0 and prints the flag set, so
	// a discovered server or driver binary still proves it builds, parses its
	// flags, and says something — without needing a live counterpart.
	argsFor := map[string][]string{
		"./examples/quickstart":  {},
		"./examples/queue":       {},
		"./examples/adaptive":    {},
		"./examples/reclamation": {},
		"./cmd/queuebench":       {"-quick", "-duration", "10ms", "-threads", "4"},
		"./cmd/fallbackbench":    {"-quick", "-duration", "10ms", "-threads", "4"},
		"./cmd/collectbench":     {"-quick", "-duration", "10ms", "-threads", "4", "-exp", "fig3", "-json", collectJSON},
		"./cmd/experiments":      {"-quick", "-duration", "10ms"},
		"./cmd/kvserver":         {"-help"},
		"./cmd/kvload":           {"-help"},
		// A real (tiny) chaos run: deterministic shadow-model phase plus the
		// overload sweep, exit 0 = model, sweep and determinism checks passed.
		// Runs with the sharded clock and a pinned (observe-only) tuner so the
		// determinism contract is exercised at shards>1 with the tuner's
		// sampling goroutine live on every test invocation (CI also runs it
		// unsharded, and runs the pinned same-seed pair under -race).
		"./cmd/chaoskv": {"-seed", "1", "-ops", "300", "-duration", "30ms", "-clients", "4", "-clock-shards", "2", "-adapt-pinned"},
		// A real (tiny) crash run: two SIGKILL/restart cycles plus the torn
		// and mid-log phases against a real kvserver process; exit 0 = zero
		// acknowledged-write loss and the refuse-to-start contract held.
		"./cmd/crashkv": {"-quick", "-seed", "1", "-cycles", "2", "-clients", "2", "-keys", "8"},
		// Self-diff of the committed snapshot: must exit 0 (no regressions,
		// no shrunken coverage).
		"./cmd/benchtrend": {"-fail-shrunk", "BENCH_PR10.json", "BENCH_PR10.json"},
	}

	pkgs := discoverPackages(t, "cmd", "examples")
	for _, pkg := range pkgs {
		pkg := pkg
		args, ok := argsFor[pkg]
		if !ok {
			args = []string{"-help"}
		}
		t.Run(pkg[2:], func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", append([]string{"run", pkg}, args...)...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s %v failed: %v\n%s", pkg, args, err, out)
			}
			if len(out) == 0 {
				t.Errorf("go run %s produced no output", pkg)
			}
		})
	}

	// Consecutive committed snapshots: each PR's snapshot must cover every
	// series its predecessor recorded. -coverage-only ignores the per-point
	// deltas — snapshots are measured on different days, so only coverage is
	// a deterministic, comparable property.
	chain := [][2]string{
		{"BENCH_PR4.json", "BENCH_PR5.json"},
		{"BENCH_PR5.json", "BENCH_PR6.json"},
		{"BENCH_PR6.json", "BENCH_PR7.json"},
		{"BENCH_PR7.json", "BENCH_PR8.json"},
		{"BENCH_PR8.json", "BENCH_PR9.json"},
		{"BENCH_PR9.json", "BENCH_PR10.json"},
	}
	for _, link := range chain {
		link := link
		t.Run("coverage-chain/"+link[0]+"->"+link[1], func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./cmd/benchtrend", "-coverage-only", link[0], link[1])
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("coverage gate %s -> %s failed: %v\n%s", link[0], link[1], err, out)
			}
		})
	}
}

// TestSmokeFallbackbenchAppendReplaces runs fallbackbench -json twice into the
// same report file, the second time with -append — the shape of the CI bench
// pipeline, where a report is extended in place. Report.AddTable replaces a
// same-title table rather than appending a duplicate, so the merged report
// must carry each figure exactly once, the new adaptive phase-shift figure
// included.
func TestSmokeFallbackbenchAppendReplaces(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fallbackbench binary twice")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	run := func(extra ...string) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		defer cancel()
		args := append([]string{"run", "./cmd/fallbackbench",
			"-quick", "-duration", "10ms", "-threads", "4", "-json", out}, extra...)
		cmd := exec.CommandContext(ctx, "go", args...)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go %v failed: %v\n%s", args, err, b)
		}
	}
	run()
	run("-append")

	rep, err := harness.ReadJSONFile(out)
	if err != nil {
		t.Fatalf("reading merged report: %v", err)
	}
	seen := map[string]bool{}
	for _, tb := range rep.Tables {
		if seen[tb.Title] {
			t.Errorf("-append duplicated table %q", tb.Title)
		}
		seen[tb.Title] = true
	}
	const adaptiveTitle = "Adaptive contention management: phase-shift overflow [ops/us]"
	if !seen[adaptiveTitle] {
		t.Errorf("merged report is missing the adaptive figure %q; has %d tables", adaptiveTitle, len(rep.Tables))
	}
}
