package repro

// Smoke tests for the demo surface: every example and command must build and
// exit cleanly, so CI catches drift between the libraries and the binaries
// that showcase them.

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestSmokeExamplesAndCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every demo binary")
	}
	tmp := t.TempDir()
	collectJSON := filepath.Join(tmp, "collect.json")
	cases := []struct {
		pkg  string
		args []string
	}{
		{"./examples/quickstart", nil},
		{"./examples/queue", nil},
		{"./examples/adaptive", nil},
		{"./examples/reclamation", nil},
		{"./cmd/queuebench", []string{"-quick", "-duration", "10ms", "-threads", "4"}},
		{"./cmd/fallbackbench", []string{"-quick", "-duration", "10ms", "-threads", "4"}},
		{"./cmd/collectbench", []string{"-quick", "-duration", "10ms", "-threads", "4", "-exp", "fig3", "-json", collectJSON}},
		{"./cmd/experiments", []string{"-quick", "-duration", "10ms"}},
		// Self-diff of the committed snapshot: must exit 0 (no regressions,
		// no shrunken coverage).
		{"./cmd/benchtrend", []string{"-fail-shrunk", "BENCH_PR5.json", "BENCH_PR5.json"}},
		// Consecutive committed snapshots: PR5 must cover every series PR4
		// recorded. -coverage-only ignores the per-point deltas — the two
		// snapshots were measured on different days, so only coverage is a
		// deterministic, comparable property.
		{"./cmd/benchtrend", []string{"-coverage-only", "BENCH_PR4.json", "BENCH_PR5.json"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.pkg[2:], func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", append([]string{"run", tc.pkg}, tc.args...)...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s %v failed: %v\n%s", tc.pkg, tc.args, err, out)
			}
			if len(out) == 0 {
				t.Errorf("go run %s produced no output", tc.pkg)
			}
		})
	}
}
