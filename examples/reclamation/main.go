// Reclamation: safe memory reclamation two ways over the simulated heap.
//
// Part 1 — Dynamic Collect as the announcement mechanism (§1.2): a writer
// repeatedly replaces the node behind a shared pointer and wants to free the
// old node. Readers announce the node they are about to access by
// registering (or updating) a handle in a Dynamic Collect object; the writer
// may free a node only after a Collect shows nobody announces it — the same
// protocol as hazard pointers, but with dynamically allocated announcement
// slots, so reader threads can come and go without leaking announcement
// space.
//
// Part 2 — epoch-based reclamation (internal/epoch): the same workload, but
// readers pin the global epoch once per read-side critical section instead
// of announcing every pointer, and the writer retires old nodes into a limbo
// list that drains two epoch advances later. No per-load announce/validate
// traffic — the reclamation tradeoff the queue benchmarks measure.
//
//	go run ./examples/reclamation
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/htm"
	"repro/internal/core"
	"repro/internal/epoch"
)

func dynamicCollectDemo() {
	// YieldEvery interleaves the goroutines' heap accesses even on hosts
	// with fewer cores than workers, so the writer and readers actually race.
	heap := htm.NewHeap(htm.Config{YieldEvery: 8})
	announce := core.NewArrayDynAppendDereg(heap, 0, core.Options{Step: 8})

	setup := heap.NewThread()
	shared := setup.Alloc(1) // shared pointer cell
	first := setup.Alloc(2)  // node: two words that must always match
	heap.StoreNT(first, 1)
	heap.StoreNT(first+1, 1)
	heap.StoreNT(shared, uint64(first))

	const readers = 4
	const swaps = 3000
	var stop atomic.Bool
	var torn atomic.Uint64
	var reads atomic.Uint64

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := heap.NewThread()
			c := announce.NewCtx(th)
			// Announce with a dynamically allocated handle: when this reader
			// exits, Deregister returns the announcement slot's memory —
			// unlike static hazard-pointer tables, space tracks the number
			// of *active* readers.
			h := announce.Register(c, 0)
			defer announce.Deregister(c, h)
			for !stop.Load() {
				// Announce-then-verify: publish the pointer we intend to
				// read, then re-check it is still current.
				node := htm.Addr(heap.LoadNT(shared))
				announce.Update(c, h, uint64(node))
				if htm.Addr(heap.LoadNT(shared)) != node {
					continue
				}
				x := heap.LoadNT(node)
				y := heap.LoadNT(node + 1)
				if x != y {
					torn.Add(1)
				}
				reads.Add(1)
				announce.Update(c, h, 0)
			}
		}()
	}

	writer := heap.NewThread()
	wctx := announce.NewCtx(writer)
	var retired []htm.Addr
	freed := 0
	for i := uint64(2); i <= swaps; i++ {
		node := writer.Alloc(2)
		heap.StoreNT(node, i)
		heap.StoreNT(node+1, i)
		old := htm.Addr(heap.LoadNT(shared))
		heap.StoreNT(shared, uint64(node))
		retired = append(retired, old)
		if len(retired) >= 32 {
			// Collect over all announcements; free retired nodes nobody
			// announces. This is exactly the Scan step of ROP/hazard
			// pointers, built on Dynamic Collect.
			inUse := make(map[uint64]bool)
			for _, v := range announce.Collect(wctx, nil) {
				inUse[v] = true
			}
			kept := retired[:0]
			for _, n := range retired {
				if inUse[uint64(n)] {
					kept = append(kept, n)
				} else {
					writer.Free(n)
					freed++
				}
			}
			retired = kept
		}
	}
	stop.Store(true)
	wg.Wait()

	fmt.Println("-- Dynamic Collect announcements (hazard-pointer protocol) --")
	fmt.Printf("swaps: %d, reads: %d, torn reads: %d\n", swaps, reads.Load(), torn.Load())
	fmt.Printf("nodes freed while readers were running: %d (backlog %d)\n", freed, len(retired))
	fmt.Println("heap:", heap.Stats())
	if torn.Load() > 0 {
		panic("a reader observed reused memory — reclamation protocol broken")
	}
}

func epochDemo() {
	heap := htm.NewHeap(htm.Config{YieldEvery: 8})
	dom := epoch.NewDomain(heap)

	setup := heap.NewThread()
	shared := setup.Alloc(1)
	first := setup.Alloc(2)
	heap.StoreNT(first, 1)
	heap.StoreNT(first+1, 1)
	heap.StoreNT(shared, uint64(first))

	const readers = 4
	const swaps = 3000
	var stop atomic.Bool
	var torn atomic.Uint64
	var reads atomic.Uint64

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := heap.NewThread()
			rec := dom.Acquire(th)
			defer rec.Release()
			for !stop.Load() {
				// One Pin covers the whole read-side critical section: no
				// per-pointer announce, no re-validation loop. The node
				// cannot be freed while we are pinned.
				rec.Pin()
				node := htm.Addr(heap.LoadNT(shared))
				x := heap.LoadNT(node)
				y := heap.LoadNT(node + 1)
				rec.Unpin()
				if x != y {
					torn.Add(1)
				}
				reads.Add(1)
			}
		}()
	}

	writer := heap.NewThread()
	wrec := dom.Acquire(writer)
	liveBefore := heap.Stats().LiveWords
	for i := uint64(2); i <= swaps; i++ {
		node := writer.Alloc(2)
		heap.StoreNT(node, i)
		heap.StoreNT(node+1, i)
		old := htm.Addr(heap.LoadNT(shared))
		heap.StoreNT(shared, uint64(node))
		// Retire into the limbo list; frees happen automatically once the
		// epoch has advanced twice past the retirement.
		wrec.Retire(old)
	}
	stop.Store(true)
	wg.Wait()
	backlog := wrec.RetiredLen()
	wrec.Release()

	fmt.Println("-- Epoch-based reclamation (internal/epoch) --")
	fmt.Printf("swaps: %d, reads: %d, torn reads: %d\n", swaps, reads.Load(), torn.Load())
	fmt.Printf("limbo backlog when writer stopped: %d (drained by Release)\n", backlog)
	fmt.Printf("final epoch: %d, live words: %d (was %d before swaps)\n",
		dom.Epoch(), heap.Stats().LiveWords, liveBefore)
	fmt.Println("heap:", heap.Stats())
	if torn.Load() > 0 {
		panic("a reader observed reused memory — epoch grace period broken")
	}
}

func main() {
	dynamicCollectDemo()
	fmt.Println()
	epochDemo()
}
