// Queue: the paper's §1.1 motivating example, runnable.
//
// Four FIFO queues on the same simulated heap: the HTM queue (sequential
// code in transactions, frees dequeued nodes), the Michael-Scott queue
// (recycles nodes through thread-local pools, never frees), Michael-Scott
// with hazard-pointer (ROP) reclamation, and Michael-Scott with epoch-based
// reclamation. The demo runs the same producer/consumer workload on each and
// prints throughput and — the paper's space point — how much memory each
// queue still holds after draining.
//
//	go run ./examples/queue
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/htm"
	"repro/queue"
)

func run(name string, mk func(h *htm.Heap) queue.Queue) {
	heap := htm.NewHeap(htm.Config{})
	q := mk(heap)

	const threads = 8
	const opsPerThread = 20000
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			c := q.NewCtx(heap.NewThread())
			rng := id*2654435761 + 1
			for i := 0; i < opsPerThread; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				if rng&1 == 0 {
					q.Enqueue(c, id<<32|uint64(i)+1)
				} else {
					q.Dequeue(c)
				}
			}
			queue.CloseCtx(q, c)
		}(uint64(w + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Drain and report the quiescent footprint.
	c := q.NewCtx(heap.NewThread())
	queue.DrainCount(q, c, queue.DrainLimit)
	queue.CloseCtx(q, c)
	st := heap.Stats()
	fmt.Printf("%-20s %8.3f ops/µs   peak=%6dB   after-drain=%6dB   aborts=%d\n",
		name,
		float64(threads*opsPerThread)/float64(elapsed.Microseconds()),
		st.MaxLiveWords*8, st.LiveWords*8, st.TotalAborts())
}

func main() {
	fmt.Println("8 threads, 50/50 enqueue/dequeue; 'after-drain' is quiescent memory — the paper's §1.1 space argument:")
	run("HTM", func(h *htm.Heap) queue.Queue { return queue.NewHTMQueue(h) })
	run("Michael-Scott", func(h *htm.Heap) queue.Queue { return queue.NewMSQueue(h) })
	run("Michael-Scott ROP", func(h *htm.Heap) queue.Queue { return queue.NewMSQueueROP(h) })
	run("Michael-Scott EBR", func(h *htm.Heap) queue.Queue { return queue.NewMSQueueEBR(h) })
}
