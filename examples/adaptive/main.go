// Adaptive: the §3.4 telescoping step-size mechanism reacting to contention.
//
// One thread runs Collects with the adaptive controller while update threads
// switch between quiet and noisy phases. The demo prints, per phase, the
// collector's throughput and the distribution of step sizes it settled on —
// large steps when quiet (amortize transaction start/commit), small steps
// when noisy (bound abort damage), the tradeoff of Figures 5 and 6.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/htm"
	"repro/internal/core"
	"repro/internal/cycles"
)

func main() {
	// YieldEvery makes transactions occupy scheduler-visible time, so
	// contention shows up even on hosts with fewer cores than goroutines
	// (see htm.Config.YieldEvery).
	heap := htm.NewHeap(htm.Config{YieldEvery: 4})
	clock := cycles.Calibrate(cycles.DefaultGHz)
	col := core.NewArrayDynAppendDereg(heap, 0, core.Options{Step: 8, Adaptive: true})

	setup := col.NewCtx(heap.NewThread())
	handles := make([]core.Handle, 64)
	for i := range handles {
		handles[i] = col.Register(setup, uint64(i+1))
	}

	var period atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := col.NewCtx(heap.NewThread())
			for i := uint64(1); !stop.Load(); i++ {
				clock.SpinCoop(int(period.Load()))
				col.Update(c, handles[id], i)
			}
		}(w)
	}

	collector := col.NewCtx(heap.NewThread())
	phases := []struct {
		name   string
		cycles int64
	}{
		{"quiet (1M-cycle updates)", 1000000},
		{"noisy (2k-cycle updates)", 2000},
		{"quiet again", 1000000},
	}
	prev := map[int]uint64{}
	for _, ph := range phases {
		period.Store(ph.cycles)
		n := 0
		deadline := time.Now().Add(400 * time.Millisecond)
		start := time.Now()
		for time.Now().Before(deadline) {
			col.Collect(collector, nil)
			n++
		}
		elapsed := time.Since(start)
		hist := collector.StepHistogram()
		delta := map[int]uint64{}
		var steps []int
		var total uint64
		for s, v := range hist {
			d := v - prev[s]
			if d > 0 {
				delta[s] = d
				steps = append(steps, s)
				total += d
			}
		}
		prev = hist
		sort.Ints(steps)
		fmt.Printf("%-28s %8.3f collects/ms   step mix:", ph.name, float64(n)/float64(elapsed.Milliseconds()))
		for _, s := range steps {
			fmt.Printf("  %d:%d%%", s, 100*delta[s]/total)
		}
		fmt.Println()
	}
	stop.Store(true)
	wg.Wait()
}
