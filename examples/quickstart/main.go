// Quickstart: the Dynamic Collect API in five minutes.
//
// A Collect object lets threads announce values (say, pointers they are
// about to dereference) under dynamically allocated handles, and lets any
// thread snapshot all current announcements. This example walks the whole
// API single-threaded, then shows a concurrent collect.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro/htm"
	"repro/internal/core"
)

func main() {
	// Everything lives on a simulated heap with Rock-like HTM semantics.
	heap := htm.NewHeap(htm.Config{})

	// The flagship algorithm from the paper's §4, with telescoping Collects
	// that copy 8 elements per hardware transaction.
	col := core.NewArrayDynAppendDereg(heap, 0, core.Options{Step: 8})

	// Each goroutine needs its own context.
	ctx := col.NewCtx(heap.NewThread())

	// Register binds a value to a fresh handle.
	h1 := col.Register(ctx, 100)
	h2 := col.Register(ctx, 200)
	h3 := col.Register(ctx, 300)

	fmt.Println("after 3 registers: ", col.Collect(ctx, nil))

	// Update rebinds; Deregister releases (and the slot is compacted away
	// and its memory reclaimed).
	col.Update(ctx, h2, 222)
	fmt.Println("after update:      ", col.Collect(ctx, nil))

	col.Deregister(ctx, h2)
	fmt.Println("after deregister:  ", col.Collect(ctx, nil))

	// Concurrent use: a collector thread snapshots while others churn.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			c := col.NewCtx(heap.NewThread())
			for i := uint64(0); i < 1000; i++ {
				h := col.Register(c, id*1000+i+1)
				col.Update(c, h, id*1000+i+1)
				col.Deregister(c, h)
			}
		}(uint64(w + 1))
	}
	collector := col.NewCtx(heap.NewThread())
	snapshots := 0
	for i := 0; i < 200; i++ {
		got := col.Collect(collector, nil)
		// The two stable handles must be in every snapshot; churning
		// handles may flicker — exactly the specification's guarantee.
		stable := 0
		for _, v := range got {
			if v == 100 || v == 300 {
				stable++
			}
		}
		if stable != 2 {
			panic("stable handle missed — specification violation")
		}
		snapshots++
	}
	wg.Wait()
	fmt.Printf("took %d concurrent snapshots, every one contained both stable handles\n", snapshots)

	col.Deregister(ctx, h1)
	col.Deregister(ctx, h3)
	fmt.Println("final collect:     ", col.Collect(ctx, nil))
	fmt.Println("heap:", heap.Stats())
}
