// Package repro is a from-scratch Go reproduction of "On The Power of
// Hardware Transactional Memory to Simplify Memory Management" (Dragojević,
// Herlihy, Lev, Moir — PODC 2011).
//
// The paper's HTM hardware (Sun's Rock prototype) no longer exists; this
// repository substitutes a software-simulated HTM with Rock's semantics
// (internal/htm) and rebuilds every system the paper describes on top of it:
// the Dynamic Collect algorithms (internal/core), the motivating FIFO queues
// (internal/queue), hazard-pointer reclamation (internal/hazard),
// epoch-based reclamation (internal/epoch), the adaptive telescoping
// mechanism (internal/adapt), and a benchmark harness that regenerates every
// table and figure (internal/harness, cmd/...).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// substitution rationale, and EXPERIMENTS.md for paper-versus-measured
// results. The root package contains only the repository-level benchmark
// suite (bench_test.go).
package repro
