// Command benchtrend diffs two machine-readable benchmark snapshots
// (harness.Report JSON, as written by `queuebench -json`, `experiments -json`,
// `collectbench -json`, or committed as BENCH_<PR>.json) and gates on
// regressions: every series point and microbenchmark present in both reports
// is compared, deltas are printed as a table, and the exit status is nonzero
// if any throughput-direction metric moved against its direction by more
// than the threshold (default 10%).
//
// Usage:
//
//	benchtrend [-threshold 10] OLD.json NEW.json
//
// Exit status: 0 = no regressions, 1 = regressions beyond the threshold,
// 2 = usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	threshold := flag.Float64("threshold", 10, "regression gate in percent")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchtrend [-threshold pct] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		return 2
	}
	oldR, err := harness.ReadJSONFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		return 2
	}
	newR, err := harness.ReadJSONFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		return 2
	}
	tr := harness.DiffReports(oldR, newR, *threshold)
	fmt.Print(tr.Render())
	if len(tr.Rows) == 0 {
		fmt.Fprintf(os.Stderr, "benchtrend: no matching points between %s and %s\n", flag.Arg(0), flag.Arg(1))
		return 2
	}
	if len(tr.Regressions()) > 0 {
		return 1
	}
	return 0
}
