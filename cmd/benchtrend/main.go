// Command benchtrend diffs two machine-readable benchmark snapshots
// (harness.Report JSON, as written by `queuebench -json`, `experiments -json`,
// `collectbench -json`, or committed as BENCH_<PR>.json) and gates on
// regressions: every series point and microbenchmark present in both reports
// is compared, deltas are printed as a table, and the exit status is nonzero
// if any throughput-direction metric moved against its direction by more
// than the threshold (default 10%).
//
// With -fail-shrunk the exit status is also nonzero when the NEW report's
// coverage shrank — any series point or benchmark present in OLD but missing
// from NEW. A benchmark silently dropped from a snapshot must not read as
// "no regressions"; use this mode when the new report is supposed to be a
// superset of the old one (e.g. consecutive committed BENCH_<PR>.json
// snapshots).
//
// -coverage-only gates on shrunken coverage ALONE: deltas are still printed,
// but regressions never affect the exit status. Use it to compare snapshots
// measured on different hosts or days, where coverage is the only
// deterministic property.
//
// Usage:
//
//	benchtrend [-threshold 10] [-fail-shrunk] [-coverage-only] OLD.json NEW.json
//
// Exit status: 0 = gate passed, 1 = regressions beyond the threshold (unless
// -coverage-only) or shrunken coverage (with -fail-shrunk or -coverage-only),
// 2 = usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	threshold := flag.Float64("threshold", 10, "regression gate in percent")
	failShrunk := flag.Bool("fail-shrunk", false, "also fail when NEW lacks points OLD had (shrunken series coverage)")
	coverageOnly := flag.Bool("coverage-only", false, "gate on shrunken coverage alone; regressions are printed but never fail")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchtrend [-threshold pct] [-fail-shrunk] [-coverage-only] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		return 2
	}
	oldR, err := harness.ReadJSONFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		return 2
	}
	newR, err := harness.ReadJSONFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		return 2
	}
	tr := harness.DiffReports(oldR, newR, *threshold)
	fmt.Print(tr.Render())
	if len(tr.Rows) == 0 {
		fmt.Fprintf(os.Stderr, "benchtrend: no matching points between %s and %s\n", flag.Arg(0), flag.Arg(1))
		return 2
	}
	code := 0
	if len(tr.Regressions()) > 0 && !*coverageOnly {
		code = 1
	}
	if (*failShrunk || *coverageOnly) && tr.MissingInNew > 0 {
		fmt.Fprintf(os.Stderr, "benchtrend: coverage shrank: %d point(s) in %s are missing from %s\n",
			tr.MissingInNew, flag.Arg(0), flag.Arg(1))
		code = 1
	}
	return code
}
