// Command benchimport folds `go test -bench` output into a harness.Report
// JSON file, so substrate microbenchmarks live in the same machine-readable
// record as the figure sweeps and are covered by the cmd/benchtrend gates.
//
// Usage:
//
//	go test -bench=. ./htm | tee bench.txt
//	benchimport -json BENCH_CI.json bench.txt     # or read stdin with no args
//
// The target report must already exist (queuebench/collectbench create it);
// same-name entries are replaced in place, so re-importing is idempotent.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"

	"repro/internal/harness"
)

// benchLine matches one result line. The -<N> GOMAXPROCS suffix is stripped:
// snapshot and CI hosts differ in core count, and trend matching is by name.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ MB/s)?(?:\s+[\d.]+ B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	os.Exit(run())
}

func run() int {
	jsonPath := flag.String("json", "", "harness.Report file to merge benchmarks into (required)")
	note := flag.String("note", "", "optional note recorded on every imported entry")
	flag.Parse()
	if *jsonPath == "" {
		fmt.Fprintln(os.Stderr, "benchimport: -json is required")
		flag.Usage()
		return 2
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchimport: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}

	rep, err := harness.ReadJSONFile(*jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchimport: reading %s: %v\n", *jsonPath, err)
		return 2
	}

	imported := 0
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		allocs := 0.0
		if m[3] != "" {
			allocs, _ = strconv.ParseFloat(m[3], 64)
		}
		b := harness.Benchmark{Name: m[1], NsPerOp: ns, AllocsPerOp: allocs, Note: *note}
		replaced := false
		for i := range rep.Benchmarks {
			if rep.Benchmarks[i].Name == b.Name {
				rep.Benchmarks[i] = b
				replaced = true
				break
			}
		}
		if !replaced {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
		imported++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchimport: reading input: %v\n", err)
		return 2
	}
	if imported == 0 {
		fmt.Fprintln(os.Stderr, "benchimport: no benchmark lines found in input")
		return 1
	}
	if err := rep.WriteJSONFile(*jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "benchimport: writing %s: %v\n", *jsonPath, err)
		return 2
	}
	fmt.Printf("benchimport: merged %d benchmark(s) into %s\n", imported, *jsonPath)
	return 0
}
