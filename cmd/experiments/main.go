// Command experiments runs the full reproduction suite — every table and
// figure of the paper — and writes the rendered results to stdout (and
// optionally a file), in the order they appear in the paper. This is the
// binary whose output EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/cycles"
	"repro/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	dur := flag.Duration("duration", 150*time.Millisecond, "measured duration per data point")
	out := flag.String("o", "", "also write results to this file")
	quick := flag.Bool("quick", false, "reduced sweeps")
	jsonOut := flag.String("json", "", "also write all figure data as a machine-readable Report to this file")
	label := flag.String("label", "experiments", "label recorded in the -json report")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: close: %v\n", err)
			}
		}()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := harness.Config{
		PointDuration: *dur,
		Clock:         cycles.Calibrate(cycles.DefaultGHz),
		Threads:       16,
	}
	threadCounts := harness.DefaultThreadCounts
	periods4 := harness.Fig4Periods
	periods6 := harness.Fig6Periods
	periods7 := harness.Fig7Periods
	fig8Total := 3000
	if *quick {
		threadCounts = []int{1, 2, 4, 8, 16}
		periods4 = []int{1000000, 50000, 8000, 2000, 400}
		periods6 = []int{8000, 2000, 400}
		periods7 = []int{1000000, 50000, 8000, 1000}
		fig8Total = 1200
	}

	fmt.Fprintf(w, "# Reproduction run: %s\n", time.Now().Format(time.RFC3339))
	fmt.Fprintf(w, "# host: GOMAXPROCS=%d NumCPU=%d go=%s\n", runtime.GOMAXPROCS(0), runtime.NumCPU(), runtime.Version())
	fmt.Fprintf(w, "# calibration: %.2f spin iters/cycle at %.1f GHz nominal\n\n",
		cfg.Clock.ItersPerCycle(), cycles.DefaultGHz)

	start := time.Now()
	rep := harness.NewReport(*label)
	rep.SetConfig("duration", cfg.PointDuration.String())
	rep.SetConfig("quick", fmt.Sprint(*quick))
	table := func(t *harness.Table) {
		fmt.Fprintln(w, t.Render())
		rep.AddTable(t)
	}
	table(harness.Fig1(cfg, threadCounts))
	table(harness.UpdateLatencyTable(cfg, 200000))
	table(harness.Fig3(cfg, threadCounts))
	table(harness.Fig4(cfg, 15, periods4))
	table(harness.Fig5(cfg, 15, periods4))
	fig6 := harness.Fig6(cfg, 15, periods6)
	fmt.Fprintln(w, fig6.Render())
	rep.AddHist(fig6)
	table(harness.Fig7(cfg, 15, periods7))
	table(harness.Fig8Table(harness.Fig8(cfg, 15, 500, fig8Total, 100)))
	table(harness.SpaceTable(cfg))
	fmt.Fprintf(w, "# total wall time: %s\n", time.Since(start).Round(time.Second))
	if *jsonOut != "" {
		if err := rep.WriteJSONFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", *jsonOut, err)
			return 1
		}
		fmt.Fprintf(w, "# wrote %s\n", *jsonOut)
	}
	return 0
}
