// Command kvload drives load at a running kvserver and reduces the results
// to latency percentiles and throughput in the repository's machine-readable
// bench format (harness.Report JSON), so server-level numbers are gated by
// cmd/benchtrend exactly like the microbenchmark snapshots.
//
// Closed-loop by default (each worker issues its next operation as soon as
// the previous one completes); -rate N switches to open loop, dispatching at
// a fixed aggregate schedule. The keyspace is seeded with one unmeasured PUT
// per key before the measured window.
//
// Usage:
//
//	kvload [-addr http://127.0.0.1:7070] [-duration 10s] [-workers 8]
//	       [-rate 0] [-keys 4096] [-value-bytes 128] [-scan-limit 32]
//	       [-mix 60/25/10/5] [-quick] [-wait 10s]
//	       [-json out.json] [-append] [-label kvload]
//
// Exit status: 0 on success, 1 when the run (or report write) failed or the
// server was unreachable, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/harness"
	"repro/kv"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:7070", "base URL of the kvserver")
	duration := flag.Duration("duration", 10*time.Second, "measured window")
	workers := flag.Int("workers", 8, "concurrent client lanes")
	rate := flag.Float64("rate", 0, "open-loop dispatch rate in ops/sec (0 = closed loop)")
	keys := flag.Int("keys", 4096, "keyspace size")
	valueBytes := flag.Int("value-bytes", 128, "PUT value size in bytes")
	scanLimit := flag.Int("scan-limit", 32, "SCAN page size")
	mix := flag.String("mix", "60/25/10/5", "operation mix GET/PUT/DELETE/SCAN in percent")
	quick := flag.Bool("quick", false, "short CI-sized run (2s, 4 workers, 512 keys)")
	wait := flag.Duration("wait", 10*time.Second, "wait this long for the server's /healthz before starting")
	jsonOut := flag.String("json", "", "write (or with -append, merge) the results as a harness.Report to this file")
	appendTo := flag.Bool("append", false, "merge into an existing -json report instead of overwriting it")
	label := flag.String("label", "kvload", "label recorded in the -json report")
	flag.Parse()

	var getPct, putPct, delPct, scanPct int
	if n, err := fmt.Sscanf(*mix, "%d/%d/%d/%d", &getPct, &putPct, &delPct, &scanPct); n != 4 || err != nil {
		fmt.Fprintf(os.Stderr, "kvload: bad -mix %q (want e.g. 60/25/10/5)\n", *mix)
		return 2
	}
	cfg := kv.LoadConfig{
		Workers:    *workers,
		Duration:   *duration,
		RatePerSec: *rate,
		Keys:       *keys,
		ValueBytes: *valueBytes,
		ScanLimit:  *scanLimit,
		GetPct:     getPct, PutPct: putPct, DeletePct: delPct, ScanPct: scanPct,
	}
	if *quick {
		// -quick shrinks the run but keeps the same op mix, so quick CI runs
		// and committed snapshots cover identical series and the benchtrend
		// coverage gate can compare them.
		cfg.Duration = 2 * time.Second
		cfg.Workers = 4
		cfg.Keys = 512
	}

	ctx := context.Background()
	if err := waitHealthy(ctx, *addr, *wait); err != nil {
		fmt.Fprintf(os.Stderr, "kvload: %v\n", err)
		return 1
	}
	res, err := kv.RunLoad(ctx, *addr, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvload: %v\n", err)
		return 1
	}
	fmt.Print(res.String())
	fmt.Println(res.LatencyTable().Render())

	if *jsonOut != "" {
		rep := harness.NewReport(*label)
		if *appendTo {
			if existing, err := harness.ReadJSONFile(*jsonOut); err == nil {
				rep = existing
				rep.Label = *label
			} else if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "kvload: read %s: %v\n", *jsonOut, err)
				return 1
			}
		}
		res.FillReport(rep)
		if err := rep.WriteJSONFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "kvload: write %s: %v\n", *jsonOut, err)
			return 1
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}
	return 0
}

// waitHealthy polls GET /healthz until it answers 200 or the budget runs
// out, backing off exponentially from 25ms to a 500ms cap. The early retries
// are tight so a server that comes up quickly costs almost no wait; the cap
// keeps a slow CI machine from burning the whole budget in a handful of
// probes.
func waitHealthy(ctx context.Context, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	pause := 25 * time.Millisecond
	const maxPause = 500 * time.Millisecond
	var lastErr error
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("healthz: %s", resp.Status)
		} else {
			lastErr = err
		}
		if !time.Now().Add(pause).Before(deadline) {
			return fmt.Errorf("server at %s not healthy after %s: %w", base, budget, lastErr)
		}
		time.Sleep(pause)
		if pause *= 2; pause > maxPause {
			pause = maxPause
		}
	}
}
