// Command collectbench regenerates the paper's Dynamic Collect experiments
// (§5, Figures 3–8 and the §5.1 update-latency numbers) and prints the same
// series the figures plot.
//
// Usage:
//
//	collectbench -exp fig3 [-duration 200ms] [-threads 16] [-quick]
//
// Experiments: latency, fig3, fig4, fig5, fig6, fig7, fig8, space, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cycles"
	"repro/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment: latency|fig3|fig4|fig5|fig6|fig7|fig8|space|all")
	dur := flag.Duration("duration", 200*time.Millisecond, "measured duration per data point")
	threads := flag.Int("threads", 16, "maximum simulated thread count")
	quick := flag.Bool("quick", false, "use a reduced sweep for a fast smoke run")
	flag.Parse()

	cfg := harness.Config{
		PointDuration: *dur,
		Clock:         cycles.Calibrate(cycles.DefaultGHz),
		Threads:       *threads,
	}

	threadCounts := harness.DefaultThreadCounts
	periods4 := harness.Fig4Periods
	periods6 := harness.Fig6Periods
	periods7 := harness.Fig7Periods
	fig8Total := 3000
	if *quick {
		threadCounts = []int{1, 2, 4, 8, 16}
		periods4 = []int{1000000, 50000, 8000, 2000, 400}
		periods6 = []int{8000, 2000, 400}
		periods7 = []int{1000000, 50000, 8000, 1000}
		fig8Total = 1200
		cfg.PointDuration = 100 * time.Millisecond
	}
	var max int
	for _, n := range threadCounts {
		if n <= *threads {
			max = n
		}
	}
	var tc []int
	for _, n := range threadCounts {
		if n <= *threads {
			tc = append(tc, n)
		}
	}
	updaters := max - 1
	if updaters < 1 {
		updaters = 1
	}

	ran := false
	want := func(name string) bool {
		if *exp == name || *exp == "all" {
			ran = true
			return true
		}
		return false
	}
	if want("latency") {
		fmt.Println(harness.UpdateLatencyTable(cfg, 200000).Render())
	}
	if want("fig3") {
		fmt.Println(harness.Fig3(cfg, tc).Render())
	}
	if want("fig4") {
		fmt.Println(harness.Fig4(cfg, updaters, periods4).Render())
	}
	if want("fig5") {
		fmt.Println(harness.Fig5(cfg, updaters, periods4).Render())
	}
	if want("fig6") {
		fmt.Println(harness.Fig6(cfg, updaters, periods6).Render())
	}
	if want("fig7") {
		fmt.Println(harness.Fig7(cfg, updaters, periods7).Render())
	}
	if want("fig8") {
		fmt.Println(harness.Fig8Table(harness.Fig8(cfg, updaters, 500, fig8Total, 100)).Render())
	}
	if want("space") {
		fmt.Println(harness.SpaceTable(cfg).Render())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		return 2
	}
	return 0
}
