// Command collectbench regenerates the paper's Dynamic Collect experiments
// (§5, Figures 3–8 and the §5.1 update-latency numbers) and prints the same
// series the figures plot.
//
// Usage:
//
//	collectbench -exp fig3 [-duration 200ms] [-threads 16] [-quick]
//	             [-json out.json] [-label name]
//
// Experiments: latency, fig3, fig4, fig5, fig6, fig7, fig8, space, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cycles"
	"repro/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment: latency|fig3|fig4|fig5|fig6|fig7|fig8|space|all")
	dur := flag.Duration("duration", 200*time.Millisecond, "measured duration per data point")
	threads := flag.Int("threads", 16, "maximum simulated thread count")
	quick := flag.Bool("quick", false, "use a reduced sweep for a fast smoke run")
	jsonOut := flag.String("json", "", "also write results as a machine-readable Report to this file")
	label := flag.String("label", "collectbench", "label recorded in the -json report")
	flag.Parse()

	cfg := harness.Config{
		PointDuration: *dur,
		Clock:         cycles.Calibrate(cycles.DefaultGHz),
		Threads:       *threads,
	}

	threadCounts := harness.DefaultThreadCounts
	periods4 := harness.Fig4Periods
	periods6 := harness.Fig6Periods
	periods7 := harness.Fig7Periods
	fig8Total := 3000
	if *quick {
		threadCounts = []int{1, 2, 4, 8, 16}
		periods4 = []int{1000000, 50000, 8000, 2000, 400}
		periods6 = []int{8000, 2000, 400}
		periods7 = []int{1000000, 50000, 8000, 1000}
		fig8Total = 1200
		cfg.PointDuration = 100 * time.Millisecond
	}
	var max int
	for _, n := range threadCounts {
		if n <= *threads {
			max = n
		}
	}
	var tc []int
	for _, n := range threadCounts {
		if n <= *threads {
			tc = append(tc, n)
		}
	}
	updaters := max - 1
	if updaters < 1 {
		updaters = 1
	}

	rep := harness.NewReport(*label)
	rep.SetConfig("exp", *exp)
	rep.SetConfig("duration", cfg.PointDuration.String())
	rep.SetConfig("threads", fmt.Sprint(*threads))
	rep.SetConfig("quick", fmt.Sprint(*quick))
	table := func(t *harness.Table) {
		fmt.Println(t.Render())
		rep.AddTable(t)
	}

	ran := false
	want := func(name string) bool {
		if *exp == name || *exp == "all" {
			ran = true
			return true
		}
		return false
	}
	if want("latency") {
		table(harness.UpdateLatencyTable(cfg, 200000))
	}
	if want("fig3") {
		table(harness.Fig3(cfg, tc))
	}
	if want("fig4") {
		table(harness.Fig4(cfg, updaters, periods4))
	}
	if want("fig5") {
		table(harness.Fig5(cfg, updaters, periods4))
	}
	if want("fig6") {
		fig6 := harness.Fig6(cfg, updaters, periods6)
		fmt.Println(fig6.Render())
		rep.AddHist(fig6)
	}
	if want("fig7") {
		table(harness.Fig7(cfg, updaters, periods7))
	}
	if want("fig8") {
		table(harness.Fig8Table(harness.Fig8(cfg, updaters, 500, fig8Total, 100)))
	}
	if want("space") {
		table(harness.SpaceTable(cfg))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		return 2
	}
	if *jsonOut != "" {
		if err := rep.WriteJSONFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "collectbench: write %s: %v\n", *jsonOut, err)
			return 1
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}
	return 0
}
