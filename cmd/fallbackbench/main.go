// Command fallbackbench runs the contended-overflow benchmark: every
// operation overflows the store buffer and completes on the TLE fallback
// path, sweeping thread counts for the fine-grained per-word lock-set
// fallback against the retired global-lock baseline (paper §6), on disjoint
// and on fully shared footprints. A second table measures what persistent
// fallback traffic costs concurrently running hardware transactions — under
// the global lock every hardware begin waits out every fallback critical
// section; under the fine-grained fallback it never waits. Two further
// tables cover the sharded version clock (disjoint commits across clock
// shard counts) and the striped-metadata knob (neighbor-word throughput and
// aliasing aborts across StripeShift values). The final table is the
// adaptive-contention figure: the phase-shift workload (footprints alternate
// between disjoint and fully shared mid-run) under both static fallback
// configurations and the online Tuner, which should match the best static
// choice in each phase.
//
// With -json the tables are written as a machine-readable harness.Report;
// with -append they are merged into an existing report file instead (so CI
// can extend the queuebench report into one BENCH_CI.json that matches the
// committed snapshot's coverage).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cycles"
	"repro/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	dur := flag.Duration("duration", 200*time.Millisecond, "measured duration per data point")
	threads := flag.Int("threads", 16, "maximum simulated thread count")
	quick := flag.Bool("quick", false, "reduced sweep")
	jsonOut := flag.String("json", "", "write (or with -append, merge) results as a machine-readable Report to this file")
	appendTo := flag.Bool("append", false, "merge the tables into an existing -json report instead of overwriting it")
	label := flag.String("label", "fallbackbench", "label recorded in the -json report")
	flag.Parse()

	cfg := harness.Config{
		PointDuration: *dur,
		Clock:         cycles.Calibrate(cycles.DefaultGHz),
		Threads:       *threads,
	}
	// -quick shortens the per-point duration but keeps the same thread
	// sweep, so quick CI runs and committed snapshots cover identical series
	// and the benchtrend -fail-shrunk gate can compare them.
	counts := []int{1, 2, 4, 8, 16}
	if *quick && cfg.PointDuration > 100*time.Millisecond {
		cfg.PointDuration = 100 * time.Millisecond
	}
	var tc []int
	for _, n := range counts {
		if n <= *threads {
			tc = append(tc, n)
		}
	}

	scaling := harness.FallbackScaling(cfg, tc)
	fmt.Println(scaling.Render())
	interference := harness.FallbackInterferenceTable(cfg, tc)
	fmt.Println(interference.Render())
	// The spins sweep runs at a fixed thread count (capped by -threads) so
	// quick and full runs cover the same axis.
	spinsThreads := 8
	if spinsThreads > *threads {
		spinsThreads = *threads
	}
	spinsSweep := harness.FallbackSpinsSweep(cfg, spinsThreads, []int{0, 32, 128, 512})
	fmt.Println(spinsSweep.Render())
	// Sharded-clock and stripe-knob figures (PR 9): disjoint commits across
	// clock shard counts, and the stripe aliasing tradeoff at a fixed thread
	// count. shards=1 / shift=0 are the pre-sharding baselines.
	clockScaling := harness.ClockScaling(cfg, tc, []int{1, 4, 16})
	fmt.Println(clockScaling.Render())
	stripeTable := harness.StripeConflictTable(cfg, spinsThreads, []int{0, 1, 2, 4})
	fmt.Println(stripeTable.Render())
	// Adaptive-contention figure (PR 10): phase-shift throughput at the same
	// fixed thread count as the spins sweep.
	adaptiveTable := harness.AdaptiveScaling(cfg, spinsThreads)
	fmt.Println(adaptiveTable.Render())

	if *jsonOut != "" {
		rep := harness.NewReport(*label)
		if *appendTo {
			if existing, err := harness.ReadJSONFile(*jsonOut); err == nil {
				rep = existing
				rep.Label = *label // the merged report is this run's record
			} else if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "fallbackbench: read %s: %v\n", *jsonOut, err)
				return 1
			}
		}
		rep.SetConfig("fallback_duration", cfg.PointDuration.String())
		rep.SetConfig("fallback_threads", fmt.Sprint(*threads))
		rep.AddTable(scaling)
		rep.AddTable(interference)
		rep.AddTable(spinsSweep)
		rep.AddTable(clockScaling)
		rep.AddTable(stripeTable)
		rep.AddTable(adaptiveTable)
		if err := rep.WriteJSONFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "fallbackbench: write %s: %v\n", *jsonOut, err)
			return 1
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}
	return 0
}
