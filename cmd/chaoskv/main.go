// Command chaoskv is the fault-injection harness for the KV service: it runs
// an in-process Server on a heap configured with a seeded htm.FaultPlan and
// checks that the service stays CORRECT (every response consistent with a
// shadow model), CONVERGENT (the heap's per-word metadata is clean and no
// word leaked once the run quiesces) and DETERMINISTIC (the same seed
// reproduces the same fault and abort counts, so any failure it ever finds
// can be replayed exactly).
//
// The run has two phases:
//
//   - Deterministic replay: a single sequential client drives a seeded
//     operation stream at a one-context store with a logical clock, checking
//     every response against an exact shadow model. The phase runs twice and
//     must produce byte-identical "determinism-key:" fingerprints (fault,
//     abort and op counts plus a model hash). CI additionally diffs the
//     fingerprint across two whole process runs. With -adapt-pinned the
//     store runs its contention Tuner enabled but pinned — sampling epochs
//     tick on a real timer, yet no knob is ever written — and the
//     fingerprint must STILL replay exactly: the proof that the adaptive
//     machinery itself perturbs nothing.
//
//   - Overload sweep: concurrent clients hammer an admission-controlled,
//     request-timeout-bounded server while the injection probability rises.
//     Each client owns a disjoint key partition and checks its own shadow
//     model (a 503 — shed or abandoned — is guaranteed to have had no
//     effect). The sweep demonstrates graceful degradation: the server sheds
//     load with 503s while ADMITTED requests keep a bounded p99.
//
// After each phase the heap must sweep clean: no word locked, no fallback
// tag left behind, allocation accounting exact, and — once every key is
// deleted — the live footprint back at the empty-store baseline.
//
// With -json the figures are written as a machine-readable harness.Report;
// -append merges into an existing report (the CI pipeline builds one
// BENCH_CI.json across all benches). Any model violation, dirty sweep or
// fingerprint mismatch makes the exit status nonzero.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/htm"
	"repro/internal/harness"
	"repro/kv"
)

func main() {
	os.Exit(run())
}

// chaosProbs is the overload sweep's injection-probability axis. -quick keeps
// the same points (only windows shrink) so quick CI runs and committed
// snapshots cover identical series and the coverage gate can compare them.
var chaosProbs = []float64{0, 0.05, 0.25}

// reqTimeout bounds each overload-phase request; admitted-latency p99 is
// asserted against a generous multiple of it (deadline checks happen between
// retry attempts, so a slow attempt can overshoot, and CI machines stall).
const (
	reqTimeout   = 25 * time.Millisecond
	p99BoundMult = 20
)

func run() int {
	seed := flag.Uint64("seed", 1, "fault-plan and workload seed (replay a run by its seed)")
	ops := flag.Int("ops", 4000, "operation count of the deterministic phase")
	dur := flag.Duration("duration", 250*time.Millisecond, "measured window per overload point")
	clients := flag.Int("clients", 8, "concurrent clients in the overload phase")
	quick := flag.Bool("quick", false, "reduced run: fewer ops and shorter windows, same sweep")
	jsonOut := flag.String("json", "", "write (or with -append, merge) results as a machine-readable Report to this file")
	appendTo := flag.Bool("append", false, "merge the tables into an existing -json report instead of overwriting it")
	label := flag.String("label", "chaoskv", "label recorded in the -json report")
	clockShards := flag.Int("clock-shards", 0, "version-clock shards for the deterministic phase (0/1 = single scalar clock)")
	stripeShift := flag.Int("stripe-shift", 0, "metadata striping for the deterministic phase: one orec per 2^shift words")
	adaptPinned := flag.Bool("adapt-pinned", false, "run the deterministic phase with the contention tuner enabled but pinned (sampling without acting)")
	flag.Parse()

	if *quick {
		if *ops > 1000 {
			*ops = 1000
		}
		if *dur > 100*time.Millisecond {
			*dur = 100 * time.Millisecond
		}
	}

	failures := 0

	// Phase 1: deterministic replay, twice, fingerprints compared. The clock
	// sharding and striping knobs are part of the pinned configuration: the
	// phase must stay replayable at ANY setting (CI runs it both unsharded
	// and sharded).
	fp1, err := deterministicRun(*seed, *ops, *clockShards, *stripeShift, *adaptPinned)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaoskv: deterministic phase: %v\n", err)
		return 1
	}
	fp2, err := deterministicRun(*seed, *ops, *clockShards, *stripeShift, *adaptPinned)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaoskv: deterministic phase (replay): %v\n", err)
		return 1
	}
	if fp1 != fp2 {
		fmt.Fprintf(os.Stderr, "chaoskv: NONDETERMINISM across same-seed runs:\n  run1: %s\n  run2: %s\n", fp1, fp2)
		failures++
	}
	// CI diffs this line across two whole process invocations.
	fmt.Println(fp1)
	fmt.Println()

	// Phase 2: overload sweep across injection probabilities.
	var points []harness.ChaosPoint
	var violations []string
	for _, p := range chaosProbs {
		pt, viols := overloadPoint(*seed, p, *clients, *dur)
		points = append(points, pt)
		violations = append(violations, viols...)
	}

	tables := harness.ChaosTables(points)
	for _, t := range tables {
		fmt.Println(t.Render())
	}

	// Hardening claims: past the clean point the server must have rejected
	// load with 503s, and what it admitted must have stayed bounded.
	var rejected uint64
	for _, pt := range points {
		if pt.Prob > 0 {
			rejected += pt.Rejected
		}
		if pt.Prob > 0 && pt.P99 > p99BoundMult*reqTimeout {
			violations = append(violations, fmt.Sprintf(
				"p=%.2f: admitted p99 %s exceeds bound %s", pt.Prob, pt.P99, p99BoundMult*reqTimeout))
		}
	}
	if rejected == 0 {
		violations = append(violations, "overloaded server never shed a request (expected 503s at nonzero injection)")
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "chaoskv: VIOLATION: %s\n", v)
		failures++
	}

	if *jsonOut != "" {
		rep := harness.NewReport(*label)
		if *appendTo {
			if existing, err := harness.ReadJSONFile(*jsonOut); err == nil {
				rep = existing
				rep.Label = *label
			} else if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "chaoskv: read %s: %v\n", *jsonOut, err)
				return 1
			}
		}
		rep.SetConfig("chaos_seed", fmt.Sprint(*seed))
		rep.SetConfig("chaos_ops", fmt.Sprint(*ops))
		rep.SetConfig("chaos_clients", fmt.Sprint(*clients))
		rep.SetConfig("chaos_duration", dur.String())
		rep.SetConfig("chaos_determinism_key", fp1)
		for _, t := range tables {
			rep.AddTable(t)
		}
		rep.Benchmarks = append(rep.Benchmarks, harness.ChaosBenchmarks(points)...)
		if err := rep.WriteJSONFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "chaoskv: write %s: %v\n", *jsonOut, err)
			return 1
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "chaoskv: FAILED (%d violation(s))\n", failures)
		return 1
	}
	fmt.Println("chaoskv: all checks passed")
	return 0
}

// xorshift64 is the driver's own deterministic stream — distinct from the
// engine's injection PRNGs, which derive from the same seed but are salted
// per thread.
func xorshift64(x *uint64) uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return v
}

// doHTTP issues one request through the server's full middleware chain
// without a network in between.
func doHTTP(sv *kv.Server, method, target string, body []byte) *httptest.ResponseRecorder {
	var r io.Reader
	if body != nil {
		r = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, target, r)
	w := httptest.NewRecorder()
	sv.ServeHTTP(w, req)
	return w
}

// scanPage mirrors the server's GET /scan JSON shape.
type scanPage struct {
	Pairs []struct {
		Key   []byte `json:"key"`
		Value []byte `json:"value"`
	} `json:"pairs"`
	Next uint64 `json:"next"`
	Done bool   `json:"done"`
}

// deterministicRun drives the sequential phase once and returns its
// fingerprint line. Everything that could perturb counts is pinned: one pool
// context, one client goroutine, a logical expiry clock, no background jobs
// (the pipeline only starts under Serve), no admission (its sampler reads
// wall-clock time). The injection PRNG is the engine's own, seeded from
// -seed; the workload stream is an independent xorshift from the same seed.
// adaptPinned additionally runs the contention Tuner in pinned mode: its
// sampling goroutine ticks on real time (epoch counts vary run to run and
// stay OUT of the fingerprint), but it never writes a knob, so every counter
// that IS fingerprinted must be untouched by its presence.
func deterministicRun(seed uint64, ops int, clockShards, stripeShift int, adaptPinned bool) (string, error) {
	plan := &htm.FaultPlan{
		Seed:         seed,
		BeginProb:    0.05,
		AccessProb:   0.02,
		AccessEvery:  3,
		CommitProb:   0.05,
		MaxPerOp:     6, // bounded adversity: every op still terminates on the hardware path
		StallProb:    0.25,
		StallSpins:   16,
		ReleaseDelay: 2,
	}
	var tick int64 // logical clock: single-threaded phase, no atomics needed
	cfg := kv.Config{
		Slots:       1 << 10,
		PoolThreads: 1,
		MaxRetries:  4, // below MaxPerOp: unlucky ops engage the (injection-immune) fallback
		ClockShards: clockShards,
		StripeShift: stripeShift,
		Faults:      plan,
		Now:         func() int64 { tick++; return tick },
	}
	if adaptPinned {
		cfg.Adaptive = &kv.AdaptiveConfig{Pinned: true}
	}
	store := kv.NewStore(cfg)
	defer store.Close() // stops the pinned tuner's sampling goroutine
	sv := kv.NewServer(store)
	baseline := store.Heap().Stats().LiveWords

	rng := seed
	if rng == 0 {
		rng = 0x9E3779B97F4A7C15
	}
	model := make(map[string]string)
	var fulls uint64
	for i := 0; i < ops; i++ {
		roll := xorshift64(&rng) % 100
		key := fmt.Sprintf("k%03d", xorshift64(&rng)%256)
		switch {
		case roll < 45: // PUT
			val := fmt.Sprintf("v%d.%d", i, xorshift64(&rng)%1000000)
			w := doHTTP(sv, http.MethodPut, "/kv/"+key, []byte(val))
			switch w.Code {
			case http.StatusNoContent:
				model[key] = val
			case http.StatusInsufficientStorage:
				fulls++ // index at capacity: a no-op outcome, counted into the fingerprint
			default:
				return "", fmt.Errorf("op %d: PUT %s -> %d", i, key, w.Code)
			}
		case roll < 70: // GET
			w := doHTTP(sv, http.MethodGet, "/kv/"+key, nil)
			want, ok := model[key]
			switch {
			case ok && w.Code == http.StatusOK:
				if got := w.Body.String(); got != want {
					return "", fmt.Errorf("op %d: GET %s = %q, model has %q", i, key, got, want)
				}
			case !ok && w.Code == http.StatusNotFound:
			default:
				return "", fmt.Errorf("op %d: GET %s -> %d (in model: %v)", i, key, w.Code, ok)
			}
		case roll < 85: // DELETE
			w := doHTTP(sv, http.MethodDelete, "/kv/"+key, nil)
			_, ok := model[key]
			switch {
			case ok && w.Code == http.StatusNoContent:
				delete(model, key)
			case !ok && w.Code == http.StatusNotFound:
			default:
				return "", fmt.Errorf("op %d: DELETE %s -> %d (in model: %v)", i, key, w.Code, ok)
			}
		default: // SCAN: one page from a random cursor, every pair must match
			cursor := xorshift64(&rng) % store.Slots()
			w := doHTTP(sv, http.MethodGet, fmt.Sprintf("/scan?cursor=%d&limit=16", cursor), nil)
			if w.Code != http.StatusOK {
				return "", fmt.Errorf("op %d: SCAN @%d -> %d", i, cursor, w.Code)
			}
			var page scanPage
			if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
				return "", fmt.Errorf("op %d: SCAN decode: %v", i, err)
			}
			for _, p := range page.Pairs {
				if want, ok := model[string(p.Key)]; !ok || want != string(p.Value) {
					return "", fmt.Errorf("op %d: SCAN surfaced %q=%q, model has %q (present: %v)",
						i, p.Key, p.Value, want, ok)
				}
			}
		}
	}

	// Full drain scan: the store's contents must BE the model, exactly.
	found := 0
	for cursor := uint64(0); cursor < store.Slots(); {
		w := doHTTP(sv, http.MethodGet, fmt.Sprintf("/scan?cursor=%d&limit=64", cursor), nil)
		if w.Code != http.StatusOK {
			return "", fmt.Errorf("drain SCAN @%d -> %d", cursor, w.Code)
		}
		var page scanPage
		if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
			return "", fmt.Errorf("drain SCAN decode: %v", err)
		}
		for _, p := range page.Pairs {
			if want, ok := model[string(p.Key)]; !ok || want != string(p.Value) {
				return "", fmt.Errorf("drain SCAN surfaced %q=%q, model has %q (present: %v)",
					p.Key, p.Value, want, ok)
			}
			found++
		}
		if page.Done {
			break
		}
		cursor = page.Next
	}
	if found != len(model) {
		return "", fmt.Errorf("drain SCAN found %d entries, model has %d", found, len(model))
	}
	modelHash := hashModel(model)

	// Delete every key in sorted order (map order would perturb probe paths
	// and with them the injection counts), then check the heap swept clean.
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if w := doHTTP(sv, http.MethodDelete, "/kv/"+k, nil); w.Code != http.StatusNoContent {
			return "", fmt.Errorf("drain DELETE %s -> %d", k, w.Code)
		}
	}
	if err := sweepClean(store, baseline); err != nil {
		return "", fmt.Errorf("post-drain %v", err)
	}

	st := store.Heap().Stats()
	oc := store.OpCounters()
	adapt := 0
	if adaptPinned {
		adapt = 1
	}
	return fmt.Sprintf(
		"determinism-key: seed=%d ops=%d shards=%d shift=%d adapt=%d starts=%d commits=%d spurious=%d conflicts=%d capacity=%d fallbacks=%d stalls=%d fulls=%d gets=%d puts=%d dels=%d scans=%d model=%016x",
		seed, ops, store.Heap().ClockShards(), stripeShift, adapt, st.Starts, st.Commits, st.SpuriousAborts(),
		st.Aborts[htm.AbortConflict], st.Aborts[htm.AbortCapacity],
		st.FallbackRuns, st.FallbackStalls, fulls,
		oc.Gets, oc.Puts, oc.Deletes, oc.Scans, modelHash), nil
}

// hashModel is FNV-1a 64 over the sorted key/value pairs.
func hashModel(model map[string]string) uint64 {
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	step := func(s string, sep byte) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= uint64(sep)
		h *= prime64
	}
	for _, k := range keys {
		step(k, 0x00)
		step(model[k], 0x01)
	}
	return h
}

// sweepClean asserts the quiesced heap's invariants: nothing locked, no
// fallback tag left behind, allocation bitmap agreeing with the live-word
// accounting, and the live footprint back at the empty-store baseline.
func sweepClean(store *kv.Store, baseline uint64) error {
	ms := store.Heap().SweepMeta()
	st := store.Heap().Stats()
	switch {
	case ms.Locked != 0:
		return fmt.Errorf("sweep: %d words still locked at quiescence", ms.Locked)
	case ms.FallbackTagged != 0:
		return fmt.Errorf("sweep: %d words still fallback-tagged at quiescence", ms.FallbackTagged)
	case ms.StripeErrors != 0:
		return fmt.Errorf("sweep: %d per-stripe invariant violations at quiescence", ms.StripeErrors)
	case ms.Allocated != st.LiveWords:
		return fmt.Errorf("sweep: %d words allocated, accounting says %d live", ms.Allocated, st.LiveWords)
	case st.LiveWords != baseline:
		return fmt.Errorf("sweep: %d live words after full drain, empty-store baseline is %d (leak)", st.LiveWords, baseline)
	}
	return nil
}

// overloadPoint drives one point of the overload sweep: `clients` concurrent
// closed-loop clients against an admission-controlled server whose engine
// pool is deliberately smaller than the client count, for `dur`. Each client
// owns a disjoint key partition and an exact shadow model of it — a 503
// (shed or deadline-abandoned) is contractually effect-free, so the model
// checking stays sound under arbitrary rejection.
func overloadPoint(seed uint64, prob float64, clients int, dur time.Duration) (harness.ChaosPoint, []string) {
	var plan *htm.FaultPlan
	if prob > 0 {
		plan = &htm.FaultPlan{
			Seed:         seed,
			BeginProb:    prob,
			AccessProb:   prob / 2,
			AccessEvery:  2,
			CommitProb:   prob / 2,
			MaxPerOp:     24,
			StallProb:    prob,
			StallSpins:   32,
			ReleaseDelay: 1,
		}
	}
	pool := clients / 4
	if pool < 2 {
		pool = 2
	}
	store := kv.NewStore(kv.Config{
		Slots:       1 << 12,
		PoolThreads: pool,
		MaxRetries:  4, // injection can exhaust this, driving traffic onto the stalled fallback
		Faults:      plan,
	})
	sv := kv.NewServer(store,
		kv.WithAdmissionControl(kv.AdmissionConfig{}),
		kv.WithRequestTimeout(reqTimeout),
	)
	baseline := store.Heap().Stats().LiveWords

	type workerOut struct {
		lats      []time.Duration
		admitted  uint64
		rejected  uint64
		shadow    map[string]string
		violation []string
	}
	outs := make([]workerOut, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out := &outs[id]
			out.shadow = make(map[string]string)
			rng := seed ^ uint64(id+1)*0x9E3779B97F4A7C15
			if rng == 0 {
				rng = 1
			}
			for n := 0; time.Now().Before(deadline); n++ {
				roll := xorshift64(&rng) % 100
				key := fmt.Sprintf("c%02d-k%02d", id, xorshift64(&rng)%32)
				t0 := time.Now()
				switch {
				case roll < 50: // PUT
					val := fmt.Sprintf("v%d.%d", id, n)
					w := doHTTP(sv, http.MethodPut, "/kv/"+key, []byte(val))
					switch w.Code {
					case http.StatusNoContent:
						out.shadow[key] = val
						out.admitted++
						out.lats = append(out.lats, time.Since(t0))
					case http.StatusServiceUnavailable:
						out.rejected++ // no effect, model unchanged
					default:
						out.violation = append(out.violation, fmt.Sprintf("client %d: PUT %s -> %d", id, key, w.Code))
					}
				case roll < 85: // GET
					w := doHTTP(sv, http.MethodGet, "/kv/"+key, nil)
					want, ok := out.shadow[key]
					switch {
					case w.Code == http.StatusServiceUnavailable:
						out.rejected++
					case ok && w.Code == http.StatusOK && w.Body.String() == want:
						out.admitted++
						out.lats = append(out.lats, time.Since(t0))
					case !ok && w.Code == http.StatusNotFound:
						out.admitted++
						out.lats = append(out.lats, time.Since(t0))
					default:
						out.violation = append(out.violation, fmt.Sprintf(
							"client %d: GET %s -> %d body %q, model %q (present: %v)",
							id, key, w.Code, w.Body.String(), want, ok))
					}
				default: // DELETE
					w := doHTTP(sv, http.MethodDelete, "/kv/"+key, nil)
					_, ok := out.shadow[key]
					switch {
					case w.Code == http.StatusServiceUnavailable:
						out.rejected++
					case ok && w.Code == http.StatusNoContent:
						delete(out.shadow, key)
						out.admitted++
						out.lats = append(out.lats, time.Since(t0))
					case !ok && w.Code == http.StatusNotFound:
						out.admitted++
						out.lats = append(out.lats, time.Since(t0))
					default:
						out.violation = append(out.violation, fmt.Sprintf(
							"client %d: DELETE %s -> %d (in model: %v)", id, key, w.Code, ok))
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	pt := harness.ChaosPoint{Prob: prob, Elapsed: elapsed}
	var lats []time.Duration
	var violations []string
	for i := range outs {
		pt.Admitted += outs[i].admitted
		pt.Rejected += outs[i].rejected
		lats = append(lats, outs[i].lats...)
		violations = append(violations, outs[i].violation...)
	}
	pt.P50 = harness.LatencyPercentile(lats, 0.50)
	pt.P99 = harness.LatencyPercentile(lats, 0.99)
	pt.Sheds = sv.Metrics().Sheds.Load()
	pt.Deadlines = sv.Metrics().DeadlineHits.Load()
	st := store.Heap().Stats()
	pt.Spurious = st.SpuriousAborts()
	pt.Stalls = st.FallbackStalls

	// Quiesced: every surviving key per the shadows must still read back,
	// then drain them all and sweep the heap for leaks and stuck metadata.
	bg := context.Background()
	for i := range outs {
		keys := make([]string, 0, len(outs[i].shadow))
		for k := range outs[i].shadow {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			val, ok, err := store.Get(bg, []byte(k))
			if err != nil || !ok || string(val) != outs[i].shadow[k] {
				violations = append(violations, fmt.Sprintf(
					"p=%.2f post-run: key %s = %q,%v,%v; model %q", prob, k, val, ok, err, outs[i].shadow[k]))
				continue
			}
			if existed, err := store.Delete(bg, []byte(k)); err != nil || !existed {
				violations = append(violations, fmt.Sprintf(
					"p=%.2f post-run: drain DELETE %s = %v,%v", prob, k, existed, err))
			}
		}
	}
	if err := sweepClean(store, baseline); err != nil {
		violations = append(violations, fmt.Sprintf("p=%.2f %v", prob, err))
	}
	return pt, violations
}
