// Command kvserver serves the transactional KV engine (package kv) over
// HTTP. The storage engine is the simulated HTM heap: every GET/PUT/DELETE/
// SCAN request runs as one heap transaction (TLE with the fine-grained
// fallback), and background expiry/compaction jobs flow through an on-heap
// concurrent queue. SIGINT/SIGTERM trigger a graceful shutdown: in-flight
// requests complete, the job pipeline drains, and the process exits 0 — the
// contract the CI e2e job asserts.
//
// Usage:
//
//	kvserver [-addr 127.0.0.1:7070] [-slots 16384] [-heap-words N]
//	         [-pool N] [-max-value 4096] [-sweep 2s] [-job-workers 2]
//	         [-job-queue htm|ms|rop|ebr] [-global-fallback] [-verbose]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/htm"
	"repro/kv"
	"repro/queue"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	slots := flag.Int("slots", kv.DefaultSlots, "hash index capacity (rounded up to a power of two)")
	heapWords := flag.Int("heap-words", 0, "heap arena size in 64-bit words (0 = derived from -slots)")
	pool := flag.Int("pool", 0, "execution-context pool size / engine concurrency (0 = 4*GOMAXPROCS)")
	maxValue := flag.Int("max-value", kv.DefaultMaxValueBytes, "maximum value size in bytes")
	sweep := flag.Duration("sweep", 2*time.Second, "interval between background expiry/compaction sweeps")
	jobWorkers := flag.Int("job-workers", 2, "background job worker goroutines")
	jobQueue := flag.String("job-queue", "htm", "job queue implementation: htm, ms, rop or ebr")
	globalFallback := flag.Bool("global-fallback", false, "use the paper's global TLE fallback lock instead of the fine-grained lock-set")
	verbose := flag.Bool("verbose", false, "log every request")
	flag.Parse()

	newQueue, err := queueFactory(*jobQueue)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		return 2
	}

	store := kv.NewStore(kv.Config{
		Slots:          *slots,
		HeapWords:      *heapWords,
		MaxValueBytes:  *maxValue,
		PoolThreads:    *pool,
		GlobalFallback: *globalFallback,
	})
	opts := []kv.ServerOption{kv.WithJobs(kv.JobsConfig{
		Interval: *sweep,
		Workers:  *jobWorkers,
		NewQueue: newQueue,
	})}
	if *verbose {
		opts = append(opts, kv.WithRequestLog(nil))
	}
	srv := kv.NewServer(store, opts...)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: listen: %v\n", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("kvserver: serving on http://%s (slots=%d heap=%dw pool=%d queue=%s)",
		ln.Addr(), store.Slots(), store.Heap().Config().Words, store.PoolSize(), *jobQueue)
	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		return 1
	}
	st := store.Heap().Stats()
	log.Printf("kvserver: clean shutdown; final heap stats: %s", st)
	return 0
}

// queueFactory maps a -job-queue name to a queue constructor.
func queueFactory(name string) (func(h *htm.Heap) queue.Queue, error) {
	switch name {
	case "htm":
		return func(h *htm.Heap) queue.Queue { return queue.NewHTMQueue(h) }, nil
	case "ms":
		return func(h *htm.Heap) queue.Queue { return queue.NewMSQueue(h) }, nil
	case "rop":
		return func(h *htm.Heap) queue.Queue { return queue.NewMSQueueROP(h) }, nil
	case "ebr":
		return func(h *htm.Heap) queue.Queue { return queue.NewMSQueueEBR(h) }, nil
	default:
		return nil, fmt.Errorf("unknown -job-queue %q (want htm, ms, rop or ebr)", name)
	}
}
