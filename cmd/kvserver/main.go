// Command kvserver serves the transactional KV engine (package kv) over
// HTTP. The storage engine is the simulated HTM heap: every GET/PUT/DELETE/
// SCAN request runs as one heap transaction (TLE with the fine-grained
// fallback), and background expiry/compaction jobs flow through an on-heap
// concurrent queue. SIGINT/SIGTERM trigger a graceful shutdown: in-flight
// requests complete, the job pipeline drains, and the process exits 0 — the
// contract the CI e2e job asserts.
//
// Usage:
//
//	kvserver [-addr 127.0.0.1:7070] [-slots 16384] [-heap-words N]
//	         [-pool N] [-max-value 4096] [-sweep 2s] [-job-workers 2]
//	         [-job-queue htm|ms|rop|ebr] [-global-fallback] [-verbose]
//	         [-admission] [-req-timeout 0] [-max-retries 0]
//	         [-adapt] [-adapt-interval 25ms]
//	         [-fault-seed 1] [-fault-begin P] [-fault-access P]
//	         [-fault-commit P] [-fault-stall P]
//	         [-wal-dir DIR] [-fsync=true] [-snapshot-every N]
//	         [-segment-bytes N]
//
// The -fault-* flags attach a seeded injection plan (htm.FaultPlan) to the
// heap — the chaos knobs, usable against a live server; -admission turns on
// load shedding (503 + Retry-After under pool saturation or abort storms)
// and -req-timeout bounds each request's store operation. -adapt attaches
// the online contention tuner (htm.Tuner): the fallback mode, spin budget
// and dedup threshold self-tune from live abort feedback, and with
// -admission the governor's storm threshold tracks the heap's abort mix.
//
// -wal-dir turns on durability: acknowledged mutations are written to a
// CRC-framed commit log before the response goes out, snapshots truncate old
// history every -snapshot-every mutations, and startup replays the directory
// (logging whether the previous shutdown was clean). A torn log tail is
// repaired by truncation; unrecoverable state — mid-log corruption, missing
// segments — is reported with the file and offset and the process exits 3
// rather than serve data it cannot trust (move the directory aside, or
// restore it, to start fresh).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/htm"
	"repro/kv"
	"repro/kv/wal"
	"repro/queue"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	slots := flag.Int("slots", kv.DefaultSlots, "hash index capacity (rounded up to a power of two)")
	heapWords := flag.Int("heap-words", 0, "heap arena size in 64-bit words (0 = derived from -slots)")
	pool := flag.Int("pool", 0, "execution-context pool size / engine concurrency (0 = 4*GOMAXPROCS)")
	maxValue := flag.Int("max-value", kv.DefaultMaxValueBytes, "maximum value size in bytes")
	sweep := flag.Duration("sweep", 2*time.Second, "interval between background expiry/compaction sweeps")
	jobWorkers := flag.Int("job-workers", 2, "background job worker goroutines")
	jobQueue := flag.String("job-queue", "htm", "job queue implementation: htm, ms, rop or ebr")
	globalFallback := flag.Bool("global-fallback", false, "use the paper's global TLE fallback lock instead of the fine-grained lock-set")
	verbose := flag.Bool("verbose", false, "log every request")
	admission := flag.Bool("admission", false, "shed load (503 + Retry-After) under pool saturation or abort storms")
	reqTimeout := flag.Duration("req-timeout", 0, "per-request store-operation deadline (0 = unbounded)")
	maxRetries := flag.Int("max-retries", 0, "hardware retry budget before the TLE fallback (0 = engine default)")
	adapt := flag.Bool("adapt", false, "self-tune fallback mode, spin budget and dedup threshold from live abort feedback")
	adaptInterval := flag.Duration("adapt-interval", 0, "tuning epoch length with -adapt (0 = engine default, 25ms)")
	clockShards := flag.Int("clock-shards", 0, "version-clock shards, rounded up to a power of two (0/1 = single scalar clock)")
	stripeShift := flag.Int("stripe-shift", 0, "metadata striping: one orec per 2^shift heap words (0 = per-word)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the -fault-* injection plan")
	faultBegin := flag.Float64("fault-begin", 0, "probability of a spurious abort at transaction begin")
	faultAccess := flag.Float64("fault-access", 0, "probability of a spurious abort per transactional access")
	faultCommit := flag.Float64("fault-commit", 0, "probability of a spurious abort at commit-point")
	faultStall := flag.Float64("fault-stall", 0, "probability a fallback run stalls while holding its lock-set")
	walDir := flag.String("wal-dir", "", "durability directory for the commit log and snapshots (empty = in-memory only)")
	fsync := flag.Bool("fsync", true, "fsync each commit-log batch (false trades durability for throughput)")
	snapshotEvery := flag.Int("snapshot-every", 4096, "mutations between automatic snapshots (0 = never snapshot)")
	segmentBytes := flag.Int("segment-bytes", 0, "commit-log segment rotation threshold in bytes (0 = default 4 MiB)")
	flag.Parse()

	newQueue, err := queueFactory(*jobQueue)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		return 2
	}

	var plan *htm.FaultPlan
	if *faultBegin > 0 || *faultAccess > 0 || *faultCommit > 0 || *faultStall > 0 {
		plan = &htm.FaultPlan{
			Seed:       *faultSeed,
			BeginProb:  *faultBegin,
			AccessProb: *faultAccess,
			CommitProb: *faultCommit,
			StallProb:  *faultStall,
			MaxPerOp:   64, // a live server must keep terminating under any dial setting
		}
	}
	cfg := kv.Config{
		Slots:          *slots,
		HeapWords:      *heapWords,
		MaxValueBytes:  *maxValue,
		PoolThreads:    *pool,
		GlobalFallback: *globalFallback,
		MaxRetries:     *maxRetries,
		ClockShards:    *clockShards,
		StripeShift:    *stripeShift,
		Faults:         plan,
	}
	if *adapt {
		cfg.Adaptive = &kv.AdaptiveConfig{Interval: *adaptInterval}
	}
	if *walDir != "" {
		cfg.Durability = &kv.Durability{
			Dir:           *walDir,
			SegmentBytes:  *segmentBytes,
			NoSync:        !*fsync,
			SnapshotEvery: *snapshotEvery,
		}
	}
	store, err := kv.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		if errors.Is(err, wal.ErrRecovery) {
			fmt.Fprintf(os.Stderr, "kvserver: the log in %s is unrecoverable; refusing to serve state that may be wrong.\n"+
				"kvserver: move the directory aside (or restore it from a copy) and restart to begin empty.\n", *walDir)
			return 3
		}
		return 1
	}
	if ri := store.Recovery(); ri != nil {
		mode := "crash recovery"
		if ri.Clean {
			mode = "clean start"
		}
		log.Printf("kvserver: %s from %s: %d entries (snapshot=%d log=%d applied=%d segments=%d seq=%d) in %s",
			mode, *walDir, ri.Entries, ri.SnapshotEntries, ri.LogRecords, ri.Applied, ri.Segments, ri.MaxSeq,
			ri.Elapsed.Round(time.Microsecond))
		if ri.TruncatedBytes > 0 {
			log.Printf("kvserver: truncated %d-byte torn tail from %s (crash mid-write; unacknowledged data discarded)",
				ri.TruncatedBytes, ri.TornSegment)
		}
	}
	opts := []kv.ServerOption{kv.WithJobs(kv.JobsConfig{
		Interval: *sweep,
		Workers:  *jobWorkers,
		NewQueue: newQueue,
	})}
	if *verbose {
		opts = append(opts, kv.WithRequestLog(nil))
	}
	if *admission {
		opts = append(opts, kv.WithAdmissionControl(kv.AdmissionConfig{}))
	}
	if *reqTimeout > 0 {
		opts = append(opts, kv.WithRequestTimeout(*reqTimeout))
	}
	srv := kv.NewServer(store, opts...)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: listen: %v\n", err)
		return 1
	}
	// Log the bound address the moment the listener exists — before signal
	// wiring or anything else that could delay (or, failing, suppress) the
	// line. Supervisors and the CI e2e script treat it as the readiness
	// signal, and with -addr :0 it is the only way to learn the chosen port.
	adaptState := "off"
	if tu := store.Tuner(); tu != nil {
		st := tu.State()
		adaptState = fmt.Sprintf("mode=%s spins=%d dedup=%d", st.Mode, st.FallbackSpins, st.DedupBypass)
	}
	log.Printf("kvserver: serving on http://%s (slots=%d heap=%dw pool=%d queue=%s faults=%v durable=%v adapt=%s)",
		ln.Addr(), store.Slots(), store.Heap().Config().Words, store.PoolSize(), *jobQueue, plan != nil, store.Durable(), adaptState)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		return 1
	}
	st := store.Heap().Stats()
	log.Printf("kvserver: clean shutdown; final heap stats: %s", st)
	return 0
}

// queueFactory maps a -job-queue name to a queue constructor.
func queueFactory(name string) (func(h *htm.Heap) queue.Queue, error) {
	switch name {
	case "htm":
		return func(h *htm.Heap) queue.Queue { return queue.NewHTMQueue(h) }, nil
	case "ms":
		return func(h *htm.Heap) queue.Queue { return queue.NewMSQueue(h) }, nil
	case "rop":
		return func(h *htm.Heap) queue.Queue { return queue.NewMSQueueROP(h) }, nil
	case "ebr":
		return func(h *htm.Heap) queue.Queue { return queue.NewMSQueueEBR(h) }, nil
	default:
		return nil, fmt.Errorf("unknown -job-queue %q (want htm, ms, rop or ebr)", name)
	}
}
