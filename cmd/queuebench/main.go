// Command queuebench regenerates Figure 1: throughput of the HTM queue, the
// Michael-Scott queue (thread-local pools, no reclamation), Michael-Scott
// with ROP/hazard-pointer reclamation, and Michael-Scott with epoch-based
// reclamation, across thread counts — plus a per-queue summary with the
// per-op overhead and quiescent-memory columns from §1.1.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cycles"
	"repro/internal/harness"
)

func main() {
	dur := flag.Duration("duration", 200*time.Millisecond, "measured duration per data point")
	threads := flag.Int("threads", 16, "maximum simulated thread count")
	quick := flag.Bool("quick", false, "reduced sweep")
	flag.Parse()

	cfg := harness.Config{
		PointDuration: *dur,
		Clock:         cycles.Calibrate(cycles.DefaultGHz),
		Threads:       *threads,
	}
	counts := harness.DefaultThreadCounts
	if *quick {
		counts = []int{1, 2, 4, 8, 16}
		cfg.PointDuration = 100 * time.Millisecond
	}
	var tc []int
	for _, n := range counts {
		if n <= *threads {
			tc = append(tc, n)
		}
	}
	fmt.Println(harness.Fig1(cfg, tc).Render())

	// §1.1 summary at a fixed thread count: throughput, per-op overhead
	// relative to the HTM queue, and peak/quiescent memory after enqueueing
	// 10k entries and draining.
	sumThreads := 8
	if sumThreads > *threads {
		sumThreads = *threads
	}
	if sumThreads < 1 {
		sumThreads = 1
	}
	fmt.Println(harness.QueueComparison(cfg, sumThreads, 256).Render())
}
