// Command queuebench regenerates Figure 1: throughput of the HTM queue, the
// Michael-Scott queue (thread-local pools, no reclamation) and Michael-Scott
// with ROP/hazard-pointer reclamation, across thread counts, plus the
// space-after-drain comparison from §1.1.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cycles"
	"repro/internal/harness"
	"repro/internal/htm"
	"repro/internal/queue"
)

func main() {
	dur := flag.Duration("duration", 200*time.Millisecond, "measured duration per data point")
	threads := flag.Int("threads", 16, "maximum simulated thread count")
	quick := flag.Bool("quick", false, "reduced sweep")
	flag.Parse()

	cfg := harness.Config{
		PointDuration: *dur,
		Clock:         cycles.Calibrate(cycles.DefaultGHz),
		Threads:       *threads,
	}
	counts := harness.DefaultThreadCounts
	if *quick {
		counts = []int{1, 2, 4, 8, 16}
		cfg.PointDuration = 100 * time.Millisecond
	}
	var tc []int
	for _, n := range counts {
		if n <= *threads {
			tc = append(tc, n)
		}
	}
	fmt.Println(harness.Fig1(cfg, tc).Render())

	// §1.1 space comparison: grow each queue to 10k entries, drain, report
	// residual live memory.
	fmt.Println("== Space after enqueueing 10k entries and draining [bytes] ==")
	for _, spec := range harness.QueueSpecs() {
		h := htm.NewHeap(htm.Config{Words: 1 << 20})
		q := spec.New(h)
		c := q.NewCtx(h.NewThread())
		for i := 0; i < 10000; i++ {
			q.Enqueue(c, uint64(i+1))
		}
		peak := h.Stats().MaxLiveWords * 8
		for {
			if _, ok := q.Dequeue(c); !ok {
				break
			}
		}
		if rop, ok := q.(*queue.MSQueueROP); ok {
			rop.CloseCtx(c)
		}
		fmt.Printf("%-22s peak=%-10d residual=%d\n", spec.Label, peak, h.Stats().LiveWords*8)
	}
}
