// Command queuebench regenerates Figure 1: throughput of the HTM queue, the
// Michael-Scott queue (thread-local pools, no reclamation), Michael-Scott
// with ROP/hazard-pointer reclamation, and Michael-Scott with epoch-based
// reclamation, across thread counts — plus a per-queue summary with the
// per-op overhead and quiescent-memory columns from §1.1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cycles"
	"repro/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	dur := flag.Duration("duration", 200*time.Millisecond, "measured duration per data point")
	threads := flag.Int("threads", 16, "maximum simulated thread count")
	quick := flag.Bool("quick", false, "reduced sweep")
	jsonOut := flag.String("json", "", "also write results as a machine-readable Report to this file")
	label := flag.String("label", "queuebench", "label recorded in the -json report")
	flag.Parse()

	cfg := harness.Config{
		PointDuration: *dur,
		Clock:         cycles.Calibrate(cycles.DefaultGHz),
		Threads:       *threads,
	}
	counts := harness.DefaultThreadCounts
	if *quick {
		counts = []int{1, 2, 4, 8, 16}
		cfg.PointDuration = 100 * time.Millisecond
	}
	var tc []int
	for _, n := range counts {
		if n <= *threads {
			tc = append(tc, n)
		}
	}
	fig1 := harness.Fig1(cfg, tc)
	fmt.Println(fig1.Render())

	// §1.1 summary at a fixed thread count: throughput, per-op overhead
	// relative to the HTM queue, and peak/quiescent memory after enqueueing
	// 10k entries and draining.
	sumThreads := 8
	if sumThreads > *threads {
		sumThreads = *threads
	}
	if sumThreads < 1 {
		sumThreads = 1
	}
	cmp := harness.QueueComparison(cfg, sumThreads, 256)
	fmt.Println(cmp.Render())

	if *jsonOut != "" {
		rep := harness.NewReport(*label)
		rep.SetConfig("duration", cfg.PointDuration.String())
		rep.SetConfig("threads", fmt.Sprint(*threads))
		rep.AddTable(fig1)
		rep.AddTable(cmp)
		if err := rep.WriteJSONFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "queuebench: write %s: %v\n", *jsonOut, err)
			return 1
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}
	return 0
}
