// Command crashkv is the crash-consistency harness: it repeatedly SIGKILLs a
// real kvserver process at seeded points under live write load, restarts it,
// and verifies that recovery preserved every acknowledged write — the
// durability contract of the kv/wal commit log, checked end-to-end through
// the real binary, the real filesystem and real fsyncs.
//
// Three phases, all driven by one seed:
//
//  1. Kill cycles: concurrent clients PUT/DELETE against the server; after a
//     seeded delay the process is SIGKILLed mid-flight, restarted, and every
//     key is read back. Each client tracks its confirmed state (last
//     acknowledged op per key) plus the candidate states of operations whose
//     responses were lost in the crash; an observed value outside that set
//     is a lost acknowledged write or a corrupt read — both fatal.
//  2. Torn writes: seeded garbage is appended to the live tail segment (the
//     server must truncate it and lose nothing), then the tail is chopped
//     mid-record (losses are expected but every surviving value must be one
//     the harness actually wrote — corruption is never acceptable).
//  3. Mid-log corruption: a byte is flipped inside a non-final segment of a
//     fresh log; the server must refuse to start with exit status 3 and an
//     actionable message rather than serve state it cannot trust.
//
// The phase ends with a SIGTERM: the exit status must be 0 and the next
// start must report a clean recovery (the shutdown marker round-trip).
//
// The summary line `crash-verdict: ...` contains only seed-deterministic
// fields; CI runs the harness twice with the same seed and diffs the lines.
// With -json the recovery figures are merged into a harness.Report.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 1, "kill-timing and workload seed (replay a run by its seed)")
	cycles := flag.Int("cycles", 6, "SIGKILL/restart cycles in phase 1")
	clients := flag.Int("clients", 4, "concurrent writer clients during each cycle")
	keysPer := flag.Int("keys", 24, "keys owned by each client")
	server := flag.String("server", "", "kvserver binary to exercise (empty = go build ./cmd/kvserver)")
	dataDir := flag.String("dir", "", "durability directory (empty = temp dir, removed on exit)")
	quick := flag.Bool("quick", false, "reduced run: 5 cycles and shorter kill windows")
	jsonOut := flag.String("json", "", "write (or with -append, merge) recovery figures as a Report to this file")
	appendTo := flag.Bool("append", false, "merge the tables into an existing -json report instead of overwriting it")
	label := flag.String("label", "crashkv", "label recorded in the -json report")
	flag.Parse()

	if *quick && *cycles > 5 {
		*cycles = 5
	}
	if *cycles < 1 || *clients < 1 || *keysPer < 1 {
		fmt.Fprintln(os.Stderr, "crashkv: -cycles, -clients and -keys must be positive")
		return 2
	}

	bin := *server
	if bin == "" {
		tmp, err := os.MkdirTemp("", "crashkv-bin-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashkv: %v\n", err)
			return 1
		}
		defer os.RemoveAll(tmp)
		bin = filepath.Join(tmp, "kvserver")
		build := exec.Command("go", "build", "-o", bin, "./cmd/kvserver")
		if out, err := build.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "crashkv: build kvserver: %v\n%s", err, out)
			return 1
		}
	}

	dir := *dataDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "crashkv-wal-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashkv: %v\n", err)
			return 1
		}
		defer os.RemoveAll(dir)
	}

	h := &crashHarness{
		bin:    bin,
		dir:    dir,
		seed:   *seed,
		quick:  *quick,
		rng:    newRNG(*seed),
		states: newClientStates(*clients, *keysPer),
		serverArgs: []string{
			"-addr", "127.0.0.1:0",
			"-slots", "4096",
			"-snapshot-every", "400",
			"-segment-bytes", "32768",
		},
	}

	failures := 0
	fail := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "crashkv: VIOLATION: "+format+"\n", a...)
		failures++
	}

	// Phase 1: seeded SIGKILL/restart cycles under load.
	if err := h.start(); err != nil {
		fmt.Fprintf(os.Stderr, "crashkv: initial start: %v\n", err)
		return 1
	}
	var lostAcked uint64
	for c := 1; c <= *cycles; c++ {
		pt, viols, err := h.killCycle(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashkv: cycle %d: %v\n", c, err)
			h.stop()
			return 1
		}
		for _, v := range viols {
			fail("cycle %d: %s", c, v)
		}
		lostAcked += pt.Lost
		h.points = append(h.points, pt)
		fmt.Printf("# cycle %d: acked=%d verified=%d lost=%d replayed=%d+%d recover=%s\n",
			c, pt.Acked, pt.Verified, pt.Lost, pt.SnapEntries, pt.LogRecords, pt.Recover.Round(time.Microsecond))
	}

	// Phase 2a: garbage appended to the live tail must be truncated away
	// with zero acknowledged loss.
	tornOK := true
	pt, viols, err := h.garbageTail()
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashkv: torn phase: %v\n", err)
		h.stop()
		return 1
	}
	for _, v := range viols {
		fail("torn: %s", v)
		tornOK = false
	}
	lostAcked += pt.Lost
	h.points = append(h.points, pt)
	fmt.Printf("# torn: verified=%d lost=%d truncated=%dB recover=%s\n",
		pt.Verified, pt.Lost, pt.TruncatedBytes, pt.Recover.Round(time.Microsecond))

	// Phase 2b: chop the tail mid-record. Acked tail records may be lost —
	// that is the point — but no read may ever return a value the harness
	// did not write.
	if viols, err := h.chopTail(); err != nil {
		fmt.Fprintf(os.Stderr, "crashkv: chop phase: %v\n", err)
		h.stop()
		return 1
	} else {
		for _, v := range viols {
			fail("chop: %s", v)
			tornOK = false
		}
	}

	// Graceful-shutdown round-trip: SIGTERM exits 0, the next start reports
	// a clean recovery, and the state is byte-identical.
	cleanExitOK, cleanRecoveryOK := true, true
	if code, err := h.term(); err != nil || code != 0 {
		fail("SIGTERM exit: code=%d err=%v", code, err)
		cleanExitOK = false
	}
	if err := h.start(); err != nil {
		fmt.Fprintf(os.Stderr, "crashkv: restart after clean shutdown: %v\n", err)
		return 1
	}
	if st, err := h.fetchStats(); err != nil {
		fail("stats after clean shutdown: %v", err)
		cleanRecoveryOK = false
	} else {
		if st.Recovery == nil || !st.Recovery.Clean {
			fail("recovery after SIGTERM not reported clean: %+v", st.Recovery)
			cleanRecoveryOK = false
		}
		if st.Failures > 0 {
			fail("server reported %d durability failures", st.Failures)
		}
	}
	verified, lost, vv := h.verify(false)
	for _, v := range vv {
		fail("clean restart: %s", v)
	}
	if lost > 0 {
		lostAcked += lost
		cleanRecoveryOK = false
	}
	fmt.Printf("# clean restart: verified=%d lost=%d\n", verified, lost)
	if code, err := h.term(); err != nil || code != 0 {
		fail("final SIGTERM exit: code=%d err=%v", code, err)
		cleanExitOK = false
	}

	// Phase 3: mid-log corruption in a fresh directory must refuse startup
	// with exit status 3.
	midlogOK, midlogDesc := h.midlog()
	if !midlogOK {
		fail("midlog: %s", midlogDesc)
	}
	fmt.Printf("# midlog: %s\n", midlogDesc)

	verdict := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	fmt.Printf("crash-verdict: seed=%d cycles=%d lost-acked=%d torn=%s midlog=%s clean-exit=%s clean-recovery=%s\n",
		*seed, *cycles, lostAcked, verdict(tornOK && lostAcked == 0), verdict(midlogOK),
		verdict(cleanExitOK), verdict(cleanRecoveryOK))

	for _, t := range harness.DurabilityTables(h.points) {
		fmt.Println(t.Render())
	}

	if *jsonOut != "" {
		rep := harness.NewReport(*label)
		if *appendTo {
			if existing, err := harness.ReadJSONFile(*jsonOut); err == nil {
				rep = existing
				rep.Label = *label
			} else if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "crashkv: read %s: %v\n", *jsonOut, err)
				return 1
			}
		}
		rep.SetConfig("crash_seed", fmt.Sprint(*seed))
		rep.SetConfig("crash_cycles", fmt.Sprint(*cycles))
		rep.SetConfig("crash_clients", fmt.Sprint(*clients))
		for _, t := range harness.DurabilityTables(h.points) {
			rep.AddTable(t)
		}
		rep.Benchmarks = append(rep.Benchmarks, harness.DurabilityBenchmarks(h.points)...)
		if err := rep.WriteJSONFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "crashkv: write %s: %v\n", *jsonOut, err)
			return 1
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "crashkv: FAILED with %d violation(s)\n", failures)
		return 1
	}
	fmt.Println("# crashkv: all phases passed")
	return 0
}

// crashHarness owns the server lifecycle, the durability directory and the
// clients' shadow state across kill cycles.
type crashHarness struct {
	bin        string
	dir        string
	seed       uint64
	quick      bool
	serverArgs []string
	rng        *rng
	states     []*clientState
	proc       *proc
	points     []harness.DurabilityPoint
}

func (h *crashHarness) args(dir string, extra ...string) []string {
	out := append([]string{}, h.serverArgs...)
	out = append(out, "-wal-dir", dir)
	return append(out, extra...)
}

func (h *crashHarness) start() error {
	p, err := startServer(h.bin, h.args(h.dir))
	if err != nil {
		return err
	}
	h.proc = p
	return nil
}

func (h *crashHarness) stop() {
	if h.proc != nil {
		h.proc.kill()
		h.proc = nil
	}
}

func (h *crashHarness) term() (int, error) {
	p := h.proc
	h.proc = nil
	return p.term()
}

// killCycle drives the clients, SIGKILLs the server after a seeded delay,
// restarts it and verifies every key against the shadow state.
func (h *crashHarness) killCycle(cycle int) (harness.DurabilityPoint, []string, error) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var acked atomic.Uint64
	runWorkload(h.proc.base, h.states, h.seed, cycle, stop, &wg, &acked)

	// The seeded delay positions the kill inside the write storm; the jitter
	// range keeps it away from both the idle start and a drained end.
	lo, span := uint64(250), uint64(250)
	if h.quick {
		lo, span = 120, 130
	}
	time.Sleep(time.Duration(lo+h.rng.next()%span) * time.Millisecond)
	h.proc.kill()
	close(stop)
	wg.Wait()

	if err := h.start(); err != nil {
		return harness.DurabilityPoint{}, nil, fmt.Errorf("restart: %w", err)
	}
	st, err := h.fetchStats()
	if err != nil {
		return harness.DurabilityPoint{}, nil, err
	}
	verified, lost, viols := h.verify(false)
	pt := harness.DurabilityPoint{
		Cycle:    cycle,
		Acked:    acked.Load(),
		Verified: verified,
		Lost:     lost,
		Recover:  h.proc.ready,
	}
	if st.Recovery != nil {
		pt.LogRecords = st.Recovery.LogRecords
		pt.SnapEntries = st.Recovery.SnapshotEntries
		pt.TruncatedBytes = st.Recovery.TruncatedBytes
	}
	return pt, viols, nil
}

// garbageTail kills the idle server, appends seeded garbage to the tail
// segment and checks that restart truncates it with zero acknowledged loss.
func (h *crashHarness) garbageTail() (harness.DurabilityPoint, []string, error) {
	h.stop()
	path, _, err := lastSegment(h.dir)
	if err != nil {
		return harness.DurabilityPoint{}, nil, err
	}
	garbage := make([]byte, 64+h.rng.next()%192)
	for i := range garbage {
		garbage[i] = byte(h.rng.next())
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return harness.DurabilityPoint{}, nil, err
	}
	if _, err := f.Write(garbage); err != nil {
		f.Close()
		return harness.DurabilityPoint{}, nil, err
	}
	f.Close()

	if err := h.start(); err != nil {
		return harness.DurabilityPoint{}, nil, fmt.Errorf("restart after garbage append: %w", err)
	}
	st, err := h.fetchStats()
	if err != nil {
		return harness.DurabilityPoint{}, nil, err
	}
	verified, lost, viols := h.verify(false)
	pt := harness.DurabilityPoint{
		Label:    "torn",
		Verified: verified,
		Lost:     lost,
		Recover:  h.proc.ready,
	}
	if st.Recovery != nil {
		pt.LogRecords = st.Recovery.LogRecords
		pt.SnapEntries = st.Recovery.SnapshotEntries
		pt.TruncatedBytes = st.Recovery.TruncatedBytes
		if st.Recovery.TruncatedBytes < int64(len(garbage)) {
			viols = append(viols, fmt.Sprintf(
				"appended %dB of garbage but recovery truncated only %dB",
				len(garbage), st.Recovery.TruncatedBytes))
		}
	} else {
		viols = append(viols, "no recovery info in /stats after garbage append")
	}
	return pt, viols, nil
}

// chopTail kills the idle server, truncates the tail segment mid-record and
// checks the no-corruption contract: a chopped log may lose its tail, but
// every surviving value must be one the harness wrote.
func (h *crashHarness) chopTail() ([]string, error) {
	h.stop()
	path, size, err := lastSegment(h.dir)
	if err != nil {
		return nil, err
	}
	if size > 0 {
		chop := int64(1)
		if size > 2 {
			chop = 1 + int64(h.rng.next()%uint64(minInt64(64, size-1)))
		}
		if err := os.Truncate(path, size-chop); err != nil {
			return nil, err
		}
	}
	if err := h.start(); err != nil {
		return nil, fmt.Errorf("restart after tail chop: %w", err)
	}
	_, _, viols := h.verify(true)
	return viols, nil
}

// midlog builds a fresh multi-segment log, flips one byte in a non-final
// segment and asserts the server refuses to start with exit status 3.
func (h *crashHarness) midlog() (bool, string) {
	dir, err := os.MkdirTemp("", "crashkv-midlog-")
	if err != nil {
		return false, err.Error()
	}
	defer os.RemoveAll(dir)

	// Snapshots off and tiny segments so the sequential puts span several
	// segment files; the corruption must land before the final one.
	args := h.args(dir, "-snapshot-every", "0", "-segment-bytes", "2048")
	p, err := startServer(h.bin, args)
	if err != nil {
		return false, fmt.Sprintf("start: %v", err)
	}
	hc := newHTTPClient()
	for i := 0; i < 220; i++ {
		key := fmt.Sprintf("m%03d", i)
		if status, err := httpPut(hc, p.base, key, fmt.Sprintf("midlog-value-%06d", i)); err != nil || status != http.StatusNoContent {
			p.kill()
			return false, fmt.Sprintf("seed PUT %s: status=%d err=%v", key, status, err)
		}
	}
	p.kill()

	segs, err := segmentNames(dir)
	if err != nil {
		return false, err.Error()
	}
	if len(segs) < 2 {
		return false, fmt.Sprintf("expected >=2 segments, got %d (segment-bytes too large?)", len(segs))
	}
	first := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(first)
	if err != nil {
		return false, err.Error()
	}
	if len(data) == 0 {
		return false, "first segment is empty"
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(first, data, 0o644); err != nil {
		return false, err.Error()
	}

	code, out, err := runExpectExit(h.bin, args)
	if err != nil {
		return false, fmt.Sprintf("corrupted restart: %v", err)
	}
	if code != 3 {
		return false, fmt.Sprintf("corrupted restart exited %d, want 3\n%s", code, out)
	}
	if !strings.Contains(out, "unrecoverable") {
		return false, fmt.Sprintf("exit 3 without actionable message:\n%s", out)
	}
	return true, fmt.Sprintf("corrupt %s refused with exit 3", segs[0])
}

func (h *crashHarness) fetchStats() (*statsWal, error) {
	hc := newHTTPClient()
	resp, err := hc.Get(h.proc.base + "/stats")
	if err != nil {
		return nil, fmt.Errorf("GET /stats: %w", err)
	}
	defer resp.Body.Close()
	var decoded struct {
		Wal *statsWal `json:"wal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		return nil, fmt.Errorf("decode /stats: %w", err)
	}
	if decoded.Wal == nil {
		return nil, fmt.Errorf("/stats has no wal section (server not durable?)")
	}
	return decoded.Wal, nil
}

// verify reads back every key each client owns and checks it against the
// shadow state, then resyncs the shadows to the observed (now durable)
// state. In chop mode acknowledged losses are tolerated but any value the
// harness never wrote is a violation.
func (h *crashHarness) verify(chop bool) (verified, lost uint64, viols []string) {
	hc := newHTTPClient()
	for _, st := range h.states {
		for _, key := range st.keys {
			val, present, err := httpGet(hc, h.proc.base, key)
			if err != nil {
				viols = append(viols, fmt.Sprintf("client %d: GET %s: %v", st.id, key, err))
				continue
			}
			verified++
			confVal, confirmed := st.conf[key]
			var ok bool
			if chop {
				ok = !present || st.hist[key][val]
			} else if present {
				ok = (confirmed && val == confVal) || st.cand[key][val]
			} else {
				ok = !confirmed || st.cand[key][candDeleted]
			}
			if !ok {
				lost++
				viols = append(viols, fmt.Sprintf(
					"client %d key %s: observed %q (present=%v), confirmed %q (confirmed=%v), %d candidate(s)",
					st.id, key, val, present, confVal, confirmed, len(st.cand[key])))
			}
			if present {
				st.conf[key] = val
			} else {
				delete(st.conf, key)
			}
			delete(st.cand, key)
		}
	}
	return verified, lost, viols
}

// --- client shadow model ---

// candDeleted marks "absent" as a candidate post-crash state for a key whose
// DELETE received no acknowledgment.
const candDeleted = "\x00deleted"

// clientState is one writer's shadow of its disjoint key partition.
//
//   - conf holds the last acknowledged durable state per key (absence means
//     confirmed-absent): the server appends to the commit log before it
//     responds, so an acknowledged op must survive any later crash.
//   - cand holds the possible states left behind by unacknowledged ops
//     (connection killed mid-request, 5xx): each such op may or may not have
//     committed, so post-crash the key may legitimately show any of them.
//     Candidates are only cleared after a restart, when the observed state is
//     known durable — a still-running handler from a timed-out request could
//     otherwise commit after a later acknowledged op.
//   - hist holds every value ever attempted, the corruption bound: no read
//     may ever return a value outside it.
type clientState struct {
	id     int
	keys   []string
	conf   map[string]string
	cand   map[string]map[string]bool
	hist   map[string]map[string]bool
	serial int
}

func newClientStates(clients, keysPer int) []*clientState {
	states := make([]*clientState, clients)
	for c := range states {
		st := &clientState{
			id:   c,
			conf: make(map[string]string),
			cand: make(map[string]map[string]bool),
			hist: make(map[string]map[string]bool),
		}
		for k := 0; k < keysPer; k++ {
			st.keys = append(st.keys, fmt.Sprintf("c%d-k%02d", c, k))
		}
		states[c] = st
	}
	return states
}

func (st *clientState) note(m map[string]map[string]bool, key, val string) {
	if m[key] == nil {
		m[key] = make(map[string]bool)
	}
	m[key][val] = true
}

// runWorkload starts one goroutine per client hammering PUT/DELETE until
// stop closes. Clients own disjoint keys, so each shadow is single-writer.
func runWorkload(base string, states []*clientState, seed uint64, cycle int, stop <-chan struct{}, wg *sync.WaitGroup, acked *atomic.Uint64) {
	wg.Add(len(states))
	for _, st := range states {
		go func(st *clientState) {
			defer wg.Done()
			hc := newHTTPClient()
			defer hc.CloseIdleConnections()
			r := newRNG(seed ^ uint64(cycle)*0x9e3779b9 ^ uint64(st.id+1)*0x85ebca6b)
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := st.keys[r.next()%uint64(len(st.keys))]
				if r.next()%100 < 75 {
					st.serial++
					val := fmt.Sprintf("s%d.c%d.%d", cycle, st.id, st.serial)
					st.note(st.hist, key, val)
					status, err := httpPut(hc, base, key, val)
					if err == nil && status == http.StatusNoContent {
						st.conf[key] = val
						acked.Add(1)
					} else {
						st.note(st.cand, key, val)
					}
				} else {
					status, err := httpDelete(hc, base, key)
					if err == nil && status == http.StatusNoContent {
						delete(st.conf, key)
						acked.Add(1)
					} else {
						// 404 (nothing logged) or an ambiguous failure: the
						// key may show up absent after the crash.
						st.note(st.cand, key, candDeleted)
					}
				}
			}
		}(st)
	}
}

// --- server process management ---

// lineWatcher tees the server's output, watching for the readiness line to
// extract the chosen address. Feeding it directly to cmd.Stderr avoids the
// pipe-drain-before-Wait dance.
type lineWatcher struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	line  bytes.Buffer
	ready chan string
	fired bool
}

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for _, b := range p {
		if b != '\n' {
			w.line.WriteByte(b)
			continue
		}
		s := w.line.String()
		w.line.Reset()
		if w.fired {
			continue
		}
		const marker = "serving on http://"
		if i := strings.Index(s, marker); i >= 0 {
			addr := s[i+len(marker):]
			if j := strings.IndexByte(addr, ' '); j >= 0 {
				addr = addr[:j]
			}
			w.fired = true
			w.ready <- addr
		}
	}
	return len(p), nil
}

func (w *lineWatcher) dump() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

type proc struct {
	cmd     *exec.Cmd
	base    string
	ready   time.Duration
	watcher *lineWatcher
	done    chan error
}

func startServer(bin string, args []string) (*proc, error) {
	w := &lineWatcher{ready: make(chan string, 1)}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = w
	cmd.Stderr = w
	t0 := time.Now()
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case addr := <-w.ready:
		return &proc{
			cmd:     cmd,
			base:    "http://" + addr,
			ready:   time.Since(t0),
			watcher: w,
			done:    done,
		}, nil
	case err := <-done:
		return nil, fmt.Errorf("server exited before readiness (%v); output:\n%s", err, w.dump())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		<-done
		return nil, fmt.Errorf("server not ready after 30s; output:\n%s", w.dump())
	}
}

// kill SIGKILLs the server — the crash primitive — and reaps it.
func (p *proc) kill() {
	p.cmd.Process.Kill()
	<-p.done
}

// term sends SIGTERM and returns the exit status (the graceful-shutdown
// contract says 0).
func (p *proc) term() (int, error) {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return -1, err
	}
	select {
	case err := <-p.done:
		if err == nil {
			return 0, nil
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), nil
		}
		return -1, err
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		<-p.done
		return -1, fmt.Errorf("no exit within 30s of SIGTERM; output:\n%s", p.watcher.dump())
	}
}

// runExpectExit runs the server expecting it to exit on its own (the
// refuse-to-start path) and returns its status and combined output.
func runExpectExit(bin string, args []string) (int, string, error) {
	var out bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		return -1, "", err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0, out.String(), nil
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), out.String(), nil
		}
		return -1, out.String(), err
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		<-done
		return -1, out.String(), fmt.Errorf("server still running 30s after corrupted start")
	}
}

// --- stats and segment-file helpers ---

// statsWal mirrors the /stats "wal" section of kvserver.
type statsWal struct {
	Failures uint64        `json:"failures"`
	Seq      uint64        `json:"seq"`
	Recovery *recoveryInfo `json:"recovery"`
}

type recoveryInfo struct {
	Clean           bool   `json:"clean"`
	SnapshotEntries uint64 `json:"snapshot_entries"`
	LogRecords      uint64 `json:"log_records"`
	Applied         uint64 `json:"applied"`
	TruncatedBytes  int64  `json:"truncated_bytes"`
	Entries         int    `json:"entries"`
}

func segmentNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func lastSegment(dir string) (string, int64, error) {
	names, err := segmentNames(dir)
	if err != nil {
		return "", 0, err
	}
	if len(names) == 0 {
		return "", 0, fmt.Errorf("no commit-log segments in %s", dir)
	}
	path := filepath.Join(dir, names[len(names)-1])
	fi, err := os.Stat(path)
	if err != nil {
		return "", 0, err
	}
	return path, fi.Size(), nil
}

// --- HTTP helpers ---

func newHTTPClient() *http.Client {
	return &http.Client{
		Timeout:   2 * time.Second,
		Transport: &http.Transport{},
	}
}

func httpPut(hc *http.Client, base, key, val string) (int, error) {
	req, err := http.NewRequest(http.MethodPut, base+"/kv/"+key, strings.NewReader(val))
	if err != nil {
		return 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func httpDelete(hc *http.Client, base, key string) (int, error) {
	req, err := http.NewRequest(http.MethodDelete, base+"/kv/"+key, nil)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func httpGet(hc *http.Client, base, key string) (string, bool, error) {
	resp, err := hc.Get(base + "/kv/" + key)
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return string(body), true, nil
	case http.StatusNotFound:
		return "", false, nil
	default:
		return "", false, fmt.Errorf("GET %s -> %d %s", key, resp.StatusCode, body)
	}
}

// --- misc ---

// rng is the xorshift64 generator used across the repo's harnesses, with a
// splitmix64 scramble so adjacent seeds diverge immediately.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return &rng{s: z}
}

func (r *rng) next() uint64 {
	x := r.s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.s = x
	return x
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
