package htm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newAdaptiveHeap builds a TLE-enabled adaptive heap that overflows quickly,
// so fallback traffic is easy to provoke.
func newAdaptiveHeap(t testing.TB, cfg Config) *Heap {
	t.Helper()
	cfg.Adaptive = true
	if !cfg.EnableTLE {
		cfg.EnableTLE = true
	}
	if cfg.StoreBufferSize == 0 {
		cfg.StoreBufferSize = 2
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	return newTestHeap(t, cfg)
}

func TestAdaptiveAccessorsRequireAdaptive(t *testing.T) {
	h := newTestHeap(t, Config{EnableTLE: true})
	if h.Adaptive() {
		t.Fatal("static heap reports Adaptive")
	}
	if got := h.FallbackMode(); got != ModeFine {
		t.Errorf("static fine heap FallbackMode = %v", got)
	}
	hg := newTestHeap(t, Config{EnableTLE: true, GlobalFallback: true})
	if got := hg.FallbackMode(); got != ModeGlobal {
		t.Errorf("static global heap FallbackMode = %v", got)
	}
	for name, f := range map[string]func(){
		"SetFallbackMode":  func() { h.SetFallbackMode(ModeGlobal) },
		"SetFallbackSpins": func() { h.SetFallbackSpins(7) },
		"SetDedupBypass":   func() { h.SetDedupBypass(7) },
		"StartTuner":       func() { h.StartTuner(TunerConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a non-adaptive heap did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAdaptiveKnobOverrides(t *testing.T) {
	h := newAdaptiveHeap(t, Config{MaxReadSet: 1 << 10})
	if got := h.FallbackSpins(); got != defaultFallbackSpins {
		t.Errorf("initial FallbackSpins = %d, want default %d", got, defaultFallbackSpins)
	}
	h.SetFallbackSpins(-5)
	if got := h.FallbackSpins(); got != 0 {
		t.Errorf("SetFallbackSpins(-5) → %d, want clamped 0", got)
	}
	h.SetFallbackSpins(999)
	if got := h.FallbackSpins(); got != 999 {
		t.Errorf("FallbackSpins = %d, want 999", got)
	}
	// Dedup override clamps to MaxReadSet/2, like the static resolution.
	h.SetDedupBypass(1 << 20)
	if got := h.DedupBypass(); got != 1<<10/2 {
		t.Errorf("SetDedupBypass(1<<20) → %d, want MaxReadSet/2 = %d", got, 1<<10/2)
	}
	h.SetDedupBypass(128)
	if got := h.DedupBypass(); got != 128 {
		t.Errorf("DedupBypass = %d, want 128", got)
	}

	// New attempts observe the override: with the threshold forced to 0,
	// every reading attempt engages dedup immediately.
	h.SetDedupBypass(0)
	th := h.NewThread()
	a := th.Alloc(4)
	th.Atomic(func(tx *Txn) {
		for i := Addr(0); i < 4; i++ {
			tx.Load(a + i)
		}
	})
	if n := h.Stats().DedupEngages; n == 0 {
		t.Error("DedupBypass=0 override did not engage dedup on a fresh attempt")
	}
}

func TestAdaptiveModeSwitchVisibleAndCounted(t *testing.T) {
	h := newAdaptiveHeap(t, Config{})
	if h.FallbackMode() != ModeFine {
		t.Fatalf("initial mode = %v, want fine", h.FallbackMode())
	}
	h.SetFallbackMode(ModeGlobal)
	h.SetFallbackMode(ModeGlobal) // same mode: not a switch
	h.SetFallbackMode(ModeFine)
	if got := h.ModeSwitches(); got != 2 {
		t.Errorf("ModeSwitches = %d, want 2", got)
	}
	if got := h.Stats().ModeSwitches; got != 2 {
		t.Errorf("Stats().ModeSwitches = %d, want 2", got)
	}
	hg := newAdaptiveHeap(t, Config{GlobalFallback: true})
	if hg.FallbackMode() != ModeGlobal {
		t.Errorf("GlobalFallback seeds adaptive initial mode: got %v", hg.FallbackMode())
	}
}

// TestAdaptiveFallbackBothModes runs the overflow workload with the runtime
// mode pinned at each setting: both paths must preserve the multi-word
// invariant and count fallback runs, exactly as the static modes do.
func TestAdaptiveFallbackBothModes(t *testing.T) {
	for _, mode := range []FallbackMode{ModeFine, ModeGlobal} {
		t.Run(mode.String(), func(t *testing.T) {
			h := newAdaptiveHeap(t, Config{})
			h.SetFallbackMode(mode)
			th := h.NewThread()
			a := th.Alloc(8)
			th.Atomic(func(tx *Txn) {
				for i := Addr(0); i < 8; i++ {
					tx.Store(a+i, uint64(i)+1)
				}
			})
			for i := Addr(0); i < 8; i++ {
				if v := h.LoadNT(a + i); v != uint64(i)+1 {
					t.Errorf("word %d = %d, want %d", i, v, i+1)
				}
			}
			s := h.Stats()
			if s.FallbackRuns == 0 {
				t.Error("fallback was not engaged")
			}
			if mode == ModeGlobal && s.FallbackLocks != 0 {
				t.Errorf("global mode acquired %d per-word locks", s.FallbackLocks)
			}
			if mode == ModeFine && s.FallbackLocks == 0 {
				t.Error("fine mode acquired no per-word locks")
			}
		})
	}
}

// TestAdaptiveModeFlipStress is the acceptance stress: flip the fallback mode
// continuously under concurrent transactional + fallback load (run with
// -race). Writers maintain a multi-word invariant on a SHARED block through
// deliberately overflowing transactions — every attempt takes some fallback
// path, whichever mode is live — while readers verify the invariant and a
// dedicated goroutine toggles fine↔global. Afterwards the heap must be
// exactly quiescent: clean SweepMeta, even fallback sequence, flags drained.
func TestAdaptiveModeFlipStress(t *testing.T) {
	h := newAdaptiveHeap(t, Config{MaxRetries: 1})
	setup := h.NewThread()
	shared := setup.Alloc(4)

	const (
		writers = 4
		readers = 2
		iters   = 400
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Mode flipper: as fast as the scheduler allows.
	flip := make(chan struct{})
	go func() {
		defer close(flip)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				h.SetFallbackMode(ModeGlobal)
			} else {
				h.SetFallbackMode(ModeFine)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var total atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := h.NewThread()
			for i := 0; i < iters; i++ {
				v := seed*uint64(iters) + uint64(i)
				th.Atomic(func(tx *Txn) {
					// 4 distinct stores overflow the 2-entry buffer: the body
					// completes only on a fallback path.
					for k := Addr(0); k < 4; k++ {
						tx.Store(shared+k, v)
					}
				})
				total.Add(1)
			}
		}(uint64(w) + 1)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := h.NewThread()
			for i := 0; i < iters; i++ {
				var vals [4]uint64
				th.Atomic(func(tx *Txn) {
					for k := Addr(0); k < 4; k++ {
						vals[k] = tx.Load(shared + k)
					}
				})
				for k := 1; k < 4; k++ {
					if vals[k] != vals[0] {
						t.Errorf("torn read: %v", vals)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-flip

	if got := total.Load(); got != writers*iters {
		t.Errorf("completed %d writes, want %d", got, writers*iters)
	}
	var final [4]uint64
	for k := Addr(0); k < 4; k++ {
		final[k] = h.LoadNT(shared + k)
	}
	for k := 1; k < 4; k++ {
		if final[k] != final[0] {
			t.Errorf("final state torn: %v", final)
		}
	}
	s := h.Stats()
	if s.FallbackRuns == 0 {
		t.Error("stress never engaged the fallback")
	}
	if h.ModeSwitches() == 0 {
		t.Error("stress never switched modes")
	}
	sweep := h.SweepMeta()
	if sweep.Locked != 0 || sweep.FallbackTagged != 0 || sweep.StripeErrors != 0 {
		t.Errorf("quiescent sweep not clean: %+v", sweep)
	}
	if sweep.Allocated != s.LiveWords {
		t.Errorf("sweep allocated %d != live words %d", sweep.Allocated, s.LiveWords)
	}
	if seq := h.fallbackSeq.Load(); seq&1 != 0 {
		t.Errorf("fallback sequence left odd: %d", seq)
	}
	for _, c := range h.stats.snapshotCells() {
		if c.inCommit.Load() != 0 || c.inFine.Load() != 0 {
			t.Error("quiesce barrier words not drained")
		}
	}
}

// Synthetic epoch helpers for driving the decision logic deterministically.
func stormEpoch() TunerEpoch {
	return TunerEpoch{FallbackRuns: 100, FallbackWaits: 150, FallbackRetries: 100, RetryRatio: 1.0, ContentionRatio: 2.5}
}
func busyCalmEpoch() TunerEpoch {
	return TunerEpoch{FallbackRuns: 100, FallbackWaits: 1, RetryRatio: 0, ContentionRatio: 0.01}
}
func idleEpoch() TunerEpoch { return TunerEpoch{} }

func TestTunerModeController(t *testing.T) {
	h := newAdaptiveHeap(t, Config{})
	tu := h.NewTuner(TunerConfig{SwitchAfter: 2, ProbeEvery: 3, MinFallbackRuns: 10})

	// Hysteresis: one storm epoch is not enough.
	tu.decide(stormEpoch())
	if h.FallbackMode() != ModeFine {
		t.Fatal("switched to global after a single storm epoch")
	}
	tu.decide(stormEpoch())
	if h.FallbackMode() != ModeGlobal {
		t.Fatal("two storm epochs did not switch to global")
	}

	// An interrupted streak resets.
	h.SetFallbackMode(ModeFine)
	tu.stormStreak = 0
	tu.decide(stormEpoch())
	tu.decide(busyCalmEpoch())
	tu.decide(stormEpoch())
	if h.FallbackMode() != ModeFine {
		t.Fatal("interrupted storm streak still switched modes")
	}
	tu.decide(stormEpoch())
	if h.FallbackMode() != ModeGlobal {
		t.Fatal("rebuilt storm streak did not switch")
	}

	// Busy global epochs eventually probe fine again (ProbeEvery=3).
	tu.decide(busyCalmEpoch())
	tu.decide(busyCalmEpoch())
	if h.FallbackMode() != ModeGlobal {
		t.Fatal("probed before ProbeEvery busy epochs")
	}
	tu.decide(busyCalmEpoch())
	if h.FallbackMode() != ModeFine {
		t.Fatal("ProbeEvery busy global epochs did not probe fine")
	}

	// Calm traffic returns a global heap to fine without waiting for a probe.
	h.SetFallbackMode(ModeGlobal)
	tu.stormStreak, tu.calmStreak, tu.globalEpochs = 0, 0, 0
	tu.decide(idleEpoch())
	tu.decide(idleEpoch())
	if h.FallbackMode() != ModeFine {
		t.Fatal("idle epochs did not return the heap to fine mode")
	}
}

// TestTunerLivelockEpochIsStorm: an epoch of pure collisions with ZERO
// completed runs is the severest storm (a retry livelock) — the evidence gate
// must count collisions, not just completions, the ratio must not read as
// vacuously calm, and a catastrophic ratio must switch WITHOUT waiting out
// SwitchAfter hysteresis (every deliberation epoch is a livelocked epoch).
func TestTunerLivelockEpochIsStorm(t *testing.T) {
	h := newAdaptiveHeap(t, Config{})
	tu := h.NewTuner(TunerConfig{SwitchAfter: 2, MinFallbackRuns: 10})
	livelock := TunerEpoch{FallbackRuns: 0, FallbackWaits: 300, FallbackRetries: 200, ContentionRatio: 500}
	tu.decide(livelock)
	if h.FallbackMode() != ModeGlobal {
		t.Fatal("zero-completion collision storm did not switch the mode to global in one epoch")
	}
}

// TestTunerProbeRefutedInOneEpoch: a probe out of global mode is a hypothesis
// test — one storm epoch refutes it and must re-switch immediately, not after
// SwitchAfter more livelocked epochs. A probe that survives a calm epoch
// sheds the fast-refute state and gets full hysteresis again.
func TestTunerProbeRefutedInOneEpoch(t *testing.T) {
	h := newAdaptiveHeap(t, Config{})
	tu := h.NewTuner(TunerConfig{SwitchAfter: 3, ProbeEvery: 2, MinFallbackRuns: 10})

	// Reach global mode via the catastrophe path, then probe out of it.
	tu.decide(TunerEpoch{FallbackRuns: 10, FallbackWaits: 200, ContentionRatio: 20})
	if h.FallbackMode() != ModeGlobal {
		t.Fatal("setup: catastrophe epoch did not switch to global")
	}
	tu.decide(busyCalmEpoch())
	tu.decide(busyCalmEpoch()) // ProbeEvery=2: probe back to fine
	if h.FallbackMode() != ModeFine {
		t.Fatal("setup: probe did not switch to fine")
	}

	// One ordinary (sub-catastrophe) storm epoch refutes the probe.
	tu.decide(stormEpoch())
	if h.FallbackMode() != ModeGlobal {
		t.Fatal("failed probe was not refuted by a single storm epoch")
	}

	// Probe again; this time a calm epoch confirms fine mode, so a later
	// storm pays full SwitchAfter hysteresis again.
	tu.decide(busyCalmEpoch())
	tu.decide(busyCalmEpoch())
	if h.FallbackMode() != ModeFine {
		t.Fatal("setup: second probe did not switch to fine")
	}
	tu.decide(busyCalmEpoch()) // probe survives: fast-refute state sheds
	tu.decide(stormEpoch())
	tu.decide(stormEpoch())
	if h.FallbackMode() != ModeFine {
		t.Fatal("confirmed fine stint lost hysteresis: switched before SwitchAfter=3 epochs")
	}
	tu.decide(stormEpoch())
	if h.FallbackMode() != ModeGlobal {
		t.Fatal("three storm epochs did not switch a confirmed fine stint")
	}
}

// TestTunerEpochDeltaLivelockRatio checks the sampled ratio itself: counters
// showing collisions but no completed runs must produce a large
// ContentionRatio, not 0/0 = 0.
func TestTunerEpochDeltaLivelockRatio(t *testing.T) {
	h := newAdaptiveHeap(t, Config{})
	tu := h.NewTuner(TunerConfig{})
	th := h.NewThread()
	th.cell.fallbackWaits.Store(50)
	th.cell.fallbackRetries.Store(10)
	var got TunerEpoch
	tu.Observe(func(e TunerEpoch) { got = e })
	tu.Tick()
	if got.FallbackRuns != 0 || got.FallbackWaits != 50 || got.FallbackRetries != 10 {
		t.Fatalf("epoch deltas = %+v, want 0 runs / 50 waits / 10 retries", got)
	}
	if got.ContentionRatio != 60 {
		t.Errorf("ContentionRatio = %v, want 60 (collisions over max(runs,1))", got.ContentionRatio)
	}
}

func TestTunerKnobDrivers(t *testing.T) {
	h := newAdaptiveHeap(t, Config{})
	tu := h.NewTuner(TunerConfig{MinFallbackRuns: 10})

	// Sustained moderate retry pressure grows the spins budget.
	start := h.FallbackSpins()
	for i := 0; i < 20 && h.FallbackSpins() == start; i++ {
		tu.decide(TunerEpoch{FallbackRuns: 100, FallbackRetries: 100, RetryRatio: 1.0, ContentionRatio: 0.5})
	}
	if got := h.FallbackSpins(); got != start*2 {
		t.Errorf("FallbackSpins = %d after sustained retries, want doubled %d", got, start*2)
	}
	// Retry-free fallback traffic sheds it again.
	for i := 0; i < 40 && h.FallbackSpins() > start/2; i++ {
		tu.decide(TunerEpoch{FallbackRuns: 100, RetryRatio: 0})
	}
	if got := h.FallbackSpins(); got > start {
		t.Errorf("FallbackSpins = %d after calm epochs, want shed below %d", got, start)
	}

	// Capacity aborts shrink the dedup bypass; engagement pressure without
	// them grows it back.
	d0 := h.DedupBypass()
	for i := 0; i < 20 && h.DedupBypass() == d0; i++ {
		tu.decide(TunerEpoch{Capacity: 5})
	}
	if got := h.DedupBypass(); got >= d0 {
		t.Errorf("DedupBypass = %d after capacity aborts, want below %d", got, d0)
	}
	low := h.DedupBypass()
	for i := 0; i < 20 && h.DedupBypass() == low; i++ {
		tu.decide(TunerEpoch{DedupEngages: 50, Commits: 100})
	}
	if got := h.DedupBypass(); got <= low {
		t.Errorf("DedupBypass = %d after engagement pressure, want above %d", got, low)
	}
}

func TestTunerPinnedNeverActs(t *testing.T) {
	h := newAdaptiveHeap(t, Config{})
	tu := h.NewTuner(TunerConfig{Pinned: true, SwitchAfter: 1, MinFallbackRuns: 1})
	mode, spins, dedup := h.FallbackMode(), h.FallbackSpins(), h.DedupBypass()

	// Generate real fallback traffic so the sampled epochs are nonempty.
	th := h.NewThread()
	a := th.Alloc(8)
	for i := 0; i < 10; i++ {
		th.Atomic(func(tx *Txn) {
			for k := Addr(0); k < 8; k++ {
				tx.Store(a+k, uint64(i))
			}
		})
	}
	var seen []TunerEpoch
	tu.Observe(func(e TunerEpoch) { seen = append(seen, e) })
	tu.Tick()
	tu.Tick()

	if h.FallbackMode() != mode || h.FallbackSpins() != spins || h.DedupBypass() != dedup {
		t.Error("pinned tuner changed a knob")
	}
	if h.ModeSwitches() != 0 {
		t.Error("pinned tuner switched modes")
	}
	st := tu.State()
	if st.Epochs != 2 || !st.Pinned {
		t.Errorf("State = %+v, want 2 pinned epochs", st)
	}
	if len(seen) != 2 {
		t.Fatalf("observer saw %d epochs, want 2", len(seen))
	}
	if !seen[0].Pinned || seen[0].Epoch != 1 {
		t.Errorf("first epoch = %+v", seen[0])
	}
	if seen[0].FallbackRuns == 0 {
		t.Error("pinned epoch sampled no fallback traffic")
	}
}

func TestTunerStartStop(t *testing.T) {
	h := newAdaptiveHeap(t, Config{})
	var epochs atomic.Uint64
	tu := h.StartTuner(TunerConfig{Interval: time.Millisecond})
	tu.Observe(func(TunerEpoch) { epochs.Add(1) })
	deadline := time.Now().Add(2 * time.Second)
	for epochs.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tu.Stop()
	tu.Stop() // idempotent
	if epochs.Load() < 3 {
		t.Errorf("tuner ticked %d epochs in 2s, want ≥ 3", epochs.Load())
	}
	if st := tu.State(); st.Epochs < 3 {
		t.Errorf("State().Epochs = %d, want ≥ 3", st.Epochs)
	}

	// A never-started tuner stops without hanging.
	h2 := newAdaptiveHeap(t, Config{})
	h2.NewTuner(TunerConfig{}).Stop()
}

// TestTunerEndToEndSharedStorm drives a real shared-footprint storm through a
// running tuner and requires the controller to reach the global lock, then
// hand the heap back clean.
func TestTunerEndToEndSharedStorm(t *testing.T) {
	// YieldEvery forces holders to deschedule mid-lock-hold, so contenders
	// observe the held lock-set (FallbackWaits) even on few CPUs; without it
	// a single-CPU run can convoy invisibly, every holder completing within
	// its scheduling quantum.
	h := newAdaptiveHeap(t, Config{MaxRetries: 1, YieldEvery: 3})
	tu := h.NewTuner(TunerConfig{MinFallbackRuns: 8, SwitchAfter: 2, StormRatio: 0.5})
	setup := h.NewThread()
	shared := setup.Alloc(4)

	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := h.NewThread()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				th.Atomic(func(tx *Txn) {
					for k := Addr(0); k < 4; k++ {
						tx.Store(shared+k, seed+uint64(i))
					}
				})
			}
		}(uint64(w) << 32)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.FallbackMode() != ModeGlobal && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		tu.Tick()
	}
	close(stop)
	wg.Wait()
	if h.FallbackMode() != ModeGlobal {
		t.Fatalf("controller never switched to global under a shared storm: %s", h.Stats())
	}
	sweep := h.SweepMeta()
	if sweep.Locked != 0 || sweep.FallbackTagged != 0 {
		t.Errorf("sweep not clean after storm: %+v", sweep)
	}
}
