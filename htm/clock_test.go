package htm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Tests for the sharded version clock (Config.ClockShards) and the striped
// metadata commit (Config.StripeShift). The deterministic tests drive a
// second thread's commit from inside the first thread's transaction body —
// each Thread is used by one goroutine at a time, so this is legal — which
// pins the exact interleaving the shard/stripe machinery must survive.

// twoShardThreads returns two threads whose home clock shards differ,
// skipping the test if the round-robin assignment ever stops providing one.
func twoShardThreads(t *testing.T, h *Heap) (*Thread, *Thread) {
	t.Helper()
	reader := h.NewThread()
	for i := 0; i < 8; i++ {
		if writer := h.NewThread(); writer.ClockShard() != reader.ClockShard() {
			return reader, writer
		}
	}
	t.Skip("could not obtain threads on distinct clock shards")
	return nil, nil
}

// TestConfigClockShardNormalization pins the knob clamping: shard counts
// round up to powers of two, and both knobs saturate at their caps.
func TestConfigClockShardNormalization(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {MaxClockShards + 1, MaxClockShards},
	} {
		h := NewHeap(Config{Words: 1 << 10, ClockShards: tc.in})
		if got := h.ClockShards(); got != tc.want {
			t.Errorf("ClockShards %d normalized to %d, want %d", tc.in, got, tc.want)
		}
	}
	if h := NewHeap(Config{Words: 1 << 10, StripeShift: MaxStripeShift + 3}); h.StripeWords() != 1<<MaxStripeShift {
		t.Errorf("StripeShift did not clamp: stripe = %d words", h.StripeWords())
	}
	if h := NewHeap(Config{Words: 1 << 10}); h.ClockShards() != 1 || h.StripeWords() != 1 {
		t.Error("zero Config must select one shard and per-word metadata")
	}
}

// TestDisjointCommitsTickOwnShards is the zero-shared-RMW property in
// counter form: two threads homed on different shards commit disjoint
// write sets, and each commit moves exactly its own shard's clock — the
// other thread's shard is untouched, so no clock cache line was shared.
func TestDisjointCommitsTickOwnShards(t *testing.T) {
	h := newTestHeap(t, Config{ClockShards: 4})
	thA, thB := twoShardThreads(t, h)
	a, b := thA.Alloc(2), thB.Alloc(2)
	sA, sB := thA.ClockShard(), thB.ClockShard()
	beforeA, beforeB := h.ClockShardNow(sA), h.ClockShardNow(sB)
	thA.Atomic(func(tx *Txn) { tx.Store(a, 1) })
	thB.Atomic(func(tx *Txn) { tx.Store(b, 1) })
	if got := h.ClockShardNow(sA); got != beforeA+1 {
		t.Errorf("thread A's shard ticked %d times, want 1", got-beforeA)
	}
	if got := h.ClockShardNow(sB); got != beforeB+1 {
		t.Errorf("thread B's shard ticked %d times, want 1", got-beforeB)
	}
	// The published versions carry their shard IDs.
	if s := h.versionShard(metaVersion(h.meta[a].Load())); s != sA {
		t.Errorf("word a versioned from shard %d, want %d", s, sA)
	}
	if s := h.versionShard(metaVersion(h.meta[b].Load())); s != sB {
		t.Errorf("word b versioned from shard %d, want %d", s, sB)
	}
}

// TestCrossShardExtendSucceeds: a reader homed on shard A observes a version
// from shard B that postdates its begin snapshot of B. The read must force an
// extension, the extension must succeed (nothing the reader previously read
// changed), and the reader must see the writer's committed value.
func TestCrossShardExtendSucceeds(t *testing.T) {
	h := newTestHeap(t, Config{ClockShards: 4})
	reader, writer := twoShardThreads(t, h)
	x, y := reader.Alloc(1), reader.Alloc(1)
	wrote := false
	var got uint64
	reader.Atomic(func(tx *Txn) {
		tx.Load(x)
		if !wrote {
			wrote = true
			writer.Atomic(func(wx *Txn) { wx.Store(y, 42) })
		}
		got = tx.Load(y)
	})
	if got != 42 {
		t.Errorf("reader saw %d after cross-shard extension, want 42", got)
	}
	if s := h.versionShard(metaVersion(h.meta[y].Load())); s != writer.ClockShard() {
		t.Errorf("y versioned from shard %d, want writer's shard %d", s, writer.ClockShard())
	}
}

// TestCrossShardExtendAborts: same shape, but the cross-shard writer also
// rewrites a word the reader already read — the forced extension must fail
// revalidation and abort the attempt with AbortConflict rather than let the
// reader pair pre- and post-commit state.
func TestCrossShardExtendAborts(t *testing.T) {
	h := newTestHeap(t, Config{ClockShards: 4})
	reader, writer := twoShardThreads(t, h)
	x, y := reader.Alloc(1), reader.Alloc(1)
	err := reader.TryAtomic(func(tx *Txn) {
		tx.Load(x)
		writer.Atomic(func(wx *Txn) {
			wx.Store(x, 7) // invalidates the reader's snapshot
			wx.Store(y, 7)
		})
		tx.Load(y) // version above rv[writer's shard] -> extend -> must fail
		t.Error("reader survived a torn cross-shard snapshot")
	})
	if code := abortCodeOf(t, err); code != AbortConflict {
		t.Errorf("abort code = %v, want AbortConflict", code)
	}
}

func abortCodeOf(t *testing.T, err error) AbortCode {
	t.Helper()
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("expected *AbortError, got %v", err)
	}
	return ae.Code
}

// TestStripeAliasingConflict pins the stripe tradeoff both ways: two
// transactions touching DISTINCT words of one stripe conflict when striping
// is on (and the conflict shows up in Stats.StripeConflicts), while the same
// interleaving on distinct stripes — or with striping off — commits.
func TestStripeAliasingConflict(t *testing.T) {
	run := func(shift int, sameStripe bool) (error, Stats, *Heap) {
		h := newTestHeap(t, Config{StripeShift: shift})
		reader := h.NewThread()
		mut := h.NewThread()
		// One 3-word block occupies exactly one 4-word stripe (header+3);
		// two blocks never share a stripe (allocator alignment).
		blk := reader.Alloc(3)
		other := reader.Alloc(3)
		target := other
		if sameStripe {
			target = blk + 2 // distinct word, same stripe as blk+0
		}
		err := reader.TryAtomic(func(tx *Txn) {
			tx.Load(blk)
			mut.Atomic(func(mx *Txn) { mx.Store(target, 9) })
			tx.Load(blk + 1)
		})
		return err, h.Stats(), h
	}

	if err, st, _ := run(2, true); err == nil {
		t.Error("same-stripe write did not conflict with striping on")
	} else if code := abortCodeOf(t, err); code != AbortConflict {
		t.Errorf("same-stripe abort code = %v, want AbortConflict", code)
	} else if st.StripeConflicts == 0 {
		t.Error("StripeConflicts not counted for a striped conflict abort")
	}
	if err, st, _ := run(2, false); err != nil {
		t.Errorf("distinct-stripe write conflicted: %v", err)
	} else if st.StripeConflicts != 0 {
		t.Errorf("StripeConflicts = %d for disjoint stripes, want 0", st.StripeConflicts)
	}
	if err, st, _ := run(0, true); err != nil {
		t.Errorf("striping off: distinct-word write conflicted: %v", err)
	} else if st.StripeConflicts != 0 {
		t.Errorf("StripeConflicts = %d without striping, want 0", st.StripeConflicts)
	}
}

// TestStripeWriteWriteAliasing: the commit-time acquisition CAS operates on
// stripe metadata, so a concurrent commit to a DIFFERENT word of the same
// stripe fails this transaction's acquisition — and the identical
// interleaving without striping commits cleanly.
func TestStripeWriteWriteAliasing(t *testing.T) {
	for _, shift := range []int{0, 2} {
		t.Run(fmt.Sprintf("shift=%d", shift), func(t *testing.T) {
			h := newTestHeap(t, Config{StripeShift: shift})
			a := h.NewThread()
			b := h.NewThread()
			blk := a.Alloc(3)
			err := a.TryAtomic(func(tx *Txn) {
				tx.Store(blk, 1)
				b.Atomic(func(bx *Txn) { bx.Store(blk+2, 2) })
			})
			if shift == 0 {
				if err != nil {
					t.Errorf("unstriped commit to distinct words aborted: %v", err)
				}
			} else {
				if err == nil {
					t.Error("striped commit did not conflict on a shared stripe")
				} else if code := abortCodeOf(t, err); code != AbortConflict {
					t.Errorf("abort code = %v, want AbortConflict", code)
				}
			}
		})
	}
}

// TestStripeSelfOverlap: one transaction reading and writing several words of
// ONE stripe must not conflict with itself — acquisition dedups the stripe,
// read validation recognizes the transaction's own stripe lock, and release
// publishes one fresh version.
func TestStripeSelfOverlap(t *testing.T) {
	h := newTestHeap(t, Config{StripeShift: 2})
	th := h.NewThread()
	blk := th.Alloc(3)
	th.Atomic(func(tx *Txn) {
		tx.Store(blk, 1)
		tx.Store(blk+1, 2)
		tx.Store(blk+2, tx.Load(blk)+tx.Load(blk+1))
	})
	if got := h.LoadNT(blk + 2); got != 3 {
		t.Errorf("self-overlapping striped commit wrote %d, want 3", got)
	}
	if st := h.Stats(); st.StripeConflicts != 0 {
		t.Errorf("StripeConflicts = %d for a single-threaded commit, want 0", st.StripeConflicts)
	}
}

// TestStripeAlignedAllocation: with striping every block starts on a stripe
// boundary (header included), so no stripe is shared between blocks and
// whole-stripe alloc/free transitions stay exclusive.
func TestStripeAlignedAllocation(t *testing.T) {
	h := newTestHeap(t, Config{StripeShift: 2})
	th := h.NewThread()
	mask := Addr(h.StripeWords() - 1)
	seen := map[int]Addr{}
	for i := 0; i < 32; i++ {
		size := 1 + i%7
		a := th.Alloc(size)
		if (a-1)&mask != 0 {
			t.Fatalf("block %#x (size %d): header %#x not stripe-aligned", uint32(a), size, uint32(a-1))
		}
		for si, hi := h.mi(a-1), h.mi(a+Addr(size)-1); si <= hi; si++ {
			if prev, ok := seen[si]; ok {
				t.Fatalf("stripe %d shared by blocks %#x and %#x", si, uint32(prev), uint32(a))
			}
			seen[si] = a
		}
	}
}

// TestSweepMetaStripeInvariants: the striped sweep walks blocks via their
// headers, so Allocated stays in payload words (matching Stats.LiveWords)
// and a metadata/header disagreement is loudly reported in StripeErrors.
func TestSweepMetaStripeInvariants(t *testing.T) {
	h := newTestHeap(t, Config{StripeShift: 2})
	th := h.NewThread()
	var keep []Addr
	for i := 0; i < 16; i++ {
		a := th.Alloc(1 + i%5)
		if i%3 == 0 {
			th.Free(a)
		} else {
			keep = append(keep, a)
		}
	}
	ms := h.SweepMeta()
	if ms.StripeErrors != 0 {
		t.Fatalf("StripeErrors = %d on a healthy heap", ms.StripeErrors)
	}
	if live := h.Stats().LiveWords; ms.Allocated != live {
		t.Errorf("sweep Allocated = %d payload words, Stats.LiveWords = %d", ms.Allocated, live)
	}
	if ms.Locked != 0 || ms.FallbackTagged != 0 {
		t.Errorf("quiescent sweep: Locked=%d FallbackTagged=%d", ms.Locked, ms.FallbackTagged)
	}
	// White-box corruption: clear a live block's stripe metadata and the
	// sweep must flag the header/stripe disagreement.
	si := h.mi(keep[0])
	saved := h.meta[si].Load()
	h.meta[si].Store(makeMeta(0, false))
	if ms := h.SweepMeta(); ms.StripeErrors == 0 {
		t.Error("sweep missed a live block with a dead stripe")
	}
	h.meta[si].Store(saved)
}

// TestClockStripeStressRace is the -race stress mix over both knobs: mixed
// transactional read-modify-write, NT stores, alloc/free churn and TLE
// overflow fallbacks, across every shards x stripe combination, ending with
// a full metadata sweep.
func TestClockStripeStressRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short")
	}
	for _, shards := range []int{1, 4} {
		for _, shift := range []int{0, 2} {
			t.Run(fmt.Sprintf("shards=%d/shift=%d", shards, shift), func(t *testing.T) {
				h := newTestHeap(t, Config{
					Words:       1 << 16,
					ClockShards: shards,
					StripeShift: shift,
					EnableTLE:   true,
					MaxRetries:  8,
				})
				setup := h.NewThread()
				shared := make([]Addr, 8)
				for i := range shared {
					shared[i] = setup.Alloc(3)
				}
				const workers = 4
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(seed uint64) {
						defer wg.Done()
						th := h.NewThread()
						rng := seed*0x9E3779B97F4A7C15 | 1
						next := func(n uint64) uint64 {
							rng ^= rng << 13
							rng ^= rng >> 7
							rng ^= rng << 17
							return rng % n
						}
						var mine Addr
						for i := 0; i < 400; i++ {
							blk := shared[next(uint64(len(shared)))]
							switch next(4) {
							case 0: // transactional RMW across two blocks
								blk2 := shared[next(uint64(len(shared)))]
								th.Atomic(func(tx *Txn) {
									v := tx.Load(blk) + tx.Load(blk2+1)
									tx.Store(blk+2, v)
								})
							case 1: // NT store (address-hashed shard tick)
								h.StoreNT(blk+Addr(next(3)), uint64(i))
							case 2: // alloc/free churn on private blocks
								if mine != NilAddr {
									th.Free(mine)
									mine = NilAddr
								} else {
									mine = th.Alloc(int(1 + next(5)))
								}
							case 3: // store-buffer overflow -> fallback path
								th.Atomic(func(tx *Txn) {
									base := shared[0]
									for j := Addr(0); j < 3; j++ {
										tx.Store(base+j, tx.Load(base+j)+1)
									}
								})
							}
						}
						if mine != NilAddr {
							th.Free(mine)
						}
					}(uint64(w + 1))
				}
				wg.Wait()
				ms := h.SweepMeta()
				if ms.Locked != 0 || ms.FallbackTagged != 0 || ms.StripeErrors != 0 {
					t.Errorf("post-stress sweep: Locked=%d FallbackTagged=%d StripeErrors=%d",
						ms.Locked, ms.FallbackTagged, ms.StripeErrors)
				}
				if live := h.Stats().LiveWords; ms.Allocated != live {
					t.Errorf("post-stress leak: sweep=%d live=%d", ms.Allocated, live)
				}
				if shift == 0 {
					if st := h.Stats(); st.StripeConflicts != 0 {
						t.Errorf("StripeConflicts = %d without striping", st.StripeConflicts)
					}
				}
			})
		}
	}
}
