package htm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestAtomicBasicReadWrite(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(2)
	th.Atomic(func(tx *Txn) {
		tx.Store(a, 7)
		tx.Store(a+1, 8)
	})
	var x, y uint64
	th.Atomic(func(tx *Txn) {
		x = tx.Load(a)
		y = tx.Load(a + 1)
	})
	if x != 7 || y != 8 {
		t.Errorf("got (%d,%d), want (7,8)", x, y)
	}
}

func TestTxnReadYourWrites(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	th.Atomic(func(tx *Txn) {
		tx.Store(a, 3)
		if v := tx.Load(a); v != 3 {
			t.Errorf("read-your-write = %d, want 3", v)
		}
		tx.Store(a, 4)
		if v := tx.Load(a); v != 4 {
			t.Errorf("read-your-write after overwrite = %d, want 4", v)
		}
	})
	if v := h.LoadNT(a); v != 4 {
		t.Errorf("committed = %d, want 4", v)
	}
}

func TestTxnAdd(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	th.Atomic(func(tx *Txn) {
		if v := tx.Add(a, 5); v != 5 {
			t.Errorf("Add = %d, want 5", v)
		}
		if v := tx.Add(a, 2); v != 7 {
			t.Errorf("Add = %d, want 7", v)
		}
	})
	if v := h.LoadNT(a); v != 7 {
		t.Errorf("committed = %d, want 7", v)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	h.StoreNT(a, 1)
	err := th.TryAtomic(func(tx *Txn) {
		tx.Store(a, 99)
		tx.Abort()
	})
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Code != AbortExplicit {
		t.Fatalf("err = %v, want explicit abort", err)
	}
	if v := h.LoadNT(a); v != 1 {
		t.Errorf("aborted write leaked: %d", v)
	}
}

func TestStoreBufferOverflow(t *testing.T) {
	h := newTestHeap(t, Config{StoreBufferSize: 4})
	th := h.NewThread()
	a := th.Alloc(8)
	err := th.TryAtomic(func(tx *Txn) {
		for i := Addr(0); i < 5; i++ {
			tx.Store(a+i, 1)
		}
	})
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Code != AbortOverflow {
		t.Fatalf("err = %v, want overflow", err)
	}
	// Writing the same word repeatedly occupies one store-buffer entry.
	err = th.TryAtomic(func(tx *Txn) {
		for i := 0; i < 100; i++ {
			tx.Store(a, uint64(i))
		}
		tx.Store(a+1, 1)
		tx.Store(a+2, 1)
		tx.Store(a+3, 1)
	})
	if err != nil {
		t.Errorf("same-word stores should not overflow: %v", err)
	}
}

func TestUnboundedStoreBuffer(t *testing.T) {
	h := newTestHeap(t, Config{StoreBufferSize: -1})
	th := h.NewThread()
	a := th.Alloc(256)
	err := th.TryAtomic(func(tx *Txn) {
		for i := Addr(0); i < 256; i++ {
			tx.Store(a+i, uint64(i))
		}
	})
	if err != nil {
		t.Fatalf("unbounded store buffer aborted: %v", err)
	}
	if v := h.LoadNT(a + 255); v != 255 {
		t.Errorf("word 255 = %d", v)
	}
}

func TestReadSetCapacity(t *testing.T) {
	h := newTestHeap(t, Config{MaxReadSet: 4})
	th := h.NewThread()
	a := th.Alloc(8)
	err := th.TryAtomic(func(tx *Txn) {
		for i := Addr(0); i < 8; i++ {
			tx.Load(a + i)
		}
	})
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Code != AbortCapacity {
		t.Fatalf("err = %v, want read-capacity abort", err)
	}
}

func TestSandboxFreedLoadAborts(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	th.Free(a)
	err := th.TryAtomic(func(tx *Txn) { tx.Load(a) })
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Code != AbortIllegal {
		t.Fatalf("err = %v, want illegal-access abort", err)
	}
	err = th.TryAtomic(func(tx *Txn) { tx.Store(a, 1) })
	if !errors.As(err, &ab) || ab.Code != AbortIllegal {
		t.Fatalf("store err = %v, want illegal-access abort", err)
	}
}

func TestSandboxNilLoadAborts(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	err := th.TryAtomic(func(tx *Txn) { tx.Load(NilAddr) })
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Code != AbortIllegal {
		t.Fatalf("err = %v, want illegal-access abort", err)
	}
}

func TestNoSandboxFreedLoadPanics(t *testing.T) {
	h := newTestHeap(t, Config{NoSandbox: true})
	th := h.NewThread()
	a := th.Alloc(1)
	th.Free(a)
	defer func() {
		if recover() == nil {
			t.Error("unsandboxed freed load did not panic")
		}
	}()
	_ = th.TryAtomic(func(tx *Txn) { tx.Load(a) })
}

func TestFreeOnCommit(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	th.Atomic(func(tx *Txn) {
		tx.Store(a, 1)
		tx.FreeOnCommit(a)
	})
	if h.allocated(a) {
		t.Error("block not freed after commit")
	}
}

func TestFreeOnCommitNotRunOnAbort(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	_ = th.TryAtomic(func(tx *Txn) {
		tx.FreeOnCommit(a)
		tx.Abort()
	})
	if !h.allocated(a) {
		t.Error("aborted transaction freed memory")
	}
	if v := h.LoadNT(a); v != 0 {
		t.Errorf("block damaged: %d", v)
	}
}

func TestAllocInTxnForbiddenByDefault(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	defer func() {
		if recover() == nil {
			t.Error("Txn.Alloc without AllowAllocInTxn did not panic")
		}
	}()
	_ = th.TryAtomic(func(tx *Txn) { tx.Alloc(1) })
}

func TestAllocInTxnRollsBackOnAbort(t *testing.T) {
	h := newTestHeap(t, Config{AllowAllocInTxn: true})
	th := h.NewThread()
	live := h.Stats().LiveWords
	_ = th.TryAtomic(func(tx *Txn) {
		tx.Alloc(16)
		tx.Abort()
	})
	if got := h.Stats().LiveWords; got != live {
		t.Errorf("LiveWords = %d after aborted alloc, want %d", got, live)
	}
	var kept Addr
	th.Atomic(func(tx *Txn) {
		kept = tx.Alloc(16)
		tx.Store(kept, 9)
	})
	if !h.allocated(kept) {
		t.Error("committed alloc was rolled back")
	}
	if v := h.LoadNT(kept); v != 9 {
		t.Errorf("committed alloc word = %d", v)
	}
}

func TestNestedAtomicPanics(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	defer func() {
		if recover() == nil {
			t.Error("nested Atomic did not panic")
		}
	}()
	th.Atomic(func(tx *Txn) {
		th.Atomic(func(tx2 *Txn) {})
	})
}

func TestUserPanicPropagates(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	defer func() {
		r := recover()
		if r != "user-panic" {
			t.Errorf("recovered %v, want user-panic", r)
		}
		// The thread must be reusable after a propagated panic... it is not
		// required to be, but inTxn must not deadlock future use.
	}()
	th.Atomic(func(tx *Txn) { panic("user-panic") })
}

func TestOverflowWithoutTLEPanicsInAtomic(t *testing.T) {
	h := newTestHeap(t, Config{StoreBufferSize: 2})
	th := h.NewThread()
	a := th.Alloc(4)
	defer func() {
		if recover() == nil {
			t.Error("deterministic overflow in Atomic did not panic")
		}
	}()
	th.Atomic(func(tx *Txn) {
		tx.Store(a, 1)
		tx.Store(a+1, 1)
		tx.Store(a+2, 1)
	})
}

func TestReadWriteSetSizes(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(4)
	th.Atomic(func(tx *Txn) {
		tx.Load(a)
		tx.Load(a + 1)
		tx.Store(a+2, 1)
		if tx.ReadSetSize() != 2 {
			t.Errorf("ReadSetSize = %d, want 2", tx.ReadSetSize())
		}
		if tx.WriteSetSize() != 1 {
			t.Errorf("WriteSetSize = %d, want 1", tx.WriteSetSize())
		}
	})
}

func TestConflictingCountersAreExact(t *testing.T) {
	// N threads atomically increment a shared counter M times each; the
	// result must be exactly N*M regardless of aborts and retries.
	h := newTestHeap(t, Config{})
	setup := h.NewThread()
	a := setup.Alloc(1)
	const n, m = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := h.NewThread()
			for j := 0; j < m; j++ {
				th.Atomic(func(tx *Txn) { tx.Add(a, 1) })
			}
		}()
	}
	wg.Wait()
	if v := h.LoadNT(a); v != n*m {
		t.Errorf("counter = %d, want %d", v, n*m)
	}
}

func TestIsolationNoDirtyReads(t *testing.T) {
	// One thread repeatedly writes (x, x) pairs in a transaction; readers
	// must never observe mixed pairs.
	h := newTestHeap(t, Config{})
	setup := h.NewThread()
	a := setup.Alloc(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := h.NewThread()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			th.Atomic(func(tx *Txn) {
				tx.Store(a, i)
				tx.Store(a+1, i)
			})
		}
	}()
	reader := h.NewThread()
	for i := 0; i < 5000; i++ {
		var x, y uint64
		reader.Atomic(func(tx *Txn) {
			x = tx.Load(a)
			y = tx.Load(a + 1)
		})
		if x != y {
			t.Fatalf("dirty read: (%d, %d)", x, y)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotConsistencyWithNTWriter(t *testing.T) {
	// Strong atomicity: a non-transactional writer updating two words with
	// two separate StoreNT calls is two atomic writes; a transaction reading
	// both must see x <= y if the writer always writes y after x with
	// y >= x... here we write the same monotonically increasing value to
	// both in order, so a transactional snapshot must observe y ∈ {x, x-1}
	// style consistency: never y > x is violated, and never torn words.
	h := newTestHeap(t, Config{})
	setup := h.NewThread()
	a := setup.Alloc(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.StoreNT(a, i)
			h.StoreNT(a+1, i)
		}
	}()
	reader := h.NewThread()
	for i := 0; i < 5000; i++ {
		var x, y uint64
		reader.Atomic(func(tx *Txn) {
			x = tx.Load(a)
			y = tx.Load(a + 1)
		})
		if y > x {
			t.Fatalf("snapshot saw second store (%d) without first (%d)", y, x)
		}
	}
	close(stop)
	wg.Wait()
}

// TestClockMonotonic pins the shard-relative tick discipline: every
// committing write transaction ticks its thread's home clock shard exactly
// once, and only that shard (the total across shards advances by exactly the
// home shard's delta).
func TestClockMonotonic(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			h := newTestHeap(t, Config{ClockShards: shards})
			th := h.NewThread()
			a := th.Alloc(1)
			home := th.ClockShard()
			prev := h.ClockShardNow(home)
			prevTotal := h.ClockNow()
			for i := 0; i < 100; i++ {
				th.Atomic(func(tx *Txn) { tx.Store(a, uint64(i)) })
				now := h.ClockShardNow(home)
				if now != prev+1 {
					t.Fatalf("home shard ticked %d times for one commit", now-prev)
				}
				if total := h.ClockNow(); total != prevTotal+1 {
					t.Fatalf("commit moved a foreign shard: total %d -> %d", prevTotal, total)
				}
				prev = now
				prevTotal++
			}
		})
	}
}

func TestReadOnlyTxnDoesNotAdvanceClock(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			h := newTestHeap(t, Config{ClockShards: shards})
			th := h.NewThread()
			a := th.Alloc(1)
			before := h.ClockNow()
			th.Atomic(func(tx *Txn) { tx.Load(a) })
			if after := h.ClockNow(); after != before {
				t.Errorf("read-only txn advanced clock %d -> %d", before, after)
			}
		})
	}
}

func TestThreadAttemptStats(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	for i := 0; i < 10; i++ {
		th.Atomic(func(tx *Txn) { tx.Store(a, 1) })
	}
	attempts, commits := th.AttemptStats()
	if commits != 10 {
		t.Errorf("commits = %d, want 10", commits)
	}
	if attempts < commits {
		t.Errorf("attempts = %d < commits = %d", attempts, commits)
	}
}
