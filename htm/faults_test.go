package htm

import (
	"sync"
	"testing"
	"time"
)

// TestSpuriousTerminationHardware is the ISSUE's central determinism shape:
// 100% injection for the first MaxRetries-1 attempts (via MaxPerOp) kills
// every early attempt, and the operation still commits — in hardware, on the
// very last attempt, never reaching the fallback.
func TestSpuriousTerminationHardware(t *testing.T) {
	const retries = 8
	sites := []struct {
		name string
		plan FaultPlan
	}{
		{"begin", FaultPlan{Seed: 1, BeginProb: 1, MaxPerOp: retries - 1}},
		{"access", FaultPlan{Seed: 1, AccessProb: 1, MaxPerOp: retries - 1}},
		{"commit", FaultPlan{Seed: 1, CommitProb: 1, MaxPerOp: retries - 1}},
	}
	for _, site := range sites {
		site := site
		t.Run(site.name, func(t *testing.T) {
			plan := site.plan
			h := newTestHeap(t, Config{EnableTLE: true, MaxRetries: retries, Faults: &plan})
			th := h.NewThread()
			a := th.Alloc(1)
			th.Atomic(func(tx *Txn) { tx.Store(a, 42) })
			if got := h.LoadNT(a); got != 42 {
				t.Fatalf("word = %d, want 42", got)
			}
			s := h.Stats()
			if s.Commits != 1 {
				t.Errorf("Commits = %d, want 1", s.Commits)
			}
			if got := s.SpuriousAborts(); got != retries-1 {
				t.Errorf("SpuriousAborts = %d, want %d", got, retries-1)
			}
			if s.FallbackRuns != 0 {
				t.Errorf("FallbackRuns = %d, want 0 (last attempt must commit in hardware)", s.FallbackRuns)
			}
		})
	}
}

// TestSpuriousTerminationFallback removes the per-op cap: with 100% injection
// on every hardware attempt, the operation can only complete because the
// fallback path is injection-immune.
func TestSpuriousTerminationFallback(t *testing.T) {
	const retries = 4
	plan := FaultPlan{Seed: 1, BeginProb: 1}
	h := newTestHeap(t, Config{EnableTLE: true, MaxRetries: retries, Faults: &plan})
	th := h.NewThread()
	a := th.Alloc(1)
	th.Atomic(func(tx *Txn) { tx.Store(a, 7) })
	if got := h.LoadNT(a); got != 7 {
		t.Fatalf("word = %d, want 7", got)
	}
	s := h.Stats()
	if s.FallbackRuns != 1 {
		t.Errorf("FallbackRuns = %d, want 1", s.FallbackRuns)
	}
	if got := s.SpuriousAborts(); got != retries {
		t.Errorf("SpuriousAborts = %d, want %d (every hardware attempt killed)", got, retries)
	}
}

// TestTryAtomicReportsSpurious checks the single-attempt API surfaces the new
// code as a typed error.
func TestTryAtomicReportsSpurious(t *testing.T) {
	plan := FaultPlan{Seed: 1, CommitProb: 1}
	h := newTestHeap(t, Config{Faults: &plan})
	th := h.NewThread()
	a := th.Alloc(1)
	err := th.TryAtomic(func(tx *Txn) { tx.Store(a, 1) })
	ae, ok := err.(*AbortError)
	if !ok || ae.Code != AbortSpurious {
		t.Fatalf("TryAtomic error = %v, want AbortSpurious", err)
	}
	if got := h.LoadNT(a); got != 0 {
		t.Fatalf("killed attempt published %d", got)
	}
}

// TestAccessEverySpacing pins the Nth-access contract: with AccessEvery=3 and
// a 2-access body, no access is ever eligible and the op commits first try.
func TestAccessEverySpacing(t *testing.T) {
	plan := FaultPlan{Seed: 1, AccessProb: 1, AccessEvery: 3}
	h := newTestHeap(t, Config{Faults: &plan})
	th := h.NewThread()
	a := th.Alloc(2)
	th.Atomic(func(tx *Txn) { tx.Store(a, 1); tx.Store(a+1, 2) }) // 2 accesses < 3
	if s := h.Stats(); s.SpuriousAborts() != 0 || s.Commits != 1 {
		t.Fatalf("2-access body under AccessEvery=3 injected: %v", s)
	}
	// A third access in the body makes exactly one access eligible per attempt.
	th.TryAtomic(func(tx *Txn) { tx.Load(a); tx.Load(a + 1); tx.Load(a) })
	if got := h.Stats().SpuriousAborts(); got != 1 {
		t.Fatalf("3-access body under AccessEvery=3: SpuriousAborts = %d, want 1", got)
	}
}

// TestAtomicUntilAbandons drives AtomicUntil under unconditional injection
// with no TLE escape: plain Atomic would retry forever, so a false return is
// the only way out — and must mean the body never took effect.
func TestAtomicUntilAbandons(t *testing.T) {
	plan := FaultPlan{Seed: 1, BeginProb: 1}
	h := newTestHeap(t, Config{Faults: &plan})
	th := h.NewThread()
	a := th.Alloc(1)
	attempts := 0
	stop := func() bool { attempts++; return attempts >= 3 }
	if th.AtomicUntil(func(tx *Txn) { tx.Store(a, 9) }, stop) {
		t.Fatal("AtomicUntil reported commit under 100% injection and a firing stop")
	}
	if got := h.LoadNT(a); got != 0 {
		t.Fatalf("abandoned operation published %d", got)
	}
	// nil stop is exactly Atomic: with a per-op budget the op must commit.
	plan2 := FaultPlan{Seed: 1, BeginProb: 1, MaxPerOp: 2}
	h2 := newTestHeap(t, Config{Faults: &plan2})
	th2 := h2.NewThread()
	b := th2.Alloc(1)
	if !th2.AtomicUntil(func(tx *Txn) { tx.Store(b, 5) }, nil) {
		t.Fatal("AtomicUntil(nil stop) failed to commit")
	}
	if got := h2.LoadNT(b); got != 5 {
		t.Fatalf("word = %d, want 5", got)
	}
}

// TestFaultDeterminism runs the same single-thread workload on two heaps
// configured with the same plan and demands bit-identical statistics — the
// replayability contract the chaos CI gate rests on. A third heap with a
// different seed must diverge (same counts would mean the seed is ignored).
func TestFaultDeterminism(t *testing.T) {
	run := func(seed uint64) Stats {
		plan := FaultPlan{Seed: seed, BeginProb: 0.2, AccessProb: 0.05, CommitProb: 0.1}
		h := newTestHeap(t, Config{EnableTLE: true, MaxRetries: 4, Faults: &plan})
		th := h.NewThread()
		a := th.Alloc(8)
		for i := 0; i < 200; i++ {
			i := i
			th.Atomic(func(tx *Txn) {
				w := a + Addr(i%8)
				tx.Store(w, tx.Load(w)+1)
			})
		}
		return h.Stats()
	}
	s1, s2 := run(42), run(42)
	if s1.Starts != s2.Starts || s1.SpuriousAborts() != s2.SpuriousAborts() ||
		s1.FallbackRuns != s2.FallbackRuns || s1.Commits != s2.Commits {
		t.Fatalf("same seed diverged:\n  %v\n  %v", s1, s2)
	}
	if s1.SpuriousAborts() == 0 {
		t.Fatal("plan injected nothing; the determinism check is vacuous")
	}
	if s3 := run(43); s3.SpuriousAborts() == s1.SpuriousAborts() && s3.Starts == s1.Starts {
		t.Fatalf("different seeds produced identical runs: %v", s3)
	}
}

// TestFallbackStallNoDeadlock is the adversity proof: every fallback commit
// stalls holding its full lock-set and delays its release, footprints overlap
// and acquisition orders collide, and yet every operation terminates. Run
// under -race in CI.
func TestFallbackStallNoDeadlock(t *testing.T) {
	plan := FaultPlan{Seed: 7, StallProb: 1, StallSpins: 8, ReleaseDelay: 4}
	cfg := overflowCfg() // every multi-word write goes straight to fallback
	cfg.Faults = &plan
	cfg.FallbackSpins = 4 // tight bound: exercise release-and-retry hard
	h := newTestHeap(t, cfg)
	setup := h.NewThread()
	words := setup.Alloc(8)

	const goroutines, opsEach = 4, 50
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := h.NewThread()
			for i := 0; i < opsEach; i++ {
				lo, hi := Addr(g%8), Addr((g+3)%8)
				if lo > hi {
					lo, hi = hi, lo
				}
				th.Atomic(func(tx *Txn) {
					// Overlapping two-word footprints; ascending then a third
					// descending store to provoke out-of-order acquisition.
					tx.Store(words+lo, uint64(i))
					tx.Store(words+hi, uint64(i))
					tx.Store(words+Addr(i%8), uint64(g))
				})
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fallback operations deadlocked or starved under stall injection")
	}
	s := h.Stats()
	if s.FallbackStalls == 0 {
		t.Error("StallProb=1 produced no recorded stalls")
	}
	if s.FallbackRuns != goroutines*opsEach {
		t.Errorf("FallbackRuns = %d, want %d (every op must complete on the fallback)",
			s.FallbackRuns, goroutines*opsEach)
	}
	if sweep := h.SweepMeta(); sweep.Locked != 0 || sweep.FallbackTagged != 0 {
		t.Errorf("metadata leaked after quiescence: %+v", sweep)
	}
}

// TestSweepMeta checks the census against the allocator's own accounting on a
// quiescent heap, before and after frees.
func TestSweepMeta(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(16)
	b := th.Alloc(32)
	th.Atomic(func(tx *Txn) { tx.Store(a, 1); tx.Store(b, 2) })
	sweep := h.SweepMeta()
	if live := h.Stats().LiveWords; sweep.Allocated != live {
		t.Errorf("sweep.Allocated = %d, Stats().LiveWords = %d", sweep.Allocated, live)
	}
	if sweep.Locked != 0 || sweep.FallbackTagged != 0 {
		t.Errorf("quiescent heap has residual lock state: %+v", sweep)
	}
	th.Free(b)
	sweep = h.SweepMeta()
	if live := h.Stats().LiveWords; sweep.Allocated != live {
		t.Errorf("after free: sweep.Allocated = %d, Stats().LiveWords = %d", sweep.Allocated, live)
	}
}

// TestFallbackSpinsKnob pins the knob's resolution (0 = default, negative =
// no out-of-order spinning) and runs contended fallback traffic at the
// paranoid setting to prove immediate release-and-retry still terminates.
func TestFallbackSpinsKnob(t *testing.T) {
	if got := (Config{}).withDefaults().fallbackSpins(); got != defaultFallbackSpins {
		t.Errorf("default FallbackSpins = %d, want %d", got, defaultFallbackSpins)
	}
	if got := (Config{FallbackSpins: 7}).fallbackSpins(); got != 7 {
		t.Errorf("FallbackSpins=7 resolved to %d", got)
	}
	if got := (Config{FallbackSpins: -1}).fallbackSpins(); got != 0 {
		t.Errorf("FallbackSpins=-1 resolved to %d, want 0", got)
	}

	cfg := overflowCfg()
	cfg.FallbackSpins = -1
	h := newTestHeap(t, cfg)
	words := h.NewThread().Alloc(4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := h.NewThread()
			for i := 0; i < 50; i++ {
				th.Atomic(func(tx *Txn) {
					tx.Store(words+Addr((g+i)%4), uint64(i))
					tx.Store(words+Addr((g+i+1)%4), uint64(i))
				})
			}
		}()
	}
	wg.Wait()
	if s := h.Stats(); s.FallbackRuns != 4*50 {
		t.Errorf("FallbackRuns = %d, want %d", s.FallbackRuns, 4*50)
	}
}

// TestFaultPlanStatsRendering makes sure the new counters surface in the
// one-line diagnostic form.
func TestFaultPlanStatsRendering(t *testing.T) {
	s := Stats{
		Starts: 3, Commits: 1,
		Aborts:         map[AbortCode]uint64{AbortSpurious: 2},
		FallbackStalls: 5,
	}
	out := s.String()
	for _, want := range []string{"spurious=2", "fbstalls=5"} {
		if !contains(out, want) {
			t.Errorf("Stats.String() = %q, missing %q", out, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
