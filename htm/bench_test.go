package htm

import (
	"testing"
)

// Substrate microbenchmarks. Every figure in the paper is throughput of
// operations built from these primitives, so their per-op cost and alloc
// behaviour bound everything the harness can measure. BENCH_*.json snapshots
// record their trajectory PR over PR.

// BenchmarkTxnLoadStore measures the transactional load/store fast path on a
// small working set, including read-own-writes and repeated reads of the same
// address — the access pattern of the paper's Collect loops.
func BenchmarkTxnLoadStore(b *testing.B) {
	b.Run("words=8", func(b *testing.B) {
		benchTxnLoadStore(b, Config{Words: 1 << 16}, 8)
	})
	// 64 distinct words exceeds the small-set linear fast path and exercises
	// the indexed read/write set (unbounded store buffer: a "future HTM").
	b.Run("words=64", func(b *testing.B) {
		benchTxnLoadStore(b, Config{Words: 1 << 16, StoreBufferSize: -1}, 64)
	})
}

func benchTxnLoadStore(b *testing.B, cfg Config, words int) {
	h := NewHeap(cfg)
	th := h.NewThread()
	a := th.Alloc(words)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Atomic(func(t *Txn) {
			for w := 0; w < words; w++ {
				addr := a + Addr(w)
				v := t.Load(addr)  // first read: enters the read set
				t.Store(addr, v+1) // write: enters the write set
				_ = t.Load(addr)   // read-own-write: must hit the write set
				_ = t.Load(a)      // repeated read: must not grow the read set
			}
		})
	}
}

// BenchmarkTxnReadOnly measures a pure read transaction over a scan-shaped
// working set (no writes, so commit is free and validation cost dominates).
func BenchmarkTxnReadOnly(b *testing.B) {
	h := NewHeap(Config{Words: 1 << 16})
	th := h.NewThread()
	const words = 32
	a := th.Alloc(words)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Atomic(func(t *Txn) {
			var s uint64
			for w := 0; w < words; w++ {
				s += t.Load(a + Addr(w))
			}
			_ = s
		})
	}
}

// BenchmarkTxnRepeatedLoad measures the read-set dedup path: a small set of
// words each loaded many times in one transaction — the pattern that, before
// dedup, grew the read set unboundedly, inflated validation, and could abort
// with AbortCapacity despite a tiny distinct working set.
func BenchmarkTxnRepeatedLoad(b *testing.B) {
	h := NewHeap(Config{Words: 1 << 16})
	th := h.NewThread()
	const words = 4
	a := th.Alloc(words)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Atomic(func(t *Txn) {
			var s uint64
			for rep := 0; rep < 64; rep++ {
				for w := 0; w < words; w++ {
					s += t.Load(a + Addr(w))
				}
			}
			// One store makes this a write transaction, so commit validates
			// the read set — the cost that duplicated read entries inflate.
			t.Store(a, s)
		})
	}
}

// BenchmarkDedupBypassSweep sweeps Config.DedupBypass over a repeat-heavy
// transaction (the shape of Fig. 5's telescoping collects: a small distinct
// working set loaded many times per attempt, then one store so commit
// validates). The bypass threshold trades duplicate read entries to compact
// (high values) against per-load filter bookkeeping (low values); this sweep
// is the empirical input for tuning the default, per ROADMAP.
func BenchmarkDedupBypassSweep(b *testing.B) {
	for _, bp := range []struct {
		name string
		knob int
	}{
		{"engage=0", -1}, // filtered from the first read (PR 3 behaviour)
		{"cap=64", 64},
		{"cap=256", 256},
		{"cap=1024", 1024},
		{"cap=4096", 4096}, // the default
	} {
		b.Run(bp.name, func(b *testing.B) {
			h := NewHeap(Config{Words: 1 << 16, DedupBypass: bp.knob})
			th := h.NewThread()
			const words = 16
			a := th.Alloc(words)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Atomic(func(t *Txn) {
					var s uint64
					for rep := 0; rep < 64; rep++ {
						for w := 0; w < words; w++ {
							s += t.Load(a + Addr(w))
						}
					}
					t.Store(a, s)
				})
			}
		})
	}
}

// BenchmarkFallbackOverflow measures the contended-overflow path at the
// substrate level: every operation overflows a tiny store buffer and
// completes on the TLE fallback, with all goroutines writing DISJOINT
// per-goroutine blocks. Under the fine-grained lock-set the operations share
// nothing and scale; under the retired global lock (the global variant) they
// serialize. This is the microbenchmark form of the harness
// contended-overflow workload recorded in BENCH_PR5.json.
func BenchmarkFallbackOverflow(b *testing.B) {
	run := func(global bool) func(b *testing.B) {
		return func(b *testing.B) {
			h := NewHeap(Config{
				Words:           1 << 20,
				StoreBufferSize: 2,
				EnableTLE:       true,
				MaxRetries:      1,
				GlobalFallback:  global,
				NoMaxLive:       true,
			})
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				th := h.NewThread()
				blk := th.Alloc(8)
				for pb.Next() {
					th.Atomic(func(t *Txn) {
						for w := Addr(0); w < 8; w++ {
							t.Store(blk+w, t.Load(blk+w)+1)
						}
					})
				}
			})
		}
	}
	b.Run("fine-grained", run(false))
	b.Run("global", run(true))
}

// BenchmarkAllocFree measures the allocator fast path: a matched alloc/free
// pair of a queue-node-sized block, single-threaded (the magazine hit path).
// The fastpath variant disables exact high-water tracking, as throughput runs
// do; tracked keeps the space-figure accounting on.
func BenchmarkAllocFree(b *testing.B) {
	run := func(cfg Config) func(b *testing.B) {
		return func(b *testing.B) {
			h := NewHeap(cfg)
			th := h.NewThread()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Free(th.Alloc(4))
			}
		}
	}
	b.Run("fastpath", run(Config{Words: 1 << 20, NoMaxLive: true}))
	b.Run("tracked", run(Config{Words: 1 << 20}))
}

// BenchmarkAllocFreeParallel measures alloc/free with every goroutine on its
// own Thread — the uncontended steady state the magazine layer targets.
func BenchmarkAllocFreeParallel(b *testing.B) {
	h := NewHeap(Config{Words: 1 << 22, NoMaxLive: true})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		th := h.NewThread()
		for pb.Next() {
			th.Free(th.Alloc(4))
		}
	})
}
