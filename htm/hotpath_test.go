package htm

import (
	"sync"
	"testing"
)

// TestReadSetDedupRepeatedLoads is the regression test for the read-set
// duplication bug: repeated loads of one address used to append one read
// entry each, so a workload whose *distinct* read set fit MaxReadSet could
// still abort with AbortCapacity.
func TestReadSetDedupRepeatedLoads(t *testing.T) {
	h := newTestHeap(t, Config{MaxReadSet: 4})
	th := h.NewThread()
	a := th.Alloc(4)
	err := th.TryAtomic(func(tx *Txn) {
		for rep := 0; rep < 100; rep++ {
			for i := Addr(0); i < 4; i++ {
				tx.Load(a + i)
			}
		}
		if tx.ReadSetSize() != 4 {
			t.Errorf("ReadSetSize = %d after repeated loads, want 4", tx.ReadSetSize())
		}
	})
	if err != nil {
		t.Fatalf("distinct read set of 4 within MaxReadSet=4 aborted: %v", err)
	}
}

// TestReadSetDedupLargeSet drives the read set well past the linear threshold
// and the filter into its indexed regime, with every address re-loaded.
func TestReadSetDedupLargeSet(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	const words = 300
	a := th.Alloc(words)
	th.Atomic(func(tx *Txn) {
		for pass := 0; pass < 3; pass++ {
			for i := Addr(0); i < words; i++ {
				tx.Load(a + i)
			}
		}
		if tx.ReadSetSize() != words {
			t.Errorf("ReadSetSize = %d, want %d", tx.ReadSetSize(), words)
		}
	})
}

// TestDedupBypassThreshold pins the resolution of the Config.DedupBypass knob
// against MaxReadSet: the configured cap wins until it would exceed
// MaxReadSet/2, the bound that keeps the AbortCapacity guarantee intact.
func TestDedupBypassThreshold(t *testing.T) {
	cases := []struct {
		knob, maxReadSet, want int
	}{
		{0, 0, bypassReadCap},               // all defaults (MaxReadSet 1<<16)
		{0, 1000, 500},                      // MaxReadSet/2 below the cap
		{256, 0, 256},                       // explicit cap
		{1 << 20, 0, defaultMaxReadSet / 2}, // clamped to MaxReadSet/2
		{-1, 0, 0},                          // dedup from the first read
		{0, -1, bypassReadCap},              // unbounded reads: cap still bounds
		{1 << 20, -1, 1 << 20},              // unbounded reads: knob taken as-is
	}
	for _, c := range cases {
		h := NewHeap(Config{Words: 1 << 10, DedupBypass: c.knob, MaxReadSet: c.maxReadSet})
		th := h.NewThread()
		if got := th.txn.dedupAfter; got != c.want {
			t.Errorf("DedupBypass=%d MaxReadSet=%d: dedupAfter = %d, want %d",
				c.knob, c.maxReadSet, got, c.want)
		}
	}
}

// TestDedupBypassDisabledStillDedups: with the bypass disabled (negative
// knob) every attempt runs in filtered mode from its first read — the PR 3
// behaviour — and repeated loads still collapse to one entry each.
func TestDedupBypassDisabledStillDedups(t *testing.T) {
	h := newTestHeap(t, Config{MaxReadSet: 4, DedupBypass: -1})
	th := h.NewThread()
	a := th.Alloc(4)
	err := th.TryAtomic(func(tx *Txn) {
		for rep := 0; rep < 100; rep++ {
			for i := Addr(0); i < 4; i++ {
				tx.Load(a + i)
			}
		}
		if tx.ReadSetSize() != 4 {
			t.Errorf("ReadSetSize = %d, want 4", tx.ReadSetSize())
		}
	})
	if err != nil {
		t.Fatalf("distinct read set of 4 within MaxReadSet=4 aborted: %v", err)
	}
}

// TestDedupBypassSmallCap drives an attempt across a small configured bypass
// cap mid-transaction: the compaction must engage at the cap and the distinct
// working set must stay within capacity.
func TestDedupBypassSmallCap(t *testing.T) {
	h := newTestHeap(t, Config{MaxReadSet: 64, DedupBypass: 8})
	th := h.NewThread()
	a := th.Alloc(4)
	th.Atomic(func(tx *Txn) {
		// 4 distinct words x 50 repeats = 200 loads; the bypass holds the
		// first 8 entries (with duplicates), then compaction engages.
		for rep := 0; rep < 50; rep++ {
			for i := Addr(0); i < 4; i++ {
				tx.Load(a + i)
			}
		}
		if tx.ReadSetSize() != 4 {
			t.Errorf("ReadSetSize = %d, want 4", tx.ReadSetSize())
		}
	})
}

// TestReadSetCapacityStillEnforced checks that dedup did not weaken the
// capacity bound for genuinely distinct reads.
func TestReadSetCapacityStillEnforced(t *testing.T) {
	h := newTestHeap(t, Config{MaxReadSet: 16})
	th := h.NewThread()
	a := th.Alloc(32)
	err := th.TryAtomic(func(tx *Txn) {
		for i := Addr(0); i < 32; i++ {
			tx.Load(a + i)
		}
	})
	ab, ok := err.(*AbortError)
	if !ok || ab.Code != AbortCapacity {
		t.Fatalf("err = %v, want AbortCapacity", err)
	}
}

// TestWriteSetIndexAgainstReference is the property test for the indexed
// write set: a long pseudo-random sequence of loads and stores over a pool of
// addresses is mirrored in a plain map, checking read-own-writes, overwrite
// semantics, distinct-word counting, and post-commit memory — across set
// sizes on both sides of the linear threshold.
func TestWriteSetIndexAgainstReference(t *testing.T) {
	for _, pool := range []int{4, setLinearMax, setLinearMax + 1, 64, 200} {
		h := NewHeap(Config{Words: 1 << 16, StoreBufferSize: -1})
		th := h.NewThread()
		a := th.Alloc(pool)
		model := make(map[Addr]uint64)
		rng := uint64(pool)*0x9E3779B97F4A7C15 | 1
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		th.Atomic(func(tx *Txn) {
			for k := range model {
				delete(model, k)
			}
			for op := 0; op < 4*pool; op++ {
				addr := a + Addr(next()%uint64(pool))
				if next()%2 == 0 {
					v := next()
					tx.Store(addr, v)
					model[addr] = v
				} else {
					got := tx.Load(addr)
					want := model[addr] // zero if never written: fresh block
					if got != want {
						t.Fatalf("pool=%d op=%d: Load(%#x) = %d, want %d", pool, op, uint32(addr), got, want)
					}
				}
			}
			if tx.WriteSetSize() != len(model) {
				t.Errorf("pool=%d: WriteSetSize = %d, want %d distinct", pool, tx.WriteSetSize(), len(model))
			}
		})
		for addr, want := range model {
			if got := h.LoadNT(addr); got != want {
				t.Errorf("pool=%d: committed word %#x = %d, want %d", pool, uint32(addr), got, want)
			}
		}
	}
}

// TestOverflowThresholdUnchangedByIndex checks that the indexed write set
// still aborts on exactly StoreBufferSize+1 distinct words — and not on
// overwrites of already-buffered words.
func TestOverflowThresholdUnchangedByIndex(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 16})
	th := h.NewThread()
	a := th.Alloc(RockStoreBufferSize + 1)
	err := th.TryAtomic(func(tx *Txn) {
		for i := Addr(0); i < RockStoreBufferSize; i++ {
			tx.Store(a+i, 1)
		}
		// Overwrites of buffered words must not count against the limit.
		for i := Addr(0); i < RockStoreBufferSize; i++ {
			tx.Store(a+i, 2)
		}
	})
	if err != nil {
		t.Fatalf("exactly StoreBufferSize distinct words aborted: %v", err)
	}
	err = th.TryAtomic(func(tx *Txn) {
		for i := Addr(0); i <= RockStoreBufferSize; i++ {
			tx.Store(a+i, 1)
		}
	})
	ab, ok := err.(*AbortError)
	if !ok || ab.Code != AbortOverflow {
		t.Fatalf("err = %v, want AbortOverflow at %d distinct words", err, RockStoreBufferSize+1)
	}
}

// TestMagazineStress exercises magazine refill/drain under concurrency, with
// blocks handed off between threads so frees drain into shards the allocating
// thread never touched. Run under -race it also checks the thread-ownership
// discipline of magazines and stat cells.
func TestMagazineStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	h := NewHeap(Config{Words: 1 << 20})
	const workers = 8
	const rounds = 4000
	handoff := make(chan Addr, 256)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := h.NewThread()
			rng := seed*2654435761 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			local := make([]Addr, 0, 64)
			for i := 0; i < rounds; i++ {
				switch next() % 4 {
				case 0: // alloc a magazine-class block, sizes straddling classes
					size := int(next()%uint64(maxMagSize)) + 1
					local = append(local, th.Alloc(size))
				case 1: // free the newest local block
					if n := len(local); n > 0 {
						th.Free(local[n-1])
						local = local[:n-1]
					}
				case 2: // hand a block to another thread
					if n := len(local); n > 0 {
						select {
						case handoff <- local[n-1]:
							local = local[:n-1]
						default:
						}
					}
				case 3: // free a block allocated elsewhere
					select {
					case a := <-handoff:
						th.Free(a)
					default:
					}
				}
			}
			for _, a := range local {
				th.Free(a)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	close(handoff)
	fin := h.NewThread()
	for a := range handoff {
		fin.Free(a)
	}
	s := h.Stats()
	if s.AllocCalls != s.FreeCalls {
		t.Errorf("allocCalls=%d freeCalls=%d after full drain", s.AllocCalls, s.FreeCalls)
	}
	if s.LiveWords != 0 {
		t.Errorf("LiveWords = %d at quiescence, want 0", s.LiveWords)
	}
}

// TestMagazineRecyclingCrossSize checks that blocks freed into a magazine are
// recycled for the same size class only, and that drained blocks reappear via
// shard refills rather than leaking: alloc/free churn far beyond magCap per
// class must never exhaust a modest arena.
func TestMagazineRecyclingCrossSize(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 14})
	th := h.NewThread()
	for round := 0; round < 10000; round++ {
		size := round%maxMagSize + 1
		a := th.Alloc(size)
		if got := th.BlockSize(a); got != size {
			t.Fatalf("BlockSize = %d, want %d", got, size)
		}
		th.Free(a)
	}
	if live := h.Stats().LiveWords; live != 0 {
		t.Fatalf("LiveWords = %d after matched churn, want 0", live)
	}
}

// TestZeroAllocSteadyState asserts the acceptance criterion directly: after
// warmup, Txn.Load/Txn.Store transactions and Thread.Alloc/Free pairs run
// with zero Go allocations per operation.
func TestZeroAllocSteadyState(t *testing.T) {
	// Unbounded store buffer: 64 distinct writes exercise the indexed sets.
	h := NewHeap(Config{Words: 1 << 16, StoreBufferSize: -1})
	th := h.NewThread()
	a := th.Alloc(64)

	txnBody := func(tx *Txn) {
		for i := Addr(0); i < 64; i++ {
			tx.Store(a+i, tx.Load(a+i)+1)
		}
	}
	runTxn := func() { th.Atomic(txnBody) }
	runTxn() // warmup: grow read/write sets, indexes, filter
	if n := testing.AllocsPerRun(200, runTxn); n != 0 {
		t.Errorf("Txn.Load/Store steady state allocates %.1f allocs/op, want 0", n)
	}

	runAlloc := func() { th.Free(th.Alloc(4)) }
	runAlloc() // warmup: populate the magazine
	if n := testing.AllocsPerRun(200, runAlloc); n != 0 {
		t.Errorf("Thread.Alloc/Free steady state allocates %.1f allocs/op, want 0", n)
	}

	// Read-only transactions run the dedup-bypass fast path (append-only read
	// set, no filter maintenance); it too must be allocation-free once the
	// read-set slice has grown.
	runRO := func() {
		th.Atomic(func(tx *Txn) {
			var s uint64
			for i := Addr(0); i < 64; i++ {
				s += tx.Load(a + i)
			}
			_ = s
		})
	}
	runRO() // warmup: grow the read set
	if n := testing.AllocsPerRun(200, runRO); n != 0 {
		t.Errorf("read-only bypass steady state allocates %.1f allocs/op, want 0", n)
	}
}

// TestYieldThreshold pins the YieldEvery -> compare-threshold conversion,
// including the YieldEvery=1 saturation case (a naive 2^64/1+1 wraps to zero
// and would silently disable yielding).
func TestYieldThreshold(t *testing.T) {
	if got := yieldThreshold(0); got != 0 {
		t.Errorf("yieldThreshold(0) = %d, want 0 (never yield)", got)
	}
	if got := yieldThreshold(-1); got != 0 {
		t.Errorf("yieldThreshold(-1) = %d, want 0", got)
	}
	if got := yieldThreshold(1); got != ^uint64(0) {
		t.Errorf("yieldThreshold(1) = %d, want max (always yield)", got)
	}
	if got := yieldThreshold(4); got != 1<<62 {
		t.Errorf("yieldThreshold(4) = %d, want 2^62", got)
	}
}

// TestNoMaxLiveStats checks the NoMaxLive mode: LiveWords derived from the
// per-thread cells is exact at quiescence, and MaxLiveWords records the
// largest live count seen at a snapshot (a lower bound on the true peak).
func TestNoMaxLiveStats(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 16, NoMaxLive: true})
	th := h.NewThread()
	a := th.Alloc(10)
	b := th.Alloc(20)
	if live := h.Stats().LiveWords; live != 30 {
		t.Errorf("LiveWords = %d, want 30", live)
	}
	if max := h.Stats().MaxLiveWords; max != 30 {
		t.Errorf("MaxLiveWords = %d, want 30 (snapshot observed 30 live)", max)
	}
	th.Free(b)
	if live := h.Stats().LiveWords; live != 10 {
		t.Errorf("LiveWords after free = %d, want 10", live)
	}
	if max := h.Stats().MaxLiveWords; max != 30 {
		t.Errorf("MaxLiveWords = %d, want 30 retained", max)
	}
	h.ResetMaxLive()
	if max := h.Stats().MaxLiveWords; max != 10 {
		t.Errorf("MaxLiveWords after reset = %d, want 10", max)
	}
	th.Free(a)
}

// TestStatsAggregationAcrossThreads checks that Heap.Stats sums the sharded
// per-thread cells: counters attributed to different threads all appear.
func TestStatsAggregationAcrossThreads(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 16})
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := h.NewThread()
			a := th.Alloc(2)
			th.Atomic(func(tx *Txn) { tx.Store(a, 1) })
			th.Free(a)
		}()
	}
	wg.Wait()
	s := h.Stats()
	if s.Commits != workers {
		t.Errorf("Commits = %d, want %d", s.Commits, workers)
	}
	if s.AllocCalls != workers || s.FreeCalls != workers {
		t.Errorf("AllocCalls/FreeCalls = %d/%d, want %d/%d", s.AllocCalls, s.FreeCalls, workers, workers)
	}
	if s.LiveWords != 0 {
		t.Errorf("LiveWords = %d, want 0", s.LiveWords)
	}
}
