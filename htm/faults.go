package htm

import "runtime"

// Seeded fault injection for the simulated HTM. Rock transactions abort for
// reasons that have nothing to do with the transaction itself — interrupts,
// TLB misses, cache-line displacement (paper §3) — so code above the engine
// must treat EVERY attempt as killable. Our engine's self-inflicted aborts
// (conflict/overflow/capacity/illegal) are deterministic consequences of the
// workload; a FaultPlan restores the environmental ones, replayably: each
// thread derives its own PRNG from the plan seed and its thread ID, so a run
// with the same plan, the same thread-creation order and the same per-thread
// operation sequence injects the identical fault sequence. There is no global
// or time-dependent state anywhere in the subsystem.
//
// Injection is confined to the hardware path. The TLE fallback is software —
// on Rock it runs under a lock, not in a transaction — so it is never killed;
// that is precisely what makes every Atomic call terminate under ANY injection
// rate (the satellite termination tests assert this). Fallback adversity is
// modeled separately, as finite delays: a stall window before the fallback's
// commit (holding its whole lock-set) and a delayed lock-set release after
// write-back, which stretch the windows the deadlock-avoidance protocol and
// the NT/commit spin loops must survive without changing any outcome.

// FaultPlan configures seeded fault injection; hang it off Config.Faults.
// Probabilities are per eligible event in [0, 1]; values ≥ 1 fire always
// (exactly — no PRNG roll), which is what the deterministic termination tests
// rely on. The zero value injects nothing.
type FaultPlan struct {
	// Seed is the root seed; per-thread PRNG streams are derived from it and
	// the thread ID. Two heaps configured with the same plan inject the same
	// faults at the same points of equal executions.
	Seed uint64

	// BeginProb kills an attempt at transaction begin, before the body runs.
	BeginProb float64
	// AccessProb kills an attempt at an eligible transactional Load/Store.
	// Every AccessEvery-th access of an attempt is eligible (default 1 =
	// every access), so long transactions face proportionally more exposure,
	// as on real hardware.
	AccessProb float64
	// AccessEvery spaces the eligible accesses; see AccessProb.
	AccessEvery int
	// CommitProb kills an attempt at the commit point, after the body ran —
	// the most expensive possible abort.
	CommitProb float64

	// MaxPerOp caps injections per Atomic/TryAtomic operation (0 = no cap).
	// With MaxPerOp = MaxRetries-1 and 100% probabilities, every attempt but
	// the last is killed and the last commits in hardware — the shape the
	// termination tests pin down.
	MaxPerOp int

	// StallProb makes a fallback operation stall for StallSpins scheduler
	// yields right before its commit, while holding its entire lock-set —
	// adversity for everyone spinning on those words.
	StallProb float64
	// StallSpins is the stall window length in runtime.Gosched calls
	// (default 64 when StallProb > 0).
	StallSpins int
	// ReleaseDelay inserts this many scheduler yields between a fallback
	// commit's write-back and its lock-set release, widening the window in
	// which other threads observe the words still fallback-locked.
	ReleaseDelay int
}

// enabled reports whether the plan can inject anything at all.
func (p *FaultPlan) enabled() bool {
	if p == nil {
		return false
	}
	return p.BeginProb > 0 || p.AccessProb > 0 || p.CommitProb > 0 ||
		p.StallProb > 0 || p.ReleaseDelay > 0
}

// faultProb is a compiled probability: compare one PRNG draw against thresh,
// with p ≥ 1 special-cased to fire without a draw so "always" is exact.
type faultProb struct {
	thresh uint64
	always bool
}

func compileProb(p float64) faultProb {
	switch {
	case p <= 0:
		return faultProb{}
	case p >= 1:
		return faultProb{always: true}
	default:
		return faultProb{thresh: uint64(p * (1 << 63) * 2)}
	}
}

// fire consumes one PRNG draw iff the probability is fractional.
func (fp faultProb) fire(rng *uint64) bool {
	if fp.always {
		return true
	}
	if fp.thresh == 0 {
		return false
	}
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	return x < fp.thresh
}

// threadFaults is one thread's injection state: its private PRNG stream plus
// the compiled plan. It lives on the Thread (nil when no plan is configured),
// so the disabled cost on the transactional hot paths is one nil check.
type threadFaults struct {
	rng    uint64
	begin  faultProb
	access faultProb
	commit faultProb
	stall  faultProb

	accessEvery  int
	maxPerOp     int
	stallSpins   int
	releaseDelay int

	opBudget    int // injections left for the current op; -1 = unlimited
	accessCount int // eligible-access counter, reset each attempt
}

// splitmix64 is the standard seed-mixing finalizer: even near-identical
// inputs (sequential thread IDs) diverge into independent-looking streams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// newThreadFaults derives a thread's injection state from the plan.
func newThreadFaults(p *FaultPlan, id uint64) *threadFaults {
	f := &threadFaults{
		rng:          splitmix64(p.Seed ^ id*0x9E3779B97F4A7C15),
		begin:        compileProb(p.BeginProb),
		access:       compileProb(p.AccessProb),
		commit:       compileProb(p.CommitProb),
		stall:        compileProb(p.StallProb),
		accessEvery:  p.AccessEvery,
		maxPerOp:     p.MaxPerOp,
		stallSpins:   p.StallSpins,
		releaseDelay: p.ReleaseDelay,
	}
	if f.rng == 0 {
		f.rng = 0x9E3779B97F4A7C15 // xorshift must not start at zero
	}
	if f.accessEvery <= 0 {
		f.accessEvery = 1
	}
	if f.stallSpins <= 0 {
		f.stallSpins = 64
	}
	return f
}

// opStart resets the per-operation injection budget (one Atomic/TryAtomic).
func (f *threadFaults) opStart() {
	if f.maxPerOp > 0 {
		f.opBudget = f.maxPerOp
	} else {
		f.opBudget = -1
	}
}

// attemptStart resets the per-attempt access counter.
func (f *threadFaults) attemptStart() { f.accessCount = 0 }

// spend consumes one unit of the op budget; false means the budget is dry and
// nothing may be injected into this operation anymore.
func (f *threadFaults) spend() bool {
	if f.opBudget == 0 {
		return false
	}
	if f.opBudget > 0 {
		f.opBudget--
	}
	return true
}

// fireBegin decides a begin-site injection for this attempt.
func (f *threadFaults) fireBegin() bool {
	return f.begin.fire(&f.rng) && f.spend()
}

// fireAccess decides an access-site injection; called once per transactional
// Load/Store on the hardware path.
func (f *threadFaults) fireAccess() bool {
	f.accessCount++
	if f.accessCount%f.accessEvery != 0 {
		return false
	}
	return f.access.fire(&f.rng) && f.spend()
}

// fireCommit decides a commit-point injection for this attempt.
func (f *threadFaults) fireCommit() bool {
	return f.commit.fire(&f.rng) && f.spend()
}

// maybeStall runs the fallback lock-holder stall window; returns whether it
// stalled (the caller bumps the counter — stats stay in thread.go).
func (f *threadFaults) maybeStall() bool {
	if !f.stall.fire(&f.rng) {
		return false
	}
	for i := 0; i < f.stallSpins; i++ {
		runtime.Gosched()
	}
	return true
}

// MetaSweep is the result of Heap.SweepMeta: a census of metadata states
// across the whole arena.
type MetaSweep struct {
	// Allocated counts allocated payload words. At quiescence this must equal
	// Stats().LiveWords — a mismatch means a transition leaked. Without
	// striping it is the count of words whose allocated bit is set; with
	// Config.StripeShift it is computed by walking block headers, so the unit
	// stays payload words rather than stripes.
	Allocated uint64
	// Locked counts metadata words whose lock bit is set (commit write-back,
	// NT operation, or fallback hold). Must be zero at quiescence.
	Locked uint64
	// FallbackTagged counts metadata words carrying the fallback lock tag.
	// Must be zero at quiescence — a leftover tag means a fallback lock-set
	// leaked.
	FallbackTagged uint64
	// StripeErrors counts per-stripe invariant violations found by the
	// striped block walk: a live block with a non-allocated stripe, a free
	// block with an allocated or locked stripe, or a corrupt header. Always
	// zero without striping; must be zero at quiescence with it.
	StripeErrors uint64
}

// SweepMeta scans the arena's metadata and returns the census. It is a
// diagnostic for quiescent heaps (the chaos harness's post-run invariant
// sweep); concurrent activity makes the counts approximate.
//
// With Config.StripeShift set it additionally walks every allocator region
// block by block (headers survive free, and blocks are stripe-aligned, so the
// walk is exact) and cross-checks each block's state against all of its
// stripes' metadata, reporting disagreements in StripeErrors.
func (h *Heap) SweepMeta() MetaSweep {
	var s MetaSweep
	for i := range h.meta {
		m := h.meta[i].Load()
		if h.stripeShift == 0 && metaAllocated(m) {
			s.Allocated++
		}
		if metaLocked(m) {
			s.Locked++
		}
		if metaFallbackLocked(m) {
			s.FallbackTagged++
		}
	}
	if h.stripeShift != 0 {
		h.sweepStripes(&s)
	}
	return s
}

// sweepStripes walks every shard's carved region block by block, counting
// live payload words and checking that each block's stripes agree with its
// header: all allocated for a live block, none allocated or locked for a free
// one. Stripe alignment guarantees the walk sees every stripe that ever
// transitioned exactly once.
func (h *Heap) sweepStripes(s *MetaSweep) {
	mask := Addr(1)<<h.stripeShift - 1
	for i := range h.alloc.shards {
		sh := &h.alloc.shards[i]
		sh.mu.Lock()
		start, bump := sh.start, sh.bump
		sh.mu.Unlock()
		pos := (start + mask) &^ mask
		for pos < bump {
			hdr := h.words[pos].Load()
			size := int(hdr >> 1)
			if size <= 0 || Addr(size) >= bump-pos {
				s.StripeErrors++ // corrupt header: stop walking this region
				break
			}
			live := hdr&headerAllocBit != 0
			if live {
				s.Allocated += uint64(size)
			}
			for si, hi := h.mi(pos+1), h.mi(pos+Addr(size)); si <= hi; si++ {
				m := h.meta[si].Load()
				if live != metaAllocated(m) || (!live && metaLocked(m)) {
					s.StripeErrors++
				}
			}
			// Next block starts at the next stripe boundary past this one's
			// header+payload footprint (see allocator.carve).
			pos = (pos + Addr(size+1) + mask) &^ mask
		}
	}
}
