// Package htm provides a software-simulated hardware transactional memory
// (HTM) over a simulated word-addressable heap.
//
// The package reproduces the programming model of Sun's Rock prototype HTM as
// used by Dragojević, Herlihy, Lev and Moir ("On the power of hardware
// transactional memory to simplify memory management", PODC 2011):
//
//   - Best-effort bounded transactions: a transaction may abort at any time
//     and reports a failure reason. The number of distinct words written by a
//     transaction is limited by Config.StoreBufferSize (32 on Rock); exceeding
//     it aborts the transaction with AbortOverflow.
//   - Sandboxing: a transaction that dereferences freed memory aborts with
//     AbortIllegal instead of crashing the program (Rock paper, footnote 1).
//   - Strong atomicity: non-transactional loads, stores and CAS operations
//     (Heap.LoadNT, Heap.StoreNT, Heap.CASNT) interoperate correctly with
//     concurrent transactions.
//   - Transactional lock elision (TLE) fallback: optionally, a transaction
//     that fails repeatedly is executed on a pessimistic software path. By
//     default that path acquires the per-word metadata locks of exactly the
//     words it touches, so disjoint fallback operations and unrelated
//     hardware transactions proceed concurrently; Config.GlobalFallback
//     restores the paper's single global fallback lock that all transactions
//     monitor (§6).
//
// Internally the engine is a TL2/TinySTM-style software TM: a global version
// clock, one metadata word per heap word fusing the versioned lock with the
// allocation state, lazy write buffering, commit-time locking, and
// incremental read-set revalidation with timestamp extension so that
// transactions abort only on true word-level conflicts — matching the
// conflict behaviour of a real HTM much more closely than plain TL2 would.
//
// Heap memory is an arena of 64-bit words addressed by Addr. Each word's
// metadata carries an allocated bit whose transitions are version bumps, so
// use-after-free is detectable by the same single-word check that validates
// reads — which is what makes the paper's central claim ("a dequeue can free
// its node to the operating system; racing transactions abort rather than
// crash") observable inside a Go process. See DESIGN.md "Per-word metadata".
package htm

import (
	"fmt"
)

// Addr is the address of a 64-bit word in a simulated Heap. The zero value is
// the nil address and is never returned by an allocation.
type Addr uint32

// NilAddr is the nil heap address. Loads and stores through NilAddr abort the
// surrounding transaction (or panic outside one).
const NilAddr Addr = 0

// AbortCode identifies why a transaction attempt failed, mirroring the
// failure feedback provided by Rock's HTM (paper §6).
type AbortCode uint8

// Abort reasons.
const (
	// AbortConflict indicates a data conflict with a concurrent transaction
	// or non-transactional access.
	AbortConflict AbortCode = iota + 1
	// AbortOverflow indicates the transaction attempted to write more
	// distinct words than the simulated store buffer holds.
	AbortOverflow
	// AbortIllegal indicates the transaction dereferenced freed or nil
	// memory and was sandboxed.
	AbortIllegal
	// AbortExplicit indicates the transaction called Txn.Abort.
	AbortExplicit
	// AbortFallback indicates the transaction observed the global TLE
	// fallback lock held (or acquired during its execution) and must wait.
	// Produced only in Config.GlobalFallback compatibility mode: the default
	// fine-grained fallback holds per-word metadata locks, so a transaction
	// that collides with it aborts with AbortConflict on the contended word,
	// and transactions on disjoint words are unaffected.
	AbortFallback
	// AbortCapacity indicates the transaction exceeded the configured read
	// set capacity (Config.MaxReadSet).
	AbortCapacity
	// AbortSpurious indicates the attempt was killed by the seeded
	// fault-injection plan (Config.Faults), modeling Rock's environmental
	// aborts — interrupts, TLB misses, cache displacement — which carry no
	// information about the transaction's own behaviour. Spurious aborts are
	// produced only by fault injection, never by the engine itself, and only
	// on the hardware path: the software fallback, like Rock's, is immune.
	AbortSpurious
)

// String returns a short human-readable name for the abort code.
func (c AbortCode) String() string {
	switch c {
	case AbortConflict:
		return "conflict"
	case AbortOverflow:
		return "overflow"
	case AbortIllegal:
		return "illegal-access"
	case AbortExplicit:
		return "explicit"
	case AbortFallback:
		return "fallback-lock"
	case AbortCapacity:
		return "read-capacity"
	case AbortSpurious:
		return "spurious"
	default:
		return fmt.Sprintf("abort(%d)", uint8(c))
	}
}

// AbortError reports a failed transaction attempt.
type AbortError struct {
	// Code is the reason for the abort.
	Code AbortCode
	// Addr is the word involved, when meaningful (conflicts and illegal
	// accesses); NilAddr otherwise.
	Addr Addr
}

// Error implements the error interface.
func (e *AbortError) Error() string {
	if e.Addr != NilAddr {
		return fmt.Sprintf("htm: transaction aborted: %s at %#x", e.Code, uint32(e.Addr))
	}
	return "htm: transaction aborted: " + e.Code.String()
}

// Is reports whether target is an *AbortError with the same code, enabling
// errors.Is comparisons against sentinel values.
func (e *AbortError) Is(target error) bool {
	t, ok := target.(*AbortError)
	return ok && t.Code == e.Code
}
