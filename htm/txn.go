package htm

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// txnAbort is the internal panic payload used to unwind a failed transaction
// attempt back to the retry loop from inside the transaction body. It is a
// preallocated sentinel — panicking with it never allocates, and it can never
// be mistaken for a user panic; the abort's code and address travel in the
// Txn. Aborts detected at commit time (after the body returned) skip panic
// unwinding entirely and propagate by return value.
type txnAbort struct{}

var abortSentinel = &txnAbort{}

// readEntry records one read: the address and the full metadata word observed
// when the value was read (unlocked, allocated, version ≤ rv at that time).
// Validation is a single load-and-compare against the live metadata: any
// concurrent commit, free, or reallocation of the governing stripe rewrites
// the one word the validator rereads.
type readEntry struct {
	addr Addr
	meta uint64
}

// writeEntry buffers one write: the address, the value, and the metadata
// word observed when the store was buffered (lock bit cleared). Commit
// acquisition CASes the live metadata from exactly this recorded word, so a
// stripe that changed in ANY way since the store — a concurrent commit, an NT
// write, a free, or a free-and-reallocation — fails acquisition and aborts.
// Per-shard version monotonicity makes the recorded word unrepeatable, which
// is what keeps a blind write from ever landing in a reused block's new life.
type writeEntry struct {
	addr Addr
	val  uint64
	meta uint64
}

// lockEntry records one metadata word (a word's, or a whole stripe's with
// Config.StripeShift) held by a fine-grained fallback operation: the METADATA
// INDEX, the metadata word displaced by the lock acquisition (restored
// verbatim if the stripe is released unwritten), and whether the operation
// buffered a store under it (released with a fresh version instead).
type lockEntry struct {
	addr    Addr // metadata index, not a word address
	prev    uint64
	written bool
}

// Txn is a transaction in progress. A Txn is valid only inside the function
// passed to Thread.Atomic or Thread.TryAtomic, and only on that goroutine.
//
// The transaction body may be re-executed after an abort, so it must be
// restartable: accumulate results in locals that are reset at the top of the
// body, and publish them only after Atomic returns.
type Txn struct {
	th *Thread
	h  *Heap
	// rv is the read-validity snapshot: one tick per clock shard, taken at
	// begin and advanced wholesale by extend(). A version with shard s and
	// tick k is readable iff k <= rv[s]. With one shard this is the classic
	// TL2 scalar timestamp; the slice is allocated once per Thread and reused
	// by every attempt, so begin stays allocation-free.
	rv     []uint64
	fbSeq  uint64 // fallback-lock sequence observed at begin
	reads  []readEntry
	writes []writeEntry
	frees  []Addr // to free after commit
	allocs []Addr // allocated inside the txn; rolled back on abort
	direct bool   // executing on the TLE fallback path

	// abortCode/abortAddr carry the failure reason of an in-body abort while
	// the abortSentinel panic unwinds to the retry loop.
	abortCode AbortCode
	abortAddr Addr

	// Hot-path caches of immutable heap state, set once when the descriptor
	// is bound to its thread: they save a pointer chase through t.h (and its
	// cfg) on every transactional access.
	words        []atomic.Uint64
	meta         []atomic.Uint64
	clock        []clockLine // the heap's sharded version clock
	shardBits    uint        // version encoding: tick<<shardBits | shard
	shardMask    uint64
	sshift       uint   // metadata stripe shift (Config.StripeShift)
	yieldThresh  uint64 // rand() below this yields; 0 = never (see maybeYield)
	maxReadSet   int
	storeBufSize int
	dedupAfter   int // read-set length at which dedup engages (see below)
	fbSpins      int // out-of-order try-lock bound (Config.FallbackSpins)

	// Fault injection (Config.Faults): faults is the owning thread's injection
	// state (nil without a plan — one pointer check per access), fbDelay the
	// injected yield count between fallback write-back and lock-set release.
	faults  *threadFaults
	fbDelay int

	// Read-set dedup state. Attempts start in BYPASS mode: loads append to
	// the read set without any duplicate tracking — duplicate entries are
	// harmless for correctness (validation and commit re-check the same
	// predicate once per entry, and all duplicates of one address provably
	// hold identical metadata) and the common scan-shaped transaction has
	// none, so it pays nothing per load. When the read set reaches
	// dedupAfter entries (MaxReadSet pressure), engageDedup compacts the
	// duplicates away and switches the attempt to FILTERED mode: rfilter is
	// a 512-bit presence filter over read addresses (two hash bits per
	// address); a load whose bits are clear is definitely new and appends
	// without any lookup. When both bits are set the read is confirmed
	// against rindex, built lazily on the first suspected repeat (rindexed
	// tracks whether it is current for this attempt). This keeps the
	// AbortCapacity guarantee of dedup — a transaction whose DISTINCT read
	// set fits MaxReadSet never aborts for capacity — while removing the
	// per-load filter cost from transactions that never near the bound.
	dedup    bool
	rfilter  [readFilterWords]uint64
	rindexed bool
	rindex   setIndex

	// windex indexes the write set by address once it outgrows setLinearMax,
	// keeping read-own-writes lookups O(1). It is rebuilt from scratch when
	// the set crosses the threshold, so reset() does not need to touch it.
	windex setIndex

	// Fine-grained fallback state (see thread.go runFallback). locks is the
	// lock-set: every word this fallback operation holds, with its displaced
	// metadata. lindex indexes it past setLinearMax, exactly as windex does
	// the write set. fbMax is the highest address currently held — the
	// ordered-acquisition watermark the deadlock-avoidance protocol compares
	// against. fbOwner is the thread ID masked to FallbackOwnerBits, recorded
	// in each held word's metadata. globalFB caches the STATIC global mode
	// (EnableTLE && GlobalFallback && !Adaptive): only then do begin/extend/
	// commit monitor the global fallback sequence through the static checks.
	// adaptive caches Config.Adaptive: begin then refreshes the tuned knobs
	// and snapshots the fallback epoch, extend revalidates it, and commit
	// publishes the inCommit barrier word (see adaptive.go). directGlobal is
	// per-run state: this fallback run executes under the global lock with
	// direct NT access (set by runGlobalFallback, whichever mode selected it).
	locks        []lockEntry
	lindex       setIndex
	fbMax        Addr
	fbOwner      uint64
	globalFB     bool
	adaptive     bool
	directGlobal bool
}

// readFilterWords sizes rfilter; 8 words = 512 bits keeps the false-positive
// rate low for read sets up to a few hundred words.
const readFilterWords = 8

// readFilterBits maps an address to its filter word and two-bit mask (two
// hash bits within one filter word: one load tests both, one store sets
// both). Shared by Load's filtered path and engageDedup's rebuild.
func readFilterBits(a Addr) (fw uint32, mask uint64) {
	hb := idxHash(a)
	return (hb >> 12) & (readFilterWords - 1), uint64(1)<<(hb&63) | uint64(1)<<((hb>>6)&63)
}

// bypassReadCap bounds how long an attempt may stay in read-set bypass mode
// when MaxReadSet is unbounded (or enormous), so pathological repeat-heavy
// bodies cannot grow the duplicated read set without limit.
const bypassReadCap = 4096

// mi maps a word address to the index of its governing metadata word; the
// identity unless Config.StripeShift groups words into stripes (see Heap.mi).
func (t *Txn) mi(a Addr) int { return int(a) >> t.sshift }

// findWrite returns the write-set slot holding a, or -1.
func (t *Txn) findWrite(a Addr) int {
	w := t.writes
	if len(w) <= setLinearMax {
		for i := range w {
			if w[i].addr == a {
				return i
			}
		}
		return -1
	}
	return t.windex.lookup(a)
}

// addWrite appends a new write entry, indexing it past the linear threshold.
func (t *Txn) addWrite(a Addr, v, meta uint64) {
	t.writes = append(t.writes, writeEntry{addr: a, val: v, meta: meta})
	if n := len(t.writes); n > setLinearMax {
		if n == setLinearMax+1 {
			t.windex.reset()
			for i := range t.writes {
				t.windex.insert(t.writes[i].addr, i)
			}
		} else {
			t.windex.insert(a, n-1)
		}
	}
}

// stripeWritten reports whether any write entry maps to stripe si. Used only
// on the striped commit path (the per-word path uses findWrite); the write
// set is bounded by the store buffer, so the scan is small.
func (t *Txn) stripeWritten(si int) bool {
	for i := range t.writes {
		if t.mi(t.writes[i].addr) == si {
			return true
		}
	}
	return false
}

// findLock returns the lock-set slot holding a, or -1. Same shape as
// findWrite: linear scan up to setLinearMax, indexed lookup above.
func (t *Txn) findLock(a Addr) int {
	l := t.locks
	if len(l) <= setLinearMax {
		for i := range l {
			if l[i].addr == a {
				return i
			}
		}
		return -1
	}
	return t.lindex.lookup(a)
}

// addLock appends a newly acquired word to the lock-set, indexing it past the
// linear threshold, and returns its slot.
func (t *Txn) addLock(a Addr, prev uint64) int {
	t.locks = append(t.locks, lockEntry{addr: a, prev: prev})
	n := len(t.locks)
	if n > setLinearMax {
		if n == setLinearMax+1 {
			t.lindex.reset()
			for i := range t.locks {
				t.lindex.insert(t.locks[i].addr, i)
			}
		} else {
			t.lindex.insert(a, n-1)
		}
	}
	if a > t.fbMax {
		t.fbMax = a
	}
	return n - 1
}

// defaultFallbackSpins is the default bound on how long a fallback operation
// try-locks a word BELOW its acquisition watermark before releasing everything
// and retrying (Config.FallbackSpins overrides it). Waiting on a word above
// every held address follows the global address order and cannot deadlock, so
// in-order waits are unbounded; out-of-order waits are where cycles form, so
// they are bounded.
const defaultFallbackSpins = 128

// fbAcquire takes the fine-grained fallback lock on the metadata word
// governing a and returns its lock-set slot (immediately, if already held).
// With Config.StripeShift the lock-set is keyed by stripe index, so two words
// in one stripe cost one acquisition — exactly as a hardware commit CASes one
// stripe once. Deadlock avoidance is ordered try-lock with bounded backoff:
// acquiring above the watermark may wait indefinitely (metadata-index order is
// a global total order, so such waits cannot cycle; hardware commits and NT
// operations never wait while holding locks and are waited out
// unconditionally), while acquiring below it try-locks Config.FallbackSpins
// times and then aborts the attempt — the runFallback loop releases the entire
// lock-set, backs off with jitter, and re-runs the body. The owner ID recorded
// in the held word lets a contending fallback see who holds it in a debugger
// and turns a same-thread re-lock — impossible unless the lock-set invariant
// broke — into a loud panic instead of a silent self-deadlock.
func (t *Txn) fbAcquire(a Addr, op string) int {
	s := Addr(t.mi(a))
	if i := t.findLock(s); i >= 0 {
		return i
	}
	locked := makeFallbackMeta(t.fbOwner)
	waited := false
	for spins := 0; ; spins++ {
		m := t.meta[s].Load()
		switch {
		case !metaLocked(m):
			if !metaAllocated(m) {
				t.accessFault(a, op)
			}
			if t.meta[s].CompareAndSwap(m, locked) {
				bump(&t.th.cell.fallbackLocks)
				return t.addLock(s, m)
			}
		case metaFallbackLocked(m):
			if metaFallbackOwner(m) == t.fbOwner {
				panic(fmt.Sprintf("htm: fallback self-deadlock: word %#x is locked by this thread but missing from its lock-set", uint32(a)))
			}
			if !waited {
				// Count the collision once per acquisition, in-order or not:
				// this is the Tuner's shared-footprint signal (FallbackWaits).
				waited = true
				bump(&t.th.cell.fallbackWaits)
			}
			// Held by another fallback operation, potentially for long.
			if len(t.locks) > 0 && s < t.fbMax && spins >= t.fbSpins {
				t.abort(AbortConflict, a) // release-and-retry (runFallback)
			}
			if t.adaptive && (t.th.h.fallbackSeq.Load()&1 != 0 ||
				FallbackMode(t.th.h.fbMode.Load()) == ModeGlobal) {
				// A global critical section is pending, or the Tuner switched
				// modes mid-storm. In-order waits are normally unbounded (they
				// follow the address order, so they cannot deadlock), but an
				// unbounded wait here would hold inFine hostage to the very
				// storm the switch is meant to break — the global acquirer's
				// quiesce cannot finish until this thread drains. Abandoning
				// the attempt is always safe; the retry loop re-enters the
				// barrier and redirects to the global path.
				t.abort(AbortConflict, a)
			}
			runtime.Gosched()
		default:
			// Commit write-back or NT operation: short by construction
			// (neither ever waits while holding word locks), so spin it out.
			if spins&63 == 63 {
				runtime.Gosched()
			}
		}
	}
}

// fbLoad is Txn.Load on the fine-grained fallback path: lock the governing
// stripe, then read the word directly — the lock excludes every writer
// (commits and NT writes take the same metadata lock), so no read-set entry
// or validation is needed.
func (t *Txn) fbLoad(a Addr) uint64 {
	t.maybeYield()
	if a == NilAddr || int(a) >= len(t.words) {
		t.accessFault(a, "load")
	}
	if i := t.findWrite(a); i >= 0 {
		return t.writes[i].val
	}
	t.fbAcquire(a, "load")
	return t.words[a].Load()
}

// fbStore is Txn.Store on the fine-grained fallback path: lock the word and
// buffer the write. Buffering (rather than writing in place) is what makes
// the deadlock-avoidance release-and-retry safe: an attempt that drops its
// lock-set has published nothing. The store buffer bound does not apply —
// the fallback exists precisely to complete bodies that overflow it.
func (t *Txn) fbStore(a Addr, v uint64) {
	t.maybeYield()
	if a == NilAddr || int(a) >= len(t.words) {
		t.accessFault(a, "store")
	}
	if i := t.findWrite(a); i >= 0 {
		t.writes[i].val = v
		return
	}
	li := t.fbAcquire(a, "store")
	t.locks[li].written = true
	t.addWrite(a, v, 0) // metadata slot unused: release stores, not CASes
}

// fbRelease releases the whole lock-set: written stripes take a fresh live
// metadata word at version wv (the caller has already stored their values),
// read-locked stripes get their displaced metadata back verbatim (no
// observable transition). Pass wv=0 on abort/retry paths — buffered writes
// were never applied, so every stripe restores to its pre-lock state.
func (t *Txn) fbRelease(wv uint64) {
	for i := range t.locks {
		l := &t.locks[i]
		if l.written && wv != 0 {
			t.meta[l.addr].Store(makeMeta(wv, true))
		} else {
			t.meta[l.addr].Store(l.prev)
		}
	}
	t.locks = t.locks[:0]
	t.fbMax = 0
}

// InFallback reports whether this attempt is executing on the TLE fallback
// path (fine-grained lock-set or global lock) rather than as a hardware
// transaction attempt. Bodies can use it to adapt — e.g. tests that must
// synchronize only once the fallback engaged.
func (t *Txn) InFallback() bool { return t.direct }

// confirmRead reports whether a is in the read set, building the exact index
// on the first suspected repeat of this attempt.
func (t *Txn) confirmRead(a Addr) bool {
	if !t.rindexed {
		t.rindex.reset()
		for i := range t.reads {
			t.rindex.insert(t.reads[i].addr, i)
		}
		t.rindexed = true
	}
	return t.rindex.lookup(a) >= 0
}

// engageDedup switches the attempt from bypass to filtered mode: the read set
// accumulated so far is compacted in place — duplicates of one address are
// guaranteed to hold identical metadata (a load that would record a different
// metadata word first forces an extension that revalidates, and fails on, the
// earlier entry) so dropping all but the first is exact — and the presence
// filter and index are rebuilt over the survivors. Idempotent.
func (t *Txn) engageDedup() {
	if t.dedup || t.direct {
		return
	}
	t.dedup = true
	bump(&t.th.cell.dedupEngages)
	t.rfilter = [readFilterWords]uint64{}
	t.rindex.reset()
	kept := t.reads[:0]
	for i := range t.reads {
		r := t.reads[i]
		if t.rindex.lookup(r.addr) >= 0 {
			continue
		}
		t.rindex.insert(r.addr, len(kept))
		kept = append(kept, r)
		fw, m := readFilterBits(r.addr)
		t.rfilter[fw] |= m
	}
	t.reads = kept
	t.rindexed = true
}

func (t *Txn) abort(code AbortCode, a Addr) {
	t.abortCode = code
	t.abortAddr = a
	panic(abortSentinel)
}

// Abort explicitly aborts the current transaction attempt. Thread.Atomic
// retries it; Thread.TryAtomic reports it as an *AbortError with
// AbortExplicit.
func (t *Txn) Abort() {
	t.abort(AbortExplicit, NilAddr)
}

// checkAccess validates that a names an allocated word, aborting with
// AbortIllegal under sandboxing or panicking (simulated segmentation fault)
// otherwise. The direct (TLE fallback) paths call it; Load and Store inline
// the identical guard by hand because the combined check+call exceeds the
// compiler's inlining budget — keep the three copies in sync.
func (t *Txn) checkAccess(a Addr, op string) {
	if a != NilAddr && int(a) < len(t.words) && metaAllocated(t.meta[t.mi(a)].Load()) {
		return
	}
	t.accessFault(a, op)
}

func (t *Txn) accessFault(a Addr, op string) {
	if t.h.cfg.Sandboxed && !t.direct {
		t.abort(AbortIllegal, a)
	}
	panic(fmt.Sprintf("htm: transactional %s of invalid or freed address %#x without sandboxing (simulated segmentation fault)", op, uint32(a)))
}

// validate checks that every read performed so far still holds the metadata
// word it held when read — one atomic load and compare per entry; a lock, a
// version bump, a free, or a reallocation all fail it. Stripes locked by this
// transaction's own commit are checked against their pre-lock metadata by the
// caller.
func (t *Txn) validate() bool {
	for i := range t.reads {
		r := &t.reads[i]
		if t.meta[t.mi(r.addr)].Load() != r.meta {
			return false
		}
	}
	return true
}

// extend attempts to move the read-validity snapshot forward after
// encountering a version newer than its shard's rv entry, aborting on any
// stale read. This gives the engine HTM-like conflict behaviour: transactions
// abort only when a word they actually read or wrote is modified
// concurrently. The shard clocks are re-read BEFORE revalidating, exactly as
// the scalar scheme read the clock before validate(): any write that the new
// snapshot admits but that landed before the scan is caught by the equality
// revalidation, so a torn snapshot can never be certified.
func (t *Txn) extend() {
	// GlobalFallback compatibility mode only: a timestamp extension across a
	// global-lock fallback acquisition could mix pre- and post-critical-
	// section state; abort instead, exactly as a hardware transaction holding
	// the lock word in its read set would. The fine-grained fallback needs no
	// check here — a fallback that touched any word this transaction read
	// rewrote that word's metadata, so validate() below catches it. Adaptive
	// mode monitors the same epoch: the global path may engage at any moment.
	if (t.globalFB || t.adaptive) && t.h.fallbackSeq.Load() != t.fbSeq {
		t.abort(AbortFallback, NilAddr)
	}
	for i := range t.rv {
		t.rv[i] = t.clock[i].v.Load()
	}
	if !t.validate() {
		if t.sshift != 0 {
			bump(&t.th.cell.stripeConflicts)
		}
		t.abort(AbortConflict, NilAddr)
	}
}

// maybeYield models transaction duration on under-provisioned hosts; see
// Config.YieldEvery. The yield decision is randomized (expected one yield per
// YieldEvery accesses): a deterministic cadence would park every attempt of a
// given transaction at the same point — e.g. right before commit — making
// hot-word conflicts certain instead of probable and livelocking retries.
// yieldThresh precomputes 2^64/YieldEvery so the per-access check is a
// compare, not a division.
func (t *Txn) maybeYield() {
	if t.yieldThresh != 0 {
		t.yieldSlow()
	}
}

func (t *Txn) yieldSlow() {
	if t.th.rand() < t.yieldThresh {
		runtime.Gosched()
	}
}

// Load transactionally reads the word at a.
func (t *Txn) Load(a Addr) uint64 {
	if t.direct {
		if !t.directGlobal {
			return t.fbLoad(a)
		}
		t.checkAccess(a, "load")
		return t.h.LoadNT(a)
	}
	t.maybeYield()
	// Access-site injection (hardware attempts only — the direct paths
	// returned above): the attempt dies mid-body, like a TLB miss or cache
	// displacement landing on a transactional access.
	if t.faults != nil && t.faults.fireAccess() {
		t.abort(AbortSpurious, NilAddr)
	}
	if a == NilAddr || int(a) >= len(t.words) {
		t.accessFault(a, "load")
	}
	mi := t.mi(a)
	if i := t.findWrite(a); i >= 0 {
		// Read-own-write still faults at the access if the word was freed
		// since the store — same semantics as Store and the loop below.
		if !metaAllocated(t.meta[mi].Load()) {
			t.accessFault(a, "load")
		}
		return t.writes[i].val
	}
	for spins := 0; ; spins++ {
		// The entire validation predicate — unlocked, allocated, version — is
		// one atomic load: its fields are mutually consistent by construction.
		// free() rewrites this same word, so m1 carrying the allocated bit
		// plus an unchanged metadata word below proves the value is a read of
		// then-live memory.
		m1 := t.meta[mi].Load()
		if m1&(metaLockBit|metaAllocBit) != metaAllocBit {
			if metaLocked(m1) {
				if spins < 64 {
					continue // writer is in its (short) commit write-back
				}
				t.abort(AbortConflict, a)
			}
			t.accessFault(a, "load")
		}
		v := t.words[a].Load()
		if t.meta[mi].Load() != m1 {
			continue
		}
		// The version is shard-relative: compare its tick against the rv
		// entry of the shard that issued it (one decode, one indexed load;
		// with one shard this is exactly the scalar version > rv test).
		if ver := metaVersion(m1); ver>>t.shardBits > t.rv[ver&t.shardMask] {
			t.extend()
			// The word may have changed again between the value read and the
			// extension; re-read under the new snapshot.
			if t.meta[mi].Load() != m1 {
				continue
			}
		}
		if !t.dedup {
			// Bypass mode: append without duplicate tracking (see the dedup
			// field) until MaxReadSet pressure forces compaction.
			if len(t.reads) < t.dedupAfter {
				t.reads = append(t.reads, readEntry{addr: a, meta: m1})
				return v
			}
			t.engageDedup()
		}
		// Repeated reads do not grow the read set: the entry recorded by the
		// first read still guards this word (any later write to it carries a
		// version above rv and the extension above would have aborted), so a
		// duplicate would only inflate validate() and burn MaxReadSet
		// capacity the distinct working set never used.
		fw, m := readFilterBits(a)
		if t.rfilter[fw]&m == m && t.confirmRead(a) {
			return v
		}
		if t.maxReadSet >= 0 && len(t.reads) >= t.maxReadSet {
			t.abort(AbortCapacity, a)
		}
		t.reads = append(t.reads, readEntry{addr: a, meta: m1})
		t.rfilter[fw] |= m
		if t.rindexed {
			t.rindex.insert(a, len(t.reads)-1)
		}
		return v
	}
}

// Store transactionally writes v to the word at a. Writes are buffered and
// become visible atomically at commit. Writing more distinct words than the
// configured store buffer size aborts with AbortOverflow, reproducing Rock's
// bounded transactions.
func (t *Txn) Store(a Addr, v uint64) {
	if t.direct {
		if !t.directGlobal {
			t.fbStore(a, v)
			return
		}
		t.checkAccess(a, "store")
		t.h.StoreNT(a, v)
		return
	}
	t.maybeYield()
	// Access-site injection; see Load.
	if t.faults != nil && t.faults.fireAccess() {
		t.abort(AbortSpurious, NilAddr)
	}
	if a == NilAddr || int(a) >= len(t.words) {
		t.accessFault(a, "store")
	}
	m := t.meta[t.mi(a)].Load()
	if !metaAllocated(m) {
		t.accessFault(a, "store")
	}
	if i := t.findWrite(a); i >= 0 {
		t.writes[i].val = v
		return
	}
	if t.storeBufSize >= 0 && len(t.writes) >= t.storeBufSize {
		t.abort(AbortOverflow, a)
	}
	// Record the metadata with the lock bit cleared: a word locked right now
	// is mid-commit elsewhere, and its release will bump the version, so our
	// commit's CAS from this recorded word correctly fails as a conflict.
	t.addWrite(a, v, m&^metaLockBit)
}

// Add transactionally adds delta to the word at a and returns the new value.
func (t *Txn) Add(a Addr, delta uint64) uint64 {
	v := t.Load(a) + delta
	t.Store(a, v)
	return v
}

// FreeOnCommit schedules the block whose payload starts at a to be freed
// after — and only if — this transaction commits. This is the paper's idiom
// of freeing memory immediately after the transaction that unlinks it (e.g.
// the HTM queue's dequeue, or line 130 of the ArrayDynAppendDereg
// pseudocode).
func (t *Txn) FreeOnCommit(a Addr) {
	t.frees = append(t.frees, a)
}

// Alloc allocates a zeroed block of size words inside the transaction,
// rolled back if the transaction aborts. It panics unless the heap was
// configured with AllowAllocInTxn: Rock could not execute the CAS-based
// malloc inside transactions (paper §6), so the paper's algorithms
// pre-allocate outside transactions.
func (t *Txn) Alloc(size int) Addr {
	if !t.h.cfg.AllowAllocInTxn {
		panic("htm: Txn.Alloc requires Config.AllowAllocInTxn (Rock cannot allocate inside transactions; pre-allocate outside, as the paper's algorithms do)")
	}
	a := t.th.Alloc(size)
	// Tracked even on the fallback path: a fine-grained fallback attempt can
	// release-and-retry (deadlock avoidance), which must roll its allocations
	// back exactly as an aborted hardware attempt does. Committed attempts
	// clear the list without freeing.
	t.allocs = append(t.allocs, a)
	return a
}

// rollbackAllocs frees blocks allocated inside an aborted attempt.
func (t *Txn) rollbackAllocs() {
	for _, a := range t.allocs {
		t.th.Free(a)
	}
	t.allocs = t.allocs[:0]
}

// commit attempts to atomically publish the transaction's writes. It returns
// the zero AbortCode on success and the failure reason otherwise; running
// after the transaction body has returned, it can report aborts by value and
// skip panic unwinding entirely.
func (t *Txn) commit() (AbortCode, Addr) {
	h := t.h
	if t.direct {
		if !t.directGlobal {
			// Fine-grained fallback: write the buffered stores back under the
			// held locks, then release every word — written words with one
			// fresh version tick shared by the whole operation (exactly as a
			// hardware commit versions its write set), read-locked words by
			// restoring their displaced metadata. Frees run only after the
			// release: a block being freed may contain held words, and free()
			// waits out word locks.
			if len(t.writes) > 0 {
				for i := range t.writes {
					h.words[t.writes[i].addr].Store(t.writes[i].val)
				}
				// Injected adversity (Config.Faults.ReleaseDelay): hold the
				// lock-set a while longer after write-back, stretching the
				// window in which contenders see the words fallback-locked.
				for i := 0; i < t.fbDelay; i++ {
					runtime.Gosched()
				}
				// Tick the home shard with the whole lock-set held — same
				// lock-then-tick order as a hardware commit.
				t.fbRelease(t.th.tickClock())
			} else {
				t.fbRelease(0)
			}
		}
		t.runFrees()
		t.allocs = t.allocs[:0] // committed: the body keeps its allocations
		return 0, NilAddr
	}
	if len(t.writes) == 0 {
		// Read-only transactions hold a consistent snapshot as of rv at all
		// times thanks to incremental validation, so they commit for free —
		// as on real HTM, where an uncontended read-only transaction simply
		// commits.
		t.runFrees()
		return 0, NilAddr
	}
	// Global-fallback fence: commits may not overlap a global-lock fallback
	// critical section. In the static GlobalFallback mode the fence is the
	// activeCommits counter; in adaptive mode — where the global path may
	// engage at any moment — it is the per-thread inCommit barrier word,
	// published BEFORE revalidating the epoch so this commit either observes
	// the section (and aborts) or is observed by its acquirer (and waited
	// out). The fine-grained fallback needs no fence — it holds the metadata
	// locks of the words it touches, so a conflicting commit simply fails its
	// acquisition CAS below, and a disjoint commit proceeds concurrently.
	tle := t.globalFB
	if tle {
		h.activeCommits.Add(1)
		if h.fallbackSeq.Load() != t.fbSeq {
			h.activeCommits.Add(^uint64(0))
			return AbortFallback, NilAddr
		}
	} else if t.adaptive {
		t.th.cell.inCommit.Store(1)
		if h.fallbackSeq.Load() != t.fbSeq {
			t.th.cell.inCommit.Store(0)
			return AbortFallback, NilAddr
		}
	}

	// Acquire ownership of the write set: one CAS per governing metadata word
	// (per word by default, per stripe with Config.StripeShift), from exactly
	// the metadata recorded when the store was buffered to that word locked.
	// The CAS doubles as full validation of the written stripe — a concurrent
	// commit, an NT write, a free, or a free-and-reallocation all rewrote
	// the metadata since then (versions only grow within their shard and the
	// shard rides in the encoding, so a recorded word can never recur), and
	// each fails the acquisition. In particular a blind write can never land
	// in a reused block's new life, and a freed stripe is never locked (which
	// is what lets the allocator transition free stripes with a bare CAS
	// instead of a lock handshake).
	//
	// With striping, several write entries can share a stripe; only the FIRST
	// entry of each stripe CASes it (later entries are skipped by a backscan —
	// the write set is bounded by the store buffer, so the scan is tiny). A
	// later entry whose recorded metadata differs from the first's proves the
	// stripe changed between the two stores: abort, as the per-word engine
	// would have on whichever word changed.
	striped := t.sshift != 0
	acquired := 0
	skip := func(i int, si int) bool { // a non-first entry of an acquired stripe?
		for j := 0; j < i; j++ {
			if t.mi(t.writes[j].addr) == si {
				return true
			}
		}
		return false
	}
	fail := func(code AbortCode, a Addr) (AbortCode, Addr) {
		for i := 0; i < acquired; i++ {
			si := t.mi(t.writes[i].addr)
			if striped && skip(i, si) {
				continue
			}
			h.releaseMetaUnchanged(si, t.writes[i].meta)
		}
		if tle {
			h.activeCommits.Add(^uint64(0))
		} else if t.adaptive {
			t.th.cell.inCommit.Store(0)
		}
		if striped && code == AbortConflict {
			bump(&t.th.cell.stripeConflicts)
		}
		return code, a
	}
	for i := range t.writes {
		w := &t.writes[i]
		si := t.mi(w.addr)
		if striped && skip(i, si) {
			if t.writes[i].meta != h.meta[si].Load()&^metaLockBit {
				// Our own lock bit is set on the stripe; anything else
				// differing from this entry's recorded metadata means the
				// stripe moved between this store and the first one.
				return fail(AbortConflict, w.addr)
			}
			acquired++
			continue
		}
		if !h.meta[si].CompareAndSwap(w.meta, w.meta|metaLockBit) {
			if cur := h.meta[si].Load(); !metaAllocated(cur) && !metaLocked(cur) {
				// The word was freed — and not yet reused — since our store.
				// (A freed-and-reused word aborts as a conflict above, which
				// is equally safe: nothing was locked or written.)
				if h.cfg.Sandboxed {
					return fail(AbortIllegal, w.addr)
				}
				fail(AbortIllegal, w.addr)
				panic(fmt.Sprintf("htm: commit to freed word %#x without sandboxing", uint32(w.addr)))
			}
			return fail(AbortConflict, w.addr)
		}
		acquired++
	}

	// Tick the home shard of the version clock. The order is load-bearing and
	// unchanged from the scalar clock: every write lock is already held, so
	// any transaction whose begin-scan observes this tick and then reads one
	// of our words either sees it locked (waits/aborts) or sees the fresh
	// version — never the old value under a snapshot that admits the new one.
	wv := t.th.tickClock()

	// Validate the read set. Stripes we hold locked for writing are validated
	// against their pre-lock (recorded) metadata.
	for i := range t.reads {
		r := &t.reads[i]
		si := t.mi(r.addr)
		o := h.meta[si].Load()
		if o == r.meta {
			continue
		}
		if metaLocked(o) {
			if striped {
				// Own-lock check at stripe granularity: the read is covered if
				// ANY of our write entries locked this stripe from exactly the
				// metadata the read recorded.
				if o&^metaLockBit == r.meta && t.stripeWritten(si) {
					continue
				}
			} else if j := t.findWrite(r.addr); j >= 0 && t.writes[j].meta == r.meta {
				continue
			}
		}
		return fail(AbortConflict, r.addr)
	}

	for i := range t.writes {
		h.words[t.writes[i].addr].Store(t.writes[i].val)
	}
	// Releasing a stripe twice with the same fresh version is an idempotent
	// store, so the release loop needs no dedup.
	for i := range t.writes {
		h.releaseMeta(t.mi(t.writes[i].addr), wv)
	}
	if tle {
		h.activeCommits.Add(^uint64(0))
	} else if t.adaptive {
		t.th.cell.inCommit.Store(0)
	}
	t.runFrees()
	return 0, NilAddr
}

func (t *Txn) runFrees() {
	for _, a := range t.frees {
		t.th.Free(a)
	}
}

// reset prepares the Txn for a fresh attempt.
func (t *Txn) reset() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	t.frees = t.frees[:0]
	t.allocs = t.allocs[:0]
	t.locks = t.locks[:0]
	t.fbMax = 0
	t.direct = false
	t.directGlobal = false
	t.fbSeq = 0
	if t.dedup {
		// The filter carries bits only when the previous attempt engaged
		// dedup; bypass attempts never touch it, so read-only transactions
		// skip the 64-byte clear too.
		t.rfilter = [readFilterWords]uint64{}
		t.dedup = false
	}
	t.rindexed = false
}

// ReadSetSize and WriteSetSize report the current footprint of the attempt;
// useful for tests and for algorithms that adapt transaction size.
// ReadSetSize counts distinct words read: it compacts any bypass-mode
// duplicates first (engaging dedup for the rest of the attempt), so repeat
// reads are never counted.
func (t *Txn) ReadSetSize() int {
	t.engageDedup()
	return len(t.reads)
}

// WriteSetSize reports the number of distinct words buffered for writing.
func (t *Txn) WriteSetSize() int { return len(t.writes) }
