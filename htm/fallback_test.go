package htm

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// overflowCfg forces every multi-word write transaction straight to the
// fallback path: a 1-entry store buffer overflows on the second distinct
// store and MaxRetries 1 engages the fallback after the first failed attempt.
func overflowCfg() Config {
	return Config{StoreBufferSize: 1, EnableTLE: true, MaxRetries: 1}
}

func TestFallbackMetaEncoding(t *testing.T) {
	const owner = 0x1234_5678_9ABC
	m := makeFallbackMeta(owner)
	if !metaLocked(m) || !metaAllocated(m) {
		t.Errorf("fallback meta %#x must be locked and allocated", m)
	}
	if !metaFallbackLocked(m) {
		t.Errorf("fallback meta %#x not recognized as fallback-locked", m)
	}
	if got := metaFallbackOwner(m); got != owner {
		t.Errorf("owner round trip = %#x, want %#x", got, owner)
	}
	// A commit-locked word (lock bit over a live metadata word) must never
	// read as fallback-locked, whatever its version.
	commitLocked := makeMeta(987654321, true) | metaLockBit
	if metaFallbackLocked(commitLocked) {
		t.Errorf("commit-locked meta %#x misread as fallback-locked", commitLocked)
	}
	// Owner IDs wider than the field truncate instead of clobbering the tag
	// or flag bits.
	wide := makeFallbackMeta(^uint64(0))
	if !metaFallbackLocked(wide) || !metaAllocated(wide) {
		t.Errorf("wide-owner fallback meta %#x corrupted flag bits", wide)
	}
	if got := metaFallbackOwner(wide); got != fallbackOwnerMask {
		t.Errorf("wide owner = %#x, want %#x", got, uint64(fallbackOwnerMask))
	}
}

// TestFallbackHoldsOnlyItsFootprint parks a fallback operation while it holds
// its lock-set and checks the two properties the fine-grained design exists
// for: the held words carry the owner's ID in their metadata, and hardware
// transactions on disjoint words begin and commit while the fallback is still
// parked (under the global-lock design they would wait at begin until the
// fallback finished).
func TestFallbackHoldsOnlyItsFootprint(t *testing.T) {
	h := newTestHeap(t, overflowCfg())
	setup := h.NewThread()
	fa := setup.Alloc(2) // fallback footprint
	hb := setup.Alloc(2) // hardware footprint, disjoint

	held := make(chan struct{})
	release := make(chan struct{})
	var fbThread *Thread
	done := make(chan struct{})
	go func() {
		defer close(done)
		fbThread = h.NewThread()
		fbThread.Atomic(func(tx *Txn) {
			tx.Store(fa, 1)
			tx.Store(fa+1, 2) // overflows the hardware attempt
			if tx.InFallback() {
				close(held)
				<-release
			}
		})
	}()
	<-held

	// The fallback is parked holding fa and fa+1; its locks must carry the
	// fallback tag and its thread ID.
	for w := fa; w <= fa+1; w++ {
		m := h.meta[w].Load()
		if !metaFallbackLocked(m) {
			t.Fatalf("word %#x not fallback-locked while fallback parked (meta %#x)", uint32(w), m)
		}
		if got := metaFallbackOwner(m); got != fbThread.ID()&fallbackOwnerMask {
			t.Fatalf("word %#x owner = %d, want thread %d", uint32(w), got, fbThread.ID())
		}
	}

	// A hardware transaction on a disjoint footprint must proceed: with the
	// retired global fallback lock this would hang at begin.
	hwDone := make(chan struct{})
	go func() {
		defer close(hwDone)
		th := h.NewThread()
		th.Atomic(func(tx *Txn) {
			tx.Store(hb, tx.Load(hb)+1)
		})
	}()
	select {
	case <-hwDone:
	case <-time.After(10 * time.Second):
		t.Fatal("hardware transaction on a disjoint footprint stalled behind a parked fallback")
	}

	close(release)
	<-done
	if v0, v1 := h.LoadNT(fa), h.LoadNT(fa+1); v0 != 1 || v1 != 2 {
		t.Errorf("fallback writes = %d,%d, want 1,2", v0, v1)
	}
	if v := h.LoadNT(hb); v != 1 {
		t.Errorf("hardware write = %d, want 1", v)
	}
	s := h.Stats()
	if s.FallbackRuns != 1 {
		t.Errorf("FallbackRuns = %d, want 1", s.FallbackRuns)
	}
	if s.FallbackLocks < 2 {
		t.Errorf("FallbackLocks = %d, want >= 2", s.FallbackLocks)
	}
	if n := s.Aborts[AbortFallback]; n != 0 {
		t.Errorf("fine-grained fallback produced %d AbortFallback aborts", n)
	}
}

// TestFallbackLockOrderingRetry provokes the deadlock-avoidance path
// deterministically: thread 1's fallback holds the LOW block and then wants
// the high one (in-order, so it waits); thread 2's fallback holds the HIGH
// block and then wants the low one (out-of-order, so its bounded try-lock
// must give up, release everything and retry). Without release-and-retry the
// two would deadlock; the test also verifies that allocations made by retried
// attempts are rolled back.
func TestFallbackLockOrderingRetry(t *testing.T) {
	cfg := overflowCfg()
	cfg.AllowAllocInTxn = true
	h := newTestHeap(t, cfg)
	setup := h.NewThread()
	lo := setup.Alloc(2)
	hi := setup.Alloc(2)
	if hi < lo {
		lo, hi = hi, lo
	}

	c1 := make(chan struct{}) // closed once T1's fallback holds lo
	c2 := make(chan struct{}) // closed once T2's fallback holds hi
	var once1, once2 sync.Once
	var wg sync.WaitGroup
	var fromT2 []Addr // blocks T2's attempts allocated (including retried ones)
	wg.Add(2)
	go func() {
		defer wg.Done()
		th := h.NewThread()
		th.Atomic(func(tx *Txn) {
			tx.Store(lo, 1)
			tx.Store(lo+1, 2) // overflow: hardware attempt dies here
			once1.Do(func() {
				close(c1)
				<-c2
			})
			tx.Store(hi, 3) // in-order wait on T2's hold
		})
	}()
	go func() {
		defer wg.Done()
		th := h.NewThread()
		th.Atomic(func(tx *Txn) {
			tx.Store(hi, 4)
			tx.Store(hi+1, 5) // overflow: hardware attempt dies here
			fromT2 = append(fromT2, tx.Alloc(4))
			once2.Do(func() {
				<-c1
				close(c2)
			})
			tx.Store(lo, 6) // out-of-order: bounded try, then release-and-retry
		})
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("fallback lock-ordering conflict did not resolve (deadlock-avoidance broken)")
	}

	// T2 commits strictly after T1 (it cannot take lo until T1 releases), so
	// T2's values win on both contended words.
	if v := h.LoadNT(lo); v != 6 {
		t.Errorf("lo = %d, want 6 (T2 last)", v)
	}
	if v := h.LoadNT(hi); v != 4 {
		t.Errorf("hi = %d, want 4 (T2 last)", v)
	}
	s := h.Stats()
	if s.FallbackRuns != 2 {
		t.Errorf("FallbackRuns = %d, want 2", s.FallbackRuns)
	}
	if s.FallbackRetries == 0 {
		t.Error("release-and-retry path was never taken")
	}
	// Every retried attempt allocated a block; only the committed attempt's
	// allocation may survive. fromT2 saw one append per attempt.
	if len(fromT2) < 2 {
		t.Errorf("T2 ran %d attempts, want >= 2 (no retry happened)", len(fromT2))
	}
	live := fromT2[len(fromT2)-1]
	if !h.allocated(live) {
		t.Error("committed attempt's allocation was rolled back")
	}
	for _, a := range fromT2[:len(fromT2)-1] {
		if a != live && h.allocated(a) {
			t.Errorf("retried attempt's allocation %#x leaked", uint32(a))
		}
	}
}

// TestFallbackDirectFreeSelfDeadlockPanics: a fallback body that calls
// Thread.Free on a block whose words its own lock-set holds would spin
// forever on its own lock; the owner ID turns that into a loud panic
// directing the author to FreeOnCommit.
func TestFallbackDirectFreeSelfDeadlockPanics(t *testing.T) {
	h := newTestHeap(t, overflowCfg())
	th := h.NewThread()
	a := th.Alloc(2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("free of a self-locked block did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "self-deadlock") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	th.Atomic(func(tx *Txn) {
		tx.Store(a, 1)
		tx.Store(a+1, 2) // overflow -> fallback locks both words
		th.Free(a)       // must panic, not hang
	})
}

// TestFallbackCrossThreadFreeDeadlockPanics: a fallback body that calls
// Thread.Free on a block fallback-locked by ANOTHER thread, while itself
// holding locks, would wait outside the ordered-acquisition protocol and can
// close a deadlock cycle the protocol cannot break. The guard panics instead.
func TestFallbackCrossThreadFreeDeadlockPanics(t *testing.T) {
	h := newTestHeap(t, overflowCfg())
	setup := h.NewThread()
	b := setup.Alloc(2) // parked thread 1 will hold these words

	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		th := h.NewThread()
		th.Atomic(func(tx *Txn) {
			tx.Store(b, 1)
			tx.Store(b+1, 2) // overflow -> fallback locks both words
			if tx.InFallback() {
				close(held)
				<-release
			}
		})
	}()
	<-held

	th2 := h.NewThread()
	own := th2.Alloc(2)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("cross-thread free under a held lock-set did not panic")
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "fallback-locked by another thread") {
				t.Errorf("unexpected panic: %v", r)
			}
		}()
		th2.Atomic(func(tx *Txn) {
			tx.Store(own, 1)
			tx.Store(own+1, 1) // overflow -> fallback holds own's words
			th2.Free(b)        // b is held by the parked fallback: must panic
		})
	}()
	close(release)
	<-done
}

// TestStressFallbackMixed interleaves fine-grained fallback operations with
// hardware transactions, NT accesses and alloc/free churn on overlapping AND
// disjoint footprints, under -race in CI. Words 0-3 of the shared block form
// an invariant quad only ever incremented together by fallback operations, so
// hardware read-only transactions must always observe them equal; word 4 is a
// hardware-transaction counter; word 5 an NT counter. Each worker also runs
// fallback operations over a private quad (the disjoint-footprint case).
func TestStressFallbackMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cfg := overflowCfg()
	cfg.StoreBufferSize = 2 // quad writes overflow; single stores stay hardware
	h := newTestHeap(t, cfg)
	setup := h.NewThread()
	shared := setup.Alloc(6)

	const workers = 6
	const iters = 400
	var sharedQuad, hwIncs, ntIncs atomic.Uint64
	errs := make(chan string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := h.NewThread()
			priv := th.Alloc(4)
			var myShared, myHW, myNT uint64
			rng := seed*2654435761 + 1
			for i := 0; i < iters; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				switch rng % 6 {
				case 0: // contended fallback: bump the whole shared quad
					th.Atomic(func(tx *Txn) {
						for j := Addr(0); j < 4; j++ {
							tx.Store(shared+j, tx.Load(shared+j)+1)
						}
					})
					myShared++
				case 1: // disjoint fallback: bump the private quad
					th.Atomic(func(tx *Txn) {
						for j := Addr(0); j < 4; j++ {
							tx.Store(priv+j, tx.Load(priv+j)+1)
						}
					})
				case 2: // hardware transaction on the shared counter word
					th.Atomic(func(tx *Txn) {
						tx.Store(shared+4, tx.Load(shared+4)+1)
					})
					myHW++
				case 3: // hardware read-only: the quad must never tear
					var q [4]uint64
					th.Atomic(func(tx *Txn) {
						for j := Addr(0); j < 4; j++ {
							q[j] = tx.Load(shared + j)
						}
					})
					if q[0] != q[1] || q[1] != q[2] || q[2] != q[3] {
						select {
						case errs <- "torn fallback quad observed by hardware reader":
						default:
						}
						return
					}
				case 4: // NT traffic on its own word
					h.AddNT(shared+5, 1)
					myNT++
				case 5: // allocator churn beside everything else
					b := th.Alloc(int(rng%7) + 1)
					th.Free(b)
				}
			}
			// The private quad saw only this thread's fallback increments.
			want := h.LoadNT(priv)
			for j := Addr(1); j < 4; j++ {
				if h.LoadNT(priv+j) != want {
					select {
					case errs <- "private quad torn (disjoint fallback raced itself)":
					default:
					}
					return
				}
			}
			sharedQuad.Add(myShared)
			hwIncs.Add(myHW)
			ntIncs.Add(myNT)
		}(uint64(w + 1))
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	for j := Addr(0); j < 4; j++ {
		if v := h.LoadNT(shared + j); v != sharedQuad.Load() {
			t.Errorf("shared quad word %d = %d, want %d", j, v, sharedQuad.Load())
		}
	}
	if v := h.LoadNT(shared + 4); v != hwIncs.Load() {
		t.Errorf("hardware counter = %d, want %d", v, hwIncs.Load())
	}
	if v := h.LoadNT(shared + 5); v != ntIncs.Load() {
		t.Errorf("NT counter = %d, want %d", v, ntIncs.Load())
	}
	if s := h.Stats(); s.FallbackRuns == 0 {
		t.Error("stress run never engaged the fallback")
	}
}
