package htm

import "runtime"

// Adaptive contention management: the runtime machinery armed by
// Config.Adaptive. It promotes three construction-time decisions to runtime
// ones, all safe to change under full concurrent load:
//
//   - The TLE fallback MODE (fine-grained lock-set vs. the global lock)
//     becomes a word consulted at fallback entry (SetFallbackMode).
//   - The FallbackSpins and DedupBypass knobs become atomic overrides that
//     every transaction attempt re-reads at begin (SetFallbackSpins,
//     SetDedupBypass).
//
// The hard problem is the mode switch: the global-lock fallback writes
// memory IN PLACE and is correct only while it is mutually exclusive with
// every hardware commit write-back and every fine-grained fallback run. A
// construction-time mode makes that exclusion structural; a runtime mode
// must enforce it against threads that may have read the old mode an
// instant ago. Rather than a stop-the-world phase at switch time,
// SetFallbackMode is a plain store and the exclusion is decentralized into a
// Dekker-style quiesce barrier at the three entry points, built from the
// existing fallbackSeq epoch word plus two per-thread flag words in each
// thread's statCell (inCommit, inFine):
//
//   - A hardware attempt's begin waits until fallbackSeq is even (no global
//     critical section in flight) and snapshots it; extend() and commit
//     revalidate the snapshot. A write commit additionally publishes
//     inCommit=1 BEFORE revalidating, and clears it when its write-back is
//     released — so a commit either observes the section and aborts, or is
//     observed by the acquirer and waited out (Dekker: both sides
//     store-then-load, so at least one sees the other).
//   - A fine-grained fallback run publishes inFine=1, THEN loads the mode
//     word and fallbackSeq: if the mode is global it clears the flag and
//     takes the global path; if a global section is in flight (odd seq) it
//     clears the flag, yields, and re-enters. The flag stays set for the
//     whole run — the run holds word locks throughout — and is cleared only
//     after the lock-set is released.
//   - A global fallback acquirer takes fallbackMu, bumps fallbackSeq odd,
//     and then waits until every registered cell shows inCommit==0 and
//     inFine==0. Threads created after the scan snapshot self-exclude: they
//     observe the odd seq at begin / fallback entry. Once the scan drains,
//     no commit write-back and no fallback lock-set is live anywhere, which
//     is exactly the exclusion the static GlobalFallback mode had.
//
// Termination and sandboxing are untouched: the fallback paths themselves
// are the unmodified PR 9 code, the barrier only delays WHICH one runs, every
// wait above is on a condition some running thread is guaranteed to clear in
// bounded work (commit write-backs never block; fine runs hold locks only for
// the body plus a bounded write-back; the global section is one body), and
// with Adaptive unset none of this code executes. See DESIGN.md "Adaptive
// contention management" for the full argument.

// FallbackMode identifies which TLE fallback path operations engage.
type FallbackMode uint32

const (
	// ModeFine is the default fine-grained per-word lock-set fallback.
	ModeFine FallbackMode = iota
	// ModeGlobal is the paper's §6 single global fallback lock.
	ModeGlobal
)

func (m FallbackMode) String() string {
	switch m {
	case ModeFine:
		return "fine"
	case ModeGlobal:
		return "global"
	default:
		return "invalid"
	}
}

// Adaptive reports whether the heap was built with Config.Adaptive.
func (h *Heap) Adaptive() bool { return h.cfg.Adaptive }

// FallbackMode returns the fallback mode operations currently engage: the
// runtime mode word with Config.Adaptive, the configured static mode
// otherwise.
func (h *Heap) FallbackMode() FallbackMode {
	if !h.cfg.Adaptive {
		if h.cfg.GlobalFallback {
			return ModeGlobal
		}
		return ModeFine
	}
	return FallbackMode(h.fbMode.Load())
}

// SetFallbackMode switches the TLE fallback mode at runtime. The switch is a
// plain store: in-flight operations finish on the path they entered (the
// quiesce barrier in runGlobalFallback keeps the two paths mutually
// exclusive regardless), and subsequent fallback entries take the new mode.
// Requires Config.Adaptive.
func (h *Heap) SetFallbackMode(m FallbackMode) {
	if !h.cfg.Adaptive {
		panic("htm: SetFallbackMode requires Config.Adaptive")
	}
	if m != ModeFine && m != ModeGlobal {
		panic("htm: SetFallbackMode: invalid mode")
	}
	if FallbackMode(h.fbMode.Swap(uint32(m))) != m {
		h.modeSwitches.Add(1)
	}
}

// ModeSwitches returns the number of fallback-mode changes applied through
// SetFallbackMode.
func (h *Heap) ModeSwitches() uint64 { return h.modeSwitches.Load() }

// FallbackSpins returns the effective out-of-order try-lock bound: the live
// override with Config.Adaptive, the configured value otherwise.
func (h *Heap) FallbackSpins() int {
	if h.cfg.Adaptive {
		return int(h.fbSpinsDyn.Load())
	}
	return h.cfg.fallbackSpins()
}

// SetFallbackSpins overrides the FallbackSpins knob at runtime (clamped to
// ≥ 0; 0 releases-and-retries immediately on any out-of-order collision).
// Attempts pick the new value up at their next begin. Requires
// Config.Adaptive.
func (h *Heap) SetFallbackSpins(v int) {
	if !h.cfg.Adaptive {
		panic("htm: SetFallbackSpins requires Config.Adaptive")
	}
	if v < 0 {
		v = 0
	}
	h.fbSpinsDyn.Store(int64(v))
}

// DedupBypass returns the effective read-set dedup engagement threshold: the
// live override with Config.Adaptive, the configured value otherwise.
func (h *Heap) DedupBypass() int {
	if h.cfg.Adaptive {
		return int(h.dedupDyn.Load())
	}
	return h.cfg.dedupBypassThreshold()
}

// SetDedupBypass overrides the DedupBypass knob at runtime. The value is
// clamped exactly as the static knob resolves: never negative and never
// above MaxReadSet/2, preserving the guarantee that a transaction whose
// distinct read set fits MaxReadSet never aborts with AbortCapacity.
// Attempts pick the new value up at their next begin. Requires
// Config.Adaptive.
func (h *Heap) SetDedupBypass(v int) {
	if !h.cfg.Adaptive {
		panic("htm: SetDedupBypass requires Config.Adaptive")
	}
	if v < 0 {
		v = 0
	}
	if mrs := h.cfg.MaxReadSet; mrs >= 0 && v > mrs/2 {
		v = mrs / 2
	}
	h.dedupDyn.Store(int64(v))
}

// enterFineFallback publishes this thread's intent to run a fine-grained
// fallback (inFine=1) and then consults the mode word and the global
// fallback epoch; it returns true once the thread may proceed on the fine
// path — the caller must clear inFine after releasing its lock-set — and
// false if the mode word directs it to the global path (inFine already
// cleared). The store-then-load order against runGlobalFallback's
// bump-then-scan is the Dekker pairing that makes the two paths mutually
// exclusive: whichever side's store lands second sees the other side's.
func (th *Thread) enterFineFallback() bool {
	h := th.h
	for {
		// Cheap pre-check: in steady global mode, return without ever touching
		// inFine — a transient inFine=1 here would make every concurrent global
		// acquirer's quiesce scan yield for nothing. The authoritative re-check
		// below (after publishing) is what the Dekker argument relies on; this
		// one is purely an optimization.
		if FallbackMode(h.fbMode.Load()) == ModeGlobal {
			return false
		}
		th.cell.inFine.Store(1)
		if FallbackMode(h.fbMode.Load()) == ModeGlobal {
			th.cell.inFine.Store(0)
			return false
		}
		if h.fallbackSeq.Load()&1 == 0 {
			return true
		}
		// A global critical section is in flight (or draining us out of its
		// way): step aside, then re-check the mode — the section may well have
		// been the global path of the mode we are about to re-read.
		th.cell.inFine.Store(0)
		runtime.Gosched()
	}
}

// quiesceForGlobal is the adaptive replacement for the static global
// fallback's activeCommits wait: with fallbackSeq already odd, wait until no
// registered thread has a hardware commit write-back (inCommit) or a
// fine-grained fallback run (inFine) in flight. Threads registered after the
// snapshot self-exclude by observing the odd seq at begin / fallback entry,
// so the snapshot is a complete list of threats. Every flag is cleared in
// bounded work by its owner, so the wait terminates.
func (h *Heap) quiesceForGlobal(self *statCell) {
	for _, c := range h.stats.snapshotCells() {
		if c == self {
			continue
		}
		for c.inCommit.Load() != 0 || c.inFine.Load() != 0 {
			runtime.Gosched()
		}
	}
}
