package htm

import (
	"sync"
	"time"

	"repro/internal/adapt"
)

// Tuner is the per-heap online contention controller: a background goroutine
// that samples Stats deltas over short epochs and drives the heap's runtime
// knobs (Config.Adaptive) from live abort feedback —
//
//   - the fallback MODE: sustained fallback traffic whose contention ratio
//     (lock-set collisions plus release-and-retries per run) says footprints
//     are fully shared switches the heap to the global lock (which wins there
//     — serializing one shared footprint beats N fallbacks fighting over one
//     lock-set); calm or periodic probe epochs switch it back to
//     fine-grained, so a workload whose phases alternate gets the best static
//     configuration of each phase without retuning;
//   - the FallbackSpins knob, grown while out-of-order collisions keep
//     forcing retries and shrunk while they don't, via an adapt.Knob (the
//     paper's §3.4 window aimed at a lock-acquisition budget instead of a
//     telescoping step);
//   - the DedupBypass knob, shrunk when capacity aborts appear and grown
//     while attempts keep exhausting the bypass budget without them.
//
// A Tuner observes only aggregate counters and writes only the atomic knob
// words, so it perturbs nothing it does not intend to; with Pinned it samples
// and publishes epochs but never writes, which is what determinism harnesses
// run. kv.Store attaches a fourth client through Observe: the overload
// Governor tracks the epoch abort mix (see kv/overload.go).
type Tuner struct {
	h   *Heap
	cfg TunerConfig

	spins *adapt.Knob
	dedup *adapt.Knob

	mu        sync.Mutex
	last      Stats
	epochs    uint64
	observers []func(TunerEpoch)

	// Mode-controller state (all guarded by mu, written only by ticks).
	stormStreak  int  // consecutive fine-mode epochs of shared-footprint evidence
	calmStreak   int  // consecutive global-mode epochs without fallback traffic
	globalEpochs int  // busy global-mode epochs since the last probe
	probing      bool // the current fine stint is a probe out of global mode

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	running  bool // set by StartTuner before the goroutine launches
}

// TunerConfig parameterizes a Tuner. The zero value selects the defaults
// noted on each field.
type TunerConfig struct {
	// Interval is the epoch length. Defaults to 25ms: long enough for the
	// counters to accumulate evidence, short enough to track phase shifts
	// within a few tens of milliseconds.
	Interval time.Duration

	// Pinned arms the sampling loop but never writes a knob or switches a
	// mode: epochs tick, State and observers see live data, decisions are
	// suppressed. Determinism harnesses run enabled-but-pinned, proving the
	// adaptive machinery itself perturbs nothing.
	Pinned bool

	// MinFallbackRuns is the per-epoch evidence floor below which the epoch
	// carries no mode evidence (too little traffic to judge). In fine mode
	// the storm vote counts completed runs PLUS collisions (waits and
	// retries) against it — a livelocked epoch completes almost nothing but
	// collides constantly; in global mode, where collisions cannot occur, it
	// is a floor on completed runs. Defaults to 32.
	MinFallbackRuns uint64

	// StormRatio is the per-epoch contention ratio — (FallbackWaits +
	// FallbackRetries) / FallbackRuns — at or above which an epoch votes that
	// footprints are fully shared. FallbackWaits fires on any collision with
	// a held lock-set (in-order convoys included), FallbackRetries only on
	// the out-of-order release-and-retry path, so their sum sees storms that
	// retries alone cannot: N threads hammering one block in the same address
	// order never retry, they just queue. Defaults to 0.75 — most runs in the
	// epoch queued behind another run's locks, the regime where
	// BENCH_PR5.json shows the global lock winning.
	StormRatio float64

	// SwitchAfter is how many consecutive epochs of evidence a mode switch
	// requires, in both directions. Hysteresis: one noisy epoch never flips
	// the mode. Defaults to 2.
	SwitchAfter int

	// ProbeEvery is how many busy global-mode epochs the Tuner serves before
	// probing fine-grained mode again. Under the global lock fallbacks never
	// retry, so disjointness is unobservable from counters; the probe is the
	// only way back, and its period is the controller's recovery latency when
	// a shared phase ends. A probe that was wrong is cheap — probe stints
	// sample at a quarter interval and forgo the SwitchAfter hysteresis, since
	// a single storm epoch already refutes the probe's hypothesis — so the
	// default probes aggressively. Defaults to 4.
	ProbeEvery int
}

func (c TunerConfig) withDefaults() TunerConfig {
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.MinFallbackRuns == 0 {
		c.MinFallbackRuns = 32
	}
	if c.StormRatio <= 0 {
		c.StormRatio = 0.75
	}
	if c.SwitchAfter <= 0 {
		c.SwitchAfter = 2
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 4
	}
	return c
}

// TunerEpoch is one epoch's worth of Stats deltas plus the knob state after
// the epoch's decisions, as delivered to observers.
type TunerEpoch struct {
	// Counter deltas over the epoch.
	Starts, Commits, Aborts        uint64
	Conflicts, Spurious, Capacity  uint64
	FallbackRuns, FallbackRetries  uint64
	FallbackWaits                  uint64
	FallbackLocks, StripeConflicts uint64
	DedupEngages                   uint64
	// AbortRate is Aborts/Starts for the epoch (0 when idle).
	AbortRate float64
	// RetryRatio is FallbackRetries/FallbackRuns for the epoch (0 when no
	// fallback ran) — the out-of-order collision rate, which drives the
	// FallbackSpins knob.
	RetryRatio float64
	// ContentionRatio is (FallbackWaits+FallbackRetries)/max(FallbackRuns, 1)
	// for the epoch — the mode controller's shared-footprint signal (see
	// TunerConfig.StormRatio). The max(…, 1) denominator keeps a
	// zero-completion collision storm (a retry livelock) reading as a huge
	// ratio instead of vacuously calm.
	ContentionRatio float64
	// Knob state after this epoch's decisions applied.
	Mode          FallbackMode
	FallbackSpins int
	DedupBypass   int
	// Epoch is the 1-based epoch ordinal; Pinned echoes the config.
	Epoch  uint64
	Pinned bool
}

// StartTuner attaches a Tuner to the heap and starts its sampling goroutine.
// Requires Config.Adaptive. Run exactly one Tuner per heap; Stop it before
// discarding the heap.
func (h *Heap) StartTuner(cfg TunerConfig) *Tuner {
	tu := h.NewTuner(cfg)
	tu.running = true
	go tu.run()
	return tu
}

// NewTuner builds a Tuner without starting its goroutine; callers drive it
// with Tick. Tests and single-stepped harnesses use this, StartTuner
// everything else. Requires Config.Adaptive.
func (h *Heap) NewTuner(cfg TunerConfig) *Tuner {
	if !h.cfg.Adaptive {
		panic("htm: StartTuner requires Config.Adaptive")
	}
	cfg = cfg.withDefaults()
	maxDedup := bypassReadCap << 3
	if mrs := h.cfg.MaxReadSet; mrs >= 0 && mrs/2 < maxDedup {
		maxDedup = mrs / 2
	}
	minDedup := 64
	if minDedup > maxDedup {
		minDedup = maxDedup
	}
	spins := h.FallbackSpins()
	if spins < 1 {
		spins = 1
	}
	tu := &Tuner{
		h:     h,
		cfg:   cfg,
		spins: adapt.NewKnob(1, 4096, spins),
		dedup: adapt.NewKnob(minDedup, maxDedup, h.DedupBypass()),
		last:  h.Stats(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	return tu
}

// Observe registers f to be called after every epoch (pinned or not) with
// that epoch's deltas and knob state. f runs on the Tuner goroutine and must
// not block.
func (tu *Tuner) Observe(f func(TunerEpoch)) {
	tu.mu.Lock()
	tu.observers = append(tu.observers, f)
	tu.mu.Unlock()
}

// Stop terminates the sampling goroutine and waits for it to exit.
// Idempotent. A Tuner built with NewTuner (never started) may also be
// stopped, which is a no-op beyond marking it stopped.
func (tu *Tuner) Stop() {
	tu.stopOnce.Do(func() { close(tu.stop) })
	if tu.running {
		<-tu.done
	}
}

func (tu *Tuner) run() {
	defer close(tu.done)
	timer := time.NewTimer(tu.interval())
	defer timer.Stop()
	for {
		select {
		case <-tu.stop:
			return
		case <-timer.C:
			tu.Tick()
			timer.Reset(tu.interval())
		}
	}
}

// interval is the next epoch length: epochs that exist only to confirm or
// refute a hypothesis sample faster than steady-state ones. A probe stint
// needs a single epoch of evidence either way, so it samples at an eighth of
// the configured interval — a wrong probe livelocks for that eighth and no
// longer. Fine-mode epochs with a storm streak pending sample at a quarter,
// so a building storm is confirmed after a quarter of the damage. Hysteresis
// keeps its sample count; only the wall-clock cost of gathering the
// confirming samples shrinks, which is what makes both probing and
// SwitchAfter affordable on a heap that is livelocking.
func (tu *Tuner) interval() time.Duration {
	tu.mu.Lock()
	probing, storming := tu.probing, tu.stormStreak > 0
	tu.mu.Unlock()
	if probing {
		return tu.cfg.Interval / 8
	}
	if storming {
		return tu.cfg.Interval / 4
	}
	return tu.cfg.Interval
}

// Tick runs one epoch synchronously: sample, decide (unless pinned), notify
// observers. The background loop calls it on every interval; tests and
// single-stepped harnesses call it directly.
func (tu *Tuner) Tick() {
	tu.mu.Lock()
	defer tu.mu.Unlock()
	s := tu.h.Stats()
	e := tu.epochDelta(s)
	tu.last = s
	tu.epochs++
	e.Epoch = tu.epochs
	e.Pinned = tu.cfg.Pinned
	if !tu.cfg.Pinned {
		tu.decide(e)
	}
	e.Mode = tu.h.FallbackMode()
	e.FallbackSpins = tu.h.FallbackSpins()
	e.DedupBypass = tu.h.DedupBypass()
	for _, f := range tu.observers {
		f(e)
	}
}

// epochDelta computes the counter deltas between the previous sample and s.
func (tu *Tuner) epochDelta(s Stats) TunerEpoch {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0 // new thread cells can only grow sums; clamp for safety
		}
		return a - b
	}
	e := TunerEpoch{
		Starts:          sub(s.Starts, tu.last.Starts),
		Commits:         sub(s.Commits, tu.last.Commits),
		Conflicts:       sub(s.Aborts[AbortConflict], tu.last.Aborts[AbortConflict]),
		Spurious:        sub(s.Aborts[AbortSpurious], tu.last.Aborts[AbortSpurious]),
		Capacity:        sub(s.Aborts[AbortCapacity], tu.last.Aborts[AbortCapacity]),
		FallbackRuns:    sub(s.FallbackRuns, tu.last.FallbackRuns),
		FallbackRetries: sub(s.FallbackRetries, tu.last.FallbackRetries),
		FallbackWaits:   sub(s.FallbackWaits, tu.last.FallbackWaits),
		FallbackLocks:   sub(s.FallbackLocks, tu.last.FallbackLocks),
		StripeConflicts: sub(s.StripeConflicts, tu.last.StripeConflicts),
		DedupEngages:    sub(s.DedupEngages, tu.last.DedupEngages),
	}
	e.Aborts = sub(s.TotalAborts(), tu.last.TotalAborts())
	if e.Starts > 0 {
		e.AbortRate = float64(e.Aborts) / float64(e.Starts)
	}
	if e.FallbackRuns > 0 {
		e.RetryRatio = float64(e.FallbackRetries) / float64(e.FallbackRuns)
	}
	// ContentionRatio divides by max(runs, 1), not runs: an epoch of pure
	// collisions with ZERO completed runs is the severest storm there is — a
	// retry livelock — and must read as a huge ratio, not as 0/0 = calm.
	runs := e.FallbackRuns
	if runs == 0 {
		runs = 1
	}
	e.ContentionRatio = float64(e.FallbackWaits+e.FallbackRetries) / float64(runs)
	return e
}

// spinsGrowRatio and spinsShedRatio bound the FallbackSpins knob's votes: an
// epoch whose out-of-order retry rate reaches spinsGrowRatio votes to double
// the try-lock budget (riding a collision out is cheaper than re-running the
// body), one below spinsShedRatio votes to halve it (budget going unused).
const (
	spinsGrowRatio = 0.25
	spinsShedRatio = 0.05
)

// stormCatastrophe is the contention ratio at or above which a SINGLE epoch
// switches the mode, bypassing SwitchAfter hysteresis. Hysteresis guards
// against flipping on noise, but ≥8 collisions per completed run on an epoch
// with real evidence volume is not noise — it is a storm dense enough that
// every epoch spent deliberating costs nearly an epoch of throughput. A wrong
// flip is bounded: the probe path returns to fine within ProbeEvery epochs.
const stormCatastrophe = 8.0

// decide applies one epoch of evidence to the mode controller and the knobs.
func (tu *Tuner) decide(e TunerEpoch) {
	h := tu.h
	busy := e.FallbackRuns >= tu.cfg.MinFallbackRuns
	// The storm vote gates on evidence volume — completions PLUS collisions —
	// because a dense enough storm stops completing runs altogether: gating on
	// FallbackRuns alone would make the controller blind to exactly the
	// livelock it exists to break. Under the global lock collisions are zero,
	// so `busy` (completions) remains the right gate everywhere else.
	stormBusy := e.FallbackRuns+e.FallbackWaits+e.FallbackRetries >= tu.cfg.MinFallbackRuns

	// Mode controller. Fine mode watches the contention ratio — lock-set
	// collisions plus release-and-retries per run: a sustained storm means
	// the fallback footprints overlap so heavily that serializing them under
	// the global lock is cheaper than the lock-set fighting. Global mode has
	// no contention signal (the global lock serializes everything), so it
	// returns to fine either when fallback traffic dries up or via a
	// periodic probe.
	if h.cfg.EnableTLE {
		switch h.FallbackMode() {
		case ModeFine:
			if stormBusy && e.ContentionRatio >= tu.cfg.StormRatio {
				tu.stormStreak++
				need := tu.cfg.SwitchAfter
				// Two cases forgo hysteresis: a catastrophic ratio (see
				// stormCatastrophe), and a probe stint — the probe is a
				// hypothesis test, and one epoch of storm evidence already
				// refutes it, so paying SwitchAfter livelocked epochs on every
				// failed probe would make probing unaffordable.
				if tu.probing || e.ContentionRatio >= stormCatastrophe {
					need = 1
				}
				if tu.stormStreak >= need {
					h.SetFallbackMode(ModeGlobal)
					tu.stormStreak, tu.calmStreak, tu.globalEpochs = 0, 0, 0
					tu.probing = false
				}
			} else {
				tu.stormStreak = 0
				tu.probing = false // the probe survived an epoch: fine mode holds
			}
		case ModeGlobal:
			if !busy {
				tu.calmStreak++
				tu.globalEpochs = 0
				if tu.calmStreak >= tu.cfg.SwitchAfter {
					h.SetFallbackMode(ModeFine)
					tu.stormStreak, tu.calmStreak, tu.globalEpochs = 0, 0, 0
				}
			} else {
				tu.calmStreak = 0
				tu.globalEpochs++
				if tu.globalEpochs >= tu.cfg.ProbeEvery {
					// Probe: only fine-grained traffic can reveal that the
					// footprints disjointed. If they did not, the storm streak
					// rebuilds and the controller re-switches in SwitchAfter
					// epochs.
					h.SetFallbackMode(ModeFine)
					tu.stormStreak, tu.calmStreak, tu.globalEpochs = 0, 0, 0
					tu.probing = true
				}
			}
		}
	}

	// FallbackSpins knob: meaningful only for fine-mode traffic. Retries
	// present in quantity → a longer out-of-order try-lock budget may ride a
	// collision out instead of re-executing the body; retries rare → shed
	// unused budget.
	if busy && h.FallbackMode() == ModeFine {
		changed := false
		if e.RetryRatio >= spinsGrowRatio {
			changed = tu.spins.RecordUp()
		} else if e.RetryRatio < spinsShedRatio {
			changed = tu.spins.RecordDown()
		}
		if changed {
			h.SetFallbackSpins(tu.spins.Value())
		}
	}

	// DedupBypass knob: capacity aborts mean the read-set bound is being
	// hit — engage dedup earlier so duplicate entries never occupy capacity.
	// Attempts repeatedly exhausting the bypass budget WITHOUT capacity
	// pressure want the opposite: more bypass room before the compaction
	// pause.
	if e.Capacity > 0 {
		if tu.dedup.RecordDown() {
			h.SetDedupBypass(tu.dedup.Value())
		}
	} else if e.DedupEngages > 0 {
		if tu.dedup.RecordUp() {
			h.SetDedupBypass(tu.dedup.Value())
		}
	}
}

// TunerState is a point-in-time summary of the Tuner for diagnostics and the
// KV /stats endpoint.
type TunerState struct {
	// Epochs is the number of completed sampling epochs.
	Epochs uint64
	// Pinned echoes TunerConfig.Pinned.
	Pinned bool
	// Mode is the heap's current fallback mode; ModeSwitches counts runtime
	// changes applied so far.
	Mode         FallbackMode
	ModeSwitches uint64
	// FallbackSpins and DedupBypass are the live knob values.
	FallbackSpins int
	DedupBypass   int
}

// State returns the Tuner's current summary.
func (tu *Tuner) State() TunerState {
	tu.mu.Lock()
	epochs := tu.epochs
	tu.mu.Unlock()
	return TunerState{
		Epochs:        epochs,
		Pinned:        tu.cfg.Pinned,
		Mode:          tu.h.FallbackMode(),
		ModeSwitches:  tu.h.ModeSwitches(),
		FallbackSpins: tu.h.FallbackSpins(),
		DedupBypass:   tu.h.DedupBypass(),
	}
}
