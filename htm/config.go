package htm

// Rock-like defaults. RockStoreBufferSize is the size of the store buffer on
// Sun's Rock prototype, which bounds the number of distinct words a
// transaction may write (paper §3.4: "we could not use step sizes greater
// than 32, which is the size of Rock's store buffer").
const (
	RockStoreBufferSize = 32

	defaultHeapWords  = 1 << 20
	defaultMaxRetries = 256
	defaultMaxReadSet = 1 << 16
)

// MaxClockShards caps Config.ClockShards. 256 shards spend 8 bits of the
// 61-bit version field on the shard ID, leaving 53 bits of per-shard tick —
// still unreachable within any simulated run.
const MaxClockShards = 256

// MaxStripeShift caps Config.StripeShift: 2^8 = 256-word stripes. Beyond that
// the allocator's stripe alignment wastes more arena than any conflict-rate
// saving is worth.
const MaxStripeShift = 8

// FallbackOwnerBits is the width of the owner thread ID recorded in a word's
// metadata while the fine-grained TLE fallback holds its lock. The merged
// metadata word spends bit 0 on the lock, bit 1 on the allocated flag and the
// top bit on the fallback tag, leaving 61 bits of version field to carry the
// owner while the word is held (the displaced version is preserved in the
// owner's lock-set). Thread IDs are masked to this width; IDs are assigned
// sequentially, so two live threads collide only after 2^61 NewThread calls.
// The owner ID exists for self-deadlock detection and debuggability — no
// correctness decision reads it.
const FallbackOwnerBits = 61

// fallbackOwnerMask truncates a thread ID to the owner field's width.
const fallbackOwnerMask = 1<<FallbackOwnerBits - 1

// Config parameterizes a simulated Heap and its transaction engine. The zero
// value selects Rock-like defaults via NewHeap.
type Config struct {
	// Words is the arena capacity in 64-bit words. Defaults to 1<<20.
	Words int

	// StoreBufferSize bounds the number of distinct words a single
	// transaction may write before aborting with AbortOverflow. Defaults to
	// RockStoreBufferSize (32). Set to a negative value for an unbounded
	// store buffer (a "future HTM", paper §6).
	StoreBufferSize int

	// MaxReadSet bounds the transactional read set; exceeding it aborts with
	// AbortCapacity. Rock tracks reads in the L1 cache, which is large
	// relative to the store buffer, so the default is generous (1<<16).
	// Set to a negative value for an unbounded read set.
	MaxReadSet int

	// Sandboxed selects Rock-style sandboxing: a transaction that
	// dereferences freed or nil memory aborts with AbortIllegal. When false,
	// such an access panics, modeling a segmentation fault on HTM designs
	// without sandboxing. Defaults to true (NewHeap flips the internal
	// representation so the zero Config is sandboxed).
	Sandboxed bool

	// NoSandbox disables sandboxing. Provided so that the zero Config is
	// Rock-like; use this instead of Sandboxed=false.
	NoSandbox bool

	// AllowAllocInTxn permits Txn.Alloc and Txn.Free. Rock could not run the
	// CAS-based malloc inside transactions (paper §6), so the paper's
	// algorithms pre-allocate outside transactions; this switch models a
	// TM-aware allocator on a future HTM.
	AllowAllocInTxn bool

	// MaxRetries is the number of attempts Thread.Atomic makes before either
	// engaging the TLE fallback lock (EnableTLE) or panicking. Defaults to
	// 256.
	MaxRetries int

	// EnableTLE enables the transactional-lock-elision fallback described in
	// paper §6: after MaxRetries failed attempts the operation completes on
	// a pessimistic software path instead of retrying forever. By default
	// that path acquires the per-word metadata locks of exactly the words it
	// touches (fine-grained fallback), so fallback operations with disjoint
	// footprints — and hardware transactions on unrelated words — proceed
	// concurrently. Set GlobalFallback to restore the paper's single global
	// fallback lock.
	EnableTLE bool

	// GlobalFallback selects the §6 global-lock fallback the paper describes
	// (and this repository shipped through PR 4): the fallback operation
	// takes one process-wide lock, every hardware transaction waits out the
	// critical section at begin and validates the lock's sequence number at
	// commit. It serializes all fallback operations and stalls all hardware
	// commits for the duration, but is the faithful Rock-era baseline; keep
	// it available for comparison benchmarks. Only meaningful with EnableTLE.
	GlobalFallback bool

	// DedupBypass caps how many (possibly duplicated) read entries a
	// transaction attempt may append before read-set deduplication engages
	// (see Txn's dedup field). Larger values keep repeat-heavy transactions
	// on the zero-bookkeeping bypass path longer at the cost of more
	// duplicate entries to compact; smaller values engage the 512-bit filter
	// earlier. 0 selects the default (4096); negative engages dedup from the
	// first read (the PR 3 behaviour). Whatever the value, the effective
	// threshold never exceeds MaxReadSet/2, which is what preserves the
	// guarantee that a transaction whose distinct read set fits MaxReadSet
	// never aborts with AbortCapacity.
	DedupBypass int

	// NoMaxLive disables exact high-water tracking, removing the last
	// globally shared counters from the allocation fast path. Stats then
	// derives LiveWords from the per-thread cells and MaxLiveWords becomes
	// the largest live count observed at any Stats snapshot. Both are exact
	// when snapshots are taken at quiescence; a mid-run snapshot can tear
	// across cells and over- or under-state them. Throughput-only runs set
	// this; space-measured runs must leave it unset.
	NoMaxLive bool

	// ClockShards is the number of independent version-clock shards (see
	// DESIGN.md "Sharded clock & striped metadata"). Each committing writer
	// ticks only its thread's home shard (cache-line padded), so disjoint
	// commits stop serializing on one clock word; readers validate against a
	// per-shard snapshot taken at begin. 0 or 1 selects the single global
	// clock, whose semantics and version encoding are bit-for-bit those of the
	// pre-shard engine. Values are rounded up to a power of two and capped at
	// MaxClockShards.
	ClockShards int

	// StripeShift makes one metadata word govern a 2^StripeShift-word stripe
	// instead of a single word: a commit acquires one CAS per touched stripe,
	// the fine-grained fallback locks stripes, and alloc/free version whole
	// stripes. Distinct words in one stripe conflict falsely (counted by
	// Stats.StripeConflicts); the allocator stripe-aligns blocks so no stripe
	// is ever shared between blocks, which preserves the per-word liveness
	// sandbox at block granularity (words in a live block's alignment slack
	// read as live zeros instead of faulting). 0 — the default — is the exact
	// pre-stripe per-word engine. Capped at MaxStripeShift.
	StripeShift int

	// FallbackSpins bounds how long the fine-grained TLE fallback spins on a
	// locked word it reached OUT OF ADDRESS ORDER before engaging the
	// deadlock-avoidance release-and-retry protocol (drop the whole lock-set,
	// re-run the body). In-order acquisitions spin indefinitely — they cannot
	// deadlock. 0 selects the default (128, see defaultFallbackSpins);
	// negative releases-and-retries immediately on any out-of-order collision
	// (maximally paranoid, maximally re-execution-happy). Only meaningful with
	// EnableTLE and not GlobalFallback.
	FallbackSpins int

	// Adaptive arms the heap's online contention-management machinery (see
	// DESIGN.md "Adaptive contention management"): the fallback mode becomes a
	// runtime word switchable with Heap.SetFallbackMode (GlobalFallback then
	// only selects the INITIAL mode), and FallbackSpins / DedupBypass become
	// atomic overrides writable with Heap.SetFallbackSpins / SetDedupBypass —
	// typically driven by a Tuner (Heap.StartTuner). Arming costs the hot path
	// a few uncontended per-thread atomics (a begin-time knob refresh and a
	// commit-time epoch marker); when false — the default — none of the
	// dynamic code runs and behavior is bit-for-bit that of the static
	// configuration.
	Adaptive bool

	// Faults attaches a seeded fault-injection plan (see FaultPlan). nil — the
	// default — injects nothing and costs one pointer check per transactional
	// operation. The same Config value (plan included) reproduces the same
	// injected fault sequence for equal executions.
	Faults *FaultPlan

	// YieldEvery makes a running transaction yield the processor after every
	// N transactional accesses (0 = never). On hosts with fewer cores than
	// simulated threads, goroutines otherwise run whole transactions within
	// one scheduler quantum and cross-thread conflicts almost never occur;
	// yielding mid-transaction restores the property that a transaction
	// occupies a window of real time during which other "cores" run, so the
	// conflict/abort gradient the paper sweeps is reproduced. Benchmarks set
	// this; unit tests of engine semantics leave it 0.
	YieldEvery int

	// trackMaxLive is the derived internal form of !NoMaxLive: exact
	// LiveWords/MaxLiveWords maintenance on the alloc/free path (a globally
	// shared live counter plus a CAS high-water loop per allocation), which
	// is what the paper's space figures need. Set by withDefaults so the
	// zero Config is exact.
	trackMaxLive bool
}

func (c Config) withDefaults() Config {
	if c.Words <= 0 {
		c.Words = defaultHeapWords
	}
	if c.StoreBufferSize == 0 {
		c.StoreBufferSize = RockStoreBufferSize
	}
	if c.MaxReadSet == 0 {
		c.MaxReadSet = defaultMaxReadSet
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = defaultMaxRetries
	}
	if c.ClockShards < 1 {
		c.ClockShards = 1
	}
	if c.ClockShards > MaxClockShards {
		c.ClockShards = MaxClockShards
	}
	for c.ClockShards&(c.ClockShards-1) != 0 {
		c.ClockShards++ // round up to a power of two
	}
	if c.StripeShift < 0 {
		c.StripeShift = 0
	}
	if c.StripeShift > MaxStripeShift {
		c.StripeShift = MaxStripeShift
	}
	c.Sandboxed = !c.NoSandbox
	c.trackMaxLive = !c.NoMaxLive
	return c
}

// fallbackSpins resolves the FallbackSpins knob: the out-of-order try-lock
// spin bound used by the fine-grained fallback's deadlock avoidance.
func (c Config) fallbackSpins() int {
	switch {
	case c.FallbackSpins > 0:
		return c.FallbackSpins
	case c.FallbackSpins < 0:
		return 0
	default:
		return defaultFallbackSpins
	}
}

// dedupBypassThreshold resolves the DedupBypass knob against MaxReadSet: the
// read-set length at which an attempt switches from bypass to filtered mode.
func (c Config) dedupBypassThreshold() int {
	cap := bypassReadCap
	switch {
	case c.DedupBypass > 0:
		cap = c.DedupBypass
	case c.DedupBypass < 0:
		cap = 0
	}
	if mrs := c.MaxReadSet; mrs >= 0 && mrs/2 < cap {
		return mrs / 2
	}
	return cap
}
