package htm

import (
	"fmt"
	"runtime"
	"sync"
)

// The allocator hands out blocks of whole words from the arena. Each block
// has a one-word header holding the payload size and an allocated bit, so
// Free needs only the payload address. Freed blocks are recycled on
// exact-size free lists (no splitting or coalescing — the experiments
// allocate a small set of block sizes, and exact-size recycling keeps the
// simulation simple and fast without affecting any measured behaviour).
//
// The design follows libumem, the allocator the paper's experiments ran on:
// each Thread owns a per-size-class magazine (a small fixed array of free
// payload addresses) that serves the alloc/free fast path with no locking at
// all. Magazines refill from and drain to the arena's shards in batches of
// magBatch blocks, so the shard mutex is touched once per magBatch operations
// in steady state rather than once per operation. Shards hold fixed arrays of
// exact-size free lists (one slice per class, indexed directly by size) plus
// a bump region; only sizes above maxMagSize fall back to a per-shard map.
//
// Threads are assigned shards round-robin, so even refills are uncontended
// when the number of worker threads does not exceed the shard count.
//
// Like any thread-caching allocator (libumem, tcmalloc), magazines strand a
// bounded amount of memory: up to magCap addresses per active size class per
// thread are invisible to other threads until the owner drains them. Size
// arenas with that headroom; an allocation that finds every shard empty
// panics even if peer magazines hold free blocks of the right size.

const headerAllocBit uint64 = 1

const (
	// maxMagSize is the largest payload size (in words) served by magazines
	// and the shards' array free lists; class s serves exactly size s. The
	// paper's structures allocate queue nodes (a few words) and collect
	// arrays (up to 64 handles), so this covers every hot allocation.
	maxMagSize = 64
	// magCap is the number of addresses a magazine holds per size class.
	magCap = 16
	// magBatch is the number of blocks moved between a magazine and its
	// shard per refill or drain, amortizing the shard mutex.
	magBatch = 8
)

// magazine is a per-thread cache of free blocks of one size class.
type magazine struct {
	n     int
	addrs [magCap]Addr
}

type allocShard struct {
	mu    sync.Mutex
	start Addr                   // first word of this shard's region (for sweeps)
	bump  Addr                   // next unused word in this shard's region
	end   Addr                   // one past the shard's region
	free  [maxMagSize + 1][]Addr // exact payload size -> free payload addresses
	big   map[int][]Addr         // sizes above maxMagSize (off the hot path)

	// Pad the shard tail so the hot header fields (mutex, bump) of shard
	// i+1 never share a cache line with the free-list spine of shard i.
	_ [64]byte
}

type allocator struct {
	h      *Heap
	shards []allocShard

	// stripeMask aligns carved blocks to metadata stripes when
	// Config.StripeShift is set: a block's header+payload footprint is
	// rounded up to whole stripes and starts on a stripe boundary, so no
	// stripe is ever shared between two blocks (or a block and free space).
	// That keeps the per-stripe allocated bit and version coherent — every
	// stripe transition is owned by exactly one block's alloc/free. Zero
	// without striping, making the carve arithmetic the identity.
	stripeMask Addr
}

func (al *allocator) init(h *Heap) {
	al.h = h
	al.stripeMask = Addr(1)<<h.stripeShift - 1
	n := 1
	for n < runtime.NumCPU()*2 {
		n <<= 1
	}
	al.shards = make([]allocShard, n)
	// Word 0 is reserved so that NilAddr is never a valid payload address.
	lo := 1
	total := len(h.words) - lo
	per := total / n
	for i := range al.shards {
		s := &al.shards[i]
		s.big = make(map[int][]Addr)
		s.start = Addr(lo + i*per)
		s.bump = s.start
		s.end = Addr(lo + (i+1)*per)
	}
	al.shards[n-1].end = Addr(len(h.words))
}

// carve cuts a fresh block of size payload words from shard s's bump region
// (mutex held by the caller), returning NilAddr when the region is exhausted.
// With striping both the block's start and its footprint round up to stripe
// boundaries; see stripeMask.
func (al *allocator) carve(s *allocShard, size int) Addr {
	b := (s.bump + al.stripeMask) &^ al.stripeMask
	need := (Addr(size+1) + al.stripeMask) &^ al.stripeMask
	if b > s.end || s.end-b < need {
		return NilAddr
	}
	s.bump = b + need
	return b + 1
}

// refillMag moves up to magBatch free blocks of the given size class from
// shard si into m. Fresh blocks are carved from the bump region one at a
// time — only recycled blocks batch — so idle size classes never pin unused
// arena words. It reports whether m ended up non-empty.
func (al *allocator) refillMag(si, size int, m *magazine) bool {
	s := &al.shards[si]
	s.mu.Lock()
	lst := s.free[size]
	take := magBatch - m.n
	if take > len(lst) {
		take = len(lst)
	}
	if take > 0 {
		copy(m.addrs[m.n:], lst[len(lst)-take:])
		s.free[size] = lst[:len(lst)-take]
		m.n += take
	}
	if m.n == 0 {
		if a := al.carve(s, size); a != NilAddr {
			m.addrs[0] = a
			m.n = 1
		}
	}
	s.mu.Unlock()
	return m.n > 0
}

// drainMag returns magBatch blocks from a full magazine to shard si's free
// list, keeping the rest cached for subsequent allocs.
func (al *allocator) drainMag(si, size int, m *magazine) {
	s := &al.shards[si]
	keep := m.n - magBatch
	s.mu.Lock()
	s.free[size] = append(s.free[size], m.addrs[keep:m.n]...)
	s.mu.Unlock()
	m.n = keep
}

// allocRaw obtains a recycled or freshly carved block of size payload words
// for th, without preparing its header, contents or statistics. It panics if
// the arena is exhausted.
func (al *allocator) allocRaw(th *Thread, size int) Addr {
	if size >= 1 && size <= maxMagSize {
		m := &th.mags[size]
		if m.n == 0 && !al.refillMag(th.shard, size, m) {
			for i := range al.shards {
				if i != th.shard && al.refillMag(i, size, m) {
					break
				}
			}
		}
		if m.n > 0 {
			m.n--
			return m.addrs[m.n]
		}
	} else {
		if a := al.allocBigFrom(th.shard, size); a != NilAddr {
			return a
		}
		for i := range al.shards {
			if i == th.shard {
				continue
			}
			if a := al.allocBigFrom(i, size); a != NilAddr {
				return a
			}
		}
	}
	panic(fmt.Sprintf("htm: arena exhausted allocating %d words (capacity %d; note: peer threads' magazines may cache freed blocks — size the arena with thread-cache headroom)", size, len(al.h.words)))
}

// allocBigFrom serves the slow path for sizes above maxMagSize from shard
// si's map-backed free lists or bump region, returning NilAddr on failure.
func (al *allocator) allocBigFrom(si, size int) Addr {
	s := &al.shards[si]
	s.mu.Lock()
	if lst := s.big[size]; len(lst) > 0 {
		a := lst[len(lst)-1]
		s.big[size] = lst[:len(lst)-1]
		s.mu.Unlock()
		return a
	}
	a := al.carve(s, size)
	s.mu.Unlock()
	return a
}

// alloc returns a zeroed, allocated block of size words for th. It panics if
// the arena is exhausted.
//
// One tick of the thread's home clock shard versions the whole block, and
// each governing metadata word's free->allocated transition is a single CAS
// (one per word by default, one per stripe with striping — a block owns whole
// stripes, so every transition is exclusively this alloc's). The fresh
// version (rather than reusing the stripe's last one) is what closes the
// reallocation window: any transaction that began before this tick and read
// the block's previous life will see a tick above its rv entry for this shard
// on its next access to the block, be forced to extend, and fail revalidation
// on the word it read (whose metadata the free already rewrote — an equality
// check, so it holds whatever shard the free ticked). The word values are
// zeroed before the allocated bit is published, so no reader can observe
// stale contents as live memory.
func (al *allocator) alloc(th *Thread, size int) Addr {
	if size <= 0 {
		panic("htm: alloc of non-positive size")
	}
	a := al.allocRaw(th, size)
	h := al.h
	h.words[a-1].Store(uint64(size)<<1 | headerAllocBit)
	wv := th.tickClock()
	live := makeMeta(wv, true)
	words := h.words[a : a+Addr(size)]
	for i := range words {
		words[i].Store(0)
	}
	for si, hi := h.mi(a), h.mi(a+Addr(size)-1); si <= hi; si++ {
		m := h.meta[si].Load()
		if m&(metaAllocBit|metaLockBit) != 0 {
			panic(fmt.Sprintf("htm: allocator invariant violation: stripe of word %#x already allocated or locked", uint32(a)))
		}
		if !h.meta[si].CompareAndSwap(m, live) {
			// Free stripes are never locked and never written by anyone but
			// the allocator, which holds this block exclusively.
			panic(fmt.Sprintf("htm: allocator invariant violation: free stripe of word %#x changed concurrently", uint32(a)))
		}
	}
	bump(&th.cell.allocCalls)
	bumpBy(&th.cell.allocWords, uint64(size))
	if h.cfg.trackMaxLive {
		live := h.stats.liveWords.Add(uint64(size))
		for {
			m := h.stats.maxLiveWords.Load()
			if live <= m || h.stats.maxLiveWords.CompareAndSwap(m, live) {
				break
			}
		}
	}
	return a
}

// free returns the block whose payload starts at a to th's magazine (or, for
// oversized blocks, to th's home shard). Each governing metadata word's
// allocated bit is cleared and its version bumped in ONE CAS — the version
// bump IS the generation flip of the old two-array design — so any in-flight
// transaction that read the block aborts at its next validation, and any
// later transactional access aborts immediately (sandboxing). With striping
// the block owns its stripes outright, so per-stripe transitions stay
// exclusively this free's.
func (al *allocator) free(th *Thread, a Addr) {
	h := al.h
	if !h.valid(a) {
		panic(fmt.Sprintf("htm: free of invalid address %#x", uint32(a)))
	}
	hdr := h.words[a-1].Load()
	if hdr&headerAllocBit == 0 {
		panic(fmt.Sprintf("htm: double free of %#x", uint32(a)))
	}
	size := int(hdr >> 1)
	h.words[a-1].Store(uint64(size) << 1)
	// One tick of th's home clock shard versions the whole block. Unlike the
	// old flip-before-release dance, the tick may precede the per-stripe
	// transitions: a transaction that began after the tick (rv admits wv) can
	// still read a not-yet-flipped word's pre-free value — that read is of
	// then-live memory and linearizes before the free — but it can never pair
	// it with post-reallocation state under one snapshot, because allocate
	// stamps reused stripes with a version from a LATER tick of SOME shard
	// that postdates every such reader's begin-scan of that shard, which
	// forces an extension whose revalidation rereads the flipped metadata and
	// aborts. A CAS that observes the lock bit (a commit's write-back, or an
	// NT write) spins: commits never block on a held word, so this cannot
	// deadlock.
	wv := th.tickClock()
	dead := makeMeta(wv, false)
	for w, hi := h.mi(a), h.mi(a+Addr(size)-1); w <= hi; w++ {
		for spins := 0; ; spins++ {
			m := h.meta[w].Load()
			if !metaAllocated(m) {
				panic(fmt.Sprintf("htm: free of already-free stripe (block %#x)", uint32(a)))
			}
			if !metaLocked(m) && h.meta[w].CompareAndSwap(m, dead) {
				break
			}
			// Held by a commit write-back (short) or a fallback lock-set
			// (potentially long); yield rather than burn the core. Two cases
			// must panic instead of waiting: our own fallback's lock would be
			// waited on forever, and ANY fallback's lock, if this thread is
			// itself inside a fallback holding locks, closes a cross-thread
			// cycle the ordered-acquisition protocol cannot see (free() waits
			// outside it). Both are a fallback body calling Thread.Free
			// directly; it must use Txn.FreeOnCommit, which runs after the
			// lock-set is released.
			if metaFallbackLocked(m) {
				if metaFallbackOwner(m) == th.id&fallbackOwnerMask {
					panic(fmt.Sprintf("htm: free of %#x inside a fallback operation holding word %#x locked (self-deadlock); use Txn.FreeOnCommit", uint32(a), uint32(w)))
				}
				if th.inTxn && th.txn.direct && len(th.txn.locks) > 0 {
					panic(fmt.Sprintf("htm: free of %#x inside a fallback operation while word %#x is fallback-locked by another thread (deadlock risk); use Txn.FreeOnCommit", uint32(a), uint32(w)))
				}
			}
			if spins&63 == 63 {
				runtime.Gosched()
			}
		}
	}
	bump(&th.cell.freeCalls)
	bumpBy(&th.cell.freeWords, uint64(size))
	if h.cfg.trackMaxLive {
		h.stats.liveWords.Add(^uint64(size - 1))
	}
	if size <= maxMagSize {
		m := &th.mags[size]
		if m.n == magCap {
			al.drainMag(th.shard, size, m)
		}
		m.addrs[m.n] = a
		m.n++
		return
	}
	s := &al.shards[th.shard]
	s.mu.Lock()
	s.big[size] = append(s.big[size], a)
	s.mu.Unlock()
}

// blockSize returns the payload size in words of the allocated block at a.
func (al *allocator) blockSize(a Addr) int {
	hdr := al.h.words[a-1].Load()
	return int(hdr >> 1)
}
