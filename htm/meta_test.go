package htm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Tests for the unified per-word metadata encoding: one 64-bit word carrying
// {lock, allocated, version}, where alloc/free transitions are single CASes
// and a transactional load's whole validation predicate is one atomic read.

func TestMetaEncodingRoundTrip(t *testing.T) {
	for _, ver := range []uint64{0, 1, 42, 1 << 40, (1 << 62) - 1} {
		for _, alloc := range []bool{false, true} {
			m := makeMeta(ver, alloc)
			if metaVersion(m) != ver {
				t.Errorf("metaVersion(makeMeta(%d,%v)) = %d", ver, alloc, metaVersion(m))
			}
			if metaAllocated(m) != alloc {
				t.Errorf("metaAllocated(makeMeta(%d,%v)) = %v", ver, alloc, metaAllocated(m))
			}
			if metaLocked(m) {
				t.Errorf("makeMeta(%d,%v) is born locked", ver, alloc)
			}
			if !metaLocked(m | metaLockBit) {
				t.Error("lock bit not observed")
			}
			if metaVersion(m|metaLockBit) != ver {
				t.Error("lock bit corrupts version")
			}
		}
	}
}

// TestAllocFreeSingleTickPerTransition pins the merged design's clock
// discipline, shard-relatively: allocate and free each tick the owning
// thread's home clock shard exactly once per block (one fresh version stamps
// every word of the transition), not once per word — and no other shard
// moves.
func TestAllocFreeSingleTickPerTransition(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			h := newTestHeap(t, Config{ClockShards: shards})
			th := h.NewThread()
			a := th.Alloc(8)
			before := h.ClockNow()
			home := th.ClockShard()
			homeBefore := h.ClockShardNow(home)
			th.Free(a)
			if got := h.ClockNow(); got != before+1 {
				t.Errorf("free of 8-word block ticked clocks %d times, want 1", got-before)
			}
			if got := h.ClockShardNow(home); got != homeBefore+1 {
				t.Errorf("free ticked home shard %d times, want 1", got-homeBefore)
			}
			b := th.Alloc(8)
			if got := h.ClockNow(); got != before+2 {
				t.Errorf("alloc of 8-word block ticked clocks %d times, want 1", got-before-1)
			}
			if got := h.ClockShardNow(home); got != homeBefore+2 {
				t.Errorf("alloc ticked home shard %d times, want 1", got-homeBefore-1)
			}
			if b != a {
				t.Logf("allocator did not recycle (%#x -> %#x); tick counts still checked", uint32(a), uint32(b))
			}
		})
	}
}

// TestReallocVersionExceedsFreeVersion checks the linchpin of the sandbox
// argument, per shard: within one clock shard versions are strictly
// monotonic across a block's free and reuse, and across shards the encoded
// metadata words never repeat — so a transaction holding a pre-free read can
// never accept post-reallocation state without an extension that revalidates
// (and fails on) the old entry, whatever shards the transitions ticked.
func TestReallocVersionExceedsFreeVersion(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			h := newTestHeap(t, Config{ClockShards: shards})
			th := h.NewThread()
			a := th.Alloc(2)
			h.StoreNT(a, 1) // bump the word's version past its birth version
			liveMeta := h.meta[a].Load()
			th.Free(a)
			freedMeta := h.meta[a].Load()
			if metaAllocated(freedMeta) {
				t.Fatal("freed word still marked allocated")
			}
			if freedMeta == liveMeta {
				t.Error("free did not rewrite the metadata word")
			}
			// The free ticked th's home shard; shard-relative monotonicity
			// only compares versions drawn from one shard.
			if s := h.versionShard(metaVersion(freedMeta)); s != th.ClockShard() {
				t.Errorf("free versioned from shard %d, want home shard %d", s, th.ClockShard())
			}
			if h.versionShard(metaVersion(liveMeta)) == h.versionShard(metaVersion(freedMeta)) &&
				h.versionTick(metaVersion(freedMeta)) <= h.versionTick(metaVersion(liveMeta)) {
				t.Errorf("free did not advance its shard's version: %d -> %d",
					h.versionTick(metaVersion(liveMeta)), h.versionTick(metaVersion(freedMeta)))
			}
			b := th.Alloc(2)
			if b != a {
				t.Skipf("allocator did not recycle the block (%#x -> %#x)", uint32(a), uint32(b))
			}
			reusedMeta := h.meta[a].Load()
			if !metaAllocated(reusedMeta) {
				t.Fatal("reallocated word not marked allocated")
			}
			// Free and realloc ran on the same thread, hence the same home
			// shard: the tick comparison is exact, pinning per-shard
			// monotonicity across reuse.
			if s := h.versionShard(metaVersion(reusedMeta)); s != th.ClockShard() {
				t.Errorf("realloc versioned from shard %d, want home shard %d", s, th.ClockShard())
			}
			if h.versionTick(metaVersion(reusedMeta)) <= h.versionTick(metaVersion(freedMeta)) {
				t.Errorf("realloc did not advance its shard's version: %d -> %d",
					h.versionTick(metaVersion(freedMeta)), h.versionTick(metaVersion(reusedMeta)))
			}
		})
	}
}

// TestFreeInvalidatesReadOnlySnapshot is the deterministic port of the racing
// free-vs-read-only-snapshot sandbox test to the merged word layout: a
// read-only transaction reads word 0 of a block, the block is freed (and in
// the realloc variant reused and rewritten) between that read and the read of
// word 1, and the transaction must abort rather than pair pre-free and
// post-free state. The version-bump-on-free IS the generation flip, so the
// single metadata reread at revalidation is what catches it.
func TestFreeInvalidatesReadOnlySnapshot(t *testing.T) {
	for _, realloc := range []bool{false, true} {
		name := "freed"
		if realloc {
			name = "freed-and-reused"
		}
		t.Run(name, func(t *testing.T) {
			h := newTestHeap(t, Config{})
			reader := h.NewThread()
			mut := h.NewThread()
			blk := mut.Alloc(2)
			h.StoreNT(blk, 7)
			h.StoreNT(blk+1, 7)
			raced := false
			var x, y uint64
			err := reader.TryAtomic(func(tx *Txn) {
				x = tx.Load(blk)
				if !raced {
					raced = true
					mut.Free(blk)
					if realloc {
						nb := mut.Alloc(2) // exact-size free list: reuses blk
						if nb != blk {
							t.Skipf("allocator did not recycle (%#x -> %#x)", uint32(blk), uint32(nb))
						}
						h.StoreNT(nb, 9)
						h.StoreNT(nb+1, 9)
					}
				}
				y = tx.Load(blk + 1)
			})
			var ab *AbortError
			if !errors.As(err, &ab) {
				t.Fatalf("snapshot spanning a racing free committed with (%d,%d), want abort", x, y)
			}
			want := AbortIllegal // load of a freed word
			if realloc {
				want = AbortConflict // reused word forces extension; revalidation fails
			}
			if ab.Code != want {
				t.Errorf("abort code = %v, want %v", ab.Code, want)
			}
		})
	}
}

// TestCommitToFreedWordAborts drives the commit-time acquisition path of the
// merged encoding: acquisition CASes each written word from the metadata
// recorded at Store time, so a block freed between Store and commit fails
// the acquisition — with AbortIllegal if still free (never locked), and with
// AbortConflict if already reused (the recorded version can never recur), so
// a blind write can never land in a reused block's new life.
func TestCommitToFreedWordAborts(t *testing.T) {
	for _, realloc := range []bool{false, true} {
		name := "freed"
		if realloc {
			name = "freed-and-reused"
		}
		t.Run(name, func(t *testing.T) {
			h := newTestHeap(t, Config{})
			writer := h.NewThread()
			mut := h.NewThread()
			blk := mut.Alloc(1)
			raced := false
			err := writer.TryAtomic(func(tx *Txn) {
				tx.Store(blk, 5)
				if !raced {
					raced = true
					mut.Free(blk)
					if realloc {
						nb := mut.Alloc(1) // exact-size free list: reuses blk
						if nb != blk {
							t.Skipf("allocator did not recycle (%#x -> %#x)", uint32(blk), uint32(nb))
						}
						h.StoreNT(nb, 9)
					}
				}
			})
			var ab *AbortError
			if !errors.As(err, &ab) {
				t.Fatalf("commit to freed word succeeded: %v", err)
			}
			if realloc {
				if ab.Code != AbortConflict {
					t.Errorf("abort code = %v, want AbortConflict for a reused word", ab.Code)
				}
				if v := h.LoadNT(blk); v != 9 {
					t.Errorf("blind write leaked into the reused block: %d, want 9", v)
				}
			} else {
				if ab.Code != AbortIllegal {
					t.Errorf("abort code = %v, want AbortIllegal for a free word", ab.Code)
				}
				if h.allocated(blk) {
					t.Error("aborted commit resurrected a freed word")
				}
			}
		})
	}
}

// TestStressMixedTxnNTAllocFree interleaves all four access classes on shared
// blocks — transactional loads/stores, strongly atomic NT operations,
// allocation, and free — under -race. Mutators swap fresh blocks into shared
// pointer slots transactionally (freeing the unlinked block on commit, the
// paper's idiom), readers chase the pointers transactionally and must never
// observe a torn object through freed/reused memory, and every thread churns
// NT traffic on private scratch blocks that recycle through the same
// allocator the shared blocks use.
func TestStressMixedTxnNTAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	h := newTestHeap(t, Config{})
	setup := h.NewThread()
	const slots = 4
	const blockWords = 4
	ptrs := setup.Alloc(slots)
	for i := Addr(0); i < slots; i++ {
		b := setup.Alloc(blockWords)
		for w := Addr(0); w < blockWords; w++ {
			h.StoreNT(b+w, 1)
		}
		h.StoreNT(ptrs+i, uint64(b))
	}

	const workers = 6
	const rounds = 2500
	errs := make(chan string, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := h.NewThread()
			scratch := th.Alloc(2)
			rng := seed*2654435761 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < rounds; i++ {
				slot := ptrs + Addr(next()%slots)
				switch next() % 4 {
				case 0: // transactional snapshot of one shared block
					var vals [blockWords]uint64
					th.Atomic(func(tx *Txn) {
						b := Addr(tx.Load(slot))
						for w := Addr(0); w < blockWords; w++ {
							vals[w] = tx.Load(b + w)
						}
					})
					for w := 1; w < blockWords; w++ {
						if vals[w] != vals[0] {
							errs <- "torn object observed through freed/reused memory"
							return
						}
					}
				case 1: // swap in a fresh block, free the unlinked one on commit
					v := next()
					nb := th.Alloc(blockWords)
					for w := Addr(0); w < blockWords; w++ {
						h.StoreNT(nb+w, v)
					}
					th.Atomic(func(tx *Txn) {
						old := Addr(tx.Load(slot))
						tx.Store(slot, uint64(nb))
						tx.FreeOnCommit(old)
					})
				case 2: // NT churn on the private scratch block
					h.AddNT(scratch, 1)
					old := h.LoadNT(scratch + 1)
					h.CASNT(scratch+1, old, old+2)
				case 3: // allocator churn: recycle through the shared free lists
					th.Free(scratch)
					scratch = th.Alloc(2)
					h.StoreNT(scratch, next())
				}
			}
			th.Free(scratch)
		}(uint64(wk + 1))
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	// All four words of every published block must agree at quiescence too.
	fin := h.NewThread()
	for i := Addr(0); i < slots; i++ {
		var vals [blockWords]uint64
		fin.Atomic(func(tx *Txn) {
			b := Addr(tx.Load(ptrs + i))
			for w := Addr(0); w < blockWords; w++ {
				vals[w] = tx.Load(b + w)
			}
		})
		for w := 1; w < blockWords; w++ {
			if vals[w] != vals[0] {
				t.Fatalf("slot %d torn at quiescence: %v", i, vals)
			}
		}
	}
}

// TestDedupBypassCapacityRegression is the regression test for the adaptive
// read-set dedup bypass: repeated loads of a tiny distinct working set must
// not abort with AbortCapacity even though bypass mode appends duplicate
// entries — MaxReadSet pressure engages the filter, compaction drops the
// duplicates, and the filtered regime dedups from then on (the original
// repeated-Load AbortCapacity fix, preserved across the bypass).
func TestDedupBypassCapacityRegression(t *testing.T) {
	h := newTestHeap(t, Config{MaxReadSet: 8})
	th := h.NewThread()
	a := th.Alloc(4)
	err := th.TryAtomic(func(tx *Txn) {
		// 400 loads of 4 distinct words: bypass appends until pressure
		// (MaxReadSet/2 = 4 entries), then the engaged filter takes over.
		for rep := 0; rep < 100; rep++ {
			for i := Addr(0); i < 4; i++ {
				tx.Load(a + i)
			}
		}
		if n := tx.ReadSetSize(); n != 4 {
			t.Errorf("ReadSetSize = %d after repeated loads, want 4", n)
		}
	})
	if err != nil {
		t.Fatalf("distinct read set of 4 within MaxReadSet=8 aborted: %v", err)
	}
}

// TestDedupBypassWriteTxnDuplicates checks that a write transaction whose
// bypass-mode read set still holds duplicates at commit time validates and
// commits correctly (each duplicate entry re-checks the same metadata word),
// and that ReadSetSize compacts on demand — engaging the filter — without
// perturbing the outcome.
func TestDedupBypassWriteTxnDuplicates(t *testing.T) {
	h := newTestHeap(t, Config{MaxReadSet: 100})
	th := h.NewThread()
	a := th.Alloc(2)
	err := th.TryAtomic(func(tx *Txn) {
		var s uint64
		for rep := 0; rep < 16; rep++ { // stays below pressure: bypass all the way
			s += tx.Load(a) + tx.Load(a+1)
		}
		tx.Store(a, s)
		if n := tx.ReadSetSize(); n != 2 { // compacts 32 entries to 2, engages filter
			t.Errorf("ReadSetSize = %d after compaction, want 2", n)
		}
		for rep := 0; rep < 16; rep++ { // filtered from here on
			s += tx.Load(a + 1)
		}
		if n := tx.ReadSetSize(); n != 2 {
			t.Errorf("ReadSetSize = %d after filtered reloads, want 2", n)
		}
	})
	if err != nil {
		t.Fatalf("write txn with duplicated bypass reads aborted: %v", err)
	}
	if v := h.LoadNT(a); v != 0 {
		// 16 reps of (0 + 0) = 0; the point is the commit succeeded.
		t.Errorf("committed value = %d, want 0", v)
	}
}
