package htm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Metadata encoding. Each metadata word governs one heap word (the default)
// or one 2^StripeShift-word stripe, and fuses the versioned ownership record
// (orec) with the allocation state that used to live in a separate generation
// array:
//
//	bit 0     lock bit (held during commit write-back and NT writes)
//	bit 1     allocated bit (set while the word belongs to a live block)
//	bits 2-63 version: (per-shard tick << shardBits) | shard ID
//
// Folding both cells into one atomic word makes every transactional load's
// entire validation predicate — unlocked, allocated, version ≤ rv — a single
// atomic read whose three fields are mutually consistent by construction, and
// makes every allocate/free transition a single CAS per metadata word.
//
// The version field is shard-relative (Config.ClockShards): the heap keeps one
// padded clock word per shard, a writer ticks exactly one shard, and the
// encoded version carries the shard ID in its low bits so a validator can
// compare the tick against the right entry of its per-shard snapshot. With
// ClockShards=1 (the default) shardBits is zero and the encoding degenerates
// to the plain global-clock version of the pre-shard engine. Invariants:
//
//   - Only live stripes are ever locked (all lock paths check the allocated
//     bit in the same word they CAS), so free stripes are always unlocked and
//     the allocator can transition them without a lock handshake.
//   - Every transition writes a fresh version drawn from SOME shard's clock:
//     commit write-back, NT writes, free, AND allocate. Writers that hold the
//     affected metadata locks (commits, NT ops, the fallback) tick after
//     acquiring them; alloc/free own their block exclusively. Versions within
//     one shard are strictly monotonic and a (tick, shard) pair can never
//     recur, which is what keeps recorded metadata words unrepeatable. The
//     version bump on free is the generation flip of the old design; the bump
//     on allocate is what forces any transaction that read the block's
//     previous life to revalidate (and fail) before it can observe the new
//     one. See DESIGN.md "Per-word metadata" and "Sharded clock & striped
//     metadata" for the sandbox and linearization arguments.
const (
	metaLockBit  uint64 = 1 << 0
	metaAllocBit uint64 = 1 << 1
	metaVerShift        = 2

	// metaFBTagBit marks a word locked by the fine-grained TLE fallback
	// (thread.go). While a fallback operation holds a word, the version field
	// carries the owner's thread ID instead of a version — the pre-lock word
	// is preserved in the owner's lock-set and the release writes either that
	// word back (read-locked) or a fresh version (written), so no version
	// information is lost and version monotonicity is preserved. The tag sits
	// in the version field's top bit: each clock shard ticks once per
	// committed write/alloc/free transition and the shard ID occupies at most
	// 8 low bits, so a real encoded version can never reach 2^61. The tag
	// lets a contending fallback distinguish a long-held
	// fallback lock (apply the deadlock-avoidance protocol) from a commit
	// write-back (always short: commits never wait while holding locks, so
	// spinning is safe), and makes the owner readable in a debugger.
	metaFBTagBit uint64 = 1 << 63
)

func metaVersion(m uint64) uint64 { return m >> metaVerShift }
func metaLocked(m uint64) bool    { return m&metaLockBit != 0 }
func metaAllocated(m uint64) bool { return m&metaAllocBit != 0 }

// makeFallbackMeta builds the metadata word for a fallback-locked live word:
// locked, allocated, fallback-tagged, owner ID in the version field.
func makeFallbackMeta(owner uint64) uint64 {
	return metaFBTagBit | owner<<metaVerShift&^metaFBTagBit | metaAllocBit | metaLockBit
}

// metaFallbackLocked reports whether m is held by a fallback lock-set (as
// opposed to a commit write-back or NT operation, which hold the bare lock
// bit for a bounded burst).
func metaFallbackLocked(m uint64) bool {
	return m&(metaFBTagBit|metaLockBit) == metaFBTagBit|metaLockBit
}

// metaFallbackOwner extracts the owner thread ID from a fallback-locked word.
func metaFallbackOwner(m uint64) uint64 {
	return m &^ (metaFBTagBit | metaAllocBit | metaLockBit) >> metaVerShift
}

func makeMeta(version uint64, allocated bool) uint64 {
	m := version << metaVerShift
	if allocated {
		m |= metaAllocBit
	}
	return m
}

// clockLine is one version-clock shard, padded to a full cache line so that
// commits homed on different shards never contend on adjacent clock words —
// the whole point of sharding the clock.
type clockLine struct {
	v atomic.Uint64
	_ [7]uint64
}

// Heap is a simulated word-addressable memory with a built-in allocator and a
// transactional engine. All concurrent access — transactional or not — must
// go through its methods; a Heap is safe for use by multiple goroutines.
type Heap struct {
	cfg Config

	words []atomic.Uint64 // word values
	meta  []atomic.Uint64 // per-stripe metadata: lock | allocated | version

	// Sharded version clock (Config.ClockShards). Every writer ticks exactly
	// one shard — its thread's home shard, or an address-hashed shard for the
	// threadless NT operations — and encodes the shard ID into the versions
	// it publishes. shardBits/shardMask decode that encoding; both are zero
	// with one shard, collapsing the scheme to the single global clock.
	clock       []clockLine
	shardBits   uint
	shardMask   uint64
	stripeShift uint // log2 words per metadata stripe (Config.StripeShift)

	// Global TLE fallback lock, used only with Config.GlobalFallback (the
	// PR-4-era compatibility mode): fallbackSeq is even when free and odd
	// while held; transactions snapshot it at begin and validate it at
	// commit. activeCommits counts write transactions currently in their
	// commit write-back, so a fallback acquirer can wait them out. The
	// default fine-grained fallback acquires per-word metadata locks instead
	// (see thread.go) and never touches these fields, so hardware-path
	// transactions never wait at begin.
	fallbackSeq   atomic.Uint64
	fallbackMu    sync.Mutex
	activeCommits atomic.Uint64

	// Adaptive contention management (Config.Adaptive; see adaptive.go).
	// fbMode is the runtime fallback mode consulted at fallback entry;
	// fbSpinsDyn / dedupDyn are the tuned-knob overrides threads refresh at
	// begin; modeSwitches counts applied mode changes. All four are untouched
	// (and the fields below them unused) when !Adaptive.
	fbMode       atomic.Uint32
	fbSpinsDyn   atomic.Int64
	dedupDyn     atomic.Int64
	modeSwitches atomic.Uint64

	alloc   allocator
	stats   stats
	nextTID atomic.Uint64

	// ntAccesses drives cooperative yields for non-transactional accesses
	// when Config.YieldEvery is set, so that HTM-free algorithms pay the
	// same simulated per-access time as transactional ones on
	// under-provisioned hosts. ntYieldThresh is 2^64/YieldEvery (0 = never),
	// making the per-access decision a hash-and-compare, not a division.
	ntAccesses    atomic.Uint64
	ntYieldThresh uint64
}

// NewHeap creates a Heap with the given configuration (zero value for
// Rock-like defaults).
func NewHeap(cfg Config) *Heap {
	cfg = cfg.withDefaults()
	shift := uint(cfg.StripeShift)
	h := &Heap{
		cfg:         cfg,
		words:       make([]atomic.Uint64, cfg.Words),
		meta:        make([]atomic.Uint64, (cfg.Words+(1<<shift)-1)>>shift),
		clock:       make([]clockLine, cfg.ClockShards),
		shardMask:   uint64(cfg.ClockShards - 1),
		stripeShift: shift,
	}
	for n := cfg.ClockShards; n > 1; n >>= 1 {
		h.shardBits++
	}
	h.ntYieldThresh = yieldThreshold(cfg.YieldEvery)
	if cfg.Adaptive {
		if cfg.GlobalFallback {
			h.fbMode.Store(uint32(ModeGlobal))
		}
		h.fbSpinsDyn.Store(int64(cfg.fallbackSpins()))
		h.dedupDyn.Store(int64(cfg.dedupBypassThreshold()))
	}
	h.alloc.init(h)
	return h
}

// mi maps a word address to the index of its governing metadata word: the
// identity with per-word metadata, the stripe index with Config.StripeShift.
func (h *Heap) mi(a Addr) int { return int(a) >> h.stripeShift }

// tickShard advances shard s of the version clock and returns the new tick
// encoded as a version (tick<<shardBits | s). Callers must already exclude
// every concurrent writer of the metadata words the version will be stored to
// (by holding their locks, or — for alloc/free — by owning the block).
func (h *Heap) tickShard(s int) uint64 {
	return h.clock[s].v.Add(1)<<h.shardBits | uint64(s)
}

// ntShard picks the clock shard ticked by a non-transactional write to a.
// NT operations have no Thread and hence no home shard; any shard is correct
// (the encoded version always names the shard that was ticked), so hash the
// address to spread unrelated NT traffic across shards.
func (h *Heap) ntShard(a Addr) int { return int(uint64(a) & h.shardMask) }

// versionTick and versionShard decode an encoded version.
func (h *Heap) versionTick(v uint64) uint64 { return v >> h.shardBits }
func (h *Heap) versionShard(v uint64) int   { return int(v & h.shardMask) }

// Config returns the effective configuration of the heap.
func (h *Heap) Config() Config { return h.cfg }

// valid reports whether a is a non-nil address inside the arena.
func (h *Heap) valid(a Addr) bool {
	return a != NilAddr && int(a) < len(h.words)
}

// allocated reports whether the word at a is currently allocated.
func (h *Heap) allocated(a Addr) bool {
	return h.valid(a) && metaAllocated(h.meta[h.mi(a)].Load())
}

// yieldThreshold converts Config.YieldEvery into the compare threshold used
// by the per-access yield checks: a uniformly random uint64 falls below it
// with probability 1/y. YieldEvery=1 saturates to always-yield (the naive
// 2^64/1+1 would wrap to zero and disable yielding entirely).
func yieldThreshold(y int) uint64 {
	switch {
	case y <= 0:
		return 0
	case y == 1:
		return ^uint64(0)
	default:
		return ^uint64(0)/uint64(y) + 1
	}
}

// maybeYieldNT models access time for non-transactional operations; see
// Config.YieldEvery. A shared counter (cheap on the hosts where this is on)
// spreads yields across all NT traffic; hashing it keeps the expected rate at
// one yield per YieldEvery accesses without a per-access division.
func (h *Heap) maybeYieldNT() {
	if h.ntYieldThresh != 0 {
		if h.ntAccesses.Add(1)*0x9E3779B97F4A7C15 < h.ntYieldThresh {
			runtime.Gosched()
		}
	}
}

func (h *Heap) checkNTAddr(a Addr, op string) {
	if !h.valid(a) {
		panic(fmt.Sprintf("htm: non-transactional %s through invalid address %#x (simulated segmentation fault)", op, uint32(a)))
	}
}

func ntFreedPanic(a Addr, op string) {
	panic(fmt.Sprintf("htm: non-transactional %s of freed word %#x (simulated segmentation fault)", op, uint32(a)))
}

// lockMeta spin-acquires the metadata word governing a and returns the
// pre-acquisition value. The allocated check rides in the same CAS'd word, so
// lock acquisition and the liveness check are one atomic step; it panics on
// freed words (simulated segmentation fault: correct non-transactional code
// never writes freed memory). A held lock is either a commit write-back
// (short) or a fallback lock-set hold (potentially long — the owner may be
// descheduled mid-operation), so the loop yields periodically instead of
// burning the core.
func (h *Heap) lockMeta(a Addr, op string) uint64 {
	mi := h.mi(a)
	for spins := 0; ; spins++ {
		m := h.meta[mi].Load()
		if !metaAllocated(m) {
			ntFreedPanic(a, op)
		}
		if !metaLocked(m) && h.meta[mi].CompareAndSwap(m, m|metaLockBit) {
			return m
		}
		if spins&63 == 63 {
			runtime.Gosched()
		}
	}
}

// releaseMeta publishes a new version for a previously locked live metadata
// word (indexed by metadata index, not word address).
func (h *Heap) releaseMeta(mi int, version uint64) {
	h.meta[mi].Store(makeMeta(version, true))
}

// releaseMetaUnchanged unlocks a metadata word without changing its version,
// used when a locked stripe was not actually modified.
func (h *Heap) releaseMetaUnchanged(mi int, prev uint64) {
	h.meta[mi].Store(prev)
}

// LoadNT performs a non-transactional (strongly atomic) load of the word at
// a. It panics if a is invalid or freed, modeling a segmentation fault:
// correct non-transactional code never touches freed memory.
func (h *Heap) LoadNT(a Addr) uint64 {
	h.maybeYieldNT()
	h.checkNTAddr(a, "load")
	mi := h.mi(a)
	for spins := 0; ; spins++ {
		m1 := h.meta[mi].Load()
		if metaLocked(m1) {
			if spins&63 == 63 {
				runtime.Gosched()
			}
			continue
		}
		if !metaAllocated(m1) {
			ntFreedPanic(a, "load")
		}
		v := h.words[a].Load()
		if h.meta[mi].Load() == m1 {
			return v
		}
	}
}

// StoreNT performs a non-transactional (strongly atomic) store of v to the
// word at a. It is equivalent to — but cheaper than — a one-word transaction,
// and conflicts correctly with concurrent transactions.
func (h *Heap) StoreNT(a Addr, v uint64) {
	h.maybeYieldNT()
	h.checkNTAddr(a, "store")
	h.lockMeta(a, "store")
	h.words[a].Store(v)
	wv := h.tickShard(h.ntShard(a))
	h.releaseMeta(h.mi(a), wv)
}

// CASNT performs a non-transactional compare-and-swap on the word at a,
// returning whether the swap was performed. It models the CAS instruction
// used by the paper's non-HTM baseline algorithms.
func (h *Heap) CASNT(a Addr, old, new uint64) bool {
	h.maybeYieldNT()
	h.checkNTAddr(a, "cas")
	prev := h.lockMeta(a, "cas")
	if h.words[a].Load() != old {
		h.releaseMetaUnchanged(h.mi(a), prev)
		return false
	}
	h.words[a].Store(new)
	wv := h.tickShard(h.ntShard(a))
	h.releaseMeta(h.mi(a), wv)
	return true
}

// AddNT atomically adds delta to the word at a non-transactionally and
// returns the new value.
func (h *Heap) AddNT(a Addr, delta uint64) uint64 {
	h.maybeYieldNT()
	h.checkNTAddr(a, "add")
	h.lockMeta(a, "add")
	v := h.words[a].Load() + delta
	h.words[a].Store(v)
	wv := h.tickShard(h.ntShard(a))
	h.releaseMeta(h.mi(a), wv)
	return v
}

// ClockNow returns the total number of version-clock ticks across all shards.
// With ClockShards=1 this is exactly the pre-shard global clock value; with
// more shards it is a census, not a version — versions are shard-relative and
// only per-shard ticks (ClockShardNow) are comparable. It is exported for
// tests and diagnostics.
func (h *Heap) ClockNow() uint64 {
	var sum uint64
	for i := range h.clock {
		sum += h.clock[i].v.Load()
	}
	return sum
}

// ClockShards returns the effective number of version-clock shards.
func (h *Heap) ClockShards() int { return len(h.clock) }

// ClockShardNow returns the current tick of clock shard s.
func (h *Heap) ClockShardNow(s int) uint64 { return h.clock[s].v.Load() }

// StripeWords returns the number of heap words governed by one metadata word
// (1 unless Config.StripeShift is set).
func (h *Heap) StripeWords() int { return 1 << h.stripeShift }
