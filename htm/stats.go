package htm

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

const numAbortCodes = int(AbortSpurious) + 1

// statCell is one thread's statistics block. Each Thread owns a cell and
// updates only it, so the counters are uncontended in steady state; the cell
// is padded to 64-byte cache lines so cells that end up adjacent in memory
// never false-share. The fields are atomics only so that Heap.Stats may read
// them while threads run.
type statCell struct {
	starts          atomic.Uint64
	commits         atomic.Uint64
	aborts          [numAbortCodes]atomic.Uint64
	fallbackRuns    atomic.Uint64
	fallbackLocks   atomic.Uint64
	fallbackRetries atomic.Uint64
	fallbackStalls  atomic.Uint64
	allocCalls      atomic.Uint64
	freeCalls       atomic.Uint64
	allocWords      atomic.Uint64
	freeWords       atomic.Uint64
	clockShardTicks atomic.Uint64
	stripeConflicts atomic.Uint64
	// 20 counters (160 B); pad the tail to three full cache lines (192 B).
	_pad [4]uint64
}

// statCellBytes pins statCell's intended footprint: whole cache lines, so
// adjacent cells never false-share. The paired constant expressions below are
// a compile-time assertion — uintptr underflow is a constant-overflow build
// error — so adding a counter without re-padding cannot silently split a cell
// across a line boundary again.
const statCellBytes = 192

const (
	_ = statCellBytes - unsafe.Sizeof(statCell{}) // fails to build if the cell grew
	_ = unsafe.Sizeof(statCell{}) - statCellBytes // fails to build if the cell shrank
)

// stats is the heap-internal statistics block: a registry of per-thread
// cells, plus the exact global live/high-water pair maintained on the alloc
// path unless Config.NoMaxLive is set (throughput-only runs).
type stats struct {
	liveWords    atomic.Uint64
	maxLiveWords atomic.Uint64

	mu    sync.Mutex
	cells []*statCell
}

// bump and bumpBy update a statCell counter. Each cell has a single writer
// (its owning thread), so a plain load+store pair — two MOVs on x86 — stands
// in for the atomic read-modify-write; the fields stay atomic only so that
// Heap.Stats can read them concurrently without a data race.
func bump(c *atomic.Uint64) { c.Store(c.Load() + 1) }

func bumpBy(c *atomic.Uint64, n uint64) { c.Store(c.Load() + n) }

// register adds a fresh cell for a new thread.
func (st *stats) register() *statCell {
	c := &statCell{}
	st.mu.Lock()
	st.cells = append(st.cells, c)
	st.mu.Unlock()
	return c
}

// snapshotCells copies the registry so summation can proceed unlocked.
func (st *stats) snapshotCells() []*statCell {
	st.mu.Lock()
	cells := make([]*statCell, len(st.cells))
	copy(cells, st.cells)
	st.mu.Unlock()
	return cells
}

// cellLive sums the per-thread words counters into a current live estimate,
// clamped at zero (a mid-flight snapshot can observe a free before the
// matching alloc on another cell).
func (st *stats) cellLive() uint64 {
	var alloc, freed uint64
	for _, c := range st.snapshotCells() {
		alloc += c.allocWords.Load()
		freed += c.freeWords.Load()
	}
	if freed > alloc {
		return 0
	}
	return alloc - freed
}

// Stats is a point-in-time snapshot of heap and transaction statistics.
type Stats struct {
	// Starts is the number of transaction attempts begun.
	Starts uint64
	// Commits is the number of attempts that committed.
	Commits uint64
	// Aborts counts failed attempts by reason.
	Aborts map[AbortCode]uint64
	// FallbackRuns is the number of operations completed on the TLE fallback
	// path (fine-grained lock-set or, with Config.GlobalFallback, the global
	// lock).
	FallbackRuns uint64
	// FallbackLocks counts per-word metadata lock acquisitions by the
	// fine-grained fallback (0 in GlobalFallback mode).
	FallbackLocks uint64
	// FallbackRetries counts fine-grained fallback attempts that released
	// their whole lock-set and re-ran the operation body — the
	// deadlock-avoidance release-and-retry path.
	FallbackRetries uint64
	// FallbackStalls counts injected lock-holder stall windows executed on the
	// fallback path (Config.Faults with StallProb > 0); 0 without injection.
	FallbackStalls uint64
	// AllocCalls and FreeCalls count allocator operations.
	AllocCalls, FreeCalls uint64
	// ClockShardTicks counts version-clock ticks issued through threads —
	// commits, fallback commits, allocs and frees. Ticks by threadless NT
	// operations (address-hashed shards) are not counted. At quiescence with
	// no NT writes it equals the sum of ClockShardNow over all shards.
	ClockShardTicks uint64
	// StripeConflicts counts conflict aborts detected on striped metadata
	// (commit acquisition/validation failures and failed extensions while
	// Config.StripeShift > 0). It includes both true word-level conflicts and
	// stripe-aliasing false conflicts — the difference from a StripeShift=0
	// run of the same workload is the aliasing cost. Always 0 unstriped.
	StripeConflicts uint64
	// LiveWords is the number of currently allocated payload words;
	// MaxLiveWords is its high-water mark. These drive the paper's
	// space-usage comparisons and are exact in the default configuration.
	// With Config.NoMaxLive both are derived from unsynchronized per-thread
	// counters: exact when snapshotted at quiescence (how the harness uses
	// them), approximate — possibly in either direction — if snapshotted
	// mid-run. Space-measured experiments must not set NoMaxLive.
	LiveWords, MaxLiveWords uint64
}

// SpuriousAborts returns the number of attempts killed by fault injection —
// Aborts[AbortSpurious], named for the overload detectors that watch it.
func (s Stats) SpuriousAborts() uint64 { return s.Aborts[AbortSpurious] }

// TotalAborts returns the sum of aborts across all reasons.
func (s Stats) TotalAborts() uint64 {
	var t uint64
	for _, n := range s.Aborts {
		t += n
	}
	return t
}

// AbortRate returns aborted attempts as a fraction of all attempts, or 0 if
// no attempts were made.
func (s Stats) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.TotalAborts()) / float64(s.Starts)
}

// String renders the snapshot as a single diagnostic line.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "starts=%d commits=%d aborts=%d (", s.Starts, s.Commits, s.TotalAborts())
	first := true
	for c := AbortConflict; c <= AbortSpurious; c++ {
		if n := s.Aborts[c]; n > 0 {
			if !first {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%d", c, n)
			first = false
		}
	}
	fmt.Fprintf(&b, ") fallback=%d fblocks=%d fbretries=%d fbstalls=%d alloc=%d free=%d live=%dw maxLive=%dw clockticks=%d",
		s.FallbackRuns, s.FallbackLocks, s.FallbackRetries, s.FallbackStalls,
		s.AllocCalls, s.FreeCalls, s.LiveWords, s.MaxLiveWords, s.ClockShardTicks)
	if s.StripeConflicts > 0 {
		fmt.Fprintf(&b, " stripeconf=%d", s.StripeConflicts)
	}
	return b.String()
}

// Stats returns a snapshot of the heap's counters, aggregated across all
// per-thread cells. Counters are read without mutual exclusion, so concurrent
// activity may be partially reflected; this is acceptable for the reporting
// the snapshot feeds, and the snapshot is exact at quiescence.
func (h *Heap) Stats() Stats {
	s := Stats{Aborts: make(map[AbortCode]uint64, numAbortCodes)}
	for _, c := range h.stats.snapshotCells() {
		s.Starts += c.starts.Load()
		s.Commits += c.commits.Load()
		s.FallbackRuns += c.fallbackRuns.Load()
		s.FallbackLocks += c.fallbackLocks.Load()
		s.FallbackRetries += c.fallbackRetries.Load()
		s.FallbackStalls += c.fallbackStalls.Load()
		s.AllocCalls += c.allocCalls.Load()
		s.FreeCalls += c.freeCalls.Load()
		s.ClockShardTicks += c.clockShardTicks.Load()
		s.StripeConflicts += c.stripeConflicts.Load()
		for code := 1; code < numAbortCodes; code++ {
			if n := c.aborts[code].Load(); n > 0 {
				s.Aborts[AbortCode(code)] += n
			}
		}
	}
	if h.cfg.trackMaxLive {
		s.LiveWords = h.stats.liveWords.Load()
		s.MaxLiveWords = h.stats.maxLiveWords.Load()
		return s
	}
	live := h.stats.cellLive()
	s.LiveWords = live
	for {
		m := h.stats.maxLiveWords.Load()
		if live <= m || h.stats.maxLiveWords.CompareAndSwap(m, live) {
			break
		}
	}
	s.MaxLiveWords = h.stats.maxLiveWords.Load()
	return s
}

// ResetMaxLive resets the live-words high-water mark to the current live
// count, so space measurements can be scoped to an experiment phase.
func (h *Heap) ResetMaxLive() {
	if h.cfg.trackMaxLive {
		h.stats.maxLiveWords.Store(h.stats.liveWords.Load())
		return
	}
	h.stats.maxLiveWords.Store(h.stats.cellLive())
}
