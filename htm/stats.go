package htm

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

const numAbortCodes = int(AbortSpurious) + 1

// statCell is one thread's statistics block. Each Thread owns a cell and
// updates only it, so the counters are uncontended in steady state; the cell
// is padded to 64-byte cache lines so cells that end up adjacent in memory
// never false-share. The fields are atomics only so that Heap.Stats may read
// them while threads run.
type statCell struct {
	starts          atomic.Uint64
	commits         atomic.Uint64
	aborts          [numAbortCodes]atomic.Uint64
	fallbackRuns    atomic.Uint64
	fallbackLocks   atomic.Uint64
	fallbackRetries atomic.Uint64
	fallbackStalls  atomic.Uint64
	allocCalls      atomic.Uint64
	freeCalls       atomic.Uint64
	allocWords      atomic.Uint64
	freeWords       atomic.Uint64
	clockShardTicks atomic.Uint64
	stripeConflicts atomic.Uint64
	dedupEngages    atomic.Uint64
	fallbackWaits   atomic.Uint64
	// inCommit and inFine are NOT statistics: they are the adaptive-mode
	// quiesce-barrier words (Config.Adaptive; see adaptive.go). inCommit is
	// nonzero while this thread's hardware commit write-back is in flight,
	// inFine while a fine-grained fallback run is. They live in the cell
	// because the cell registry is already the heap's per-thread scan list and
	// the cell's tail padding absorbs them for free; like the counters, each
	// has a single writer (its owning thread) and is read by others — here the
	// global-fallback acquirer draining the heap. Always 0 when !Adaptive.
	inCommit atomic.Uint64
	inFine   atomic.Uint64
	// 24 words: exactly three full cache lines (192 B), no padding left.
}

// statCellBytes pins statCell's intended footprint: whole cache lines, so
// adjacent cells never false-share. The paired constant expressions below are
// a compile-time assertion — uintptr underflow is a constant-overflow build
// error — so adding a counter without re-padding cannot silently split a cell
// across a line boundary again.
const statCellBytes = 192

const (
	_ = statCellBytes - unsafe.Sizeof(statCell{}) // fails to build if the cell grew
	_ = unsafe.Sizeof(statCell{}) - statCellBytes // fails to build if the cell shrank
)

// stats is the heap-internal statistics block: a registry of per-thread
// cells, plus the exact global live/high-water pair maintained on the alloc
// path unless Config.NoMaxLive is set (throughput-only runs).
//
// The registry is copy-on-write: register (rare — once per NewThread)
// rebuilds the slice under mu, readers load the current slice pointer with no
// lock and no allocation. That matters because quiesceForGlobal reads it
// inside every adaptive global-fallback critical section — a mutex plus a
// slice copy there would tax the exact serial path the mode switch is trying
// to make fast.
type stats struct {
	liveWords    atomic.Uint64
	maxLiveWords atomic.Uint64

	mu    sync.Mutex // serializes register
	cells atomic.Pointer[[]*statCell]
}

// bump and bumpBy update a statCell counter. Each cell has a single writer
// (its owning thread), so a plain load+store pair — two MOVs on x86 — stands
// in for the atomic read-modify-write; the fields stay atomic only so that
// Heap.Stats can read them concurrently without a data race.
func bump(c *atomic.Uint64) { c.Store(c.Load() + 1) }

func bumpBy(c *atomic.Uint64, n uint64) { c.Store(c.Load() + n) }

// register adds a fresh cell for a new thread (copy-on-write).
func (st *stats) register() *statCell {
	c := &statCell{}
	st.mu.Lock()
	var cells []*statCell
	if old := st.cells.Load(); old != nil {
		cells = append(cells, *old...)
	}
	cells = append(cells, c)
	st.cells.Store(&cells)
	st.mu.Unlock()
	return c
}

// snapshotCells returns the current registry: an immutable slice, safe to
// iterate without locking. Threads registered after the load are absent, which
// every caller already tolerates (sums can only lag, and the quiesce barrier's
// newcomers self-exclude by observing the odd fallback sequence).
func (st *stats) snapshotCells() []*statCell {
	if p := st.cells.Load(); p != nil {
		return *p
	}
	return nil
}

// cellLive sums the per-thread words counters into a current live estimate,
// clamped at zero (a mid-flight snapshot can observe a free before the
// matching alloc on another cell).
func (st *stats) cellLive() uint64 {
	var alloc, freed uint64
	for _, c := range st.snapshotCells() {
		alloc += c.allocWords.Load()
		freed += c.freeWords.Load()
	}
	if freed > alloc {
		return 0
	}
	return alloc - freed
}

// Stats is a point-in-time snapshot of heap and transaction statistics.
type Stats struct {
	// Starts is the number of transaction attempts begun.
	Starts uint64
	// Commits is the number of attempts that committed.
	Commits uint64
	// Aborts counts failed attempts by reason.
	Aborts map[AbortCode]uint64
	// FallbackRuns is the number of operations completed on the TLE fallback
	// path (fine-grained lock-set or, with Config.GlobalFallback, the global
	// lock).
	FallbackRuns uint64
	// FallbackLocks counts per-word metadata lock acquisitions by the
	// fine-grained fallback (0 in GlobalFallback mode).
	FallbackLocks uint64
	// FallbackRetries counts fine-grained fallback attempts that released
	// their whole lock-set and re-ran the operation body — the
	// deadlock-avoidance release-and-retry path.
	FallbackRetries uint64
	// FallbackWaits counts fine-grained fallback lock acquisitions that
	// collided with another operation's held lock-set (at most one count per
	// acquisition, however long the wait). Unlike FallbackRetries — which
	// only fires on OUT-OF-ORDER collisions — this counts in-order convoying
	// too, so its per-run rate is the Tuner's shared-footprint signal: 0 when
	// fallback footprints are disjoint, ~1+ when every run queues behind the
	// same words.
	FallbackWaits uint64
	// FallbackStalls counts injected lock-holder stall windows executed on the
	// fallback path (Config.Faults with StallProb > 0); 0 without injection.
	FallbackStalls uint64
	// AllocCalls and FreeCalls count allocator operations.
	AllocCalls, FreeCalls uint64
	// ClockShardTicks counts version-clock ticks issued through threads —
	// commits, fallback commits, allocs and frees. Ticks by threadless NT
	// operations (address-hashed shards) are not counted. At quiescence with
	// no NT writes it equals the sum of ClockShardNow over all shards.
	ClockShardTicks uint64
	// StripeConflicts counts conflict aborts detected on striped metadata
	// (commit acquisition/validation failures and failed extensions while
	// Config.StripeShift > 0). It includes both true word-level conflicts and
	// stripe-aliasing false conflicts — the difference from a StripeShift=0
	// run of the same workload is the aliasing cost. Always 0 unstriped.
	StripeConflicts uint64
	// DedupEngages counts transaction attempts that crossed the DedupBypass
	// threshold and compacted their read set (see Config.DedupBypass). The
	// Tuner reads its rate as the signal that the bypass budget is being
	// exhausted.
	DedupEngages uint64
	// ModeSwitches counts runtime fallback-mode changes applied through
	// Heap.SetFallbackMode (Config.Adaptive; 0 otherwise). It is a heap-level
	// counter, not a per-thread one: switches are rare control-plane events.
	ModeSwitches uint64
	// LiveWords is the number of currently allocated payload words;
	// MaxLiveWords is its high-water mark. These drive the paper's
	// space-usage comparisons and are exact in the default configuration.
	// With Config.NoMaxLive both are derived from unsynchronized per-thread
	// counters: exact when snapshotted at quiescence (how the harness uses
	// them), approximate — possibly in either direction — if snapshotted
	// mid-run. Space-measured experiments must not set NoMaxLive.
	LiveWords, MaxLiveWords uint64
}

// SpuriousAborts returns the number of attempts killed by fault injection —
// Aborts[AbortSpurious], named for the overload detectors that watch it.
func (s Stats) SpuriousAborts() uint64 { return s.Aborts[AbortSpurious] }

// TotalAborts returns the sum of aborts across all reasons.
func (s Stats) TotalAborts() uint64 {
	var t uint64
	for _, n := range s.Aborts {
		t += n
	}
	return t
}

// AbortRate returns aborted attempts as a fraction of all attempts, or 0 if
// no attempts were made.
func (s Stats) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.TotalAborts()) / float64(s.Starts)
}

// String renders the snapshot as a single diagnostic line.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "starts=%d commits=%d aborts=%d (", s.Starts, s.Commits, s.TotalAborts())
	first := true
	for c := AbortConflict; c <= AbortSpurious; c++ {
		if n := s.Aborts[c]; n > 0 {
			if !first {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%d", c, n)
			first = false
		}
	}
	fmt.Fprintf(&b, ") fallback=%d fblocks=%d fbretries=%d fbwaits=%d fbstalls=%d alloc=%d free=%d live=%dw maxLive=%dw clockticks=%d",
		s.FallbackRuns, s.FallbackLocks, s.FallbackRetries, s.FallbackWaits, s.FallbackStalls,
		s.AllocCalls, s.FreeCalls, s.LiveWords, s.MaxLiveWords, s.ClockShardTicks)
	if s.StripeConflicts > 0 {
		fmt.Fprintf(&b, " stripeconf=%d", s.StripeConflicts)
	}
	if s.ModeSwitches > 0 {
		fmt.Fprintf(&b, " modeswitches=%d", s.ModeSwitches)
	}
	return b.String()
}

// Stats returns a snapshot of the heap's counters, aggregated across all
// per-thread cells. Counters are read without mutual exclusion, so concurrent
// activity may be partially reflected; this is acceptable for the reporting
// the snapshot feeds, and the snapshot is exact at quiescence.
func (h *Heap) Stats() Stats {
	s := Stats{Aborts: make(map[AbortCode]uint64, numAbortCodes)}
	s.ModeSwitches = h.modeSwitches.Load()
	for _, c := range h.stats.snapshotCells() {
		s.Starts += c.starts.Load()
		s.Commits += c.commits.Load()
		s.FallbackRuns += c.fallbackRuns.Load()
		s.FallbackLocks += c.fallbackLocks.Load()
		s.FallbackRetries += c.fallbackRetries.Load()
		s.FallbackWaits += c.fallbackWaits.Load()
		s.FallbackStalls += c.fallbackStalls.Load()
		s.AllocCalls += c.allocCalls.Load()
		s.FreeCalls += c.freeCalls.Load()
		s.ClockShardTicks += c.clockShardTicks.Load()
		s.StripeConflicts += c.stripeConflicts.Load()
		s.DedupEngages += c.dedupEngages.Load()
		for code := 1; code < numAbortCodes; code++ {
			if n := c.aborts[code].Load(); n > 0 {
				s.Aborts[AbortCode(code)] += n
			}
		}
	}
	if h.cfg.trackMaxLive {
		s.LiveWords = h.stats.liveWords.Load()
		s.MaxLiveWords = h.stats.maxLiveWords.Load()
		return s
	}
	live := h.stats.cellLive()
	s.LiveWords = live
	for {
		m := h.stats.maxLiveWords.Load()
		if live <= m || h.stats.maxLiveWords.CompareAndSwap(m, live) {
			break
		}
	}
	s.MaxLiveWords = h.stats.maxLiveWords.Load()
	return s
}

// ResetMaxLive resets the live-words high-water mark to the current live
// count, so space measurements can be scoped to an experiment phase.
func (h *Heap) ResetMaxLive() {
	if h.cfg.trackMaxLive {
		h.stats.maxLiveWords.Store(h.stats.liveWords.Load())
		return
	}
	h.stats.maxLiveWords.Store(h.stats.cellLive())
}
