package htm

import (
	"fmt"
	"runtime"
)

// Thread is a per-goroutine execution context: it carries the transaction
// descriptor, the allocator home shard, backoff state and per-thread
// statistics. Create one Thread per worker goroutine with Heap.NewThread; a
// Thread must not be shared between goroutines.
type Thread struct {
	h     *Heap
	id    uint64
	shard int // allocator home shard
	// clockShard is the version-clock shard this thread's commits, allocs and
	// frees tick (Config.ClockShards). Assigning threads round-robin by ID
	// keeps concurrently created threads on distinct shards, so disjoint
	// commits from different threads never RMW a shared clock line.
	clockShard int
	rng        uint64
	txn        Txn
	inTxn      bool

	// cell is this thread's private statistics block; see stats.
	cell *statCell

	// faults is this thread's fault-injection state; nil when the heap has no
	// plan, so the hot paths pay a single pointer check.
	faults *threadFaults

	// Attempt outcome counters for this thread.
	attempts uint64
	commits  uint64

	// mags are the per-size-class allocator magazines (see alloc.go); they
	// serve the alloc/free fast path with no locking.
	mags [maxMagSize + 1]magazine
}

// NewThread creates an execution context bound to the heap. Each worker
// goroutine needs its own Thread.
func (h *Heap) NewThread() *Thread {
	id := h.nextTID.Add(1)
	th := &Thread{
		h:          h,
		id:         id,
		shard:      int(id) & (len(h.alloc.shards) - 1),
		clockShard: int(id & h.shardMask),
		rng:        id*0x9E3779B97F4A7C15 | 1,
		cell:       h.stats.register(),
	}
	th.txn.th = th
	th.txn.h = h
	th.txn.words = h.words
	th.txn.meta = h.meta
	th.txn.clock = h.clock
	th.txn.shardBits = h.shardBits
	th.txn.shardMask = h.shardMask
	th.txn.sshift = h.stripeShift
	th.txn.rv = make([]uint64, len(h.clock))
	th.txn.yieldThresh = h.ntYieldThresh // same conversion as NT accesses
	th.txn.maxReadSet = h.cfg.MaxReadSet
	th.txn.storeBufSize = h.cfg.StoreBufferSize
	// Read-set dedup engages at the configured bypass threshold, never above
	// half the capacity bound, so a bypass attempt can never abort for
	// capacity that compaction would have recovered (see Config.DedupBypass).
	th.txn.dedupAfter = h.cfg.dedupBypassThreshold()
	th.txn.fbOwner = id & fallbackOwnerMask
	// With Config.Adaptive the static globalFB flag stays false — mode is the
	// heap's runtime word, consulted at fallback entry, and begin/extend/commit
	// monitor the fallback epoch through the adaptive checks instead.
	th.txn.adaptive = h.cfg.Adaptive
	th.txn.globalFB = h.cfg.EnableTLE && h.cfg.GlobalFallback && !h.cfg.Adaptive
	th.txn.fbSpins = h.cfg.fallbackSpins()
	if h.cfg.Faults.enabled() {
		th.faults = newThreadFaults(h.cfg.Faults, id)
		th.txn.faults = th.faults
		th.txn.fbDelay = th.faults.releaseDelay
	}
	return th
}

// ID returns the thread's unique identifier (1-based).
func (th *Thread) ID() uint64 { return th.id }

// ClockShard returns the version-clock shard this thread's commits tick.
func (th *Thread) ClockShard() int { return th.clockShard }

// tickClock advances this thread's home clock shard and returns the encoded
// version. Callers must hold (or exclusively own) every metadata word the
// version will be published to — see Heap.tickShard.
func (th *Thread) tickClock() uint64 {
	bump(&th.cell.clockShardTicks)
	return th.h.tickShard(th.clockShard)
}

// Heap returns the heap this thread operates on.
func (th *Thread) Heap() *Heap { return th.h }

// Alloc allocates a zeroed block of size words outside any transaction.
func (th *Thread) Alloc(size int) Addr {
	return th.h.alloc.alloc(th, size)
}

// Free returns the block whose payload starts at a to the heap. Freeing
// memory that a concurrent transaction is using is safe: the transaction
// aborts (sandboxing) instead of observing reused memory.
func (th *Thread) Free(a Addr) {
	th.h.alloc.free(th, a)
}

// BlockSize returns the payload size in words of the allocated block at a.
func (th *Thread) BlockSize(a Addr) int { return th.h.alloc.blockSize(a) }

// xorshift PRNG for backoff jitter.
func (th *Thread) rand() uint64 {
	x := th.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	th.rng = x
	return x
}

// backoff spins for an exponentially growing, jittered interval after the
// given number of consecutive failed attempts.
func (th *Thread) backoff(attempt int) {
	if attempt > 16 {
		attempt = 16
	}
	max := uint64(1) << uint(attempt)
	n := th.rand() % max
	for i := uint64(0); i < n; i++ {
		spinHint()
	}
	if attempt >= 8 {
		runtime.Gosched()
	}
}

// spinHint is a cheap CPU pause used in backoff loops.
//
//go:noinline
func spinHint() {}

// begin initializes the reusable transaction descriptor for an attempt. Only
// the GlobalFallback compatibility mode waits out an active fallback critical
// section here; under the default fine-grained fallback a transaction begins
// unconditionally — a concurrent fallback is visible to it purely as locked
// metadata words, exactly like any other conflicting writer.
func (th *Thread) begin() *Txn {
	t := &th.txn
	t.reset()
	h := th.h
	if t.adaptive {
		// Refresh the tuned knobs — one uncontended load each; the Tuner may
		// have moved them since the last attempt — and wait out any global
		// fallback critical section, snapshotting the epoch it will bump.
		// In fine mode the seq never changes, so the wait is a single load.
		t.fbSpins = int(h.fbSpinsDyn.Load())
		t.dedupAfter = int(h.dedupDyn.Load())
		for {
			seq := h.fallbackSeq.Load()
			if seq&1 == 0 {
				t.fbSeq = seq
				break
			}
			runtime.Gosched()
		}
	} else if t.globalFB {
		for {
			seq := h.fallbackSeq.Load()
			if seq&1 == 0 {
				t.fbSeq = seq
				break
			}
			runtime.Gosched()
		}
	}
	// Snapshot every clock shard. One load per shard, no RMW: begin leaves no
	// trace on any shared cache line. With one shard this is the scalar
	// rv = clock.Load() of the pre-shard engine.
	for i := range t.rv {
		t.rv[i] = h.clock[i].v.Load()
	}
	th.attempts++
	bump(&th.cell.starts)
	if th.faults != nil {
		th.faults.attemptStart()
	}
	return t
}

// faultOpStart opens a new fault-injection operation scope (one Atomic,
// AtomicUntil or TryAtomic call), resetting the per-op injection budget.
func (th *Thread) faultOpStart() {
	if th.faults != nil {
		th.faults.opStart()
	}
}

// TryAtomic executes f as a single transaction attempt. It returns nil if
// the attempt committed and an *AbortError describing the failure otherwise.
// Use it when the caller manages retries itself — for example the telescoping
// Collect loops, which adapt their step size to abort feedback.
//
// f may be re-executed by other calls and must be restartable; see Txn.
func (th *Thread) TryAtomic(f func(*Txn)) error {
	th.faultOpStart()
	code, addr, ok := th.tryAtomic(f)
	if ok {
		return nil
	}
	return &AbortError{Code: code, Addr: addr}
}

// tryAtomic runs one attempt and reports its outcome without materializing an
// error, so the Atomic retry loop pays nothing extra per abort. In-body
// aborts arrive as the abortSentinel panic; commit-time aborts arrive by
// return value and skip unwinding.
func (th *Thread) tryAtomic(f func(*Txn)) (code AbortCode, addr Addr, ok bool) {
	if th.inTxn {
		panic("htm: nested transactions are not supported")
	}
	th.inTxn = true
	t := th.begin()
	defer func() {
		th.inTxn = false
		if r := recover(); r != nil {
			if r != abortSentinel {
				panic(r) // user panic: propagate
			}
			t.rollbackAllocs()
			bump(&th.cell.aborts[t.abortCode])
			code, addr = t.abortCode, t.abortAddr
		}
	}()
	// Begin-site injection: the attempt dies before the body runs, like an
	// interrupt landing right after checkpoint. Only hardware attempts pass
	// through here (runFallback calls fallbackAttempt directly), so the
	// fallback path is structurally immune to injection.
	if th.faults != nil && th.faults.fireBegin() {
		t.abort(AbortSpurious, NilAddr)
	}
	f(t)
	// Commit-point injection: the body ran to completion and every buffered
	// effect is discarded anyway — the most expensive abort the environment
	// can inflict.
	if th.faults != nil && th.faults.fireCommit() {
		t.rollbackAllocs()
		bump(&th.cell.aborts[AbortSpurious])
		return AbortSpurious, NilAddr, false
	}
	if code, addr = t.commit(); code != 0 {
		t.rollbackAllocs()
		bump(&th.cell.aborts[code])
		return code, addr, false
	}
	th.commits++
	bump(&th.cell.commits)
	return 0, NilAddr, true
}

// Atomic executes f atomically, retrying with exponential backoff until it
// commits. If the heap enables TLE and an attempt fails MaxRetries times, f
// runs on the pessimistic fallback path: by default a fine-grained software
// transaction that locks the per-word metadata of exactly the words it
// touches, or — with Config.GlobalFallback — under the paper's single global
// lock (§6). Without TLE, a transaction that deterministically overflows the
// store buffer panics rather than retrying forever.
func (th *Thread) Atomic(f func(*Txn)) {
	th.AtomicUntil(f, nil)
}

// AtomicUntil is Atomic with an abandon hook: stop is consulted after each
// failed attempt, and a true return abandons the operation. It reports whether
// f committed — false means f definitely did not take effect (an attempt is
// abandoned only after it has already aborted and rolled back). A nil stop
// never abandons, making AtomicUntil(f, nil) exactly Atomic.
//
// Once the TLE fallback engages the operation runs to completion regardless
// of stop: the fallback cannot abort, so there is no between-attempts point
// left to abandon at. This bounds how late a deadline can act by one fallback
// execution, in exchange for keeping the false ⇒ not-committed guarantee.
func (th *Thread) AtomicUntil(f func(*Txn), stop func() bool) bool {
	th.faultOpStart()
	for attempt := 0; ; attempt++ {
		code, addr, ok := th.tryAtomic(f)
		if ok {
			return true
		}
		cfg := &th.h.cfg
		if cfg.EnableTLE && attempt+1 >= cfg.MaxRetries {
			th.runFallback(f)
			return true
		}
		if code == AbortOverflow && !cfg.EnableTLE {
			// Deterministic failure: the same body will overflow again.
			panic(fmt.Sprintf("htm: transaction overflows the %d-entry store buffer and no TLE fallback is enabled: %v",
				cfg.StoreBufferSize, &AbortError{Code: code, Addr: addr}))
		}
		if stop != nil && stop() {
			return false
		}
		th.backoff(attempt)
	}
}

// runFallback executes f on the TLE fallback path. The default is a
// pessimistic software transaction over the per-word metadata locks: every
// word f loads or stores is lock-acquired on first touch (with the thread's
// owner ID recorded in the held word), stores are buffered, and the commit
// writes them back under the locks and releases the whole set with one
// version tick. Fallback operations with disjoint footprints — and hardware
// transactions on words the fallback does not hold — run concurrently; a
// lock-order conflict with another fallback releases everything and retries
// with jittered backoff (see fbAcquire for the deadlock-avoidance argument).
func (th *Thread) runFallback(f func(*Txn)) {
	if th.txn.adaptive {
		// Consult the runtime mode word through the quiesce barrier: either we
		// are cleared onto the fine path with inFine published for the whole
		// run, or the word directs us to the global path.
		if !th.enterFineFallback() {
			th.runGlobalFallback(f)
			return
		}
		defer th.cell.inFine.Store(0)
	} else if th.txn.globalFB {
		th.runGlobalFallback(f)
		return
	}
	t := &th.txn
	th.inTxn = true
	defer func() { th.inTxn = false }()
	for attempt := 0; ; attempt++ {
		t.reset()
		t.direct = true
		if th.fallbackAttempt(f) {
			// Injected adversity: stall at the worst possible moment — body
			// done, entire lock-set held, commit not yet run — so every thread
			// colliding with this footprint must survive a long hold. The
			// stall is finite (StallSpins yields), so progress is delayed,
			// never destroyed.
			if th.faults != nil && th.faults.maybeStall() {
				bump(&th.cell.fallbackStalls)
			}
			t.commit() // write-back, release lock-set, run deferred frees
			bump(&th.cell.fallbackRuns)
			return
		}
		bump(&th.cell.fallbackRetries)
		if t.adaptive {
			// Nothing is held between attempts (fbRelease ran), so this is a
			// safe point to re-consult the mode word: in a storm so dense that
			// runs stop completing, the Tuner's switch to the global lock must
			// redirect the operations ALREADY in the retry loop, not only new
			// entries — they are the storm. Dropping inFine for the backoff also
			// lets a global acquirer's quiesce scan drain past this thread.
			th.cell.inFine.Store(0)
			th.backoff(attempt)
			if !th.enterFineFallback() {
				th.runGlobalFallback(f)
				return
			}
			continue
		}
		th.backoff(attempt)
	}
}

// fallbackAttempt runs one execution of f over the fallback lock-set and
// reports whether it completed. An abortSentinel panic — an out-of-order
// lock conflict, or the body calling Txn.Abort — releases the lock-set
// (restoring every displaced metadata word; buffered stores were never
// applied), rolls back in-body allocations and asks the caller to retry. Any
// other panic (including the simulated segfault for a freed-word access,
// which the fallback, like all direct access, never sandboxes) releases the
// locks and propagates.
func (th *Thread) fallbackAttempt(f func(*Txn)) (done bool) {
	t := &th.txn
	defer func() {
		if r := recover(); r != nil {
			t.fbRelease(0)
			t.rollbackAllocs()
			if r != abortSentinel {
				panic(r)
			}
		}
	}()
	f(t)
	return true
}

// runGlobalFallback is the global-lock fallback path — the static
// Config.GlobalFallback compatibility mode, and ModeGlobal of the adaptive
// runtime mode word: f runs under the process-wide fallback lock with direct
// (unbuffered) memory access, mutually exclusive with all transaction
// commits and (in adaptive mode, via the quiesce barrier) with all
// fine-grained fallback runs (paper §6).
func (th *Thread) runGlobalFallback(f func(*Txn)) {
	h := th.h
	h.fallbackMu.Lock()
	defer h.fallbackMu.Unlock()
	h.fallbackSeq.Add(1) // odd: lock held; new transactions wait
	if th.txn.adaptive {
		// Adaptive quiesce: drain in-flight commit write-backs AND fine-
		// grained fallback runs via the per-thread barrier words — the static
		// activeCommits counter is not maintained in adaptive mode.
		h.quiesceForGlobal(th.cell)
	} else {
		// Wait for in-flight commits to drain.
		for h.activeCommits.Load() != 0 {
			runtime.Gosched()
		}
	}
	t := &th.txn
	t.reset()
	t.direct = true
	t.directGlobal = true
	th.inTxn = true
	defer func() {
		th.inTxn = false
		h.fallbackSeq.Add(1) // even: released
	}()
	f(t)
	t.commit() // direct commits cannot abort
	bump(&th.cell.fallbackRuns)
}

// AttemptStats returns the number of transaction attempts and commits made
// by this thread.
func (th *Thread) AttemptStats() (attempts, commits uint64) {
	return th.attempts, th.commits
}
