package htm

import (
	"errors"
	"testing"
)

func newTestHeap(t testing.TB, cfg Config) *Heap {
	t.Helper()
	if cfg.Words == 0 {
		cfg.Words = 1 << 16
	}
	return NewHeap(cfg)
}

func TestNewHeapDefaults(t *testing.T) {
	h := NewHeap(Config{})
	cfg := h.Config()
	if cfg.Words != defaultHeapWords {
		t.Errorf("Words = %d, want %d", cfg.Words, defaultHeapWords)
	}
	if cfg.StoreBufferSize != RockStoreBufferSize {
		t.Errorf("StoreBufferSize = %d, want %d", cfg.StoreBufferSize, RockStoreBufferSize)
	}
	if !cfg.Sandboxed {
		t.Error("default config must be sandboxed")
	}
	if cfg.MaxRetries != defaultMaxRetries {
		t.Errorf("MaxRetries = %d, want %d", cfg.MaxRetries, defaultMaxRetries)
	}
}

func TestAllocZeroesAndFreeRecycles(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(4)
	if a == NilAddr {
		t.Fatal("Alloc returned nil")
	}
	for i := Addr(0); i < 4; i++ {
		if v := h.LoadNT(a + i); v != 0 {
			t.Errorf("fresh word %d = %d, want 0", i, v)
		}
	}
	h.StoreNT(a, 42)
	th.Free(a)
	b := th.Alloc(4)
	if b != a {
		t.Errorf("exact-size free list should recycle: got %#x, want %#x", uint32(b), uint32(a))
	}
	if v := h.LoadNT(b); v != 0 {
		t.Errorf("recycled word = %d, want 0", v)
	}
}

func TestAllocDistinctBlocks(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	seen := make(map[Addr]bool)
	for i := 0; i < 100; i++ {
		a := th.Alloc(3)
		if seen[a] {
			t.Fatalf("Alloc returned live block %#x twice", uint32(a))
		}
		seen[a] = true
	}
}

func TestBlockSize(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	for _, size := range []int{1, 2, 7, 64, 1000} {
		a := th.Alloc(size)
		if got := th.BlockSize(a); got != size {
			t.Errorf("BlockSize(%d-word block) = %d", size, got)
		}
	}
}

func TestDoubleFreePanics(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(2)
	th.Free(a)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	th.Free(a)
}

func TestFreeInvalidPanics(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	defer func() {
		if recover() == nil {
			t.Error("free of nil did not panic")
		}
	}()
	th.Free(NilAddr)
}

func TestAllocNonPositivePanics(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) did not panic")
		}
	}()
	th.Alloc(0)
}

func TestArenaExhaustionPanics(t *testing.T) {
	h := NewHeap(Config{Words: 256})
	th := h.NewThread()
	defer func() {
		if recover() == nil {
			t.Error("exhausted arena did not panic")
		}
	}()
	for i := 0; i < 1000; i++ {
		th.Alloc(8)
	}
}

func TestNTLoadStore(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	h.StoreNT(a, 12345)
	if v := h.LoadNT(a); v != 12345 {
		t.Errorf("LoadNT = %d, want 12345", v)
	}
}

func TestNTAccessFreedPanics(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	th.Free(a)
	for name, f := range map[string]func(){
		"load":  func() { h.LoadNT(a) },
		"store": func() { h.StoreNT(a, 1) },
		"cas":   func() { h.CASNT(a, 0, 1) },
		"add":   func() { h.AddNT(a, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("non-transactional %s of freed word did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCASNT(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	h.StoreNT(a, 5)
	if h.CASNT(a, 4, 9) {
		t.Error("CAS with wrong expected value succeeded")
	}
	if v := h.LoadNT(a); v != 5 {
		t.Errorf("failed CAS modified the word: %d", v)
	}
	if !h.CASNT(a, 5, 9) {
		t.Error("CAS with right expected value failed")
	}
	if v := h.LoadNT(a); v != 9 {
		t.Errorf("after CAS = %d, want 9", v)
	}
}

func TestAddNT(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	if v := h.AddNT(a, 7); v != 7 {
		t.Errorf("AddNT = %d, want 7", v)
	}
	if v := h.AddNT(a, ^uint64(0)); v != 6 {
		t.Errorf("AddNT(-1) = %d, want 6", v)
	}
}

func TestLiveWordAccounting(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	base := h.Stats().LiveWords
	a := th.Alloc(10)
	b := th.Alloc(20)
	if live := h.Stats().LiveWords; live != base+30 {
		t.Errorf("LiveWords = %d, want %d", live, base+30)
	}
	th.Free(a)
	if live := h.Stats().LiveWords; live != base+20 {
		t.Errorf("LiveWords after free = %d, want %d", live, base+20)
	}
	if max := h.Stats().MaxLiveWords; max < base+30 {
		t.Errorf("MaxLiveWords = %d, want >= %d", max, base+30)
	}
	th.Free(b)
	h.ResetMaxLive()
	if max := h.Stats().MaxLiveWords; max != base {
		t.Errorf("MaxLiveWords after reset = %d, want %d", max, base)
	}
}

func TestAbortErrorFormatting(t *testing.T) {
	e := &AbortError{Code: AbortConflict, Addr: 0x10}
	if e.Error() == "" {
		t.Error("empty error string")
	}
	if !errors.Is(e, &AbortError{Code: AbortConflict}) {
		t.Error("errors.Is should match on code")
	}
	if errors.Is(e, &AbortError{Code: AbortOverflow}) {
		t.Error("errors.Is should not match different code")
	}
	for c := AbortConflict; c <= AbortSpurious; c++ {
		if c.String() == "" {
			t.Errorf("empty name for code %d", c)
		}
	}
	if AbortCode(99).String() == "" {
		t.Error("unknown code must still render")
	}
}

func TestStatsString(t *testing.T) {
	h := newTestHeap(t, Config{})
	th := h.NewThread()
	a := th.Alloc(1)
	th.Atomic(func(tx *Txn) { tx.Store(a, 1) })
	s := h.Stats()
	if s.Commits != 1 || s.Starts < 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
	if s.AbortRate() < 0 || s.AbortRate() > 1 {
		t.Errorf("abort rate out of range: %f", s.AbortRate())
	}
}

func TestStatsAbortRateZeroStarts(t *testing.T) {
	var s Stats
	if s.AbortRate() != 0 {
		t.Error("zero-start abort rate should be 0")
	}
}
