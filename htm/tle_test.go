package htm

import (
	"sync"
	"testing"
)

// bothFallbackModes runs f once with the default fine-grained fallback and
// once with the GlobalFallback compatibility lock, so both implementations
// keep satisfying the same TLE contract.
func bothFallbackModes(t *testing.T, f func(t *testing.T, global bool)) {
	t.Run("fine-grained", func(t *testing.T) { f(t, false) })
	t.Run("global", func(t *testing.T) { f(t, true) })
}

func TestTLEFallbackOnOverflow(t *testing.T) {
	bothFallbackModes(t, func(t *testing.T, global bool) {
		// With TLE enabled, a transaction that deterministically overflows the
		// store buffer completes on the fallback path instead of panicking.
		h := newTestHeap(t, Config{StoreBufferSize: 2, EnableTLE: true, MaxRetries: 3, GlobalFallback: global})
		th := h.NewThread()
		a := th.Alloc(8)
		th.Atomic(func(tx *Txn) {
			for i := Addr(0); i < 8; i++ {
				tx.Store(a+i, uint64(i)+1)
			}
		})
		for i := Addr(0); i < 8; i++ {
			if v := h.LoadNT(a + i); v != uint64(i)+1 {
				t.Errorf("word %d = %d, want %d", i, v, i+1)
			}
		}
		s := h.Stats()
		if s.FallbackRuns == 0 {
			t.Error("fallback was not engaged")
		}
		if global && s.FallbackLocks != 0 {
			t.Errorf("global fallback acquired %d per-word locks", s.FallbackLocks)
		}
		if !global && s.FallbackLocks == 0 {
			t.Error("fine-grained fallback acquired no per-word locks")
		}
	})
}

func TestTLEMutualExclusionWithTransactions(t *testing.T) {
	bothFallbackModes(t, func(t *testing.T, global bool) {
		// A fallback operation that writes a multi-word invariant must be
		// atomic with respect to concurrently committing transactions.
		h := newTestHeap(t, Config{StoreBufferSize: 2, EnableTLE: true, MaxRetries: 2, GlobalFallback: global})
		setup := h.NewThread()
		a := setup.Alloc(4)
		const iters = 300
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := h.NewThread()
				for i := 0; i < iters; i++ {
					// Four stores overflow the 2-entry buffer, forcing TLE.
					th.Atomic(func(tx *Txn) {
						v := tx.Load(a) + 1
						tx.Store(a, v)
						tx.Store(a+1, v)
						tx.Store(a+2, v)
						tx.Store(a+3, v)
					})
				}
			}()
		}
		readerFail := make(chan string, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := h.NewThread()
			for i := 0; i < iters; i++ {
				var vals [4]uint64
				th.Atomic(func(tx *Txn) {
					for j := Addr(0); j < 4; j++ {
						vals[j] = tx.Load(a + j)
					}
				})
				for j := 1; j < 4; j++ {
					if vals[j] != vals[0] {
						select {
						case readerFail <- "torn fallback section observed":
						default:
						}
						return
					}
				}
			}
		}()
		wg.Wait()
		select {
		case msg := <-readerFail:
			t.Fatal(msg)
		default:
		}
		if v := h.LoadNT(a); v != 2*iters {
			t.Errorf("counter = %d, want %d", v, 2*iters)
		}
	})
}

func TestTLECounterExactness(t *testing.T) {
	bothFallbackModes(t, func(t *testing.T, global bool) {
		// Mixed population: some increments run transactionally, some on the
		// fallback path; the total must still be exact.
		h := newTestHeap(t, Config{StoreBufferSize: 1, EnableTLE: true, MaxRetries: 1, GlobalFallback: global})
		setup := h.NewThread()
		a := setup.Alloc(2)
		const n, m = 4, 200
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				th := h.NewThread()
				for j := 0; j < m; j++ {
					if k%2 == 0 {
						th.Atomic(func(tx *Txn) { tx.Add(a, 1) }) // fits store buffer
					} else {
						th.Atomic(func(tx *Txn) { // overflows: fallback
							tx.Add(a, 1)
							tx.Add(a+1, 1)
						})
					}
				}
			}(i)
		}
		wg.Wait()
		if v := h.LoadNT(a); v != n*m {
			t.Errorf("counter = %d, want %d", v, n*m)
		}
	})
}

func TestFallbackRunsFrees(t *testing.T) {
	bothFallbackModes(t, func(t *testing.T, global bool) {
		h := newTestHeap(t, Config{StoreBufferSize: 1, EnableTLE: true, MaxRetries: 1, GlobalFallback: global})
		th := h.NewThread()
		a := th.Alloc(4)
		b := th.Alloc(1)
		th.Atomic(func(tx *Txn) {
			tx.Store(a, 1)
			tx.Store(a+1, 1) // overflow -> fallback
			tx.FreeOnCommit(b)
		})
		if h.allocated(b) {
			t.Error("fallback did not run deferred frees")
		}
	})
}

// TestFallbackReadOnlyRestoresMetadata: a fine-grained fallback that only
// reads must leave every touched word's metadata bit-for-bit as it found it —
// no version tick, no spurious invalidation of concurrent readers.
func TestFallbackReadOnlyRestoresMetadata(t *testing.T) {
	h := newTestHeap(t, Config{StoreBufferSize: 1, EnableTLE: true, MaxRetries: 1})
	th := h.NewThread()
	a := th.Alloc(4)
	for i := Addr(0); i < 4; i++ {
		h.StoreNT(a+i, uint64(i))
	}
	// The overflow that forces the fallback happens on scratch words; a..a+3
	// are only read, so their metadata must come back untouched.
	scratch := th.Alloc(2)
	var before [4]uint64
	for i := range before {
		before[i] = h.meta[a+Addr(i)].Load()
	}
	clock := h.ClockNow()
	homeBefore := h.ClockShardNow(th.ClockShard())
	var sum uint64
	th.Atomic(func(tx *Txn) {
		tx.Store(scratch, 1)
		tx.Store(scratch+1, 1) // overflow -> fallback
		sum = 0
		for i := Addr(0); i < 4; i++ {
			sum += tx.Load(a + i)
		}
	})
	if sum != 0+1+2+3 {
		t.Errorf("fallback read sum = %d, want 6", sum)
	}
	for i := range before {
		if got := h.meta[a+Addr(i)].Load(); got != before[i] {
			t.Errorf("word %d metadata %#x, want restored %#x", i, got, before[i])
		}
	}
	// The write-back of scratch ticks the thread's home clock shard exactly
	// once, and no other shard.
	if got := h.ClockNow(); got != clock+1 {
		t.Errorf("clock advanced by %d, want 1 (single tick per fallback commit)", got-clock)
	}
	if got := h.ClockShardNow(th.ClockShard()); got != homeBefore+1 {
		t.Errorf("home shard advanced by %d, want 1", got-homeBefore)
	}
}
