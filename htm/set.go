package htm

// setLinearMax is the read/write set size up to which membership tests use a
// plain linear scan of the backing slice. Most of the paper's transactions
// (queue operations, telescoped collect steps) stay under it; past it the
// transaction switches to a setIndex, keeping Load/Store O(1) instead of the
// O(n) scan that made large transactions quadratic.
const setLinearMax = 8

// setIndex is an open-addressing hash index mapping a word address to its
// slot in a transaction's read or write set. Slots are generation-stamped so
// clearing the index between uses is O(1) (bump the generation); the table is
// reused across transaction attempts, so steady-state operation allocates
// nothing.
type idxSlot struct {
	addr Addr
	gen  uint32
	slot int32
}

type setIndex struct {
	slots []idxSlot
	gen   uint32
	n     int
}

func idxHash(a Addr) uint32 {
	return uint32((uint64(a) * 0x9E3779B97F4A7C15) >> 32)
}

// reset empties the index in O(1) by advancing the generation stamp.
func (ix *setIndex) reset() {
	if len(ix.slots) == 0 {
		return
	}
	ix.n = 0
	ix.gen++
	if ix.gen == 0 { // stamp wrapped: scrub stale matches once
		for i := range ix.slots {
			ix.slots[i].gen = 0
		}
		ix.gen = 1
	}
}

// lookup returns the set slot recorded for a, or -1.
func (ix *setIndex) lookup(a Addr) int {
	if len(ix.slots) == 0 {
		return -1
	}
	mask := uint32(len(ix.slots) - 1)
	for i := idxHash(a) & mask; ; i = (i + 1) & mask {
		s := &ix.slots[i]
		if s.gen != ix.gen {
			return -1
		}
		if s.addr == a {
			return int(s.slot)
		}
	}
}

// insert records that a lives at the given set slot. The caller guarantees a
// is not already present.
func (ix *setIndex) insert(a Addr, slot int) {
	if len(ix.slots) == 0 {
		ix.slots = make([]idxSlot, 4*setLinearMax)
		ix.gen = 1
	} else if ix.n*4 >= len(ix.slots)*3 {
		ix.rehash(len(ix.slots) * 2)
	}
	ix.place(a, slot)
}

func (ix *setIndex) place(a Addr, slot int) {
	mask := uint32(len(ix.slots) - 1)
	i := idxHash(a) & mask
	for ix.slots[i].gen == ix.gen {
		i = (i + 1) & mask
	}
	ix.slots[i] = idxSlot{addr: a, gen: ix.gen, slot: int32(slot)}
	ix.n++
}

// rehash doubles the table, re-placing live entries. It runs only when the
// set outgrows every previous attempt's size, so steady state never rehashes.
func (ix *setIndex) rehash(size int) {
	old := ix.slots
	oldGen := ix.gen
	ix.slots = make([]idxSlot, size)
	ix.gen = 1
	ix.n = 0
	for i := range old {
		if old[i].gen == oldGen {
			ix.place(old[i].addr, int(old[i].slot))
		}
	}
}
