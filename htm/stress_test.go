package htm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// TestStressBankTransfer checks serializability: concurrent transfers between
// accounts conserve the total balance.
func TestStressBankTransfer(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	h := newTestHeap(t, Config{})
	setup := h.NewThread()
	const accounts = 16
	const initial = 1000
	arr := setup.Alloc(accounts)
	for i := Addr(0); i < accounts; i++ {
		h.StoreNT(arr+i, initial)
	}
	const workers, transfers = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := h.NewThread()
			rng := seed*2654435761 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < transfers; i++ {
				from := Addr(next() % accounts)
				to := Addr(next() % accounts)
				amt := next() % 10
				th.Atomic(func(tx *Txn) {
					f := tx.Load(arr + from)
					if f < amt {
						return
					}
					tx.Store(arr+from, f-amt)
					tx.Store(arr+to, tx.Load(arr+to)+amt)
				})
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	var total uint64
	for i := Addr(0); i < accounts; i++ {
		total += h.LoadNT(arr + i)
	}
	if total != accounts*initial {
		t.Errorf("total balance = %d, want %d", total, accounts*initial)
	}
}

// TestStressAllocFree hammers the allocator from many goroutines and checks
// that no live block is ever handed out twice.
func TestStressAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	h := NewHeap(Config{Words: 1 << 18})
	const workers, rounds = 8, 3000
	var mu sync.Mutex
	live := make(map[Addr]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := h.NewThread()
			var mine []Addr
			rng := seed | 1
			for i := 0; i < rounds; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				if rng%3 != 0 || len(mine) == 0 {
					size := int(rng%7) + 1
					a := th.Alloc(size)
					mu.Lock()
					if _, dup := live[a]; dup {
						mu.Unlock()
						t.Errorf("block %#x allocated twice", uint32(a))
						return
					}
					live[a] = size
					mu.Unlock()
					mine = append(mine, a)
				} else {
					a := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					mu.Lock()
					delete(live, a)
					mu.Unlock()
					th.Free(a)
				}
			}
			for _, a := range mine {
				mu.Lock()
				delete(live, a)
				mu.Unlock()
				th.Free(a)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if got := h.Stats().LiveWords; got != 0 {
		t.Errorf("LiveWords = %d after freeing everything", got)
	}
}

// TestStressFreeUnderReaders frees and reallocates blocks while transactional
// readers chase a published pointer; sandboxing must convert every
// use-after-free into a clean abort and readers must never observe a torn
// object.
func TestStressFreeUnderReaders(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	h := newTestHeap(t, Config{})
	setup := h.NewThread()
	// ptr -> block of 2 words, both holding the same value.
	ptr := setup.Alloc(1)
	blk := setup.Alloc(2)
	h.StoreNT(blk, 1)
	h.StoreNT(blk+1, 1)
	h.StoreNT(ptr, uint64(blk))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // mutator: swap in a fresh block, free the old one
		defer wg.Done()
		th := h.NewThread()
		for i := uint64(2); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nb := th.Alloc(2)
			h.StoreNT(nb, i)
			h.StoreNT(nb+1, i)
			var old Addr
			th.Atomic(func(tx *Txn) {
				old = Addr(tx.Load(ptr))
				tx.Store(ptr, uint64(nb))
				tx.FreeOnCommit(old)
			})
		}
	}()
	errs := make(chan string, 4)
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			th := h.NewThread()
			for i := 0; i < 3000; i++ {
				var x, y uint64
				th.Atomic(func(tx *Txn) {
					b := Addr(tx.Load(ptr))
					x = tx.Load(b)
					y = tx.Load(b + 1)
				})
				if x != y {
					errs <- "torn object observed through freed/reused memory"
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// Property: committing a batch of writes and reading them back transactionally
// returns exactly the written values (round-trip through the TM engine).
func TestQuickTxnRoundTrip(t *testing.T) {
	h := newTestHeap(t, Config{StoreBufferSize: -1})
	th := h.NewThread()
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 128 {
			vals = vals[:128]
		}
		a := th.Alloc(len(vals))
		defer th.Free(a)
		th.Atomic(func(tx *Txn) {
			for i, v := range vals {
				tx.Store(a+Addr(i), v)
			}
		})
		ok := true
		th.Atomic(func(tx *Txn) {
			ok = true
			for i, v := range vals {
				if tx.Load(a+Addr(i)) != v {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the allocator never returns overlapping blocks, for arbitrary
// size sequences.
func TestQuickAllocatorNoOverlap(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 18})
	th := h.NewThread()
	type span struct{ lo, hi Addr }
	f := func(sizes []uint8) bool {
		var spans []span
		var addrs []Addr
		for _, s := range sizes {
			size := int(s%32) + 1
			a := th.Alloc(size)
			for _, sp := range spans {
				if a < sp.hi && sp.lo < a+Addr(size) {
					return false
				}
			}
			spans = append(spans, span{a, a + Addr(size)})
			addrs = append(addrs, a)
		}
		for _, a := range addrs {
			th.Free(a)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: TryAtomic returns either nil or an *AbortError, never another
// error type.
func TestQuickTryAtomicErrorDiscipline(t *testing.T) {
	h := newTestHeap(t, Config{StoreBufferSize: 4})
	th := h.NewThread()
	a := th.Alloc(16)
	f := func(n uint8, explicit bool) bool {
		err := th.TryAtomic(func(tx *Txn) {
			for i := Addr(0); i < Addr(n%16); i++ {
				tx.Store(a+i, uint64(i))
			}
			if explicit {
				tx.Abort()
			}
		})
		if err == nil {
			return !explicit && n%16 <= 4
		}
		var ab *AbortError
		return errors.As(err, &ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
