package queue

import (
	"repro/htm"
	"repro/internal/epoch"
)

// MSQueueEBR is the Michael-Scott queue with epoch-based reclamation
// (Fraser [2004]): each operation pins the global epoch once on entry and
// unpins on exit, and dequeued nodes are retired into a limbo list that is
// freed two epoch advances later. Compared with the ROP variant there is no
// per-load announce/validate — traversal inside the pinned region uses plain
// loads — so the per-operation overhead is one announcement total, at the
// price of reclamation stalling whenever any thread parks inside a pinned
// region. This is the third standard point in the reclamation design space
// between "pool and never free" (MSQueue) and "announce every load"
// (MSQueueROP).
//
// A pinned epoch guarantees a reachable node is neither freed nor reused, so
// untagged pointers are ABA-safe here for the same reason as in the ROP
// variant: a retired node's address cannot be re-allocated while any thread
// that might still CAS against it remains pinned.
type MSQueueEBR struct {
	h    *htm.Heap
	desc htm.Addr
	dom  *epoch.Domain
}

var _ Queue = (*MSQueueEBR)(nil)
var _ CtxCloser = (*MSQueueEBR)(nil)

type ebrPriv struct {
	rec *epoch.Record
}

// NewMSQueueEBR allocates an empty queue (one dummy node) and its
// reclamation domain on h.
func NewMSQueueEBR(h *htm.Heap) *MSQueueEBR {
	th := h.NewThread()
	q := &MSQueueEBR{h: h, desc: th.Alloc(msDescWords), dom: epoch.NewDomain(h)}
	dummy := th.Alloc(qNodeWords)
	h.StoreNT(q.desc+msHead, uint64(dummy))
	h.StoreNT(q.desc+msTail, uint64(dummy))
	return q
}

// Name implements Queue.
func (q *MSQueueEBR) Name() string { return "Michael-Scott EBR" }

// NewCtx implements Queue, acquiring an epoch record for the thread.
func (q *MSQueueEBR) NewCtx(th *htm.Thread) *Ctx {
	return &Ctx{th: th, priv: &ebrPriv{rec: q.dom.Acquire(th)}}
}

// CloseCtx releases the context's epoch record, draining its limbo backlog.
// Call when the thread is done with the queue.
func (q *MSQueueEBR) CloseCtx(c *Ctx) {
	c.priv.(*ebrPriv).rec.Release()
}

// Enqueue implements Queue. The whole retry loop runs inside one pinned
// region: the tail node cannot be freed while we are pinned, so its next
// pointer can be dereferenced with a plain load, with no announcement per
// read.
func (q *MSQueueEBR) Enqueue(c *Ctx, v uint64) {
	h := c.th.Heap()
	rec := c.priv.(*ebrPriv).rec
	n := c.th.Alloc(qNodeWords)
	h.StoreNT(n+qVal, v)
	h.StoreNT(n+qNext, 0)
	rec.Pin()
	for {
		tail := htm.Addr(h.LoadNT(q.desc + msTail))
		next := htm.Addr(h.LoadNT(tail + qNext)) // safe: pinned
		if htm.Addr(h.LoadNT(q.desc+msTail)) != tail {
			continue
		}
		if next == htm.NilAddr {
			if h.CASNT(tail+qNext, 0, uint64(n)) {
				h.CASNT(q.desc+msTail, uint64(tail), uint64(n))
				rec.Unpin()
				return
			}
		} else {
			h.CASNT(q.desc+msTail, uint64(tail), uint64(next))
		}
	}
}

// Dequeue implements Queue: the standard Michael-Scott dequeue under a
// single pinned region, retiring the old dummy node into the limbo list
// after the head swings.
func (q *MSQueueEBR) Dequeue(c *Ctx) (uint64, bool) {
	h := c.th.Heap()
	rec := c.priv.(*ebrPriv).rec
	rec.Pin()
	for {
		head := htm.Addr(h.LoadNT(q.desc + msHead))
		tail := htm.Addr(h.LoadNT(q.desc + msTail))
		next := htm.Addr(h.LoadNT(head + qNext)) // safe: pinned
		if htm.Addr(h.LoadNT(q.desc+msHead)) != head {
			continue
		}
		if next == htm.NilAddr {
			rec.Unpin()
			return 0, false
		}
		if head == tail {
			h.CASNT(q.desc+msTail, uint64(tail), uint64(next))
			continue
		}
		v := h.LoadNT(next + qVal) // safe: pinned
		if h.CASNT(q.desc+msHead, uint64(head), uint64(next)) {
			rec.Retire(head)
			rec.Unpin()
			return v, true
		}
	}
}
