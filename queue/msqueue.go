package queue

import (
	"repro/htm"
)

// Counted (tagged) pointers: address in the low 32 bits, modification tag in
// the high 32. The Michael-Scott queue recycles nodes through thread-local
// pools, so a plain CAS would be vulnerable to ABA — the tag is the classic
// remedy, and one of the complexities the HTM queue simply does not have.
func tagPtr(p htm.Addr, tag uint64) uint64 { return uint64(p) | tag<<32 }
func ptrOf(f uint64) htm.Addr              { return htm.Addr(f & 0xFFFFFFFF) }
func tagOf(f uint64) uint64                { return f >> 32 }

// MSQueue descriptor layout: tagged head and tail pointers.
const (
	msHead = iota
	msTail
	msDescWords
)

// MSQueue is the Michael-Scott lock-free FIFO (PODC '96) with per-thread
// node pools: a dequeued node goes back to the dequeuer's pool and is reused
// by its next enqueue, but is never freed. Even in a quiescent state the
// memory consumed is proportional to the historical maximum queue size —
// the space disadvantage the paper's §1.1 calls out.
type MSQueue struct {
	h    *htm.Heap
	desc htm.Addr
}

var _ Queue = (*MSQueue)(nil)

type msPriv struct {
	pool []htm.Addr
}

// NewMSQueue allocates an empty queue (one dummy node) on h.
func NewMSQueue(h *htm.Heap) *MSQueue {
	th := h.NewThread()
	q := &MSQueue{h: h, desc: th.Alloc(msDescWords)}
	dummy := th.Alloc(qNodeWords)
	h.StoreNT(q.desc+msHead, tagPtr(dummy, 0))
	h.StoreNT(q.desc+msTail, tagPtr(dummy, 0))
	return q
}

// Name implements Queue.
func (q *MSQueue) Name() string { return "Michael-Scott" }

// NewCtx implements Queue.
func (q *MSQueue) NewCtx(th *htm.Thread) *Ctx {
	return &Ctx{th: th, priv: &msPriv{}}
}

func (q *MSQueue) allocNode(c *Ctx) htm.Addr {
	p := c.priv.(*msPriv)
	if n := len(p.pool); n > 0 {
		a := p.pool[n-1]
		p.pool = p.pool[:n-1]
		return a
	}
	return c.th.Alloc(qNodeWords)
}

func (q *MSQueue) recycle(c *Ctx, n htm.Addr) {
	p := c.priv.(*msPriv)
	p.pool = append(p.pool, n)
}

// Enqueue implements Queue — the original two-phase MS enqueue with helping:
// link the node after the last one, then swing the tail, helping a lagging
// tail forward when necessary.
func (q *MSQueue) Enqueue(c *Ctx, v uint64) {
	h := c.th.Heap()
	n := q.allocNode(c)
	h.StoreNT(n+qVal, v)
	// Reset the recycled node's next pointer, advancing its tag so that
	// pending CASes against its old identity fail.
	old := h.LoadNT(n + qNext)
	h.StoreNT(n+qNext, tagPtr(htm.NilAddr, tagOf(old)+1))
	for {
		tail := h.LoadNT(q.desc + msTail)
		next := h.LoadNT(ptrOf(tail) + qNext)
		if tail != h.LoadNT(q.desc+msTail) {
			continue
		}
		if ptrOf(next) == htm.NilAddr {
			if h.CASNT(ptrOf(tail)+qNext, next, tagPtr(n, tagOf(next)+1)) {
				h.CASNT(q.desc+msTail, tail, tagPtr(n, tagOf(tail)+1))
				return
			}
		} else {
			h.CASNT(q.desc+msTail, tail, tagPtr(ptrOf(next), tagOf(tail)+1))
		}
	}
}

// Dequeue implements Queue — the original MS dequeue: the value is read from
// the new dummy before the head swings, and the old dummy is recycled into
// the dequeuer's pool.
func (q *MSQueue) Dequeue(c *Ctx) (uint64, bool) {
	h := c.th.Heap()
	for {
		head := h.LoadNT(q.desc + msHead)
		tail := h.LoadNT(q.desc + msTail)
		next := h.LoadNT(ptrOf(head) + qNext)
		if head != h.LoadNT(q.desc+msHead) {
			continue
		}
		if ptrOf(head) == ptrOf(tail) {
			if ptrOf(next) == htm.NilAddr {
				return 0, false
			}
			h.CASNT(q.desc+msTail, tail, tagPtr(ptrOf(next), tagOf(tail)+1))
			continue
		}
		v := h.LoadNT(ptrOf(next) + qVal)
		if h.CASNT(q.desc+msHead, head, tagPtr(ptrOf(next), tagOf(head)+1)) {
			q.recycle(c, ptrOf(head))
			return v, true
		}
	}
}

// PoolSize returns this context's private pool length (diagnostic for the
// historical-max space property).
func (q *MSQueue) PoolSize(c *Ctx) int { return len(c.priv.(*msPriv).pool) }
