package queue

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/htm"
)

type qimpl struct {
	name string
	mk   func(h *htm.Heap) Queue
	// reclaims reports whether dequeued nodes are returned to the allocator.
	reclaims bool
}

func qimpls() []qimpl {
	return []qimpl{
		{"HTM", func(h *htm.Heap) Queue { return NewHTMQueue(h) }, true},
		{"MichaelScott", func(h *htm.Heap) Queue { return NewMSQueue(h) }, false},
		{"MichaelScottROP", func(h *htm.Heap) Queue { return NewMSQueueROP(h) }, true},
		{"MichaelScottEBR", func(h *htm.Heap) Queue { return NewMSQueueEBR(h) }, true},
	}
}

func closeCtx(q Queue, c *Ctx) {
	CloseCtx(q, c)
}

func forEachQueue(t *testing.T, f func(t *testing.T, im qimpl, q Queue, h *htm.Heap)) {
	t.Helper()
	for _, im := range qimpls() {
		t.Run(im.name, func(t *testing.T) {
			h := htm.NewHeap(htm.Config{Words: 1 << 18})
			f(t, im, im.mk(h), h)
		})
	}
}

func TestQueueEmptyDequeue(t *testing.T) {
	forEachQueue(t, func(t *testing.T, im qimpl, q Queue, h *htm.Heap) {
		c := q.NewCtx(h.NewThread())
		defer closeCtx(q, c)
		if _, ok := q.Dequeue(c); ok {
			t.Error("Dequeue on empty queue returned a value")
		}
	})
}

func TestQueueFIFOOrder(t *testing.T) {
	forEachQueue(t, func(t *testing.T, im qimpl, q Queue, h *htm.Heap) {
		c := q.NewCtx(h.NewThread())
		defer closeCtx(q, c)
		for i := uint64(1); i <= 100; i++ {
			q.Enqueue(c, i)
		}
		for i := uint64(1); i <= 100; i++ {
			v, ok := q.Dequeue(c)
			if !ok || v != i {
				t.Fatalf("Dequeue = (%d, %v), want (%d, true)", v, ok, i)
			}
		}
		if _, ok := q.Dequeue(c); ok {
			t.Error("queue should be empty")
		}
	})
}

func TestQueueInterleaved(t *testing.T) {
	forEachQueue(t, func(t *testing.T, im qimpl, q Queue, h *htm.Heap) {
		c := q.NewCtx(h.NewThread())
		defer closeCtx(q, c)
		next := uint64(1)
		expect := uint64(1)
		for round := 0; round < 50; round++ {
			for i := 0; i < 3; i++ {
				q.Enqueue(c, next)
				next++
			}
			for i := 0; i < 2; i++ {
				v, ok := q.Dequeue(c)
				if !ok || v != expect {
					t.Fatalf("Dequeue = (%d, %v), want (%d, true)", v, ok, expect)
				}
				expect++
			}
		}
	})
}

// TestQueueConcurrentConservation: N producers and M consumers; every
// enqueued value is dequeued exactly once.
func TestQueueConcurrentConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	forEachQueue(t, func(t *testing.T, im qimpl, q Queue, h *htm.Heap) {
		const producers, consumers, perProducer = 4, 4, 2000
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(id uint64) {
				defer wg.Done()
				c := q.NewCtx(h.NewThread())
				defer closeCtx(q, c)
				for i := uint64(0); i < perProducer; i++ {
					q.Enqueue(c, id<<32|i|1<<63)
				}
			}(uint64(p))
		}
		var mu sync.Mutex
		seen := make(map[uint64]int)
		prodDone := make(chan struct{})
		go func() { wg.Wait(); close(prodDone) }()
		var cwg sync.WaitGroup
		for cn := 0; cn < consumers; cn++ {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				c := q.NewCtx(h.NewThread())
				defer closeCtx(q, c)
				var local []uint64
				for {
					v, ok := q.Dequeue(c)
					if ok {
						local = append(local, v)
						continue
					}
					select {
					case <-prodDone:
						// One final drain after producers finished.
						if v, ok := q.Dequeue(c); ok {
							local = append(local, v)
							continue
						}
						mu.Lock()
						for _, v := range local {
							seen[v]++
						}
						mu.Unlock()
						return
					default:
					}
				}
			}()
		}
		cwg.Wait()
		if len(seen) != producers*perProducer {
			t.Fatalf("dequeued %d distinct values, want %d", len(seen), producers*perProducer)
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("value %#x dequeued %d times", v, n)
			}
		}
	})
}

// TestQueuePerProducerOrder: values from one producer are dequeued in
// their enqueue order (FIFO per producer under concurrency).
func TestQueuePerProducerOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	forEachQueue(t, func(t *testing.T, im qimpl, q Queue, h *htm.Heap) {
		const producers, perProducer = 3, 1500
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(id uint64) {
				defer wg.Done()
				c := q.NewCtx(h.NewThread())
				defer closeCtx(q, c)
				for i := uint64(0); i < perProducer; i++ {
					q.Enqueue(c, id<<48|i)
				}
			}(uint64(p + 1))
		}
		c := q.NewCtx(h.NewThread())
		defer closeCtx(q, c)
		lastSeen := make(map[uint64]uint64)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		drained := false
		for !drained {
			v, ok := q.Dequeue(c)
			if !ok {
				select {
				case <-done:
					if _, ok := q.Dequeue(c); !ok {
						drained = true
					}
				default:
				}
				continue
			}
			id, seq := v>>48, v&0xFFFFFFFFFFFF
			if last, ok := lastSeen[id]; ok && seq <= last {
				t.Fatalf("producer %d: saw seq %d after %d", id, seq, last)
			}
			lastSeen[id] = seq
		}
	})
}

// TestHTMQueueReclaimsMemory demonstrates the paper's space property: after
// draining, the HTM queue's live memory returns to its empty footprint, while
// the pool-based MS queue retains the historical maximum.
func TestHTMQueueReclaimsMemory(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	q := NewHTMQueue(h)
	c := q.NewCtx(h.NewThread())
	base := h.Stats().LiveWords
	for i := uint64(0); i < 1000; i++ {
		q.Enqueue(c, i+1)
	}
	if peak := h.Stats().LiveWords; peak < base+1000*qNodeWords {
		t.Fatalf("peak %d implausible", peak)
	}
	for {
		if _, ok := q.Dequeue(c); !ok {
			break
		}
	}
	if live := h.Stats().LiveWords; live != base {
		t.Errorf("live = %d after drain, want %d", live, base)
	}
}

// TestMSQueuePoolRetainsHistoricalMax documents the contrasting behaviour.
func TestMSQueuePoolRetainsHistoricalMax(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	q := NewMSQueue(h)
	c := q.NewCtx(h.NewThread())
	base := h.Stats().LiveWords
	for i := uint64(0); i < 1000; i++ {
		q.Enqueue(c, i+1)
	}
	for {
		if _, ok := q.Dequeue(c); !ok {
			break
		}
	}
	live := h.Stats().LiveWords
	if live < base+1000*qNodeWords {
		t.Errorf("pool variant freed memory? live = %d, base = %d", live, base)
	}
	if q.PoolSize(c) != 1000 {
		t.Errorf("pool size = %d, want 1000", q.PoolSize(c))
	}
}

// TestMSQueueROPEventuallyReclaims: after draining and releasing all hazard
// records, retired nodes must be freed.
func TestMSQueueROPEventuallyReclaims(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	q := NewMSQueueROP(h)
	c := q.NewCtx(h.NewThread())
	base := h.Stats().LiveWords
	for i := uint64(0); i < 500; i++ {
		q.Enqueue(c, i+1)
	}
	for {
		if _, ok := q.Dequeue(c); !ok {
			break
		}
	}
	q.CloseCtx(c)
	live := h.Stats().LiveWords
	// Everything except the dummy node should be reclaimed.
	if live > base+qNodeWords {
		t.Errorf("live = %d after drain+release, want <= %d", live, base+qNodeWords)
	}
}

// TestMSQueueEBREventuallyReclaims: after draining and releasing the epoch
// record, limbo nodes must be freed.
func TestMSQueueEBREventuallyReclaims(t *testing.T) {
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	q := NewMSQueueEBR(h)
	c := q.NewCtx(h.NewThread())
	base := h.Stats().LiveWords
	for i := uint64(0); i < 500; i++ {
		q.Enqueue(c, i+1)
	}
	for {
		if _, ok := q.Dequeue(c); !ok {
			break
		}
	}
	q.CloseCtx(c)
	live := h.Stats().LiveWords
	// Everything except the dummy node should be reclaimed.
	if live > base+qNodeWords {
		t.Errorf("live = %d after drain+release, want <= %d", live, base+qNodeWords)
	}
}

// TestDrainN: the bounded drain returns values in FIFO order and stops at
// the cap.
func TestDrainN(t *testing.T) {
	forEachQueue(t, func(t *testing.T, im qimpl, q Queue, h *htm.Heap) {
		c := q.NewCtx(h.NewThread())
		defer closeCtx(q, c)
		for i := uint64(1); i <= 300; i++ {
			q.Enqueue(c, i)
		}
		first := DrainN(q, c, 100)
		if len(first) != 100 {
			t.Fatalf("DrainN(100) returned %d values", len(first))
		}
		for i, v := range first {
			if v != uint64(i+1) {
				t.Fatalf("DrainN[%d] = %d, want %d", i, v, i+1)
			}
		}
		if n := DrainCount(q, c, 50); n != 50 {
			t.Fatalf("DrainCount(50) = %d", n)
		}
		rest := Drain(q, c)
		if len(rest) != 150 {
			t.Fatalf("Drain returned %d values, want 150", len(rest))
		}
		if rest[0] != 151 {
			t.Errorf("Drain resumed at %d, want 151", rest[0])
		}
	})
}

// TestDrainNTerminatesUnderConcurrentProducer: with a producer racing the
// drain, an unbounded "until empty" loop need never exit; the cap guarantees
// termination.
func TestDrainNTerminatesUnderConcurrentProducer(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	h := htm.NewHeap(htm.Config{Words: 1 << 18})
	q := NewMSQueue(h)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := q.NewCtx(h.NewThread())
		for i := uint64(1); !stop.Load(); i++ {
			q.Enqueue(c, i)
		}
	}()
	c := q.NewCtx(h.NewThread())
	out := DrainN(q, c, 500)
	stop.Store(true)
	wg.Wait()
	if len(out) > 500 {
		t.Errorf("DrainN returned %d values, cap was 500", len(out))
	}
}

// TestQuickQueueMatchesModel runs random op sequences against a slice model.
func TestQuickQueueMatchesModel(t *testing.T) {
	for _, im := range qimpls() {
		im := im
		t.Run(im.name, func(t *testing.T) {
			f := func(ops []uint8) bool {
				h := htm.NewHeap(htm.Config{Words: 1 << 18})
				q := im.mk(h)
				c := q.NewCtx(h.NewThread())
				defer closeCtx(q, c)
				var model []uint64
				next := uint64(1)
				for _, op := range ops {
					if op%2 == 0 {
						q.Enqueue(c, next)
						model = append(model, next)
						next++
					} else {
						v, ok := q.Dequeue(c)
						if len(model) == 0 {
							if ok {
								return false
							}
							continue
						}
						if !ok || v != model[0] {
							return false
						}
						model = model[1:]
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}
