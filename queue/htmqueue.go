package queue

import (
	"repro/htm"
)

// HTMQueue descriptor layout.
const (
	hqHead = iota
	hqTail
	hqDescWords
)

// HTMQueue is the paper's HTM-based FIFO (§1.1): each operation is plain
// sequential linked-list code wrapped in one transaction. A successful
// dequeue frees the dequeued node's memory immediately — no committed state
// references it, and any concurrent transaction that still tries to use it is
// guaranteed to abort (sandboxing). There is no ABA problem and none of the
// Michael-Scott race cases exist, which is the paper's simplicity argument:
// compare this file with msqueue.go.
type HTMQueue struct {
	h    *htm.Heap
	desc htm.Addr
}

var _ Queue = (*HTMQueue)(nil)

// NewHTMQueue allocates an empty queue on h.
func NewHTMQueue(h *htm.Heap) *HTMQueue {
	th := h.NewThread()
	return &HTMQueue{h: h, desc: th.Alloc(hqDescWords)}
}

// Name implements Queue.
func (q *HTMQueue) Name() string { return "HTM" }

// NewCtx implements Queue.
func (q *HTMQueue) NewCtx(th *htm.Thread) *Ctx { return &Ctx{th: th} }

// Enqueue implements Queue. The node is allocated outside the transaction
// (Rock cannot run malloc inside one); it stays private until the
// transaction that publishes it commits, so aborted attempts simply retry
// with the same node.
func (q *HTMQueue) Enqueue(c *Ctx, v uint64) {
	n := c.th.Alloc(qNodeWords)
	c.th.Heap().StoreNT(n+qVal, v)
	c.th.Atomic(func(t *htm.Txn) {
		tail := htm.Addr(t.Load(q.desc + hqTail))
		if tail == htm.NilAddr {
			t.Store(q.desc+hqHead, uint64(n))
		} else {
			t.Store(tail+qNext, uint64(n))
		}
		t.Store(q.desc+hqTail, uint64(n))
	})
}

// Dequeue implements Queue, freeing the dequeued entry to the allocator the
// moment the transaction commits.
func (q *HTMQueue) Dequeue(c *Ctx) (uint64, bool) {
	var v uint64
	ok := false
	c.th.Atomic(func(t *htm.Txn) {
		ok = false
		head := htm.Addr(t.Load(q.desc + hqHead))
		if head == htm.NilAddr {
			return
		}
		v = t.Load(head + qVal)
		next := t.Load(head + qNext)
		t.Store(q.desc+hqHead, next)
		if next == uint64(htm.NilAddr) {
			t.Store(q.desc+hqTail, 0)
		}
		t.FreeOnCommit(head)
		ok = true
	})
	return v, ok
}

// Len walks the queue transactionally and returns its length (diagnostic).
func (q *HTMQueue) Len(c *Ctx) int {
	n := 0
	c.th.Atomic(func(t *htm.Txn) {
		n = 0
		for p := htm.Addr(t.Load(q.desc + hqHead)); p != htm.NilAddr; p = htm.Addr(t.Load(p + qNext)) {
			n++
		}
	})
	return n
}
