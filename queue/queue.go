// Package queue implements the paper's motivating example (§1.1, Figure 1):
// four concurrent FIFO queues on the simulated heap.
//
//   - HTMQueue: simple sequential code inside hardware transactions. A
//     dequeue frees its node immediately; a racing transaction that still
//     holds a reference aborts via sandboxing instead of crashing. This is
//     the "reasonable homework exercise" algorithm.
//   - MSQueue: the Michael-Scott lock-free queue with per-thread node pools.
//     Nodes are recycled but never freed, so quiescent memory is proportional
//     to the historical maximum queue size, and counted (tagged) pointers are
//     needed against ABA.
//   - MSQueueROP: the Michael-Scott queue with hazard-pointer (ROP)
//     reclamation, which can truly free nodes at the cost of
//     announce/validate/scan overhead on every operation.
//   - MSQueueEBR: the Michael-Scott queue with epoch-based reclamation, which
//     also truly frees nodes, paying one epoch announcement per operation
//     instead of one per load — but stalling all reclamation while any
//     thread stays pinned.
//
// All four share a Queue interface over per-thread contexts.
package queue

import (
	"repro/htm"
)

// Node layout shared by all queues: a value and a next pointer (the MS
// queues pack a modification tag into the next word's high bits).
const (
	qVal = iota
	qNext
	qNodeWords
)

// Queue is a concurrent FIFO of word-sized values.
type Queue interface {
	// Name returns the implementation's name as used in Figure 1.
	Name() string
	// NewCtx creates a per-goroutine execution context.
	NewCtx(th *htm.Thread) *Ctx
	// Enqueue appends v.
	Enqueue(c *Ctx, v uint64)
	// Dequeue removes and returns the head value; ok is false when empty.
	Dequeue(c *Ctx) (v uint64, ok bool)
}

// CtxCloser is implemented by queues whose contexts hold reclamation state
// (a hazard record, an epoch record) that must be released when the thread
// is done. Queues without such state need no CloseCtx.
type CtxCloser interface {
	CloseCtx(c *Ctx)
}

// CloseCtx releases c's reclamation state if q holds any; it is safe to call
// on every queue implementation.
func CloseCtx(q Queue, c *Ctx) {
	if cc, ok := q.(CtxCloser); ok {
		cc.CloseCtx(c)
	}
}

// Ctx is a per-thread queue context (htm thread, node pool, hazard record or
// epoch record).
type Ctx struct {
	th   *htm.Thread
	priv any
}

// Thread returns the underlying htm thread.
func (c *Ctx) Thread() *htm.Thread { return c.th }

// DrainLimit caps Drain. It is far above any queue size the tests and
// benchmarks build, so hitting it means another goroutine is racing Drain
// with enqueues.
const DrainLimit = 1 << 20

// Drain dequeues until empty and returns the values (test helper). Under
// concurrent producers an "until empty" loop need never terminate, so Drain
// stops after DrainLimit dequeues; use DrainN to pick the bound.
func Drain(q Queue, c *Ctx) []uint64 {
	return DrainN(q, c, DrainLimit)
}

// DrainN dequeues until the queue reports empty or max values have been
// taken, and returns the values.
func DrainN(q Queue, c *Ctx, max int) []uint64 {
	var out []uint64
	for len(out) < max {
		v, ok := q.Dequeue(c)
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

// DrainCount dequeues until the queue reports empty or max values have been
// taken, discarding the values and returning how many were taken — for
// callers that drain purely for the side effect (space measurements).
func DrainCount(q Queue, c *Ctx, max int) int {
	n := 0
	for n < max {
		if _, ok := q.Dequeue(c); !ok {
			break
		}
		n++
	}
	return n
}
