package queue

import (
	"repro/htm"
	"repro/internal/hazard"
)

// MSQueueROP is the Michael-Scott queue with hazard-pointer (ROP)
// reclamation (Michael [14], Herlihy et al. [10]): dequeued nodes are retired
// and truly freed once no thread announces them. Compared with the pool
// variant this reclaims memory, at the price of announce/validate traffic on
// every operation plus periodic scans over every thread's announcements —
// the 35–75% overhead of Figure 1.
//
// Hazard pointers guarantee a protected node is not freed, so freed memory is
// never recycled under a protected reference and untagged pointers are
// ABA-safe here (a node's address cannot be reused while any thread might
// still CAS against it).
type MSQueueROP struct {
	h    *htm.Heap
	desc htm.Addr
	dom  *hazard.Domain
}

var _ Queue = (*MSQueueROP)(nil)

type ropPriv struct {
	rec *hazard.Record
}

// NewMSQueueROP allocates an empty queue (one dummy node) and its reclamation
// domain on h.
func NewMSQueueROP(h *htm.Heap) *MSQueueROP {
	th := h.NewThread()
	q := &MSQueueROP{h: h, desc: th.Alloc(msDescWords), dom: hazard.NewDomain(h, 2)}
	dummy := th.Alloc(qNodeWords)
	h.StoreNT(q.desc+msHead, uint64(dummy))
	h.StoreNT(q.desc+msTail, uint64(dummy))
	return q
}

// Name implements Queue.
func (q *MSQueueROP) Name() string { return "Michael-Scott ROP" }

// NewCtx implements Queue, acquiring a hazard record for the thread.
func (q *MSQueueROP) NewCtx(th *htm.Thread) *Ctx {
	return &Ctx{th: th, priv: &ropPriv{rec: q.dom.Acquire(th)}}
}

// CloseCtx releases the context's hazard record, draining its retirement
// backlog. Call when the thread is done with the queue.
func (q *MSQueueROP) CloseCtx(c *Ctx) {
	c.priv.(*ropPriv).rec.Release()
}

// Enqueue implements Queue. The tail node must be protected before its next
// pointer is dereferenced: unlike the pool variant, an unprotected node may
// be freed memory.
func (q *MSQueueROP) Enqueue(c *Ctx, v uint64) {
	h := c.th.Heap()
	rec := c.priv.(*ropPriv).rec
	n := c.th.Alloc(qNodeWords)
	h.StoreNT(n+qVal, v)
	h.StoreNT(n+qNext, 0)
	for {
		tail := htm.Addr(h.LoadNT(q.desc + msTail))
		rec.Protect(0, tail)
		if htm.Addr(h.LoadNT(q.desc+msTail)) != tail {
			continue // tail moved before the announcement took effect
		}
		next := htm.Addr(h.LoadNT(tail + qNext))
		if htm.Addr(h.LoadNT(q.desc+msTail)) != tail {
			continue
		}
		if next == htm.NilAddr {
			if h.CASNT(tail+qNext, 0, uint64(n)) {
				h.CASNT(q.desc+msTail, uint64(tail), uint64(n))
				rec.ClearSlot(0)
				return
			}
		} else {
			h.CASNT(q.desc+msTail, uint64(tail), uint64(next))
		}
	}
}

// Dequeue implements Queue: protect the head, then the successor, with
// re-validation after each announcement (Michael's published protocol), then
// swing the head and retire the old dummy.
func (q *MSQueueROP) Dequeue(c *Ctx) (uint64, bool) {
	h := c.th.Heap()
	rec := c.priv.(*ropPriv).rec
	for {
		head := htm.Addr(h.LoadNT(q.desc + msHead))
		rec.Protect(0, head)
		if htm.Addr(h.LoadNT(q.desc+msHead)) != head {
			continue
		}
		tail := htm.Addr(h.LoadNT(q.desc + msTail))
		next := htm.Addr(h.LoadNT(head + qNext)) // safe: head is protected
		if htm.Addr(h.LoadNT(q.desc+msHead)) != head {
			continue
		}
		if next == htm.NilAddr {
			rec.ClearSlot(0)
			return 0, false
		}
		rec.Protect(1, next)
		if htm.Addr(h.LoadNT(q.desc+msHead)) != head {
			continue // head moved: next may already be retired
		}
		if head == tail {
			h.CASNT(q.desc+msTail, uint64(tail), uint64(next))
			continue
		}
		v := h.LoadNT(next + qVal) // safe: next is protected
		if h.CASNT(q.desc+msHead, uint64(head), uint64(next)) {
			rec.ClearSlot(0)
			rec.ClearSlot(1)
			rec.Retire(head)
			return v, true
		}
	}
}
