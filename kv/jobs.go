package kv

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/htm"
	"repro/queue"
)

// Background maintenance rides the repository's concurrent queues: the
// sweeper goroutine slices the index into slot ranges and enqueues one job
// word per range; worker goroutines dequeue and run the matching Store sweep.
// The job queue lives ON the transactional heap (by default it is the HTM
// queue — sequential code in transactions, nodes freed on dequeue commit), so
// the pipeline itself exercises the paper's claim, and the queue's CtxCloser
// contract drives reclamation-state cleanup at shutdown.

// Job kinds.
const (
	jobExpire uint64 = iota + 1
	jobCompact
)

// jobChunkSlots is how many index slots one job covers: small enough that
// jobs interleave with foreground traffic, large enough that the queue isn't
// the bottleneck.
const jobChunkSlots = 1024

// encodeJob packs a job into one queue word: kind in the top 4 bits, the
// starting slot below. Ranges are implicit: every job covers jobChunkSlots.
func encodeJob(kind, lo uint64) uint64     { return kind<<60 | lo }
func decodeJob(w uint64) (kind, lo uint64) { return w >> 60, w &^ (uint64(0xf) << 60) }

// JobsConfig parameterizes the maintenance pipeline.
type JobsConfig struct {
	// Interval between full-index sweeps. Defaults to 2s.
	Interval time.Duration
	// Workers is the number of consumer goroutines. Defaults to 2.
	Workers int
	// NewQueue builds the job queue on the store's heap. Defaults to
	// queue.NewHTMQueue; swap in an MS-queue variant to run the pipeline on a
	// different reclamation regime.
	NewQueue func(h *htm.Heap) queue.Queue
}

func (c JobsConfig) withDefaults() JobsConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.NewQueue == nil {
		c.NewQueue = func(h *htm.Heap) queue.Queue { return queue.NewHTMQueue(h) }
	}
	return c
}

// Jobs is a running maintenance pipeline. Create with StartJobs; cancel the
// context and call Wait for a clean shutdown.
type Jobs struct {
	s   *Store
	cfg JobsConfig
	q   queue.Queue
	wg  sync.WaitGroup

	jobsRun     atomic.Uint64
	sweeps      atomic.Uint64
	lastExpired atomic.Uint64
	lastCleared atomic.Uint64
}

// StartJobs launches the sweeper and workers. They stop — completing or
// cleanly abandoning in-flight work — when ctx is cancelled; Wait blocks
// until every goroutine has released its queue context.
func StartJobs(ctx context.Context, s *Store, cfg JobsConfig) *Jobs {
	cfg = cfg.withDefaults()
	j := &Jobs{s: s, cfg: cfg, q: cfg.NewQueue(s.heap)}
	j.wg.Add(1 + cfg.Workers)
	go j.sweeper(ctx)
	for i := 0; i < cfg.Workers; i++ {
		go j.worker(ctx)
	}
	return j
}

// Wait blocks until all pipeline goroutines have exited.
func (j *Jobs) Wait() { j.wg.Wait() }

// Sweep enqueues one full pass over the index: expiry jobs for every chunk,
// then compaction jobs. Exported so tests and operators can force a sweep
// without waiting out the interval.
func (j *Jobs) Sweep() {
	j.sweeps.Add(1)
	// A dedicated thread, not a pooled one: pipeline goroutines never hold a
	// pool context while the sweep methods acquire one, so the pipeline can
	// never deadlock the foreground pool however small it is.
	c := j.q.NewCtx(j.s.heap.NewThread())
	defer queue.CloseCtx(j.q, c)
	nslots := j.s.Slots()
	for lo := uint64(0); lo < nslots; lo += jobChunkSlots {
		j.q.Enqueue(c, encodeJob(jobExpire, lo))
	}
	for lo := uint64(0); lo < nslots; lo += jobChunkSlots {
		j.q.Enqueue(c, encodeJob(jobCompact, lo))
	}
}

func (j *Jobs) sweeper(ctx context.Context) {
	defer j.wg.Done()
	tick := time.NewTicker(j.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			j.Sweep()
		}
	}
}

func (j *Jobs) worker(ctx context.Context) {
	defer j.wg.Done()
	c := j.q.NewCtx(j.s.heap.NewThread()) // dedicated thread; see Sweep
	defer queue.CloseCtx(j.q, c)
	idle := time.NewTimer(0)
	if !idle.Stop() {
		<-idle.C
	}
	defer idle.Stop()
	for {
		w, ok := j.q.Dequeue(c)
		if !ok {
			// Empty queue: park briefly, but wake immediately on shutdown.
			idle.Reset(10 * time.Millisecond)
			select {
			case <-ctx.Done():
				return
			case <-idle.C:
			}
			continue
		}
		j.run(w)
		select {
		case <-ctx.Done():
			// In-flight job finished (each job is short by construction —
			// jobChunkSlots small transactions); undequeued jobs are simply
			// dropped, the next sweep regenerates them.
			return
		default:
		}
	}
}

// run executes one dequeued job word.
func (j *Jobs) run(w uint64) {
	kind, lo := decodeJob(w)
	switch kind {
	case jobExpire:
		j.lastExpired.Add(uint64(j.s.ExpireRange(lo, lo+jobChunkSlots)))
	case jobCompact:
		j.lastCleared.Add(uint64(j.s.CompactRange(lo, lo+jobChunkSlots)))
	}
	j.jobsRun.Add(1)
}

// JobStats is a snapshot of pipeline activity.
type JobStats struct {
	JobsRun uint64 `json:"jobs_run"`
	Sweeps  uint64 `json:"sweeps"`
	Expired uint64 `json:"expired"`
	Cleared uint64 `json:"tombstones_cleared"`
}

// Stats returns cumulative pipeline counters.
func (j *Jobs) Stats() JobStats {
	return JobStats{
		JobsRun: j.jobsRun.Load(),
		Sweeps:  j.sweeps.Load(),
		Expired: j.lastExpired.Load(),
		Cleared: j.lastCleared.Load(),
	}
}
