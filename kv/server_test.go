package kv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	sv := NewServer(NewStore(Config{Slots: 1024}))
	ts := httptest.NewServer(sv)
	t.Cleanup(ts.Close)
	return sv, ts
}

func doReq(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func TestHTTPRoundTrip(t *testing.T) {
	_, ts := testServer(t)

	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/kv/missing", nil); resp.StatusCode != 404 {
		t.Fatalf("GET missing: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/kv/greeting", []byte("hello")); resp.StatusCode != 204 {
		t.Fatalf("PUT: %d", resp.StatusCode)
	}
	resp, body := doReq(t, http.MethodGet, ts.URL+"/kv/greeting", nil)
	if resp.StatusCode != 200 || string(body) != "hello" {
		t.Fatalf("GET: %d %q", resp.StatusCode, body)
	}
	// Keys may contain slashes ({key...} wildcard).
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/kv/a/nested/key", []byte("deep")); resp.StatusCode != 204 {
		t.Fatalf("PUT nested: %d", resp.StatusCode)
	}
	if _, body := doReq(t, http.MethodGet, ts.URL+"/kv/a/nested/key", nil); string(body) != "deep" {
		t.Fatalf("GET nested: %q", body)
	}
	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/kv/greeting", nil); resp.StatusCode != 204 {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/kv/greeting", nil); resp.StatusCode != 404 {
		t.Fatalf("DELETE again: %d", resp.StatusCode)
	}
}

func TestHTTPTTL(t *testing.T) {
	_, ts := testServer(t)
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/kv/blink?ttl=30ms", []byte("v")); resp.StatusCode != 204 {
		t.Fatalf("PUT ttl: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/kv/blink", nil); resp.StatusCode != 200 {
		t.Fatalf("GET before expiry: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, _ := doReq(t, http.MethodGet, ts.URL+"/kv/blink", nil)
		if resp.StatusCode == 404 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ttl key never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/kv/k?ttl=bogus", []byte("v")); resp.StatusCode != 400 {
		t.Fatalf("bad ttl: %d", resp.StatusCode)
	}
}

func TestHTTPScan(t *testing.T) {
	_, ts := testServer(t)
	want := map[string]string{}
	for i := 0; i < 25; i++ {
		k, v := fmt.Sprintf("s%02d", i), fmt.Sprintf("v%d", i)
		want[k] = v
		if resp, _ := doReq(t, http.MethodPut, ts.URL+"/kv/"+k, []byte(v)); resp.StatusCode != 204 {
			t.Fatalf("seed PUT: %d", resp.StatusCode)
		}
	}
	got := map[string]string{}
	cursor := uint64(0)
	for {
		resp, body := doReq(t, http.MethodGet, fmt.Sprintf("%s/scan?cursor=%d&limit=10", ts.URL, cursor), nil)
		if resp.StatusCode != 200 {
			t.Fatalf("scan: %d %s", resp.StatusCode, body)
		}
		var page scanResponse
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatalf("scan json: %v", err)
		}
		for _, p := range page.Pairs {
			got[string(p.Key)] = string(p.Value)
		}
		if page.Done {
			break
		}
		cursor = page.Next
	}
	if len(got) != len(want) {
		t.Fatalf("scan over HTTP: %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("scan %q: %q want %q", k, got[k], v)
		}
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/scan?cursor=zap", nil); resp.StatusCode != 400 {
		t.Fatalf("bad cursor: %d", resp.StatusCode)
	}
}

func TestHTTPValueTooLargeAndFull(t *testing.T) {
	sv := NewServer(NewStore(Config{Slots: 16, MaxValueBytes: 64}))
	ts := httptest.NewServer(sv)
	defer ts.Close()

	big := bytes.Repeat([]byte("x"), 65)
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/kv/big", big); resp.StatusCode != 400 {
		t.Fatalf("oversized PUT: %d", resp.StatusCode)
	}
	var sawFull bool
	for i := 0; i < 16; i++ {
		resp, _ := doReq(t, http.MethodPut, ts.URL+fmt.Sprintf("/kv/f%d", i), []byte("v"))
		if resp.StatusCode == http.StatusInsufficientStorage {
			sawFull = true
			break
		}
		if resp.StatusCode != 204 {
			t.Fatalf("PUT f%d: %d", i, resp.StatusCode)
		}
	}
	if !sawFull {
		t.Fatal("never saw 507 at the load-factor ceiling")
	}
}

func TestHTTPStatsAndMetrics(t *testing.T) {
	sv, ts := testServer(t)
	doReq(t, http.MethodPut, ts.URL+"/kv/m", []byte("v"))
	doReq(t, http.MethodGet, ts.URL+"/kv/m", nil)
	doReq(t, http.MethodGet, ts.URL+"/kv/absent", nil) // 404 -> 4xx counter

	resp, body := doReq(t, http.MethodGet, ts.URL+"/stats", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats json: %v (%s)", err, body)
	}
	if st.Heap["commits"] == nil || st.Store["count"] == nil {
		t.Fatalf("stats missing layers: %s", body)
	}
	if n := st.Store["count"].(float64); n != 1 {
		t.Fatalf("stats count: %v", n)
	}
	m := sv.Metrics().Snapshot()
	if m.Requests < 4 {
		t.Fatalf("requests counter: %d", m.Requests)
	}
	if m.Errors4xx < 1 {
		t.Fatalf("4xx counter: %d", m.Errors4xx)
	}
	if m.MeanLatencyUs <= 0 {
		t.Fatalf("mean latency: %v", m.MeanLatencyUs)
	}
}

func TestRecoveryMiddleware(t *testing.T) {
	var m Metrics
	var logged bool
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("heap exhausted (simulated)")
	}), WithMetrics(&m), WithRecovery(&m, func(string, ...any) { logged = true }))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, _ := doReq(t, http.MethodGet, ts.URL+"/", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("panic -> %d, want 503", resp.StatusCode)
	}
	if m.Panics.Load() != 1 || !logged {
		t.Fatalf("panic not recorded: panics=%d logged=%v", m.Panics.Load(), logged)
	}
	if m.Errors5xx.Load() != 1 {
		t.Fatalf("5xx not counted: %d", m.Errors5xx.Load())
	}
}

// TestGracefulShutdown is the satellite: a Serve-managed server under live
// concurrent traffic is told to stop; every in-flight request must complete
// or abort cleanly (a real status or a connection error — never a hang or a
// torn response), Serve must return nil, and the job pipeline must drain.
// Run under -race this also proves shutdown has no unsynchronized state.
func TestGracefulShutdown(t *testing.T) {
	store := NewStore(Config{Slots: 4096, PoolThreads: 8})
	sv := NewServer(store, WithJobs(JobsConfig{Interval: 5 * time.Millisecond, Workers: 2}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- sv.Serve(ctx, ln) }()

	// Wait for the server to accept.
	waitUntil(t, "server up", func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == 200
	})

	// Concurrent traffic: writers with TTLs (feeding the expiry pipeline),
	// readers, scanners. They run until their requests start failing with
	// connection errors — which is only legal AFTER cancel is requested.
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		cancelAt    time.Time
		earlyErrors []string
	)
	stop := make(chan struct{})
	client := &http.Client{Timeout: 10 * time.Second}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var resp *http.Response
				var err error
				switch g % 3 {
				case 0:
					req, _ := http.NewRequest(http.MethodPut,
						fmt.Sprintf("%s/kv/w%d-%d?ttl=50ms", base, g, i%64),
						strings.NewReader("payload"))
					resp, err = client.Do(req)
				case 1:
					resp, err = client.Get(fmt.Sprintf("%s/kv/w0-%d", base, i%64))
				default:
					resp, err = client.Get(base + "/scan?limit=16")
				}
				if err != nil {
					mu.Lock()
					if cancelAt.IsZero() {
						earlyErrors = append(earlyErrors, err.Error())
					}
					mu.Unlock()
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					mu.Lock()
					earlyErrors = append(earlyErrors, fmt.Sprintf("status %d", resp.StatusCode))
					mu.Unlock()
					return
				}
			}
		}(g)
	}

	time.Sleep(100 * time.Millisecond) // let traffic and sweeps overlap
	mu.Lock()
	cancelAt = time.Now()
	mu.Unlock()
	cancel()

	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	close(stop)
	wg.Wait()

	if len(earlyErrors) > 0 {
		t.Fatalf("requests failed before shutdown was requested: %v", earlyErrors)
	}
	// The engine is still coherent after shutdown: counters match a scan.
	n := 0
	for cursor := uint64(0); cursor < store.Slots(); {
		pairs, next, err := store.Scan(bg, cursor, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		n += len(pairs)
		cursor = next
	}
	if live := store.Len(); n > live {
		// Scan can read fewer than Len (lazy TTL) but never more.
		t.Fatalf("post-shutdown scan found %d entries, Len says %d", n, live)
	}
	// Serve's deferred jobs.Wait already returned, so the pipeline is fully
	// drained; a second listener can reuse the store immediately.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() { done2 <- sv.Serve(ctx2, ln2) }()
	waitUntil(t, "server restart", func() bool {
		resp, err := http.Get("http://" + ln2.Addr().String() + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return true
	})
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second Serve: %v", err)
	}
}

// TestShutdownAbortsIdleKeepalives: Shutdown must not wait out ShutdownGrace
// when the only connections are idle keepalives.
func TestShutdownQuickWhenIdle(t *testing.T) {
	sv := NewServer(NewStore(Config{Slots: 256}))
	sv.ShutdownGrace = 30 * time.Second // would be noticed if waited out
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sv.Serve(ctx, ln) }()
	waitUntil(t, "server up", func() bool {
		resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return true
	})
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle shutdown took too long")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("idle shutdown took %s", d)
	}
}
