package kv

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/harness"
)

// Load driver for the KV service: drives GET/PUT/DELETE/SCAN traffic at a
// live server over HTTP, records per-operation latency samples, and reduces
// them to the percentile/throughput record the bench pipeline understands
// (harness.Report), so server-level numbers are gated by cmd/benchtrend
// exactly like the microbenchmark snapshots.

// Load operations, in fixed order so reports always cover the same series.
var loadOps = []string{"GET", "PUT", "DELETE", "SCAN"}

// LoadConfig parameterizes a load run.
type LoadConfig struct {
	// Workers is the number of concurrent clients (closed-loop lanes).
	Workers int
	// Duration is the measured window (after seeding).
	Duration time.Duration
	// RatePerSec > 0 selects open-loop mode: operations are dispatched on a
	// fixed schedule at this aggregate rate and latency includes queueing
	// delay behind a slow server. 0 selects closed loop: each worker issues
	// its next operation as soon as the previous one completes.
	RatePerSec float64
	// Keys is the keyspace size; keys are "k000042"-shaped.
	Keys int
	// ValueBytes is the value payload size for PUTs.
	ValueBytes int
	// GetPct/PutPct/DeletePct/ScanPct is the operation mix in percent; they
	// must sum to ≤ 100 (the remainder goes to GET).
	GetPct, PutPct, DeletePct, ScanPct int
	// ScanLimit is the page size for SCAN operations.
	ScanLimit int
	// Seed seeds the per-worker PRNGs (reproducible mixes).
	Seed int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Keys <= 0 {
		c.Keys = 4096
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 128
	}
	if c.GetPct+c.PutPct+c.DeletePct+c.ScanPct == 0 {
		c.GetPct, c.PutPct, c.DeletePct, c.ScanPct = 60, 25, 10, 5
	}
	if c.ScanLimit <= 0 {
		c.ScanLimit = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// OpResult is the reduced record of one operation type.
type OpResult struct {
	Name               string
	Count              int
	Errors             int // transport failures and unexpected statuses
	P50, P90, P99, Max time.Duration
	// OpsPerUs is this operation's completed throughput across the run.
	OpsPerUs float64
}

// LoadResult is the outcome of RunLoad.
type LoadResult struct {
	Config  LoadConfig
	Elapsed time.Duration
	Ops     []OpResult // fixed order: GET, PUT, DELETE, SCAN
	// TotalOpsPerUs is aggregate completed throughput.
	TotalOpsPerUs float64
}

// opSample is one recorded operation.
type opSample struct {
	op  int
	lat time.Duration
	err bool
}

// loadWorker drives one lane of traffic.
type loadWorker struct {
	cfg     LoadConfig
	client  *http.Client
	base    string
	rng     *rand.Rand
	value   []byte
	samples []opSample
	cursor  uint64
}

// pickOp maps a [0,100) roll onto the mix; forced preseeds the first four
// operations one of each kind, so every series has at least one sample and a
// committed snapshot's coverage can never shrink just because a short run
// rolled zero DELETEs.
func (w *loadWorker) pickOp(n int) int {
	if n < 4 {
		return n
	}
	roll := w.rng.Intn(100)
	switch {
	case roll < w.cfg.PutPct:
		return 1
	case roll < w.cfg.PutPct+w.cfg.DeletePct:
		return 2
	case roll < w.cfg.PutPct+w.cfg.DeletePct+w.cfg.ScanPct:
		return 3
	default:
		return 0
	}
}

func (w *loadWorker) key() string {
	return fmt.Sprintf("k%06d", w.rng.Intn(w.cfg.Keys))
}

// do issues one operation and reports whether it failed. 404s are expected
// outcomes (GET/DELETE of an absent or deleted key), not errors.
func (w *loadWorker) do(ctx context.Context, op int) bool {
	var (
		req *http.Request
		err error
	)
	switch op {
	case 0:
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/kv/"+w.key(), nil)
	case 1:
		req, err = http.NewRequestWithContext(ctx, http.MethodPut, w.base+"/kv/"+w.key(), bytes.NewReader(w.value))
	case 2:
		req, err = http.NewRequestWithContext(ctx, http.MethodDelete, w.base+"/kv/"+w.key(), nil)
	case 3:
		url := fmt.Sprintf("%s/scan?cursor=%d&limit=%d", w.base, w.cursor, w.cfg.ScanLimit)
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	}
	if err != nil {
		return true
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return true
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if op == 3 {
		// Advance the scan cursor a page per scan, wrapping at the end; the
		// paging itself is exercised without parsing the body on the hot path.
		w.cursor += scanSlotWindow
		if w.cursor >= 1<<30 {
			w.cursor = 0
		}
	}
	return resp.StatusCode >= 400 && resp.StatusCode != http.StatusNotFound
}

// seedPut issues one seed-phase PUT, retrying transient failures (transport
// errors from a server still binding its listener, 503s from one shedding
// load at startup) with exponential backoff capped at 500ms. Hard failures
// (4xx) surface immediately — retrying a rejected request cannot help.
func seedPut(ctx context.Context, client *http.Client, baseURL, key string, val []byte) error {
	const (
		attempts = 6
		maxPause = 500 * time.Millisecond
	)
	pause := 25 * time.Millisecond
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(pause):
			}
			if pause *= 2; pause > maxPause {
				pause = maxPause
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, baseURL+"/kv/"+key, bytes.NewReader(val))
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("kvload: seeding failed (is the server up?): %w", err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode < 400:
			return nil
		case resp.StatusCode == http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("kvload: seed PUT %s -> %d (server shedding)", key, resp.StatusCode)
		default:
			return fmt.Errorf("kvload: seed PUT %s -> %d", key, resp.StatusCode)
		}
	}
	return lastErr
}

// RunLoad seeds the keyspace (one PUT per key, unmeasured), then drives the
// configured mix against baseURL for cfg.Duration and reduces the samples.
func RunLoad(ctx context.Context, baseURL string, cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	transport := &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers * 2,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	// Seed phase: make GETs meaningful from the first measured op.
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	seedVal := make([]byte, cfg.ValueBytes)
	for i := range seedVal {
		seedVal[i] = byte(seedRng.Intn(256))
	}
	for i := 0; i < cfg.Keys; i++ {
		key := fmt.Sprintf("k%06d", i)
		if err := seedPut(ctx, client, baseURL, key, seedVal); err != nil {
			return nil, err
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Open-loop dispatch channel: a token per scheduled operation. Closed
	// loop leaves it nil and workers self-pace.
	var tokens chan struct{}
	if cfg.RatePerSec > 0 {
		tokens = make(chan struct{})
		go func() {
			interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					close(tokens)
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // all workers busy: the op is dropped, not queued
					}
				}
			}
		}()
	}

	workers := make([]*loadWorker, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range workers {
		w := &loadWorker{
			cfg:    cfg,
			client: client,
			base:   baseURL,
			rng:    rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			value:  seedVal,
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				if tokens != nil {
					if _, ok := <-tokens; !ok {
						return
					}
				} else if runCtx.Err() != nil {
					return
				}
				op := w.pickOp(n)
				t0 := time.Now()
				failed := w.do(runCtx, op)
				lat := time.Since(t0)
				if runCtx.Err() != nil && failed {
					return // cancellation mid-request, not a server error
				}
				w.samples = append(w.samples, opSample{op: op, lat: lat, err: failed})
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{Config: cfg, Elapsed: elapsed}
	var total int
	for opIdx, name := range loadOps {
		var lats []time.Duration
		errs := 0
		for _, w := range workers {
			for _, s := range w.samples {
				if s.op != opIdx {
					continue
				}
				if s.err {
					errs++
					continue
				}
				lats = append(lats, s.lat)
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		r := OpResult{Name: name, Count: len(lats), Errors: errs}
		if n := len(lats); n > 0 {
			r.P50 = lats[n/2]
			r.P90 = lats[n*9/10]
			r.P99 = lats[n*99/100]
			r.Max = lats[n-1]
			r.OpsPerUs = float64(n) / float64(elapsed.Microseconds())
		}
		total += r.Count
		res.Ops = append(res.Ops, r)
	}
	res.TotalOpsPerUs = float64(total) / float64(elapsed.Microseconds())
	return res, nil
}

// LatencyTable renders the per-op latency percentiles in the harness's table
// shape. Column labels carry the ns/op unit so benchtrend treats every point
// as lower-is-better.
func (r *LoadResult) LatencyTable() *harness.Table {
	t := &harness.Table{
		Title:  "KV service latency: per-op percentiles over HTTP [ns/op]",
		XLabel: "op",
		Xs:     []string{"p50 ns/op", "p90 ns/op", "p99 ns/op"},
	}
	for _, op := range r.Ops {
		t.Series = append(t.Series, harness.Series{
			Label: op.Name,
			Ys:    []float64{float64(op.P50), float64(op.P90), float64(op.P99)},
		})
	}
	return t
}

// Benchmarks renders throughput (and latency medians) as flat benchmark
// entries for the trend gate.
func (r *LoadResult) Benchmarks() []harness.Benchmark {
	bs := []harness.Benchmark{{
		Name:     "kvload/total",
		OpsPerUs: r.TotalOpsPerUs,
		Note:     fmt.Sprintf("%d workers, %s, mix %d/%d/%d/%d", r.Config.Workers, r.Elapsed.Round(time.Millisecond), r.Config.GetPct, r.Config.PutPct, r.Config.DeletePct, r.Config.ScanPct),
	}}
	for _, op := range r.Ops {
		bs = append(bs, harness.Benchmark{
			Name:     "kvload/" + op.Name,
			OpsPerUs: op.OpsPerUs,
			Note:     fmt.Sprintf("count=%d errors=%d", op.Count, op.Errors),
		})
	}
	return bs
}

// FillReport appends the run's tables and benchmarks to rep and records the
// load configuration.
func (r *LoadResult) FillReport(rep *harness.Report) {
	rep.SetConfig("kvload_workers", fmt.Sprint(r.Config.Workers))
	rep.SetConfig("kvload_duration", r.Config.Duration.String())
	rep.SetConfig("kvload_keys", fmt.Sprint(r.Config.Keys))
	rep.SetConfig("kvload_value_bytes", fmt.Sprint(r.Config.ValueBytes))
	mode := "closed-loop"
	if r.Config.RatePerSec > 0 {
		mode = fmt.Sprintf("open-loop@%.0f/s", r.Config.RatePerSec)
	}
	rep.SetConfig("kvload_mode", mode)
	rep.AddTable(r.LatencyTable())
	rep.Benchmarks = append(rep.Benchmarks, r.Benchmarks()...)
}

// String renders a human summary.
func (r *LoadResult) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== KV load: %d workers, %s elapsed, %.3f ops/us total ==\n",
		r.Config.Workers, r.Elapsed.Round(time.Millisecond), r.TotalOpsPerUs)
	fmt.Fprintf(&b, "%-8s %10s %8s %12s %12s %12s %12s\n", "op", "count", "errors", "p50", "p90", "p99", "max")
	for _, op := range r.Ops {
		fmt.Fprintf(&b, "%-8s %10d %8d %12s %12s %12s %12s\n",
			op.Name, op.Count, op.Errors,
			op.P50.Round(time.Microsecond), op.P90.Round(time.Microsecond),
			op.P99.Round(time.Microsecond), op.Max.Round(time.Microsecond))
	}
	return b.String()
}
