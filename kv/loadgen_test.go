package kv

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

func TestRunLoadCoversEverySeries(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real traffic for ~300ms")
	}
	sv := NewServer(NewStore(Config{Slots: 4096}))
	ts := httptest.NewServer(sv)
	defer ts.Close()

	res, err := RunLoad(context.Background(), ts.URL, LoadConfig{
		Workers:  2,
		Duration: 300 * time.Millisecond,
		Keys:     64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != len(loadOps) {
		t.Fatalf("ops: %d want %d", len(res.Ops), len(loadOps))
	}
	// pickOp forces each worker's first four ops to be one of each kind, so
	// even a sub-second run covers every series — the property the committed
	// BENCH snapshot's coverage gate depends on.
	for i, op := range res.Ops {
		if op.Name != loadOps[i] {
			t.Fatalf("op order: got %s at %d", op.Name, i)
		}
		if op.Count == 0 {
			t.Fatalf("series %s has no samples", op.Name)
		}
		if op.Errors > 0 {
			t.Fatalf("series %s saw %d errors against a local server", op.Name, op.Errors)
		}
		if op.P50 <= 0 || op.Max < op.P99 || op.P99 < op.P50 {
			t.Fatalf("series %s has incoherent percentiles: %+v", op.Name, op)
		}
	}
	if res.TotalOpsPerUs <= 0 {
		t.Fatal("no throughput recorded")
	}

	rep := harness.NewReport("loadgen-test")
	res.FillReport(rep)
	if len(rep.Tables) != 1 {
		t.Fatalf("tables: %d", len(rep.Tables))
	}
	tab := rep.Tables[0]
	if !strings.Contains(tab.Title, "ns/op") {
		t.Fatalf("latency table title must carry the ns/op unit: %q", tab.Title)
	}
	if len(tab.Series) != 4 || len(tab.Xs) != 3 {
		t.Fatalf("table shape: %d series x %d cols", len(tab.Series), len(tab.Xs))
	}
	if len(rep.Benchmarks) != 5 { // total + one per op
		t.Fatalf("benchmarks: %d", len(rep.Benchmarks))
	}
	// A second identical-config run must produce an identical SHAPE (the
	// coverage contract benchtrend -coverage-only enforces between a committed
	// snapshot and a CI run).
	res2, err := RunLoad(context.Background(), ts.URL, LoadConfig{
		Workers:  2,
		Duration: 300 * time.Millisecond,
		Keys:     64,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := harness.NewReport("loadgen-test-2")
	res2.FillReport(rep2)
	diff := harness.DiffReports(rep, rep2, 1e9) // huge threshold: shape only
	if diff.MissingInNew > 0 {
		t.Fatalf("identical config lost coverage: %d points missing", diff.MissingInNew)
	}
}
