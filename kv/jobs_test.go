package kv

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/htm"
	"repro/queue"
)

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestJobEncoding(t *testing.T) {
	for _, tc := range []struct{ kind, lo uint64 }{
		{jobExpire, 0}, {jobCompact, 1024}, {jobExpire, 1<<30 - jobChunkSlots}, {jobCompact, 12345},
	} {
		k, lo := decodeJob(encodeJob(tc.kind, tc.lo))
		if k != tc.kind || lo != tc.lo {
			t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", tc.kind, tc.lo, k, lo)
		}
	}
}

func TestJobsPipelineExpiresAndCompacts(t *testing.T) {
	var now atomic.Int64
	now.Store(1)
	s := testStore(t, Config{Slots: 4096}, &now)

	// Entries that will expire at t=100, plus survivors.
	for i := 0; i < 50; i++ {
		if err := s.Put(bg, []byte(fmt.Sprintf("ttl-%02d", i)), []byte("v"), 99); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(bg, []byte(fmt.Sprintf("live-%02d", i)), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	jobs := StartJobs(ctx, s, JobsConfig{Interval: time.Hour, Workers: 3})

	now.Store(100)
	jobs.Sweep() // expiry pass tombstones the 50; compaction pass starts clearing
	waitUntil(t, "expiry sweep", func() bool { return s.Len() == 20 })
	// Repeated sweeps let tail-compaction cascade until only tombstones that
	// guard live probe chains remain; with 4096 slots and 70 keys clusters are
	// tiny, so effectively all 50 clear.
	waitUntil(t, "compaction", func() bool {
		jobs.Sweep()
		time.Sleep(10 * time.Millisecond)
		return s.Tombstones() == 0
	})

	// Counters are bumped after each range call returns, so they can lag the
	// index state briefly; they must converge to exactly 50/50.
	waitUntil(t, "pipeline counters", func() bool {
		st := jobs.Stats()
		return st.Expired == 50 && st.Cleared == 50
	})
	if st := jobs.Stats(); st.JobsRun == 0 || st.Sweeps == 0 {
		t.Fatalf("pipeline idle: %+v", st)
	}
	for i := 0; i < 20; i++ {
		if _, ok, _ := s.Get(bg, []byte(fmt.Sprintf("live-%02d", i))); !ok {
			t.Fatalf("survivor live-%02d lost", i)
		}
	}

	cancel()
	done := make(chan struct{})
	go func() { jobs.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline did not shut down")
	}
}

func TestJobsPipelineOnMSQueue(t *testing.T) {
	// The pipeline is queue-agnostic: run it on the EBR MS-queue to prove the
	// CtxCloser path (epoch contexts need closing) works end to end.
	var now atomic.Int64
	now.Store(1)
	cfg := Config{Slots: 2048}
	cfg.Now = now.Load
	s := NewStore(cfg)
	for i := 0; i < 30; i++ {
		if err := s.Put(bg, []byte(fmt.Sprintf("e-%02d", i)), []byte("v"), 10); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	jobs := StartJobs(ctx, s, JobsConfig{
		Interval: time.Hour,
		Workers:  2,
		NewQueue: func(h *htm.Heap) queue.Queue { return queue.NewMSQueueEBR(h) },
	})
	now.Store(1000)
	jobs.Sweep()
	waitUntil(t, "expiry on MS queue", func() bool { return s.Len() == 0 })
	cancel()
	jobs.Wait()
}

func TestJobsTickerSweeps(t *testing.T) {
	s := NewStore(Config{Slots: 1024})
	ctx, cancel := context.WithCancel(context.Background())
	jobs := StartJobs(ctx, s, JobsConfig{Interval: 10 * time.Millisecond, Workers: 1})
	waitUntil(t, "ticker-driven sweeps", func() bool { return jobs.Stats().Sweeps >= 2 })
	cancel()
	jobs.Wait()
}

func TestJobsShutdownUnderLoad(t *testing.T) {
	// Cancel while sweeps are in flight: Wait must return promptly and the
	// store must remain fully usable afterward (no worker still holds state).
	var now atomic.Int64
	now.Store(1)
	s := testStore(t, Config{Slots: 1 << 12}, &now)
	for i := 0; i < 200; i++ {
		if err := s.Put(bg, []byte(fmt.Sprintf("x-%03d", i)), []byte("v"), 5); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	jobs := StartJobs(ctx, s, JobsConfig{Interval: time.Millisecond, Workers: 4})
	now.Store(100)
	time.Sleep(20 * time.Millisecond) // let sweeps and jobs overlap the cancel
	cancel()
	done := make(chan struct{})
	go func() { jobs.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung after cancel under load")
	}
	// Post-shutdown the engine still works.
	if err := s.Put(bg, []byte("after"), []byte("shutdown"), 0); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(bg, []byte("after")); !ok {
		t.Fatal("store unusable after pipeline shutdown")
	}
}
