package kv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// bg is the context every non-deadline test op runs under.
var bg = context.Background()

// testStore builds a small store with a controllable clock.
func testStore(t *testing.T, cfg Config, now *atomic.Int64) *Store {
	t.Helper()
	if now != nil {
		cfg.Now = now.Load
	}
	return NewStore(cfg)
}

func TestPutGetDelete(t *testing.T) {
	s := NewStore(Config{Slots: 256})
	key := []byte("hello")
	val := []byte("world, of arbitrary length \x00\xff bytes")

	if _, ok, _ := s.Get(bg, key); ok {
		t.Fatal("get before put should miss")
	}
	if err := s.Put(bg, key, val, 0); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, ok, err := s.Get(bg, key)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("get: got %q want %q", got, val)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("len: got %d want 1", n)
	}

	// Replace: old entry's storage is freed on commit.
	val2 := []byte("replacement")
	if err := s.Put(bg, key, val2, 0); err != nil {
		t.Fatalf("replace: %v", err)
	}
	got, _, _ = s.Get(bg, key)
	if !bytes.Equal(got, val2) {
		t.Fatalf("after replace: got %q want %q", got, val2)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("len after replace: got %d want 1", n)
	}

	existed, err := s.Delete(bg, key)
	if err != nil || !existed {
		t.Fatalf("delete: existed=%v err=%v", existed, err)
	}
	if _, ok, _ := s.Get(bg, key); ok {
		t.Fatal("get after delete should miss")
	}
	if existed, _ := s.Delete(bg, key); existed {
		t.Fatal("second delete should report missing")
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("len after delete: got %d want 0", n)
	}
	if n := s.Tombstones(); n != 1 {
		t.Fatalf("tombstones: got %d want 1", n)
	}
}

func TestEmptyAndOversized(t *testing.T) {
	s := NewStore(Config{Slots: 64, MaxKeyBytes: 8, MaxValueBytes: 16})
	if err := s.Put(bg, nil, []byte("v"), 0); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("empty key: %v", err)
	}
	if err := s.Put(bg, []byte("123456789"), []byte("v"), 0); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("big key: %v", err)
	}
	if err := s.Put(bg, []byte("k"), bytes.Repeat([]byte("v"), 17), 0); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("big value: %v", err)
	}
}

func TestValueSizesRoundTrip(t *testing.T) {
	// Cross the word-packing boundaries: 0..17 bytes plus a jumbo value.
	s := NewStore(Config{Slots: 256})
	for n := 0; n <= 17; n++ {
		key := []byte(fmt.Sprintf("key-%d", n))
		val := bytes.Repeat([]byte{byte(n + 1)}, n)
		if err := s.Put(bg, key, val, 0); err != nil {
			t.Fatalf("put %d: %v", n, err)
		}
		got, ok, _ := s.Get(bg, key)
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("roundtrip %d bytes: ok=%v got=%q", n, ok, got)
		}
	}
	jumbo := bytes.Repeat([]byte("x0123456"), 512/8) // 512B
	if err := s.Put(bg, []byte("jumbo"), jumbo, 0); err != nil {
		t.Fatalf("jumbo put: %v", err)
	}
	if got, ok, _ := s.Get(bg, []byte("jumbo")); !ok || !bytes.Equal(got, jumbo) {
		t.Fatal("jumbo roundtrip failed")
	}
}

func TestTombstoneReuseAndProbeThrough(t *testing.T) {
	// Force a probe cluster, delete in the middle, verify later keys are
	// still reachable (tombstones keep probes alive) and that a new Put
	// reuses the tombstone.
	s := NewStore(Config{Slots: 64})
	keys := make([][]byte, 8)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("cluster-%d", i))
		if err := s.Put(bg, keys[i], []byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Delete(bg, keys[3]); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if i == 3 {
			continue
		}
		if _, ok, _ := s.Get(bg, k); !ok {
			t.Fatalf("key %d unreachable after middle delete", i)
		}
	}
	tombs := s.Tombstones()
	if err := s.Put(bg, []byte("newcomer"), []byte("n"), 0); err != nil {
		t.Fatal(err)
	}
	// The newcomer may or may not land on the tombstone depending on its
	// hash; putting keys[3] back MUST reuse its own tombstone if it is still
	// there. Either way tombstones never grow from a Put.
	if err := s.Put(bg, keys[3], []byte("back"), 0); err != nil {
		t.Fatal(err)
	}
	if got := s.Tombstones(); got > tombs {
		t.Fatalf("tombstones grew across Puts: %d -> %d", tombs, got)
	}
	if v, ok, _ := s.Get(bg, keys[3]); !ok || !bytes.Equal(v, []byte("back")) {
		t.Fatal("reinserted key unreadable")
	}
}

func TestFull(t *testing.T) {
	s := NewStore(Config{Slots: 16}) // ceiling = 12 entries
	var err error
	n := 0
	for ; n < 16; n++ {
		err = s.Put(bg, []byte(fmt.Sprintf("k%d", n)), []byte("v"), 0)
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("expected ErrFull, got %v after %d puts", err, n)
	}
	if n != maxEntries(16) {
		t.Fatalf("accepted %d entries, want %d", n, maxEntries(16))
	}
	// Deleting does not immediately recover capacity (tombstones count
	// toward the ceiling until compacted) but replacing an existing key
	// always works.
	if err := s.Put(bg, []byte("k0"), []byte("v2"), 0); err != nil {
		t.Fatalf("replace at full: %v", err)
	}
}

func TestExpiry(t *testing.T) {
	var now atomic.Int64
	now.Store(1_000_000)
	s := testStore(t, Config{Slots: 256}, &now)
	if err := s.Put(bg, []byte("ttl"), []byte("v"), 100); err != nil { // deadline 1_000_100
		t.Fatal(err)
	}
	if err := s.Put(bg, []byte("forever"), []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(bg, []byte("ttl")); !ok {
		t.Fatal("unexpired key should read")
	}
	now.Store(1_000_100)
	if _, ok, _ := s.Get(bg, []byte("ttl")); ok {
		t.Fatal("expired key should miss")
	}
	if _, ok, _ := s.Get(bg, []byte("forever")); !ok {
		t.Fatal("no-ttl key must not expire")
	}
	// The lazy miss does not reclaim; the sweep does.
	if n := s.Len(); n != 2 {
		t.Fatalf("len before sweep: %d", n)
	}
	if n := s.ExpireRange(0, s.Slots()); n != 1 {
		t.Fatalf("expire sweep removed %d, want 1", n)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("len after sweep: %d", n)
	}
	// Expired and swept: a fresh Put of the key works.
	if err := s.Put(bg, []byte("ttl"), []byte("v2"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestCompaction(t *testing.T) {
	s := NewStore(Config{Slots: 64})
	for i := 0; i < 20; i++ {
		if err := s.Put(bg, []byte(fmt.Sprintf("k%d", i)), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Delete(bg, []byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Tombstones() != 20 {
		t.Fatalf("tombstones: %d", s.Tombstones())
	}
	// With every entry deleted, every cluster is pure tombstones; repeated
	// backward sweeps must clear them all (each pass clears at least the
	// tail of each run).
	for i := 0; i < 64 && s.Tombstones() > 0; i++ {
		s.CompactRange(0, s.Slots())
	}
	if n := s.Tombstones(); n != 0 {
		t.Fatalf("compaction left %d tombstones", n)
	}
	// The index is usable and empty.
	for i := 0; i < 20; i++ {
		if err := s.Put(bg, []byte(fmt.Sprintf("r%d", i)), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Len(); n != 20 {
		t.Fatalf("len after recycle: %d", n)
	}
}

func TestCompactionKeepsProbeChains(t *testing.T) {
	// A tombstone in the MIDDLE of a live cluster must survive compaction,
	// and the keys behind it must stay reachable afterward.
	s := NewStore(Config{Slots: 64})
	for i := 0; i < 10; i++ {
		if err := s.Put(bg, []byte(fmt.Sprintf("c%d", i)), []byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Delete(bg, []byte(fmt.Sprintf("c%d", i*2))); err != nil {
			t.Fatal(err)
		}
	}
	s.CompactRange(0, s.Slots())
	for i := 0; i < 5; i++ {
		k := []byte(fmt.Sprintf("c%d", i*2+1))
		if _, ok, _ := s.Get(bg, k); !ok {
			t.Fatalf("key %s lost after compaction", k)
		}
	}
}

func TestScan(t *testing.T) {
	s := NewStore(Config{Slots: 256})
	want := map[string]string{}
	for i := 0; i < 40; i++ {
		k, v := fmt.Sprintf("scan-%02d", i), fmt.Sprintf("val-%d", i)
		want[k] = v
		if err := s.Put(bg, []byte(k), []byte(v), 0); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]string{}
	var cursor uint64
	pages := 0
	for cursor < s.Slots() {
		pairs, next, err := s.Scan(bg, cursor, 7)
		if err != nil {
			t.Fatal(err)
		}
		if next <= cursor {
			t.Fatalf("cursor did not advance: %d -> %d", cursor, next)
		}
		for _, p := range pairs {
			if _, dup := got[string(p.Key)]; dup {
				t.Fatalf("duplicate key %q in scan", p.Key)
			}
			got[string(p.Key)] = string(p.Value)
		}
		cursor = next
		pages++
	}
	if len(got) != len(want) {
		t.Fatalf("scan found %d keys, want %d (%d pages)", len(got), len(want), pages)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("scan %q: got %q want %q", k, got[k], v)
		}
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	// Hammer one store from many goroutines; -race is the real assertion,
	// plus per-key value integrity: each key's value always carries the
	// key's own tag, so a torn read or lost update surfaces as a mismatch.
	s := NewStore(Config{Slots: 1 << 10, PoolThreads: 8})
	const (
		goroutines = 8
		keys       = 64
		opsEach    = 400
	)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := uint64(g*2654435761 + 1)
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < opsEach; i++ {
				k := []byte(fmt.Sprintf("key-%02d", next(keys)))
				switch next(10) {
				case 0, 1, 2:
					val := append([]byte("tag:"), k...)
					if err := s.Put(bg, k, val, 0); err != nil && !errors.Is(err, ErrFull) {
						errc <- err
						return
					}
				case 3:
					if _, err := s.Delete(bg, k); err != nil {
						errc <- err
						return
					}
				case 4:
					if _, _, err := s.Scan(bg, uint64(next(int(s.Slots()))), 16); err != nil {
						errc <- err
						return
					}
				default:
					v, ok, err := s.Get(bg, k)
					if err != nil {
						errc <- err
						return
					}
					if ok && !bytes.Equal(v, append([]byte("tag:"), k...)) {
						errc <- fmt.Errorf("key %q read torn value %q", k, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// The engine stayed coherent: counters match a full scan.
	n := 0
	for cursor := uint64(0); cursor < s.Slots(); {
		pairs, next, _ := s.Scan(bg, cursor, 1<<20)
		n += len(pairs)
		cursor = next
	}
	if n != s.Len() {
		t.Fatalf("scan found %d live entries, Len says %d", n, s.Len())
	}
}

func TestConcurrentSameKey(t *testing.T) {
	// All goroutines fight over ONE key: replacements free the displaced
	// entry while concurrent Gets race the free — the sandboxing story. A
	// torn or use-after-free read would return a value none of the writers
	// wrote.
	s := NewStore(Config{Slots: 64, PoolThreads: 8})
	key := []byte("contended")
	legal := func(v []byte) bool {
		return len(v) == 8 && string(v[:7]) == "writer-"
	}
	var wg sync.WaitGroup
	bad := make(chan []byte, 1)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			val := []byte(fmt.Sprintf("writer-%d", g))
			for i := 0; i < 300; i++ {
				if g%2 == 0 {
					s.Put(bg, key, val, 0)
				} else if v, ok, _ := s.Get(bg, key); ok && !legal(v) {
					select {
					case bad <- v:
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case v := <-bad:
		t.Fatalf("read impossible value %q", v)
	default:
	}
}

func TestHeapReclamation(t *testing.T) {
	// Put/Delete churn must not grow live heap usage: every displaced or
	// deleted entry is freed on commit.
	s := NewStore(Config{Slots: 256})
	val := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 50; i++ {
		if err := s.Put(bg, []byte("churn"), val, 0); err != nil {
			t.Fatal(err)
		}
	}
	after := s.Heap().Stats().LiveWords
	for i := 0; i < 500; i++ {
		if err := s.Put(bg, []byte("churn"), val, 0); err != nil {
			t.Fatal(err)
		}
	}
	end := s.Heap().Stats().LiveWords
	if end != after {
		t.Fatalf("live words grew under replace churn: %d -> %d", after, end)
	}
	if _, err := s.Delete(bg, []byte("churn")); err != nil {
		t.Fatal(err)
	}
	if got := s.Heap().Stats().LiveWords; got >= end {
		t.Fatalf("delete did not free entry storage: %d -> %d", end, got)
	}
}

func TestExpiryUsesRealClockByDefault(t *testing.T) {
	s := NewStore(Config{Slots: 64})
	if err := s.Put(bg, []byte("blink"), []byte("v"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, ok, _ := s.Get(bg, []byte("blink")); !ok {
			return // expired, as it should
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("1ms-TTL key still readable after 1s")
}
