// Package kv is a transactional key-value engine whose storage is the
// simulated HTM heap (package htm). It is the repository's answer to the
// paper's central claim at system scale: if HTM makes concurrent memory
// management simple, a network-facing store should be buildable as plain
// sequential code inside transactions — and it is.
//
// The engine is an open-addressing (linear-probe) hash index mapping keys to
// heap blocks. Each slot of the index is ONE heap word holding the entry
// block's address (0 = empty, 1 = tombstone); each entry block packs the key
// hash, key/value lengths, an expiry deadline and the key and value bytes
// into consecutive heap words. Every operation — Get, Put, Delete, Scan —
// runs as a single heap transaction via Thread.Atomic with TLE enabled, so:
//
//   - The sequential code path IS the concurrent code path. Probing,
//     key comparison and value copy are ordinary loops over Txn.Load.
//   - A Put that replaces or a Delete frees the displaced entry block with
//     Txn.FreeOnCommit — memory is returned the instant the operation
//     commits, and any racing reader of the old entry aborts (sandboxing)
//     instead of observing reuse, exactly like the paper's HTM queue.
//   - Operations whose footprint exceeds the simulated store buffer or read
//     set (large scans) complete on the fine-grained TLE fallback, locking
//     only the words they touch.
//
// Background maintenance (expiry of TTL'd entries, compaction of tombstones)
// flows through an async job pipeline (see jobs.go) built on the package
// queue implementations, and the HTTP layer (server.go, middleware.go) adds
// logging/recovery/metrics middleware plus context-driven graceful shutdown.
package kv

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/htm"
	"repro/kv/wal"
)

// Tuning limits. Key and value sizes are bounded so a single operation's
// transactional footprint stays far below the heap's read-set capacity.
const (
	// DefaultSlots is the default hash-index capacity (slots, rounded up to a
	// power of two).
	DefaultSlots = 1 << 14
	// DefaultMaxKeyBytes and DefaultMaxValueBytes bound entry sizes.
	DefaultMaxKeyBytes   = 256
	DefaultMaxValueBytes = 4096
)

// Errors returned by Store operations.
var (
	// ErrFull is returned by Put when the index has reached its load-factor
	// ceiling and no slot can be claimed for a new key.
	ErrFull = errors.New("kv: index full")
	// ErrKeyTooLarge and ErrValueTooLarge report an oversized key or value.
	ErrKeyTooLarge   = errors.New("kv: key exceeds maximum size")
	ErrValueTooLarge = errors.New("kv: value exceeds maximum size")
	// ErrEmptyKey reports a zero-length key (reserved: an empty key cannot be
	// distinguished from a missing path segment at the HTTP layer).
	ErrEmptyKey = errors.New("kv: empty key")
	// ErrDeadline reports that an operation was abandoned because its context
	// was cancelled or its deadline passed — while waiting for a pooled
	// execution context, or between transaction retry attempts. An operation
	// that returns ErrDeadline definitely did not take effect.
	ErrDeadline = errors.New("kv: operation abandoned at deadline")
	// ErrDurability reports that a mutation committed to the in-memory heap
	// but could NOT be made durable (the commit log failed). The caller must
	// treat the operation as failed: it may or may not survive a crash.
	ErrDurability = errors.New("kv: durability write failed")
)

// Config parameterizes a Store. The zero value selects the defaults above on
// a private heap sized to hold the index plus a comfortable data budget.
type Config struct {
	// Slots is the hash-index capacity; rounded up to a power of two.
	// Defaults to DefaultSlots. The index holds at most 3/4·Slots entries
	// (including tombstones awaiting compaction) before Put returns ErrFull.
	Slots int

	// HeapWords sizes the backing heap arena. Defaults to a budget derived
	// from Slots and MaxValueBytes that comfortably holds a full index of
	// mid-sized entries; size it explicitly for large-value workloads.
	HeapWords int

	// MaxKeyBytes / MaxValueBytes bound entry sizes (defaults above).
	MaxKeyBytes   int
	MaxValueBytes int

	// PoolThreads is the number of htm execution contexts the store keeps for
	// serving operations — the store's concurrency ceiling. Defaults to
	// 4·GOMAXPROCS (HTTP handlers block on I/O, so more contexts than cores
	// keeps the engine busy).
	PoolThreads int

	// GlobalFallback selects the paper's global TLE fallback lock instead of
	// the default fine-grained per-word lock-set (comparison benchmarks).
	GlobalFallback bool

	// MaxRetries overrides the engine's retry budget before an operation
	// completes on the TLE fallback (0 = htm default). Chaos experiments
	// raise it to keep operations on the killable hardware path longer.
	MaxRetries int

	// ClockShards shards the heap's version clock (htm.Config.ClockShards):
	// commits tick a per-thread home shard instead of one global word.
	// 0/1 selects the single scalar clock.
	ClockShards int

	// StripeShift maintains one metadata word per 2^StripeShift heap words
	// (htm.Config.StripeShift): less metadata memory and one commit CAS per
	// stripe, bought with false conflicts between neighboring entries.
	// 0 keeps per-word metadata.
	StripeShift int

	// Faults attaches a seeded fault-injection plan to the backing heap (see
	// htm.FaultPlan) — the chaos harness's adversity dial. nil injects
	// nothing.
	Faults *htm.FaultPlan

	// Adaptive, when non-nil, arms the heap's runtime contention knobs
	// (htm.Config.Adaptive) and attaches an htm.Tuner to the store: the
	// fallback mode, spin budget and dedup threshold self-tune from live
	// abort feedback, and the admission Governor (if the server enables one)
	// tracks the heap's abort mix instead of using a static storm threshold.
	// nil keeps every knob static — bit-for-bit the non-adaptive engine.
	Adaptive *AdaptiveConfig

	// Durability, when non-nil, attaches a write-ahead commit log and
	// snapshotting to the store: every acknowledged PUT/DELETE is CRC-framed
	// into the log (group-commit fsync) before the call returns, and
	// startup replays snapshot-then-log. A store with Durability set must be
	// built with Open (recovery can fail); NewStore panics on it.
	Durability *Durability

	// Now overrides the expiry clock (tests). Defaults to time.Now-based
	// unix nanoseconds.
	Now func() int64
}

// AdaptiveConfig parameterizes the store's contention Tuner (htm.Tuner).
type AdaptiveConfig struct {
	// Interval is the tuning epoch length (0 = htm default, 25ms).
	Interval time.Duration
	// Pinned arms the sampling loop but suppresses every decision: epochs
	// tick and /stats reports live data, yet no knob is ever written. The
	// chaos harness runs enabled-but-pinned to prove the adaptive machinery
	// itself perturbs nothing.
	Pinned bool
}

// Durability parameterizes the WAL + snapshot subsystem (package kv/wal).
type Durability struct {
	// Dir is the log directory (segments, snapshots, clean marker).
	Dir string
	// FS overrides the filesystem (tests inject wal.MemFS/wal.FaultFS);
	// nil selects the real one.
	FS wal.FS
	// SegmentBytes is the log rotation threshold (default 4 MiB).
	SegmentBytes int
	// NoSync skips per-batch fsync: throughput mode, durability off.
	NoSync bool
	// SnapshotEvery triggers an automatic snapshot (and old-segment
	// truncation) after that many acknowledged mutations; 0 disables
	// automatic snapshots (Store.Snapshot still works).
	SnapshotEvery int
}

func (d *Durability) withDefaults() *Durability {
	out := *d
	if out.FS == nil {
		out.FS = wal.OSFS{}
	}
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 4 << 20
	}
	return &out
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = DefaultSlots
	}
	n := 1
	for n < c.Slots {
		n <<= 1
	}
	c.Slots = n
	if c.MaxKeyBytes <= 0 {
		c.MaxKeyBytes = DefaultMaxKeyBytes
	}
	if c.MaxValueBytes <= 0 {
		c.MaxValueBytes = DefaultMaxValueBytes
	}
	if c.PoolThreads <= 0 {
		c.PoolThreads = 4 * runtime.GOMAXPROCS(0)
		if c.PoolThreads < 8 {
			c.PoolThreads = 8
		}
	}
	if c.HeapWords <= 0 {
		// Index + headers + a data budget assuming entries average a quarter
		// of the maximum value size, with 2x slack for allocator caching,
		// queue nodes and fragmentation.
		avgEntry := entryHdrWords + wordsFor(c.MaxKeyBytes)/2 + wordsFor(c.MaxValueBytes)/4 + 1
		c.HeapWords = 2 * (c.Slots + maxEntries(c.Slots)*avgEntry)
		if c.HeapWords < 1<<16 {
			c.HeapWords = 1 << 16
		}
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

// maxEntries is the load-factor ceiling: the index accepts at most 3/4 of its
// slots as live entries plus uncompacted tombstones, keeping linear-probe
// clusters short.
func maxEntries(slots int) int { return slots / 4 * 3 }

// wordsFor returns the number of 64-bit heap words needed for n bytes.
func wordsFor(n int) int { return (n + 7) / 8 }

// validateSizes checks key/value bounds shared by Put and the read paths.
func (s *Store) validateKey(key []byte) error {
	switch {
	case len(key) == 0:
		return ErrEmptyKey
	case len(key) > s.cfg.MaxKeyBytes:
		return fmt.Errorf("%w (%d > %d bytes)", ErrKeyTooLarge, len(key), s.cfg.MaxKeyBytes)
	}
	return nil
}

// hashKey is FNV-1a 64, computed outside transactions (the hash of a key is
// immutable, so hashing inside the retry loop would be wasted work).
func hashKey(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	// Never return the reserved slot markers; fold them away so entry hash
	// words are always distinguishable from empty/tombstone slots when read
	// back by diagnostics (the index itself stores addresses, not hashes).
	if h == 0 {
		h = offset64
	}
	return h
}

// packWords packs b little-endian into words, zero-padding the tail word.
func packWords(b []byte, out []uint64) {
	for i := range out {
		var w uint64
		for j := 0; j < 8; j++ {
			if k := i*8 + j; k < len(b) {
				w |= uint64(b[k]) << (8 * j)
			}
		}
		out[i] = w
	}
}

// unpackWord appends up to n bytes of w (little-endian) to dst.
func unpackWord(dst []byte, w uint64, n int) []byte {
	for j := 0; j < n; j++ {
		dst = append(dst, byte(w>>(8*j)))
	}
	return dst
}

// entry block layout (payload words of one allocated block):
//
//	word 0: key hash (FNV-1a 64)
//	word 1: key length in bytes << 32 | value length in bytes
//	word 2: expiry deadline, unix nanoseconds (0 = never expires)
//	word 3: durability sequence number (0 when the store has no WAL)
//	word 4 ... : key bytes packed LE, then value bytes packed LE
//
// The sequence number is the store-wide mutation order: ticked inside the
// publishing transaction, logged with the entry's WAL record, and snapshotted
// with the entry, it is what lets recovery merge a snapshot taken during
// writes with the log records around it (see DESIGN.md "Durability &
// recovery" for the replay rule).
const (
	entryHash = iota
	entryLens
	entryExpiry
	entrySeq
	entryHdrWords
)

// entryWords returns the payload size of an entry block for klen/vlen bytes.
func entryWords(klen, vlen int) int {
	return entryHdrWords + wordsFor(klen) + wordsFor(vlen)
}
