package wal

import (
	"errors"
	"fmt"
)

// ErrRecovery is the sentinel for unrecoverable log state: mid-log
// corruption, a gap in the segment sequence, or a replay callback failure
// (e.g. the store's index cannot hold the logged state). errors.Is(err,
// ErrRecovery) matches any *RecoveryError.
var ErrRecovery = errors.New("wal: unrecoverable log")

// RecoveryError pinpoints where recovery had to give up: the file, the byte
// offset of the offending frame, and the underlying cause. It is deliberately
// typed (not a formatted string) so operators and harnesses can decide
// between "move the wal dir aside" and "fix the config" programmatically.
type RecoveryError struct {
	Path   string // file that failed
	Offset int64  // byte offset of the bad frame (or -1 when not applicable)
	Err    error  // cause
}

func (e *RecoveryError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("wal: recovery failed at %s+%d: %v", e.Path, e.Offset, e.Err)
	}
	return fmt.Sprintf("wal: recovery failed at %s: %v", e.Path, e.Err)
}

func (e *RecoveryError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrRecovery) true for every RecoveryError.
func (e *RecoveryError) Is(target error) bool { return target == ErrRecovery }

// Source tells the replay callback where a record came from: snapshot
// records seed the state (and the per-key sequence map); log records are
// applied under the sequence rule.
type Source int

const (
	SourceSnapshot Source = iota
	SourceLog
)

// Result summarizes a recovery.
type Result struct {
	// Clean reports a valid clean-shutdown marker was present.
	Clean bool
	// MarkerSeq is the sequence number the marker recorded (when Clean).
	MarkerSeq uint64
	// HasSnapshot/SnapshotSeg identify the snapshot that seeded the state.
	HasSnapshot bool
	SnapshotSeg uint64
	// SnapshotEntries counts entry records loaded from the snapshot,
	// LogRecords the records streamed from segments.
	SnapshotEntries uint64
	LogRecords      uint64
	// TruncatedBytes is how much torn tail was cut from the final segment
	// (0 on a clean log). TornSegment names it when nonzero.
	TruncatedBytes int64
	TornSegment    string
	// Segments is how many segment files were replayed.
	Segments int
	// NextSeg is the segment index the reopened log must append to.
	NextSeg uint64
}

// Recover replays the durable state in dir: the newest valid snapshot (if
// any), then every segment from the snapshot's base onward, in order,
// calling apply for each record. It truncates a torn tail in the final
// segment (repairing the file in place so the reopened log appends after the
// last valid record) and returns a *RecoveryError for anything torn-tail
// semantics cannot explain: a bad frame in a non-final segment, a gap in the
// segment sequence, a missing segment the chosen snapshot requires, or an
// apply failure.
//
// apply receives snapshot records first (Source == SourceSnapshot, preceded
// by the snapshot's KindSnapHeader carrying the replay barrier), then log
// records (Source == SourceLog) in file order. The sequence-number replay
// rule lives in the caller; Recover owns file integrity only.
func Recover(fsys FS, dir string, apply func(rec Record, src Source) error) (*Result, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	res := &Result{}
	if seq, ok := ReadCleanMarker(fsys, dir); ok {
		res.Clean = true
		res.MarkerSeq = seq
	}

	// Choose the newest structurally valid snapshot. Invalid ones (torn
	// temp promoted by a lying rename, for instance) are skipped; whether
	// an older one still works depends on which segments survive below.
	snaps, err := listIndexed(fsys, dir, snapPrefix, snapSuffix)
	if err != nil {
		return nil, err
	}
	var snapRecords []Record
	for i := len(snaps) - 1; i >= 0; i-- {
		recs, lerr := loadSnapshot(fsys, dir, snaps[i])
		if lerr != nil {
			continue // structurally invalid: ignore, try older
		}
		res.HasSnapshot = true
		res.SnapshotSeg = snaps[i]
		snapRecords = recs
		break
	}

	segs, err := listIndexed(fsys, dir, segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	// Integrity of the segment sequence: contiguous, and starting at the
	// snapshot's base (or at 0 when there is no snapshot — a lowest segment
	// above 0 means history was pruned against a snapshot we failed to
	// load, which is unrecoverable).
	first := uint64(0)
	if res.HasSnapshot {
		first = res.SnapshotSeg
	}
	replay := segs[:0]
	for _, idx := range segs {
		if idx >= first {
			replay = append(replay, idx)
		}
		// Segments below the snapshot base are stale leftovers from an
		// interrupted prune; they are covered by the snapshot and ignored.
	}
	if len(replay) > 0 && replay[0] != first {
		return nil, &RecoveryError{Path: join(dir, segName(replay[0])), Offset: -1,
			Err: fmt.Errorf("log starts at segment %d, expected %d (pruned or missing history)", replay[0], first)}
	}
	if len(replay) == 0 && !res.HasSnapshot && len(segs) > 0 {
		// Unreachable (replay keeps everything >= 0), kept for clarity.
		return nil, &RecoveryError{Path: dir, Offset: -1, Err: fmt.Errorf("no replayable segments")}
	}
	for i := 1; i < len(replay); i++ {
		if replay[i] != replay[i-1]+1 {
			return nil, &RecoveryError{Path: join(dir, segName(replay[i])), Offset: -1,
				Err: fmt.Errorf("segment gap: %d follows %d", replay[i], replay[i-1])}
		}
	}

	// Seed state from the snapshot.
	for _, rec := range snapRecords {
		if rec.Kind == KindSnapFooter {
			continue
		}
		if err := apply(rec, SourceSnapshot); err != nil {
			return nil, &RecoveryError{Path: join(dir, snapName(res.SnapshotSeg)), Offset: -1, Err: err}
		}
		if rec.Kind == KindPut {
			res.SnapshotEntries++
		}
	}

	// Stream the segments.
	for i, idx := range replay {
		path := join(dir, segName(idx))
		data, rerr := fsys.ReadFile(path)
		if rerr != nil {
			return nil, &RecoveryError{Path: path, Offset: -1, Err: rerr}
		}
		final := i == len(replay)-1
		off := 0
		for off < len(data) {
			rec, n, derr := decodeFrame(data[off:])
			if derr != nil {
				if !final {
					return nil, &RecoveryError{Path: path, Offset: int64(off),
						Err: fmt.Errorf("mid-log corruption: %w", derr)}
				}
				// Torn tail: truncate the file at the last valid frame so
				// the reopened log appends cleanly after it.
				res.TruncatedBytes = int64(len(data) - off)
				res.TornSegment = segName(idx)
				if terr := fsys.Truncate(path, int64(off)); terr != nil {
					return nil, &RecoveryError{Path: path, Offset: int64(off),
						Err: fmt.Errorf("truncating torn tail: %w", terr)}
				}
				break
			}
			if rec.Kind != KindPut && rec.Kind != KindDelete {
				return nil, &RecoveryError{Path: path, Offset: int64(off),
					Err: fmt.Errorf("unexpected record kind %d in log", rec.Kind)}
			}
			if err := apply(rec, SourceLog); err != nil {
				return nil, &RecoveryError{Path: path, Offset: int64(off), Err: err}
			}
			res.LogRecords++
			off += n
		}
		res.Segments++
	}

	res.NextSeg = first
	if len(replay) > 0 {
		res.NextSeg = replay[len(replay)-1]
	}
	return res, nil
}
