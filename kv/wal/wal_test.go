package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestFrameRoundTrip encodes every record kind through the frame layer and
// decodes it back.
func TestFrameRoundTrip(t *testing.T) {
	cases := []Record{
		{Kind: KindPut, Seq: 1, Expiry: 0, Key: []byte("k"), Val: []byte("v")},
		{Kind: KindPut, Seq: 1 << 40, Expiry: 1 << 62, Key: bytes.Repeat([]byte("K"), 256), Val: bytes.Repeat([]byte("V"), 4096)},
		{Kind: KindPut, Seq: 7, Key: []byte("empty-value"), Val: []byte{}},
		{Kind: KindDelete, Seq: 9, Key: []byte("gone")},
		{Kind: KindSnapHeader, Barrier: 12345, Seg: 3},
		{Kind: KindSnapFooter, Count: 99},
	}
	var buf []byte
	for _, rec := range cases {
		buf = appendFrame(buf, rec)
	}
	off := 0
	for i, want := range cases {
		got, n, err := decodeFrame(buf[off:])
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || got.Expiry != want.Expiry ||
			got.Barrier != want.Barrier || got.Seg != want.Seg || got.Count != want.Count ||
			!bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Val, want.Val) {
			t.Fatalf("case %d: round trip mismatch: got %+v want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

// TestDecodeRejects pins the failure classification: truncation is torn,
// bit-flips are corruption, and both are errors.
func TestDecodeRejects(t *testing.T) {
	frame := appendFrame(nil, Record{Kind: KindPut, Seq: 5, Key: []byte("key"), Val: []byte("value")})
	for cut := 0; cut < len(frame); cut++ {
		_, _, err := decodeFrame(frame[:cut])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(frame))
		}
	}
	// Every single-byte flip must be rejected (length flips either overrun —
	// torn — or reframe bytes whose CRC cannot match).
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, err := decodeFrame(bad); err == nil {
			t.Fatalf("flip at byte %d decoded successfully", i)
		}
	}
}

func memLog(t *testing.T, dir string, opt Options) (*MemFS, *Log) {
	t.Helper()
	mfs := NewMemFS()
	opt.FS = mfs
	l, err := OpenLog(dir, 0, opt)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	return mfs, l
}

// recoverAll runs Recover and collects the applied records.
func recoverAll(t *testing.T, fsys FS, dir string) ([]Record, *Result) {
	t.Helper()
	var recs []Record
	res, err := Recover(fsys, dir, func(rec Record, src Source) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return recs, res
}

// TestGroupCommit hammers one log from many goroutines (run under -race) and
// checks every acknowledged append is durably recoverable, in a batch count
// no larger than the append count.
func TestGroupCommit(t *testing.T) {
	const writers, perWriter = 8, 50
	mfs, l := memLog(t, "d", Options{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := l.AppendPut(uint64(w*perWriter+i+1), 0, []byte(key), []byte("v")); err != nil {
					t.Errorf("append %s: %v", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Batches > st.Appends || st.Batches == 0 {
		t.Fatalf("batches = %d outside (0, %d]", st.Batches, st.Appends)
	}
	mfs.Crash() // every acknowledged append was fsynced, so nothing is lost
	recs, res := recoverAll(t, mfs, "d")
	if len(recs) != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", len(recs), writers*perWriter)
	}
	if res.TruncatedBytes != 0 {
		t.Fatalf("unexpected truncation: %+v", res)
	}
}

// TestRotateAndPrune rotates across several segments, snapshots nothing, and
// checks recovery stitches the segments in order; pruning below the oldest
// kept segment then fails recovery (gap against base 0 with no snapshot).
func TestRotateAndPrune(t *testing.T) {
	mfs, l := memLog(t, "d", Options{})
	var want []string
	for seg := 0; seg < 3; seg++ {
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("s%d-k%d", seg, i)
			want = append(want, key)
			if err := l.AppendPut(uint64(len(want)), 0, []byte(key), []byte("v")); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if seg < 2 {
			if _, err := l.Rotate(); err != nil {
				t.Fatalf("rotate: %v", err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, res := recoverAll(t, mfs, "d")
	if res.Segments != 3 || res.NextSeg != 2 {
		t.Fatalf("segments=%d nextSeg=%d, want 3/2", res.Segments, res.NextSeg)
	}
	for i, rec := range recs {
		if string(rec.Key) != want[i] {
			t.Fatalf("record %d = %q, want %q (segment order broken)", i, rec.Key, want[i])
		}
	}
	// Remove the first segment: with no snapshot covering it, the history has
	// a hole and recovery must refuse.
	if err := mfs.Remove(join("d", segName(0))); err != nil {
		t.Fatalf("remove: %v", err)
	}
	_, err := Recover(mfs, "d", func(Record, Source) error { return nil })
	if !errors.Is(err, ErrRecovery) {
		t.Fatalf("recovery after pruned history: %v, want ErrRecovery", err)
	}
}

// TestTornTailEveryPrefix is the torn-write exhaustive check: for EVERY byte
// prefix of a valid single-segment log, recovery must succeed, recover
// exactly the records whose frames fit the prefix completely, and truncate
// the rest.
func TestTornTailEveryPrefix(t *testing.T) {
	mfs, l := memLog(t, "d", Options{})
	const n = 20
	var boundaries []int // frame end offsets
	for i := 0; i < n; i++ {
		if err := l.AppendPut(uint64(i+1), 0, []byte(fmt.Sprintf("key-%02d", i)), bytes.Repeat([]byte{byte(i)}, i*7)); err != nil {
			t.Fatalf("append: %v", err)
		}
		data, err := mfs.ReadFile(join("d", segName(0)))
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		boundaries = append(boundaries, len(data))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full, err := mfs.ReadFile(join("d", segName(0)))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	for cut := 0; cut <= len(full); cut++ {
		sub := NewMemFS()
		f, _ := sub.Create(join("d", segName(0)))
		f.Write(full[:cut])
		f.Sync()
		f.Close()
		var got []Record
		res, err := Recover(sub, "d", func(rec Record, src Source) error {
			got = append(got, rec)
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: Recover: %v", cut, err)
		}
		wantRecs := 0
		for _, b := range boundaries {
			if b <= cut {
				wantRecs++
			}
		}
		if len(got) != wantRecs {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), wantRecs)
		}
		wantTrunc := int64(cut)
		if wantRecs > 0 {
			wantTrunc = int64(cut - boundaries[wantRecs-1])
		}
		if res.TruncatedBytes != wantTrunc {
			t.Fatalf("cut=%d: truncated %d bytes, want %d", cut, res.TruncatedBytes, wantTrunc)
		}
		// The repair is in place: a second recovery sees a clean log.
		got = got[:0]
		res2, err := Recover(sub, "d", func(rec Record, src Source) error { got = append(got, rec); return nil })
		if err != nil || len(got) != wantRecs || res2.TruncatedBytes != 0 {
			t.Fatalf("cut=%d: second recovery not clean: err=%v records=%d truncated=%d",
				cut, err, len(got), res2.TruncatedBytes)
		}
	}
}

// TestMidLogCorruption flips a byte in a NON-final segment: torn-tail
// semantics cannot explain that, so recovery must refuse with a typed error
// naming the file and offset.
func TestMidLogCorruption(t *testing.T) {
	mfs, l := memLog(t, "d", Options{})
	for i := 0; i < 5; i++ {
		if err := l.AppendPut(uint64(i+1), 0, []byte(fmt.Sprintf("k%d", i)), []byte("vvvv")); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if err := l.AppendPut(6, 0, []byte("post"), []byte("v")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := mfs.Corrupt(join("d", segName(0)), 30, 0x08); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	_, err := Recover(mfs, "d", func(Record, Source) error { return nil })
	if !errors.Is(err, ErrRecovery) {
		t.Fatalf("mid-log corruption: %v, want ErrRecovery", err)
	}
	var re *RecoveryError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RecoveryError", err)
	}
	if re.Path != join("d", segName(0)) || re.Offset < 0 {
		t.Fatalf("error lacks location: %+v", re)
	}
}

// TestFaultFSTornWrite forces an injected short write: the append must report
// failure, and crash-recovery must truncate the torn bytes without error —
// the unacknowledged record simply never happened.
func TestFaultFSTornWrite(t *testing.T) {
	mfs := NewMemFS()
	ffs := NewFaultFS(mfs, FaultPlan{Seed: 42, ShortWriteProb: 1})
	l, err := OpenLog("d", 0, Options{FS: ffs})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if err := l.AppendPut(1, 0, []byte("doomed"), bytes.Repeat([]byte("x"), 100)); err == nil {
		t.Fatal("append through a torn write succeeded")
	}
	if ffs.ShortWrites == 0 {
		t.Fatal("no short write was injected")
	}
	mfs.Crash()
	recs, res := recoverAll(t, mfs, "d")
	if len(recs) != 0 {
		t.Fatalf("recovered %d records from a log of failures", len(recs))
	}
	_ = res
}

// TestFaultFSLyingSync models a device that acknowledges fsync without
// persisting: the log believes the append is durable, the crash loses it.
// Recovery must still be clean (torn tail at worst) — the loss is detectable
// only by comparing against acknowledged writes, which is crashkv's job.
func TestFaultFSLyingSync(t *testing.T) {
	mfs := NewMemFS()
	ffs := NewFaultFS(mfs, FaultPlan{Seed: 7, LieSyncProb: 1})
	l, err := OpenLog("d", 0, Options{FS: ffs})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := l.AppendPut(uint64(i+1), 0, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if ffs.LiedSyncs == 0 {
		t.Fatal("no lying fsync was injected")
	}
	mfs.Crash()
	recs, _ := recoverAll(t, mfs, "d")
	if len(recs) != 0 {
		t.Fatalf("recovered %d records that were never really synced", len(recs))
	}
}

// TestCleanMarker round-trips the marker and checks removal.
func TestCleanMarker(t *testing.T) {
	mfs := NewMemFS()
	if _, ok := ReadCleanMarker(mfs, "d"); ok {
		t.Fatal("marker present in empty dir")
	}
	if err := WriteCleanMarker(mfs, "d", 777); err != nil {
		t.Fatalf("write marker: %v", err)
	}
	seq, ok := ReadCleanMarker(mfs, "d")
	if !ok || seq != 777 {
		t.Fatalf("read marker: %d, %v", seq, ok)
	}
	RemoveCleanMarker(mfs, "d")
	if _, ok := ReadCleanMarker(mfs, "d"); ok {
		t.Fatal("marker survived removal")
	}
}

// TestAppendAfterClose pins the ErrClosed contract.
func TestAppendAfterClose(t *testing.T) {
	_, l := memLog(t, "d", Options{})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.AppendPut(1, 0, []byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
