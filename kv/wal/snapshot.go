package wal

import (
	"fmt"
)

// Snapshot files: the same CRC framing as segments, with a fixed structure —
// one KindSnapHeader (carrying the replay barrier and the base segment), then
// KindPut entry records, then one KindSnapFooter whose Count must equal the
// entry count. The file is written as snap-N.snap.tmp, fsynced, and renamed
// into place, so a snapshot either exists completely or not at all; the
// footer check catches the remaining failure mode (a lying fsync persisting
// a prefix past the rename).

// SnapshotWriter streams one snapshot file.
type SnapshotWriter struct {
	fsys  FS
	dir   string
	seg   uint64
	f     File
	buf   []byte
	count uint64
	err   error
}

// snapshotFlushBytes bounds the writer's in-memory buffer.
const snapshotFlushBytes = 1 << 20

// NewSnapshotWriter starts snapshot seg: the resulting file asserts "this
// state covers everything before segment seg, with replay barrier barrier".
// The barrier must be a store sequence number read AFTER the rotation that
// created segment seg (see the replay rule in DESIGN.md).
func NewSnapshotWriter(fsys FS, dir string, seg, barrier uint64) (*SnapshotWriter, error) {
	f, err := fsys.Create(join(dir, snapName(seg)+snapTemp))
	if err != nil {
		return nil, fmt.Errorf("wal: create snapshot temp: %w", err)
	}
	w := &SnapshotWriter{fsys: fsys, dir: dir, seg: seg, f: f}
	w.buf = appendFrame(w.buf, Record{Kind: KindSnapHeader, Barrier: barrier, Seg: seg})
	return w, nil
}

// Add appends one entry (key, value, expiry, seq) to the snapshot.
func (w *SnapshotWriter) Add(seq, expiry uint64, key, val []byte) error {
	if w.err != nil {
		return w.err
	}
	w.buf = appendFrame(w.buf, Record{Kind: KindPut, Seq: seq, Expiry: expiry, Key: key, Val: val})
	w.count++
	if len(w.buf) >= snapshotFlushBytes {
		return w.flush()
	}
	return nil
}

func (w *SnapshotWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.err = fmt.Errorf("wal: write snapshot: %w", err)
		return w.err
	}
	w.buf = w.buf[:0]
	return nil
}

// Abort discards the temp file (snapshot failed mid-way).
func (w *SnapshotWriter) Abort() {
	w.f.Close()
	_ = w.fsys.Remove(join(w.dir, snapName(w.seg)+snapTemp))
}

// Close writes the footer, fsyncs, and atomically publishes the snapshot.
func (w *SnapshotWriter) Close() error {
	if w.err != nil {
		w.Abort()
		return w.err
	}
	w.buf = appendFrame(w.buf, Record{Kind: KindSnapFooter, Count: w.count})
	if err := w.flush(); err != nil {
		w.Abort()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	tmp := join(w.dir, snapName(w.seg)+snapTemp)
	if err := w.fsys.Rename(tmp, join(w.dir, snapName(w.seg))); err != nil {
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	return nil
}

// Count returns how many entries have been added.
func (w *SnapshotWriter) Count() uint64 { return w.count }

// loadSnapshot reads and fully validates snapshot seg: framing, CRCs, the
// header-first/footer-last structure, and the footer count. Any defect
// returns an error — the caller treats the snapshot as absent.
func loadSnapshot(fsys FS, dir string, seg uint64) ([]Record, error) {
	path := join(dir, snapName(seg))
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	off := 0
	for off < len(data) {
		rec, n, derr := decodeFrame(data[off:])
		if derr != nil {
			return nil, fmt.Errorf("snapshot %s at +%d: %w", snapName(seg), off, derr)
		}
		recs = append(recs, rec)
		off += n
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("snapshot %s: too short (%d records)", snapName(seg), len(recs))
	}
	if recs[0].Kind != KindSnapHeader || recs[0].Seg != seg {
		return nil, fmt.Errorf("snapshot %s: bad header", snapName(seg))
	}
	last := recs[len(recs)-1]
	if last.Kind != KindSnapFooter {
		return nil, fmt.Errorf("snapshot %s: missing footer (torn)", snapName(seg))
	}
	if want := uint64(len(recs) - 2); last.Count != want {
		return nil, fmt.Errorf("snapshot %s: footer count %d, found %d entries", snapName(seg), last.Count, want)
	}
	for _, r := range recs[1 : len(recs)-1] {
		if r.Kind != KindPut {
			return nil, fmt.Errorf("snapshot %s: unexpected record kind %d", snapName(seg), r.Kind)
		}
	}
	return recs, nil
}
