package wal

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Segment and snapshot file naming. Segment indices are contiguous; snapshot
// N covers everything before segment N (segments >= N must still be
// replayed over it).
const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	snapTemp   = ".tmp"
	markerName = "CLEAN"
)

func segName(idx uint64) string  { return fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix) }
func snapName(idx uint64) string { return fmt.Sprintf("%s%08d%s", snapPrefix, idx, snapSuffix) }

// parseIndexed extracts N from prefix-NNNNNNNN-suffix names; ok=false for
// anything else (temp files, the marker, strangers).
func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listIndexed returns the sorted indices of prefix/suffix files in dir.
func listIndexed(fsys FS, dir, prefix, suffix string) ([]uint64, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil && !IsNotExist(err) {
		return nil, err
	}
	var idxs []uint64
	for _, name := range names {
		if n, ok := parseIndexed(name, prefix, suffix); ok {
			idxs = append(idxs, n)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// ErrClosed is returned by appends to a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options parameterizes an open log.
type Options struct {
	// FS is the filesystem; nil selects OSFS.
	FS FS
	// SegmentBytes is the rotation threshold; a segment that exceeds it
	// after a flush is closed and a new one started. Default 4 MiB.
	SegmentBytes int
	// NoSync skips the per-batch fsync (throughput experiments; the
	// durability guarantee is off and crashes may lose acknowledged
	// writes — crashkv will say so).
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Stats is a snapshot of log activity counters.
type Stats struct {
	Appends   uint64 `json:"appends"`
	Batches   uint64 `json:"batches"`
	Syncs     uint64 `json:"syncs"`
	Rotations uint64 `json:"rotations"`
	Bytes     uint64 `json:"bytes"`
}

// Log is the append-only commit log. Append is safe for concurrent use and
// group-commits: concurrent appenders share one write+fsync batch (the first
// to arrive becomes the flush leader; the rest ride its sync), so the fsync
// rate is bounded by I/O latency, not by the operation rate.
type Log struct {
	opt Options
	dir string

	mu        sync.Mutex
	cond      *sync.Cond
	seg       File   // active segment handle
	segIdx    uint64 // active segment index
	segSize   int64  // bytes written to the active segment
	pending   []byte // framed records awaiting the next flush
	writeGen  uint64 // generation of the last flush STARTED
	syncedGen uint64 // generation of the last flush COMPLETED
	flushing  bool
	closed    bool
	err       error // sticky I/O error: the log is broken, stop acknowledging

	appends, batches, syncs, rotations, bytes atomic.Uint64
}

// OpenLog opens the log in dir for appending, continuing the existing last
// segment (startSeg, as reported by Recover) or creating segment startSeg if
// absent. Recovery must have run first: it truncates any torn tail, so the
// append point is the end of the last valid record.
func OpenLog(dir string, startSeg uint64, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := opt.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	l := &Log{opt: opt, dir: dir, segIdx: startSeg}
	l.cond = sync.NewCond(&l.mu)
	// Size the append point from the existing content (zero for a new file).
	if data, err := opt.FS.ReadFile(join(dir, segName(startSeg))); err == nil {
		l.segSize = int64(len(data))
	} else if !IsNotExist(err) {
		return nil, fmt.Errorf("wal: size %s: %w", segName(startSeg), err)
	}
	seg, err := opt.FS.OpenAppend(join(dir, segName(startSeg)))
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", segName(startSeg), err)
	}
	l.seg = seg
	return l, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// FS returns the log's filesystem (snapshot writer, tests).
func (l *Log) FS() FS { return l.opt.FS }

// AppendPut appends a PUT record and returns once it is durable.
func (l *Log) AppendPut(seq, expiry uint64, key, val []byte) error {
	return l.append(Record{Kind: KindPut, Seq: seq, Expiry: expiry, Key: key, Val: val})
}

// AppendDelete appends a DELETE record and returns once it is durable.
func (l *Log) AppendDelete(seq uint64, key []byte) error {
	return l.append(Record{Kind: KindDelete, Seq: seq, Key: key})
}

// append frames rec into the pending batch and waits until a flush covering
// it has completed (group commit). The first waiter whose batch is not yet
// being flushed becomes the leader and performs the write+fsync for everyone
// batched behind it.
func (l *Log) append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	l.pending = appendFrame(l.pending, rec)
	l.appends.Add(1)
	target := l.writeGen + 1 // the flush generation that will carry this record
	for l.syncedGen < target {
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		if !l.flushing {
			l.flushLocked()
			continue
		}
		l.cond.Wait()
	}
	return l.err
}

// flushLocked writes and fsyncs the pending batch as generation writeGen+1.
// Called with mu held; unlocks around the I/O and relocks before returning.
func (l *Log) flushLocked() {
	l.flushing = true
	batch := l.pending
	l.pending = nil
	gen := l.writeGen + 1
	l.writeGen = gen
	seg := l.seg
	rotate := false

	l.mu.Unlock()
	var err error
	if len(batch) > 0 {
		if _, werr := seg.Write(batch); werr != nil {
			err = fmt.Errorf("wal: append to %s: %w", segName(l.segIdx), werr)
		} else if !l.opt.NoSync {
			if serr := seg.Sync(); serr != nil {
				err = fmt.Errorf("wal: fsync %s: %w", segName(l.segIdx), serr)
			} else {
				l.syncs.Add(1)
			}
		}
	}
	l.mu.Lock()

	if err == nil && len(batch) > 0 {
		l.segSize += int64(len(batch))
		l.bytes.Add(uint64(len(batch)))
		l.batches.Add(1)
		rotate = l.segSize >= int64(l.opt.SegmentBytes)
	}
	if err == nil && rotate {
		err = l.rotateLocked()
	}
	if err != nil && l.err == nil {
		l.err = err
	}
	l.syncedGen = gen
	l.flushing = false
	l.cond.Broadcast()
}

// rotateLocked closes the active segment and opens the next. Caller holds mu
// with no flush in flight.
func (l *Log) rotateLocked() error {
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", segName(l.segIdx), err)
	}
	l.segIdx++
	l.segSize = 0
	seg, err := l.opt.FS.OpenAppend(join(l.dir, segName(l.segIdx)))
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", segName(l.segIdx), err)
	}
	l.seg = seg
	l.rotations.Add(1)
	return nil
}

// Rotate flushes everything appended so far and starts a fresh segment,
// returning the new segment's index. It is the snapshot barrier point: every
// record that will ever land in a segment below the returned index belongs
// to an operation that committed before Rotate returned — which is what
// makes a post-Rotate store sequence number a sound replay barrier (see
// DESIGN.md "Durability & recovery").
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	for l.flushing {
		l.cond.Wait()
	}
	if len(l.pending) > 0 {
		l.flushLocked()
		for l.flushing {
			l.cond.Wait()
		}
	}
	if l.err != nil {
		return 0, l.err
	}
	if err := l.rotateLocked(); err != nil {
		if l.err == nil {
			l.err = err
		}
		return 0, err
	}
	return l.segIdx, nil
}

// PruneBefore removes segments and snapshots with index < keep. Called after
// a snapshot covering segment `keep` is durably in place.
func (l *Log) PruneBefore(keep uint64) error {
	l.mu.Lock()
	dir, fsys := l.dir, l.opt.FS
	l.mu.Unlock()
	segs, err := listIndexed(fsys, dir, segPrefix, segSuffix)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if idx < keep {
			if err := fsys.Remove(join(dir, segName(idx))); err != nil {
				return err
			}
		}
	}
	snaps, err := listIndexed(fsys, dir, snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	for _, idx := range snaps {
		if idx < keep {
			if err := fsys.Remove(join(dir, snapName(idx))); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync forces any pending batch out and fsyncs (graceful shutdown).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if len(l.pending) > 0 && l.err == nil && !l.closed {
		l.flushLocked()
		for l.flushing {
			l.cond.Wait()
		}
	}
	return l.err
}

// Close flushes pending records, fsyncs, and closes the active segment.
// Subsequent appends return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	for l.flushing {
		l.cond.Wait()
	}
	if len(l.pending) > 0 && l.err == nil {
		l.flushLocked()
		for l.flushing {
			l.cond.Wait()
		}
	}
	l.closed = true
	l.cond.Broadcast()
	cerr := l.seg.Close()
	if l.err != nil {
		return l.err
	}
	return cerr
}

// Err returns the sticky I/O error, if the log has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats returns cumulative activity counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:   l.appends.Load(),
		Batches:   l.batches.Load(),
		Syncs:     l.syncs.Load(),
		Rotations: l.rotations.Load(),
		Bytes:     l.bytes.Load(),
	}
}

// SegmentIndex returns the active segment's index.
func (l *Log) SegmentIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segIdx
}

// --- clean-shutdown marker ---------------------------------------------------

// WriteCleanMarker records a graceful shutdown: the store flushed its log and
// its maximum assigned sequence number is seq. Recovery treats a directory
// with a valid marker as a clean start (and verifies the replayed state
// reaches exactly seq).
func WriteCleanMarker(fsys FS, dir string, seq uint64) error {
	f, err := fsys.Create(join(dir, markerName))
	if err != nil {
		return fmt.Errorf("wal: create clean marker: %w", err)
	}
	if _, err := f.Write([]byte(fmt.Sprintf("clean seq=%d\n", seq))); err != nil {
		f.Close()
		return fmt.Errorf("wal: write clean marker: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync clean marker: %w", err)
	}
	return f.Close()
}

// ReadCleanMarker reports whether a valid clean-shutdown marker exists and
// the sequence number it recorded.
func ReadCleanMarker(fsys FS, dir string) (seq uint64, ok bool) {
	data, err := fsys.ReadFile(join(dir, markerName))
	if err != nil {
		return 0, false
	}
	var s uint64
	if _, err := fmt.Sscanf(string(data), "clean seq=%d", &s); err != nil {
		return 0, false
	}
	return s, true
}

// RemoveCleanMarker deletes the marker; called the moment the log is opened
// for appending, so a later crash is recognized as one.
func RemoveCleanMarker(fsys FS, dir string) {
	_ = fsys.Remove(join(dir, markerName))
}
