// Package wal is the durability layer of the kv engine: an append-only
// commit log (one CRC-framed record per acknowledged PUT/DELETE, group-commit
// batched fsync, size-rotated segments) plus periodic snapshots that truncate
// old segments, and a recovery path that replays snapshot-then-log into an
// empty store.
//
// The on-disk contract, in one paragraph: a record is durable — and its
// operation may be acknowledged — once Append returns nil. Segments are
// replayed in index order; the first bad frame in the FINAL segment is a torn
// tail (a write the crash interrupted) and everything from it on is
// truncated, while a bad frame in any earlier segment, or a gap in the
// segment sequence, is real corruption and recovery refuses to start
// (ErrRecovery). Snapshots are written to a temp file and atomically renamed,
// so a snapshot either exists completely (header, entries, footer, all
// CRC-checked) or is ignored.
//
// All file I/O flows through the small FS interface so tests can substitute
// an in-memory filesystem (MemFS) and a seeded fault injector (FaultFS) that
// produces short writes, torn records and lying fsyncs — the same
// seeded-PRNG discipline as htm.FaultPlan.
package wal

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the writable handle the log and snapshot writers use. Writes are
// appends (the log never seeks); Sync must not return until previously
// written bytes are durable.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the filesystem surface the WAL needs. Implementations: OSFS (real
// files), MemFS (tests), FaultFS (seeded injection around either).
type FS interface {
	// MkdirAll ensures dir exists.
	MkdirAll(dir string) error
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
}

// OSFS is the production FS: plain os package calls.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) Create(name string) (File, error) { return os.Create(name) }

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// IsNotExist reports whether err is a missing-file error from any FS
// implementation (OSFS surfaces os errors, MemFS uses fs.ErrNotExist).
func IsNotExist(err error) bool {
	return os.IsNotExist(err) || err == fs.ErrNotExist
}

// join builds an FS path. All FS implementations use the host separator
// convention so filepath.Join is correct for each.
func join(dir, name string) string { return filepath.Join(dir, name) }
