package wal

import (
	"errors"
	"fmt"
	"testing"
)

// writeSnapshot builds a complete snapshot file for tests.
func writeSnapshot(t *testing.T, fsys FS, dir string, seg, barrier uint64, entries map[string]uint64) {
	t.Helper()
	w, err := NewSnapshotWriter(fsys, dir, seg, barrier)
	if err != nil {
		t.Fatalf("NewSnapshotWriter: %v", err)
	}
	for k, seq := range entries {
		if err := w.Add(seq, 0, []byte(k), []byte("v-"+k)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestSnapshotRoundTrip writes and validates a snapshot through loadSnapshot.
func TestSnapshotRoundTrip(t *testing.T) {
	mfs := NewMemFS()
	writeSnapshot(t, mfs, "d", 3, 17, map[string]uint64{"a": 5, "b": 9})
	recs, err := loadSnapshot(mfs, "d", 3)
	if err != nil {
		t.Fatalf("loadSnapshot: %v", err)
	}
	if len(recs) != 4 { // header + 2 entries + footer
		t.Fatalf("got %d records, want 4", len(recs))
	}
	if recs[0].Kind != KindSnapHeader || recs[0].Barrier != 17 || recs[0].Seg != 3 {
		t.Fatalf("bad header: %+v", recs[0])
	}
	if recs[3].Kind != KindSnapFooter || recs[3].Count != 2 {
		t.Fatalf("bad footer: %+v", recs[3])
	}
}

// TestSnapshotTornRejected drops the footer (a lying fsync persisting a
// prefix): loadSnapshot must reject the file.
func TestSnapshotTornRejected(t *testing.T) {
	mfs := NewMemFS()
	writeSnapshot(t, mfs, "d", 1, 5, map[string]uint64{"a": 1, "b": 2, "c": 3})
	path := join("d", snapName(1))
	data, err := mfs.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	for cut := 1; cut < len(data); cut++ {
		sub := NewMemFS()
		f, _ := sub.Create(path)
		f.Write(data[:cut])
		f.Sync()
		f.Close()
		if _, err := loadSnapshot(sub, "d", 1); err == nil {
			t.Fatalf("cut=%d/%d: torn snapshot validated", cut, len(data))
		}
	}
}

// TestRecoverPrefersNewestValidSnapshot: an invalid newest snapshot falls
// back to an older valid one — but only when the older one's segments are
// still present; otherwise recovery refuses.
func TestRecoverPrefersNewestValidSnapshot(t *testing.T) {
	mfs := NewMemFS()
	writeSnapshot(t, mfs, "d", 0, 1, map[string]uint64{"old": 1})
	writeSnapshot(t, mfs, "d", 2, 9, map[string]uint64{"new": 9})
	// Segments 0..2 exist (2 active, empty).
	for seg := uint64(0); seg <= 2; seg++ {
		l, err := OpenLog("d", seg, Options{FS: mfs})
		if err != nil {
			t.Fatalf("OpenLog: %v", err)
		}
		if err := l.AppendPut(10+seg, 0, []byte(fmt.Sprintf("s%d", seg)), []byte("v")); err != nil {
			t.Fatalf("append: %v", err)
		}
		l.Close()
	}
	// Corrupt the newest snapshot: recovery should fall back to snapshot 0.
	if err := mfs.Corrupt(join("d", snapName(2)), 9, 0xFF); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	var fromSnap, fromLog int
	res, err := Recover(mfs, "d", func(rec Record, src Source) error {
		if src == SourceSnapshot {
			fromSnap++
		} else {
			fromLog++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !res.HasSnapshot || res.SnapshotSeg != 0 {
		t.Fatalf("recovered from snapshot %d (has=%v), want 0", res.SnapshotSeg, res.HasSnapshot)
	}
	if fromSnap != 2 || fromLog != 3 { // header+1 entry; 3 log records
		t.Fatalf("snap=%d log=%d, want 2/3", fromSnap, fromLog)
	}

	// Now prune segments 0 and 1 (as if the newest snapshot's prune ran):
	// with snapshot 2 corrupt and history missing, recovery must refuse.
	mfs.Remove(join("d", segName(0)))
	mfs.Remove(join("d", segName(1)))
	_, err = Recover(mfs, "d", func(Record, Source) error { return nil })
	if !errors.Is(err, ErrRecovery) {
		t.Fatalf("recover with lost history: %v, want ErrRecovery", err)
	}
}

// TestRecoverAppliesSnapshotThenLog checks ordering and the barrier header
// reaching the apply callback first.
func TestRecoverAppliesSnapshotThenLog(t *testing.T) {
	mfs := NewMemFS()
	writeSnapshot(t, mfs, "d", 1, 4, map[string]uint64{"a": 3})
	l, err := OpenLog("d", 1, Options{FS: mfs})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if err := l.AppendPut(5, 0, []byte("b"), []byte("v")); err != nil {
		t.Fatalf("append: %v", err)
	}
	l.Close()
	var kinds []byte
	var sources []Source
	if _, err := Recover(mfs, "d", func(rec Record, src Source) error {
		kinds = append(kinds, rec.Kind)
		sources = append(sources, src)
		return nil
	}); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	want := []byte{KindSnapHeader, KindPut, KindPut}
	if len(kinds) != 3 || kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	if sources[0] != SourceSnapshot || sources[1] != SourceSnapshot || sources[2] != SourceLog {
		t.Fatalf("sources = %v", sources)
	}
}

// TestRecoverApplyFailure propagates a replay-callback error as a typed
// recovery failure (this is how ErrFull during replay refuses startup).
func TestRecoverApplyFailure(t *testing.T) {
	mfs := NewMemFS()
	l, err := OpenLog("d", 0, Options{FS: mfs})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if err := l.AppendPut(1, 0, []byte("k"), []byte("v")); err != nil {
		t.Fatalf("append: %v", err)
	}
	l.Close()
	boom := errors.New("index full")
	_, err = Recover(mfs, "d", func(Record, Source) error { return boom })
	if !errors.Is(err, ErrRecovery) || !errors.Is(err, boom) {
		t.Fatalf("apply failure: %v, want ErrRecovery wrapping cause", err)
	}
}
