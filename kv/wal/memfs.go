package wal

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS with real sync semantics: every file tracks how
// many of its bytes have been fsynced, and Crash() discards everything after
// the synced watermark — including whole files that were never synced — so
// tests can model exactly what a power cut preserves. Renames are modeled as
// immediately durable (the writers fsync file contents before renaming).
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	data   []byte
	synced int // bytes guaranteed to survive Crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memFile)} }

// Crash simulates a power cut: every file is truncated to its synced
// watermark, and files that were never synced at all disappear.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		if f.synced == 0 {
			delete(m.files, name)
			continue
		}
		f.data = f.data[:f.synced]
	}
}

// SyncedBytes reports the durable length of name (tests).
func (m *MemFS) SyncedBytes(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return f.synced
	}
	return 0
}

func (m *MemFS) MkdirAll(string) error { return nil }

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fs.ErrNotExist
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := dir + string(filepath.Separator)
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], string(filepath.Separator)) {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return fs.ErrNotExist
	}
	delete(m.files, oldname)
	// Rename is the atomic publish point: model it as durable (content was
	// fsynced by the writer; a crash keeps the new name).
	f.synced = len(f.data)
	m.files[newname] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fs.ErrNotExist
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fs.ErrNotExist
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
	}
	if f.synced > len(f.data) {
		f.synced = len(f.data)
	}
	return nil
}

// Corrupt XORs mask into name at offset (tests: seeded mid-log corruption).
func (m *MemFS) Corrupt(name string, offset int64, mask byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok || int(offset) >= len(f.data) {
		return fs.ErrNotExist
	}
	f.data[offset] ^= mask
	return nil
}

type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// FaultPlan parameterizes FaultFS: a seeded PRNG (the htm.FaultPlan
// discipline — same seed, same faults) deciding per write whether to tear it
// short and per fsync whether to lie. Probabilities are in [0, 1].
type FaultPlan struct {
	// Seed seeds the injection PRNG; 0 means an arbitrary fixed seed.
	Seed uint64
	// ShortWriteProb is the chance a Write persists only a strict prefix of
	// its bytes and returns an error — a torn record.
	ShortWriteProb float64
	// LieSyncProb is the chance a Sync returns nil WITHOUT making the
	// written bytes durable — the lying-fsync failure mode. A subsequent
	// Crash() on the backing MemFS loses the acknowledged bytes.
	LieSyncProb float64
	// FailWriteAfter, when > 0, makes every Write fail (persisting nothing)
	// after that many successful writes — a full device drop.
	FailWriteAfter uint64
}

// FaultFS wraps an FS, injecting seeded write/sync faults per its plan.
// Metadata operations (rename, remove, truncate, reads) pass through.
type FaultFS struct {
	FS
	Plan FaultPlan

	mu     sync.Mutex
	rng    uint64
	writes uint64
	// Injected counters let tests assert that adversity actually happened.
	ShortWrites uint64
	LiedSyncs   uint64
}

// NewFaultFS wraps inner with plan.
func NewFaultFS(inner FS, plan FaultPlan) *FaultFS {
	seed := plan.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	// splitmix64 scramble so nearby seeds give unrelated streams.
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return &FaultFS{FS: inner, Plan: plan, rng: z}
}

func (f *FaultFS) roll(prob float64) bool {
	if prob <= 0 {
		return false
	}
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	return float64(f.rng>>11)/(1<<53) < prob
}

// ErrInjected is the cause FaultFS attaches to torn writes it manufactures.
var ErrInjected = fmt.Errorf("wal: injected fault")

func (f *FaultFS) OpenAppend(name string) (File, error) {
	h, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: h}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	h, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: h}, nil
}

type faultHandle struct {
	fs    *FaultFS
	inner File
}

func (h *faultHandle) Write(p []byte) (int, error) {
	f := h.fs
	f.mu.Lock()
	f.writes++
	if f.Plan.FailWriteAfter > 0 && f.writes > f.Plan.FailWriteAfter {
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: device gone after %d writes", ErrInjected, f.Plan.FailWriteAfter)
	}
	if f.roll(f.Plan.ShortWriteProb) && len(p) > 0 {
		f.rng ^= f.rng << 13
		f.rng ^= f.rng >> 7
		f.rng ^= f.rng << 17
		k := int(f.rng % uint64(len(p))) // strict prefix: 0 <= k < len(p)
		f.ShortWrites++
		f.mu.Unlock()
		n, _ := h.inner.Write(p[:k])
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, k, len(p))
	}
	f.mu.Unlock()
	return h.inner.Write(p)
}

func (h *faultHandle) Sync() error {
	f := h.fs
	f.mu.Lock()
	lie := f.roll(f.Plan.LieSyncProb)
	if lie {
		f.LiedSyncs++
	}
	f.mu.Unlock()
	if lie {
		return nil // the lie: report durability without providing it
	}
	return h.inner.Sync()
}

func (h *faultHandle) Close() error { return h.inner.Close() }
