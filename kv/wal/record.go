package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record kinds. Put and Delete are the log's vocabulary — one record per
// acknowledged mutation; SnapHeader/SnapFooter frame snapshot files.
const (
	KindPut byte = iota + 1
	KindDelete
	KindSnapHeader
	KindSnapFooter
)

// Record is one decoded log or snapshot record. Which fields are meaningful
// depends on Kind:
//
//	KindPut:        Seq, Expiry, Key, Val
//	KindDelete:     Seq, Key
//	KindSnapHeader: Barrier (the snapshot's replay barrier S0), Seg
//	KindSnapFooter: Count (entry records preceding it)
type Record struct {
	Kind    byte
	Seq     uint64
	Expiry  uint64
	Key     []byte
	Val     []byte
	Barrier uint64
	Seg     uint64
	Count   uint64
}

// Framing: every record is stored as
//
//	[4B little-endian payload length][4B CRC32-C of payload][payload]
//
// The CRC covers the payload only; the length is validated by bounds and by
// the CRC of the bytes it delimits (a corrupted length either overruns the
// segment — torn/corrupt — or frames bytes whose CRC cannot match).
const frameHdr = 8

// maxRecordBytes bounds a sane payload; a decoded length beyond it is
// corruption, not a big record (keys and values are bounded far below this).
const maxRecordBytes = 1 << 24

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendUvarint appends v as a varint.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// encodePayload appends r's payload encoding (no frame) to b.
func encodePayload(b []byte, r Record) []byte {
	b = append(b, r.Kind)
	switch r.Kind {
	case KindPut:
		b = appendUvarint(b, r.Seq)
		b = appendUvarint(b, r.Expiry)
		b = appendUvarint(b, uint64(len(r.Key)))
		b = append(b, r.Key...)
		b = appendUvarint(b, uint64(len(r.Val)))
		b = append(b, r.Val...)
	case KindDelete:
		b = appendUvarint(b, r.Seq)
		b = appendUvarint(b, uint64(len(r.Key)))
		b = append(b, r.Key...)
	case KindSnapHeader:
		b = appendUvarint(b, r.Barrier)
		b = appendUvarint(b, r.Seg)
	case KindSnapFooter:
		b = appendUvarint(b, r.Count)
	default:
		panic(fmt.Sprintf("wal: encode of unknown record kind %d", r.Kind))
	}
	return b
}

// appendFrame appends the framed encoding of r to b.
func appendFrame(b []byte, r Record) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	b = encodePayload(b, r)
	payload := b[start+frameHdr:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.Checksum(payload, crcTable))
	return b
}

// frameError classifies why a frame failed to decode.
type frameError struct {
	reason string
	torn   bool // true when consistent with a write cut short at the tail
}

func (e *frameError) Error() string { return e.reason }

// decodeFrame decodes one frame at the start of b, returning the record and
// the total frame size. A *frameError with torn=true means b ends in a
// partial frame (legal at the tail of the final segment); torn=false means
// the bytes are structurally bad in a way a torn tail cannot produce alone —
// but at a tail position both are truncated identically, so the distinction
// is informational.
func decodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHdr {
		return Record{}, 0, &frameError{reason: fmt.Sprintf("partial frame header (%d bytes)", len(b)), torn: true}
	}
	n := int(binary.LittleEndian.Uint32(b))
	crc := binary.LittleEndian.Uint32(b[4:])
	if n == 0 || n > maxRecordBytes {
		return Record{}, 0, &frameError{reason: fmt.Sprintf("implausible record length %d", n)}
	}
	if len(b) < frameHdr+n {
		return Record{}, 0, &frameError{reason: fmt.Sprintf("partial record (%d of %d payload bytes)", len(b)-frameHdr, n), torn: true}
	}
	payload := b[frameHdr : frameHdr+n]
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return Record{}, 0, &frameError{reason: fmt.Sprintf("CRC mismatch (stored %08x, computed %08x)", crc, got)}
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, &frameError{reason: err.Error()}
	}
	return rec, frameHdr + n, nil
}

// decodePayload decodes a CRC-validated payload.
func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, fmt.Errorf("empty payload")
	}
	r := Record{Kind: p[0]}
	p = p[1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("truncated varint")
		}
		p = p[n:]
		return v, nil
	}
	bytesField := func() ([]byte, error) {
		n, err := next()
		if err != nil {
			return nil, err
		}
		if uint64(len(p)) < n {
			return nil, fmt.Errorf("field overruns payload (%d > %d)", n, len(p))
		}
		out := make([]byte, n)
		copy(out, p[:n])
		p = p[n:]
		return out, nil
	}
	var err error
	switch r.Kind {
	case KindPut:
		if r.Seq, err = next(); err != nil {
			return r, err
		}
		if r.Expiry, err = next(); err != nil {
			return r, err
		}
		if r.Key, err = bytesField(); err != nil {
			return r, err
		}
		if r.Val, err = bytesField(); err != nil {
			return r, err
		}
	case KindDelete:
		if r.Seq, err = next(); err != nil {
			return r, err
		}
		if r.Key, err = bytesField(); err != nil {
			return r, err
		}
	case KindSnapHeader:
		if r.Barrier, err = next(); err != nil {
			return r, err
		}
		if r.Seg, err = next(); err != nil {
			return r, err
		}
	case KindSnapFooter:
		if r.Count, err = next(); err != nil {
			return r, err
		}
	default:
		return r, fmt.Errorf("unknown record kind %d", r.Kind)
	}
	if len(p) != 0 {
		return r, fmt.Errorf("%d trailing payload bytes", len(p))
	}
	return r, nil
}
