package kv

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/kv/wal"
)

func durableConfig(mfs *wal.MemFS, every int) Config {
	return Config{
		Slots:       1 << 10,
		PoolThreads: 8,
		Durability:  &Durability{Dir: "wal", FS: mfs, SnapshotEvery: every},
	}
}

func openDurable(t *testing.T, mfs *wal.MemFS, every int) *Store {
	t.Helper()
	s, err := Open(durableConfig(mfs, every))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, key, val string) {
	t.Helper()
	if err := s.Put(context.Background(), []byte(key), []byte(val), 0); err != nil {
		t.Fatalf("Put %s: %v", key, err)
	}
}

func checkGet(t *testing.T, s *Store, key, want string, wantOK bool) {
	t.Helper()
	val, ok, err := s.Get(context.Background(), []byte(key))
	if err != nil {
		t.Fatalf("Get %s: %v", key, err)
	}
	if ok != wantOK || (ok && string(val) != want) {
		t.Fatalf("Get %s = %q, %v; want %q, %v", key, val, ok, want, wantOK)
	}
}

// TestDurableCleanReopen: close gracefully, reopen, everything survives and
// recovery reports a clean start.
func TestDurableCleanReopen(t *testing.T) {
	mfs := wal.NewMemFS()
	s := openDurable(t, mfs, 0)
	if ri := s.Recovery(); ri == nil || !ri.Clean {
		// A brand-new empty directory has no crash to recover from.
		t.Fatalf("fresh open recovery = %+v, want clean", ri)
	}
	for i := 0; i < 200; i++ {
		mustPut(t, s, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%03d", i))
	}
	mustPut(t, s, "k000", "replaced")
	if _, err := s.Delete(context.Background(), []byte("k001")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openDurable(t, mfs, 0)
	defer s2.Close()
	ri := s2.Recovery()
	if ri == nil || !ri.Clean {
		t.Fatalf("reopen recovery = %+v, want clean", ri)
	}
	if ri.Entries != 199 {
		t.Fatalf("recovered %d entries, want 199", ri.Entries)
	}
	checkGet(t, s2, "k000", "replaced", true)
	checkGet(t, s2, "k001", "", false)
	checkGet(t, s2, "k123", "v123", true)
	if got, want := s2.Seq(), s.Seq(); got != want {
		t.Fatalf("sequence resumed at %d, want %d", got, want)
	}
}

// TestDurableCrashReopen: no Close — simulate a power cut. Every
// acknowledged write must survive; recovery reports a crash start.
func TestDurableCrashReopen(t *testing.T) {
	mfs := wal.NewMemFS()
	s := openDurable(t, mfs, 0)
	for i := 0; i < 100; i++ {
		mustPut(t, s, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%03d", i))
	}
	if _, err := s.Delete(context.Background(), []byte("k050")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	mfs.Crash() // acknowledged writes are fsynced: the cut loses nothing acked

	s2 := openDurable(t, mfs, 0)
	defer s2.Close()
	ri := s2.Recovery()
	if ri == nil || ri.Clean {
		t.Fatalf("crash reopen recovery = %+v, want crash (not clean)", ri)
	}
	if ri.Entries != 99 {
		t.Fatalf("recovered %d entries, want 99", ri.Entries)
	}
	checkGet(t, s2, "k050", "", false)
	checkGet(t, s2, "k099", "v099", true)
}

// TestDurableTTLSurvives: expiry deadlines are durable state.
func TestDurableTTLSurvives(t *testing.T) {
	now := time.Now().UnixNano()
	clock := now
	mfs := wal.NewMemFS()
	cfg := durableConfig(mfs, 0)
	cfg.Now = func() int64 { return clock }
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put(context.Background(), []byte("ttl"), []byte("v"), time.Hour); err != nil {
		t.Fatalf("Put: %v", err)
	}
	mustPut(t, s, "forever", "v")
	mfs.Crash()

	cfg2 := durableConfig(mfs, 0)
	cfg2.Now = func() int64 { return clock }
	s2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	checkGet(t, s2, "ttl", "v", true)
	clock = now + int64(2*time.Hour) // past the deadline: reads as missing
	checkGet(t, s2, "ttl", "", false)
	checkGet(t, s2, "forever", "v", true)
}

// TestSnapshotDuringWrites runs concurrent writers (disjoint key ranges, so
// the expected final state is exact) while automatic snapshots churn
// underneath, crashes, and verifies recovery matches the shadow model
// exactly. Run under -race this also exercises the snapshot scan against
// live transactions.
func TestSnapshotDuringWrites(t *testing.T) {
	mfs := wal.NewMemFS()
	s := openDurable(t, mfs, 50) // snapshot every 50 mutations: constant churn
	const writers, keys, rounds = 4, 20, 15
	shadow := make([]map[string]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		shadow[w] = make(map[string]string)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := 0; k < keys; k++ {
					key := fmt.Sprintf("w%d-k%02d", w, k)
					if r%3 == 2 && k%4 == 0 {
						if _, err := s.Delete(context.Background(), []byte(key)); err != nil {
							t.Errorf("delete %s: %v", key, err)
							return
						}
						delete(shadow[w], key)
						continue
					}
					val := fmt.Sprintf("r%02d-%s", r, key)
					if err := s.Put(context.Background(), []byte(key), []byte(val), 0); err != nil {
						t.Errorf("put %s: %v", key, err)
						return
					}
					shadow[w][key] = val
				}
			}
		}(w)
	}
	wg.Wait()
	// Wait out any in-flight automatic snapshot, then take one more by hand
	// (covers the snapshot-path-then-crash case), then crash mid-life.
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if s.Snapshots() == 0 {
		t.Fatal("no snapshot ever completed")
	}
	mfs.Crash()

	s2 := openDurable(t, mfs, 0)
	defer s2.Close()
	total := 0
	for w := 0; w < writers; w++ {
		for key, want := range shadow[w] {
			checkGet(t, s2, key, want, true)
			total++
		}
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("w%d-k%02d", w, k)
			if _, present := shadow[w][key]; !present {
				checkGet(t, s2, key, "", false)
			}
		}
	}
	if s2.Len() != total {
		t.Fatalf("recovered %d entries, shadow has %d", s2.Len(), total)
	}
}

// TestReplayBarrierRule feeds kv.Open a hand-crafted directory exercising the
// sequence rule directly: a snapshot with barrier S0=5 that does NOT contain
// key "resurrect" (it was deleted before the snapshot scan), and a log
// segment holding a STALE put of that key (seq 3 <= S0, from before the
// delete, racing appenders wrote it late) plus a fresh put (seq 7 > S0).
// Replay must drop the stale record and apply the fresh one.
func TestReplayBarrierRule(t *testing.T) {
	mfs := wal.NewMemFS()
	w, err := wal.NewSnapshotWriter(mfs, "wal", 1, 5)
	if err != nil {
		t.Fatalf("snapshot writer: %v", err)
	}
	if err := w.Add(2, 0, []byte("kept"), []byte("kept-v")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l, err := wal.OpenLog("wal", 1, wal.Options{FS: mfs})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if err := l.AppendPut(3, 0, []byte("resurrect"), []byte("stale")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.AppendPut(7, 0, []byte("fresh"), []byte("fresh-v")); err != nil {
		t.Fatalf("append: %v", err)
	}
	// An out-of-order older version of a key the log already has newer: the
	// newest-applied map must win regardless of file order.
	if err := l.AppendPut(6, 0, []byte("fresh"), []byte("older-loses")); err != nil {
		t.Fatalf("append: %v", err)
	}
	l.Close()

	s := openDurable(t, mfs, 0)
	defer s.Close()
	checkGet(t, s, "kept", "kept-v", true)
	checkGet(t, s, "resurrect", "", false) // stale record must NOT revive it
	checkGet(t, s, "fresh", "fresh-v", true)
	if got := s.Seq(); got != 7 {
		t.Fatalf("sequence resumed at %d, want 7", got)
	}
	if ri := s.Recovery(); ri.Applied != 2 {
		t.Fatalf("applied %d log records, want 2 (stale ones dropped): %+v", ri.Applied, ri)
	}
}

// TestRecoveryRefusesOverflow: a log holding more keys than the index can is
// an unrecoverable configuration — Open must fail with ErrRecovery wrapping
// ErrFull, not silently drop data.
func TestRecoveryRefusesOverflow(t *testing.T) {
	mfs := wal.NewMemFS()
	l, err := wal.OpenLog("wal", 0, wal.Options{FS: mfs})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	const n = 64 // > maxEntries(16) = 12
	for i := 0; i < n; i++ {
		if err := l.AppendPut(uint64(i+1), 0, []byte(fmt.Sprintf("key-%02d", i)), []byte("v")); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	l.Close()
	cfg := Config{Slots: 16, PoolThreads: 8, Durability: &Durability{Dir: "wal", FS: mfs}}
	_, err = Open(cfg)
	if !errors.Is(err, wal.ErrRecovery) || !errors.Is(err, ErrFull) {
		t.Fatalf("overflow recovery: %v, want ErrRecovery wrapping ErrFull", err)
	}
}

// TestMidLogCorruptionRefusesStart: a byte flip in a non-final segment must
// abort Open with the typed error (exit-3 path in kvserver).
func TestMidLogCorruptionRefusesStart(t *testing.T) {
	mfs := wal.NewMemFS()
	s := openDurable(t, mfs, 0)
	for i := 0; i < 50; i++ {
		mustPut(t, s, fmt.Sprintf("k%02d", i), "vvvvvvvv")
	}
	if _, err := s.Snapshot(); err != nil { // rotates: segment 0 pruned, 1 active
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 0; i < 10; i++ {
		mustPut(t, s, fmt.Sprintf("post%02d", i), "v")
	}
	if _, err := s.wal.Rotate(); err != nil { // make segment 1 non-final
		t.Fatalf("Rotate: %v", err)
	}
	mustPut(t, s, "tail", "v")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := mfs.Corrupt("wal/wal-00000001.seg", 25, 0x10); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	_, err := Open(durableConfig(mfs, 0))
	if !errors.Is(err, wal.ErrRecovery) {
		t.Fatalf("corrupt mid-log open: %v, want ErrRecovery", err)
	}
	var re *wal.RecoveryError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *wal.RecoveryError", err)
	}
}

// TestNonDurableUnchanged: without Durability the new machinery must stay
// out of the way — no seq ticking, Close a no-op, stats absent.
func TestNonDurableUnchanged(t *testing.T) {
	s := NewStore(Config{Slots: 1 << 8, PoolThreads: 8})
	mustPut(t, s, "k", "v")
	if s.Durable() {
		t.Fatal("in-memory store claims durability")
	}
	if got := s.Seq(); got != 0 {
		t.Fatalf("in-memory store ticked seq to %d", got)
	}
	if _, ok := s.WalStats(); ok {
		t.Fatal("in-memory store has wal stats")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Snapshot on in-memory store: %v, want ErrNotDurable", err)
	}
}

// TestNewStorePanicsOnDurability pins the constructor contract.
func TestNewStorePanicsOnDurability(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStore with Durability did not panic")
		}
	}()
	NewStore(Config{Durability: &Durability{Dir: "x"}})
}

// TestSnapshotPrunesHistory: after a snapshot, pre-rotation segments are
// gone and recovery uses the snapshot.
func TestSnapshotPrunesHistory(t *testing.T) {
	mfs := wal.NewMemFS()
	s := openDurable(t, mfs, 0)
	for i := 0; i < 30; i++ {
		mustPut(t, s, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	names, err := mfs.ReadDir("wal")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, n := range names {
		if n == "wal-00000000.seg" {
			t.Fatalf("segment 0 survived the snapshot prune: %v", names)
		}
	}
	mustPut(t, s, "after", "v")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openDurable(t, mfs, 0)
	defer s2.Close()
	ri := s2.Recovery()
	if !ri.HadSnapshot || ri.SnapshotEntries != 30 {
		t.Fatalf("recovery ignored the snapshot: %+v", ri)
	}
	checkGet(t, s2, "k29", "v29", true)
	checkGet(t, s2, "after", "v", true)
}
