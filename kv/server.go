package kv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Server is the HTTP face of a Store. Routes:
//
//	GET    /kv/{key...}   -> 200 + value bytes | 404
//	PUT    /kv/{key...}   -> 204 (body = value; ?ttl=GoDuration for expiry)
//	DELETE /kv/{key...}   -> 204 | 404
//	GET    /scan          -> JSON page {pairs, next, done} (?cursor=&limit=)
//	GET    /stats         -> JSON: heap txn stats, store counters, jobs, HTTP
//	GET    /healthz       -> 200 "ok"
//
// Every data route is one Store call and therefore one heap transaction; the
// response observes a single committed state (see DESIGN.md "KV engine").
type Server struct {
	store   *Store
	jobs    JobsConfig
	metrics Metrics
	handler http.Handler
	logf    func(format string, args ...any)

	// jobsStats reads the live pipeline's counters; set by Serve once the
	// pipeline exists, nil before (httptest servers never start one).
	jobsStats func() JobStats

	// admission/governor implement load shedding when configured with
	// WithAdmissionControl; nil means every request is admitted.
	admission *AdmissionConfig
	governor  *Governor

	// reqTimeout caps each data request's store operation via a context
	// deadline (WithRequestTimeout); 0 means requests run unbounded.
	reqTimeout time.Duration

	// ShutdownGrace bounds how long Serve waits for in-flight requests after
	// its context is cancelled. Defaults to 10s.
	ShutdownGrace time.Duration
}

// ServerOption mutates a Server at construction.
type ServerOption func(*Server)

// WithJobs overrides the background-maintenance pipeline configuration.
func WithJobs(cfg JobsConfig) ServerOption { return func(sv *Server) { sv.jobs = cfg } }

// WithAdmissionControl enables load shedding: requests the Governor refuses
// (pool saturation, abort storm) are answered 503 + Retry-After without
// touching the engine. See AdmissionConfig for the knobs.
func WithAdmissionControl(cfg AdmissionConfig) ServerOption {
	return func(sv *Server) { sv.admission = &cfg }
}

// WithRequestTimeout bounds every data request's store operation with a
// context deadline; operations that exceed it abandon between retry attempts
// and answer 503 + Retry-After (ErrDeadline).
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(sv *Server) { sv.reqTimeout = d }
}

// WithRequestLog enables per-request logging through logf (nil = log.Printf).
func WithRequestLog(logf func(format string, args ...any)) ServerOption {
	return func(sv *Server) {
		if logf == nil {
			sv.logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		} else {
			sv.logf = logf
		}
	}
}

// NewServer wraps store in the HTTP API with recovery and metrics middleware
// (plus request logging if enabled).
func NewServer(store *Store, opts ...ServerOption) *Server {
	sv := &Server{store: store, ShutdownGrace: 10 * time.Second}
	for _, o := range opts {
		o(sv)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /kv/{key...}", sv.handleGet)
	mux.HandleFunc("PUT /kv/{key...}", sv.handlePut)
	mux.HandleFunc("POST /kv/{key...}", sv.handlePut) // curl-friendly alias
	mux.HandleFunc("DELETE /kv/{key...}", sv.handleDelete)
	mux.HandleFunc("GET /scan", sv.handleScan)
	mux.HandleFunc("GET /stats", sv.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mws := []Middleware{WithMetrics(&sv.metrics)}
	if sv.admission != nil {
		// Admission sits inside metrics so shed responses are counted like
		// any other 5xx, and outside logging/recovery — a shed request never
		// reaches a handler.
		sv.governor = NewGovernor(store, *sv.admission)
		mws = append(mws, WithAdmission(sv.governor, &sv.metrics))
		if tu := store.Tuner(); tu != nil {
			// Adaptive store: the governor becomes a Tuner client, tracking
			// the heap's epoch abort mix instead of a static storm threshold.
			tu.Observe(sv.governor.TrackAbortMix)
		}
	}
	if sv.logf != nil {
		mws = append(mws, WithLogging(sv.logf))
	}
	mws = append(mws, WithRecovery(&sv.metrics, sv.logf))
	sv.handler = Chain(mux, mws...)
	return sv
}

// Store returns the underlying engine.
func (sv *Server) Store() *Store { return sv.store }

// Metrics returns the server's HTTP counters.
func (sv *Server) Metrics() *Metrics { return &sv.metrics }

// ServeHTTP implements http.Handler (httptest and embedding).
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sv.handler.ServeHTTP(w, r)
}

// Serve runs the HTTP server on ln plus the background job pipeline until
// ctx is cancelled, then shuts down gracefully: stop accepting, wait out
// in-flight requests (bounded by ShutdownGrace), stop the pipeline, and wait
// for every worker to release its queue context. Returns nil on a clean
// shutdown — the exit-0 contract the CI e2e job asserts.
func (sv *Server) Serve(ctx context.Context, ln net.Listener) error {
	jobsCtx, stopJobs := context.WithCancel(context.Background())
	jobs := StartJobs(jobsCtx, sv.store, sv.jobs)
	defer func() {
		stopJobs()
		jobs.Wait()
	}()
	sv.jobsStats = jobs.Stats // live pipeline counters for /stats

	hs := &http.Server{Handler: sv.handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	grace, cancel := context.WithTimeout(context.Background(), sv.ShutdownGrace)
	defer cancel()
	if err := hs.Shutdown(grace); err != nil {
		return fmt.Errorf("kv: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Handlers are drained and the pipeline stops on return: seal the store's
	// durable state (flush the commit log, write the clean-shutdown marker).
	// Idempotent and a no-op without durability, so restarting Serve on a
	// purely in-memory store keeps working.
	if err := sv.store.Close(); err != nil {
		return fmt.Errorf("kv: close store: %w", err)
	}
	return nil
}

// opCtx derives the store-operation context for a request: the request's own
// context (cancelled when the client goes away) tightened by the configured
// per-request timeout.
func (sv *Server) opCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if sv.reqTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), sv.reqTimeout)
}

// opError maps a store error onto an HTTP response. ErrDeadline answers 503 +
// Retry-After — the operation was abandoned, nothing took effect, and the
// client should retry against a hopefully calmer server.
func (sv *Server) opError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrDeadline):
		sv.metrics.DeadlineHits.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrFull):
		http.Error(w, err.Error(), http.StatusInsufficientStorage)
	case errors.Is(err, ErrDurability):
		// The mutation committed in memory but could not be made durable;
		// the client must treat it as failed.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (sv *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key := []byte(r.PathValue("key"))
	ctx, cancel := sv.opCtx(r)
	defer cancel()
	val, ok, err := sv.store.Get(ctx, key)
	if err != nil {
		sv.opError(w, err)
		return
	}
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(val)
}

func (sv *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key := []byte(r.PathValue("key"))
	val, err := io.ReadAll(io.LimitReader(r.Body, int64(sv.store.cfg.MaxValueBytes)+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var ttl time.Duration
	if v := r.URL.Query().Get("ttl"); v != "" {
		ttl, err = time.ParseDuration(v)
		if err != nil {
			http.Error(w, "bad ttl: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	ctx, cancel := sv.opCtx(r)
	defer cancel()
	if err := sv.store.Put(ctx, key, val, ttl); err != nil {
		sv.opError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (sv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := sv.opCtx(r)
	defer cancel()
	existed, err := sv.store.Delete(ctx, []byte(r.PathValue("key")))
	if err != nil {
		sv.opError(w, err)
		return
	}
	if !existed {
		http.NotFound(w, r)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// scanResponse is the JSON page shape of GET /scan. Keys and values are
// base64 (encoding/json's []byte encoding): they are arbitrary bytes.
type scanResponse struct {
	Pairs []Pair `json:"pairs"`
	Next  uint64 `json:"next"`
	Done  bool   `json:"done"`
}

func (sv *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var cursor uint64
	var err error
	if v := q.Get("cursor"); v != "" {
		cursor, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad cursor: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	limit := 64
	if v := q.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit <= 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
	}
	ctx, cancel := sv.opCtx(r)
	defer cancel()
	pairs, next, err := sv.store.Scan(ctx, cursor, limit)
	if err != nil {
		sv.opError(w, err)
		return
	}
	if pairs == nil {
		pairs = []Pair{}
	}
	writeJSON(w, scanResponse{Pairs: pairs, Next: next, Done: next >= sv.store.Slots()})
}

// statsResponse aggregates every observable layer of the service.
type statsResponse struct {
	Heap      map[string]any  `json:"heap"`
	Store     map[string]any  `json:"store"`
	Jobs      *JobStats       `json:"jobs,omitempty"`
	HTTP      MetricsSnapshot `json:"http"`
	Admission map[string]any  `json:"admission,omitempty"`
	Adaptive  map[string]any  `json:"adaptive,omitempty"`
	Wal       map[string]any  `json:"wal,omitempty"`
}

func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hs := sv.store.heap.Stats()
	aborts := make(map[string]uint64, len(hs.Aborts))
	for code, n := range hs.Aborts {
		aborts[code.String()] = n
	}
	oc := sv.store.OpCounters()
	resp := statsResponse{
		Heap: map[string]any{
			"starts":           hs.Starts,
			"commits":          hs.Commits,
			"aborts":           aborts,
			"abort_rate":       hs.AbortRate(),
			"fallback_runs":    hs.FallbackRuns,
			"fallback_locks":   hs.FallbackLocks,
			"fallback_retries": hs.FallbackRetries,
			"fallback_waits":   hs.FallbackWaits,
			"fallback_stalls":  hs.FallbackStalls,
			"spurious_aborts":  hs.SpuriousAborts(),
			"live_words":       hs.LiveWords,
			"max_live_words":   hs.MaxLiveWords,
		},
		Store: map[string]any{
			"slots":         sv.store.Slots(),
			"count":         sv.store.Len(),
			"tombstones":    sv.store.Tombstones(),
			"gets":          oc.Gets,
			"puts":          oc.Puts,
			"deletes":       oc.Deletes,
			"scans":         oc.Scans,
			"expired":       oc.Expired,
			"compacted":     oc.Compacted,
			"deadline_hits": oc.Deadlines,
			"in_flight":     sv.store.InFlight(),
		},
		HTTP: sv.metrics.Snapshot(),
	}
	if sv.governor != nil {
		resp.Admission = map[string]any{
			"sheds":      sv.governor.Sheds(),
			"storming":   sv.governor.Storming(),
			"storm_rate": sv.governor.StormRate(),
		}
	}
	if tu := sv.store.Tuner(); tu != nil {
		ts := tu.State()
		resp.Adaptive = map[string]any{
			"mode":           ts.Mode.String(),
			"mode_switches":  ts.ModeSwitches,
			"fallback_spins": ts.FallbackSpins,
			"dedup_bypass":   ts.DedupBypass,
			"epochs":         ts.Epochs,
			"pinned":         ts.Pinned,
		}
	}
	if ws, ok := sv.store.WalStats(); ok {
		resp.Wal = map[string]any{
			"appends":   ws.Appends,
			"batches":   ws.Batches,
			"syncs":     ws.Syncs,
			"rotations": ws.Rotations,
			"bytes":     ws.Bytes,
			"snapshots": sv.store.Snapshots(),
			"failures":  sv.store.DurabilityFailures(),
			"seq":       sv.store.Seq(),
			"recovery":  sv.store.Recovery(),
		}
	}
	if sv.jobsStats != nil {
		js := sv.jobsStats()
		resp.Jobs = &js
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
