package kv

// Durability wiring: Open (recovery + log attach), the replay rule that makes
// a snapshot taken during concurrent writes exact, automatic snapshot
// triggering, and Close (clean-shutdown marker).
//
// The correctness argument, in one place:
//
// WAL records are appended AFTER their heap transaction commits, so file order
// is not commit order — two racing writers of the same key can append in
// either order. What IS totally ordered is the durability sequence number:
// every logged mutation ticks dirSeq inside its publishing transaction
// (store.go, tickSeq), so seq order == commit order, and each record carries
// its seq. Snapshots are taken as: Rotate() the log (every record that can
// ever land in a pre-rotation segment belongs to a commit that finished
// before rotation), THEN read the barrier S0 = dirSeq, then scan. The scan
// may interleave with writers; for any key it returns some committed version,
// with its seq.
//
// Replay applies a log record iff
//
//	key in snapshot/applied map ? rec.Seq > map[key] : rec.Seq > S0
//
// and every applied record (put or delete) updates map[key] = rec.Seq.
// Case 1 (key seen): the map holds the newest version applied so far; a
// record with a lower seq is an older committed version — skip. Case 2 (key
// never seen): the snapshot scan observed the key as absent at some point
// after S0 was read, so any record with seq <= S0 is superseded by that
// observed absence (the delete that caused it is in a pruned segment);
// records with seq > S0 may be the re-insertion — apply. Deletes update the
// map too, or a pruned-era put arriving later in the file would resurrect the
// key.
import (
	"errors"
	"fmt"
	"time"

	"repro/htm"
	"repro/kv/wal"
)

// RecoveryInfo summarizes what startup replay found (logged by kvserver,
// exported under /stats).
type RecoveryInfo struct {
	// Clean reports a graceful previous shutdown: the clean marker was
	// present AND its recorded sequence matches the replayed state.
	Clean bool `json:"clean"`
	// HadSnapshot/SnapshotEntries describe the snapshot that seeded replay.
	HadSnapshot     bool   `json:"had_snapshot"`
	SnapshotEntries uint64 `json:"snapshot_entries"`
	// LogRecords is how many log records were streamed, Applied how many
	// survived the replay rule (the rest were superseded versions).
	LogRecords uint64 `json:"log_records"`
	Applied    uint64 `json:"applied"`
	// TruncatedBytes/TornSegment describe a repaired torn tail.
	TruncatedBytes int64  `json:"truncated_bytes"`
	TornSegment    string `json:"torn_segment,omitempty"`
	// Segments replayed; MaxSeq is the durability sequence the store resumed
	// at; Entries the live entries after replay.
	Segments int           `json:"segments"`
	MaxSeq   uint64        `json:"max_seq"`
	Entries  int           `json:"entries"`
	Elapsed  time.Duration `json:"elapsed_ns"`
}

// Open builds a Store per cfg, recovering durable state and attaching the
// commit log when cfg.Durability is set (without it, Open is NewStore with an
// error signature). Recovery replays the newest valid snapshot then the log,
// truncating a torn tail in the final segment; anything else wrong with the
// log — mid-log corruption, a segment gap, state the index cannot hold —
// returns an error matching wal.ErrRecovery, and the store does not start.
func Open(cfg Config) (*Store, error) {
	if cfg.Durability == nil {
		return newStoreCore(cfg), nil
	}
	d := cfg.Durability.withDefaults()
	cfg.Durability = nil // core builds the engine; wiring happens here
	s := newStoreCore(cfg)
	s.dcfg = d
	start := time.Now()
	baseline := s.heap.Stats().LiveWords

	// Replay state for the sequence rule above.
	var (
		barrier uint64 // S0 from the snapshot header (0 = no snapshot)
		newest  = map[string]uint64{}
		maxSeq  uint64
		applied uint64
	)
	apply := func(rec wal.Record, src wal.Source) error {
		switch rec.Kind {
		case wal.KindSnapHeader:
			barrier = rec.Barrier
			if rec.Barrier > maxSeq {
				maxSeq = rec.Barrier
			}
			return nil
		case wal.KindPut, wal.KindDelete:
		default:
			return fmt.Errorf("unexpected record kind %d", rec.Kind)
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		k := string(rec.Key)
		if src == wal.SourceLog {
			if last, ok := newest[k]; ok {
				if rec.Seq <= last {
					return nil // superseded by an already-applied version
				}
			} else if rec.Seq <= barrier {
				return nil // superseded by the snapshot's observed absence
			}
		}
		newest[k] = rec.Seq
		applied++
		if rec.Kind == wal.KindDelete {
			s.applyDelete(rec.Key)
			return nil
		}
		return s.applyPut(rec.Key, rec.Val, rec.Expiry, rec.Seq)
	}

	res, err := wal.Recover(d.FS, d.Dir, apply)
	if err != nil {
		return nil, fmt.Errorf("kv: open %s: %w", d.Dir, err)
	}

	// Resume the durability sequence where the log left off.
	s.withThread(func(th *htm.Thread) {
		th.Atomic(func(t *htm.Txn) { t.Store(s.dir+dirSeq, maxSeq) })
	})

	// Invariant sweep: replay must leave the heap exactly as quiescent and
	// exactly as full as the replayed entries imply — same discipline as the
	// chaos harness phases.
	entries, err := s.recoverySweep(baseline)
	if err != nil {
		return nil, fmt.Errorf("kv: open %s: post-recovery sweep: %w", d.Dir, err)
	}

	wal.RemoveCleanMarker(d.FS, d.Dir) // from here on, absence of marker = crash
	log, err := wal.OpenLog(d.Dir, res.NextSeg, wal.Options{
		FS: d.FS, SegmentBytes: d.SegmentBytes, NoSync: d.NoSync,
	})
	if err != nil {
		return nil, fmt.Errorf("kv: open %s: %w", d.Dir, err)
	}
	s.wal = log
	// Clean start: the marker matches the replayed state — or the directory
	// was brand new (nothing existed, so nothing could have crashed).
	fresh := !res.HasSnapshot && res.LogRecords == 0 && maxSeq == 0 && res.TruncatedBytes == 0
	s.recovery = &RecoveryInfo{
		Clean:           (res.Clean && res.MarkerSeq == maxSeq) || fresh,
		HadSnapshot:     res.HasSnapshot,
		SnapshotEntries: res.SnapshotEntries,
		LogRecords:      res.LogRecords,
		Applied:         applied,
		TruncatedBytes:  res.TruncatedBytes,
		TornSegment:     res.TornSegment,
		Segments:        res.Segments,
		MaxSeq:          maxSeq,
		Entries:         entries,
		Elapsed:         time.Since(start),
	}
	return s, nil
}

// applyPut installs one replayed entry (insert or replace). Same publication
// protocol as Put, minus contexts, counters and logging — recovery is
// single-threaded and must not re-log what it reads.
func (s *Store) applyPut(key, val []byte, expiry, seq uint64) error {
	if err := s.validateKey(key); err != nil {
		return err
	}
	if len(val) > s.cfg.MaxValueBytes {
		return fmt.Errorf("%w (%d > %d bytes)", ErrValueTooLarge, len(val), s.cfg.MaxValueBytes)
	}
	hash := hashKey(key)
	var opErr error
	s.withThread(func(th *htm.Thread) {
		e := s.fillEntry(th, hash, key, val, expiry)
		th.Heap().StoreNT(e+entrySeq, seq)
		published := false
		th.Atomic(func(t *htm.Txn) {
			opErr, published = nil, false
			slot, old, found, insert := s.probe(t, hash, key)
			if found {
				t.Store(s.table+htm.Addr(slot), uint64(e))
				t.FreeOnCommit(old)
				published = true
				return
			}
			if insert < 0 {
				opErr = ErrFull
				return
			}
			reusing := t.Load(s.table+htm.Addr(insert)) == slotTombstone
			count := t.Load(s.dir + dirCount)
			tombs := t.Load(s.dir + dirTombstones)
			if !reusing && count+tombs >= uint64(maxEntries(s.cfg.Slots)) {
				opErr = ErrFull
				return
			}
			t.Store(s.table+htm.Addr(insert), uint64(e))
			t.Store(s.dir+dirCount, count+1)
			if reusing {
				t.Store(s.dir+dirTombstones, tombs-1)
			}
			published = true
		})
		if !published {
			th.Free(e)
		}
	})
	return opErr
}

// applyDelete removes one replayed key; absent keys are a no-op (the delete's
// target may have been superseded out of the snapshot).
func (s *Store) applyDelete(key []byte) {
	hash := hashKey(key)
	s.withThread(func(th *htm.Thread) {
		th.Atomic(func(t *htm.Txn) {
			slot, e, found, _ := s.probe(t, hash, key)
			if !found {
				return
			}
			t.Store(s.table+htm.Addr(slot), slotTombstone)
			t.Store(s.dir+dirCount, t.Load(s.dir+dirCount)-1)
			t.Store(s.dir+dirTombstones, t.Load(s.dir+dirTombstones)+1)
			t.FreeOnCommit(e)
		})
	})
}

// recoverySweep runs the post-replay invariant checks: no residual lock
// state, allocator accounting consistent, and the live words on the heap
// exactly baseline + the replayed entries' blocks (anything more is a leaked
// block, anything less a double free). Returns the live entry count.
func (s *Store) recoverySweep(baseline uint64) (int, error) {
	ms := s.heap.SweepMeta()
	st := s.heap.Stats()
	switch {
	case ms.Locked != 0:
		return 0, fmt.Errorf("%d words still locked after replay", ms.Locked)
	case ms.FallbackTagged != 0:
		return 0, fmt.Errorf("%d words still fallback-tagged after replay", ms.FallbackTagged)
	case ms.Allocated != st.LiveWords:
		return 0, fmt.Errorf("%d words allocated, accounting says %d live", ms.Allocated, st.LiveWords)
	}
	// Walk the index (paged transactions) summing the entry blocks' words.
	var entryLive uint64
	var count uint64
	nslots := uint64(s.cfg.Slots)
	s.withThread(func(th *htm.Thread) {
		for cursor := uint64(0); cursor < nslots; cursor += scanSlotWindow {
			end := cursor + scanSlotWindow
			if end > nslots {
				end = nslots
			}
			th.Atomic(func(t *htm.Txn) {
				for i := cursor; i < end; i++ {
					w := t.Load(s.table + htm.Addr(i))
					if w == slotEmpty || w == slotTombstone {
						continue
					}
					lens := t.Load(htm.Addr(w) + entryLens)
					entryLive += uint64(entryWords(int(lens>>32), int(lens&0xffffffff)))
					count++
				}
			})
		}
	})
	if want := baseline + entryLive; st.LiveWords != want {
		return 0, fmt.Errorf("%d live words after replay, %d entries account for %d (leak)",
			st.LiveWords, count, want)
	}
	if got := s.Len(); uint64(got) != count {
		return 0, fmt.Errorf("directory count %d disagrees with %d indexed entries", got, count)
	}
	return int(count), nil
}

// noteMutation advances the automatic-snapshot trigger after an acknowledged
// durable mutation. Snapshots are single-flighted; a trigger that fires while
// one is running is absorbed (the counter keeps accumulating).
func (s *Store) noteMutation() {
	every := uint64(0)
	if s.dcfg != nil {
		every = uint64(s.dcfg.SnapshotEvery)
	}
	if every == 0 || s.closed.Load() {
		return
	}
	if s.sinceSnap.Add(1) < every {
		return
	}
	if !s.snapBusy.CompareAndSwap(false, true) {
		return
	}
	s.sinceSnap.Store(0)
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		defer s.snapBusy.Store(false)
		_, _ = s.Snapshot() // failure leaves the log long; next trigger retries
	}()
}

// ErrNotDurable is returned by Snapshot on a store without durability.
var ErrNotDurable = errors.New("kv: store has no durability attached")

// Snapshot writes a point-in-time snapshot and prunes the log history it
// covers. Safe to run while writers are active: the rotation barrier plus
// per-entry sequence numbers let recovery merge the scan with the records
// around it (see the package comment above). Returns the entry count.
func (s *Store) Snapshot() (uint64, error) {
	if s.wal == nil {
		return 0, ErrNotDurable
	}
	// Order matters: rotate FIRST (flushes, so every pre-rotation segment
	// holds only pre-rotation commits), then read the barrier.
	seg, err := s.wal.Rotate()
	if err != nil {
		return 0, fmt.Errorf("kv: snapshot rotate: %w", err)
	}
	var barrier uint64
	s.withThread(func(th *htm.Thread) {
		th.Atomic(func(t *htm.Txn) { barrier = t.Load(s.dir + dirSeq) })
	})
	w, err := wal.NewSnapshotWriter(s.wal.FS(), s.wal.Dir(), seg, barrier)
	if err != nil {
		return 0, err
	}
	type snapEnt struct {
		seq, expiry uint64
		key, val    []byte
	}
	nslots := uint64(s.cfg.Slots)
	var page []snapEnt
	for cursor := uint64(0); cursor < nslots; cursor += scanSlotWindow {
		end := cursor + scanSlotWindow
		if end > nslots {
			end = nslots
		}
		s.withThread(func(th *htm.Thread) {
			th.Atomic(func(t *htm.Txn) {
				page = page[:0] // restartable body
				for i := cursor; i < end; i++ {
					w := t.Load(s.table + htm.Addr(i))
					if w == slotEmpty || w == slotTombstone {
						continue
					}
					// Expired-but-unswept entries are included: the snapshot
					// preserves state, the expiry job changes it.
					e := htm.Addr(w)
					lens := t.Load(e + entryLens)
					klen, vlen := int(lens>>32), int(lens&0xffffffff)
					ent := snapEnt{
						seq:    t.Load(e + entrySeq),
						expiry: t.Load(e + entryExpiry),
						key:    make([]byte, 0, klen),
						val:    make([]byte, 0, vlen),
					}
					for j := 0; j < wordsFor(klen); j++ {
						n := klen - j*8
						if n > 8 {
							n = 8
						}
						ent.key = unpackWord(ent.key, t.Load(e+entryHdrWords+htm.Addr(j)), n)
					}
					voff := htm.Addr(entryHdrWords + wordsFor(klen))
					for j := 0; j < wordsFor(vlen); j++ {
						n := vlen - j*8
						if n > 8 {
							n = 8
						}
						ent.val = unpackWord(ent.val, t.Load(e+voff+htm.Addr(j)), n)
					}
					page = append(page, ent)
				}
			})
		})
		for _, ent := range page {
			if err := w.Add(ent.seq, ent.expiry, ent.key, ent.val); err != nil {
				w.Abort()
				return 0, err
			}
		}
	}
	n := w.Count()
	if err := w.Close(); err != nil {
		return 0, err
	}
	s.snaps.Add(1)
	if err := s.wal.PruneBefore(seg); err != nil {
		return 0, fmt.Errorf("kv: prune after snapshot: %w", err)
	}
	return n, nil
}

// Close flushes the commit log and records a clean shutdown (the CLEAN
// marker). Idempotent; a purely in-memory store's Close is a no-op. Callers
// must have quiesced writers first — the HTTP server's graceful path does.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.tuner != nil {
		s.tuner.Stop()
	}
	if s.wal == nil {
		return nil
	}
	s.snapWG.Wait()
	var seq uint64
	s.withThread(func(th *htm.Thread) {
		th.Atomic(func(t *htm.Txn) { seq = t.Load(s.dir + dirSeq) })
	})
	serr := s.wal.Sync()
	cerr := s.wal.Close()
	if serr != nil {
		return serr // broken log: leave no clean marker
	}
	if cerr != nil {
		return cerr
	}
	return wal.WriteCleanMarker(s.wal.FS(), s.wal.Dir(), seq)
}

// Durable reports whether a commit log is attached.
func (s *Store) Durable() bool { return s.wal != nil }

// Recovery returns what startup replay found (nil without durability).
func (s *Store) Recovery() *RecoveryInfo { return s.recovery }

// WalStats returns commit-log activity counters (ok=false without a log).
func (s *Store) WalStats() (wal.Stats, bool) {
	if s.wal == nil {
		return wal.Stats{}, false
	}
	return s.wal.Stats(), true
}

// Snapshots returns how many snapshots the store has completed.
func (s *Store) Snapshots() uint64 { return s.snaps.Load() }

// DurabilityFailures counts mutations that committed in memory but failed to
// reach the log (their callers got ErrDurability).
func (s *Store) DurabilityFailures() uint64 { return s.walFails.Load() }

// Seq returns the current durability sequence number (diagnostics, tests).
func (s *Store) Seq() uint64 {
	var seq uint64
	s.withThread(func(th *htm.Thread) {
		th.Atomic(func(t *htm.Txn) { seq = t.Load(s.dir + dirSeq) })
	})
	return seq
}
