package kv

import (
	"log"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// HTTP middleware for the KV service: small, composable wrappers in the
// usual func(http.Handler) http.Handler shape. The server chains
// metrics → logging → recovery → mux, outermost first: recovery sits
// innermost so the 503 it writes for a panicking handler flows back out
// through logging and metrics and is counted like any other response.

// Middleware wraps an http.Handler.
type Middleware func(http.Handler) http.Handler

// Chain composes middlewares outermost-first around h.
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusRecorder captures the response status for metrics and logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Metrics holds the server-level request counters surfaced by /stats. All
// fields are cumulative; latency is recorded as a running sum so the stats
// endpoint can report a true mean without histogram machinery (the load
// driver owns percentile measurement — see loadgen.go).
type Metrics struct {
	Requests     atomic.Uint64
	Errors4xx    atomic.Uint64
	Errors5xx    atomic.Uint64
	Panics       atomic.Uint64
	BytesWritten atomic.Uint64
	LatencyNs    atomic.Uint64
	// Sheds counts requests rejected by admission control (503 + Retry-After)
	// before reaching the engine; DeadlineHits counts admitted requests whose
	// store operation was abandoned with ErrDeadline.
	Sheds        atomic.Uint64
	DeadlineHits atomic.Uint64
}

// MetricsSnapshot is the JSON form of Metrics.
type MetricsSnapshot struct {
	Requests      uint64  `json:"requests"`
	Errors4xx     uint64  `json:"errors_4xx"`
	Errors5xx     uint64  `json:"errors_5xx"`
	Panics        uint64  `json:"panics"`
	BytesWritten  uint64  `json:"bytes_written"`
	MeanLatencyUs float64 `json:"mean_latency_us"`
	Sheds         uint64  `json:"sheds"`
	DeadlineHits  uint64  `json:"deadline_hits"`
}

// Snapshot returns a point-in-time copy.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:     m.Requests.Load(),
		Errors4xx:    m.Errors4xx.Load(),
		Errors5xx:    m.Errors5xx.Load(),
		Panics:       m.Panics.Load(),
		BytesWritten: m.BytesWritten.Load(),
		Sheds:        m.Sheds.Load(),
		DeadlineHits: m.DeadlineHits.Load(),
	}
	if s.Requests > 0 {
		s.MeanLatencyUs = float64(m.LatencyNs.Load()) / float64(s.Requests) / 1e3
	}
	return s
}

// WithMetrics counts requests, errors, bytes and latency into m.
func WithMetrics(m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(rec, r)
			m.Requests.Add(1)
			m.LatencyNs.Add(uint64(time.Since(start)))
			m.BytesWritten.Add(uint64(rec.bytes))
			switch {
			case rec.status >= 500:
				m.Errors5xx.Add(1)
			case rec.status >= 400:
				m.Errors4xx.Add(1)
			}
		})
	}
}

// WithRecovery converts handler panics into 503s. On this engine the panic
// that matters is heap-arena exhaustion (htm's allocator panics rather than
// returning nil, mirroring a real allocator's abort-on-OOM); the store's
// pooled thread is returned by Store.withThread's defer, so the service
// keeps running — reads and deletes still succeed, and deletes free space.
func WithRecovery(m *Metrics, logf func(format string, args ...any)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if rec := recover(); rec != nil {
					if m != nil {
						m.Panics.Add(1)
					}
					if logf != nil {
						logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
					}
					http.Error(w, "service unavailable", http.StatusServiceUnavailable)
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// WithLogging emits one line per request; nil logf selects log.Printf.
func WithLogging(logf func(format string, args ...any)) Middleware {
	if logf == nil {
		logf = log.Printf
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(rec, r)
			logf("%s %s -> %d (%dB, %s)", r.Method, r.URL.Path, rec.status, rec.bytes, time.Since(start).Round(time.Microsecond))
		})
	}
}
