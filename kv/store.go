package kv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/htm"
	"repro/kv/wal"
)

// Index slot markers. Slot words hold the payload address of the entry block;
// real payload addresses are always ≥ 2 (word 0 is reserved as NilAddr and
// every block has a one-word header before its payload), so 1 is free to mark
// tombstones — slots whose entry was deleted but which must keep linear
// probes running through them until compaction clears them.
const (
	slotEmpty     = 0
	slotTombstone = 1
)

// Directory block layout: mutable index-wide counters live in heap words so
// every operation reads and updates them transactionally — the entry count
// and the load-factor ceiling check linearize with the slot writes.
const (
	dirCount      = iota // live entries
	dirTombstones        // tombstoned slots awaiting compaction
	dirSeq               // durability sequence: ticked by every logged mutation
	dirWords
)

// Store is the transactional KV engine. It is safe for concurrent use; every
// operation runs as one heap transaction on a pooled htm.Thread.
type Store struct {
	cfg   Config
	heap  *htm.Heap
	pool  chan *htm.Thread
	table htm.Addr // index: cfg.Slots words, one per slot
	dir   htm.Addr // directory block: dirWords counters
	mask  uint64

	// Operation counters (monotonic, for /stats and tests).
	gets, puts, deletes, scans, expired, compacted atomic.Uint64

	// deadlines counts operations abandoned at their context deadline;
	// inflight is the number of pool contexts currently checked out — the
	// admission governor's saturation signal.
	deadlines atomic.Uint64
	inflight  atomic.Int64

	// Durability state (nil/zero for a purely in-memory store). wal is the
	// commit log every acknowledged mutation is framed into; dcfg the
	// defaulted Durability config; recovery what startup replay found.
	wal      *wal.Log
	dcfg     *Durability
	recovery *RecoveryInfo

	// sinceSnap counts acknowledged mutations since the last snapshot;
	// snapBusy single-flights automatic snapshots; snapWG lets Close wait
	// out an in-flight one. walFails counts mutations that committed in
	// memory but failed to reach the log (returned ErrDurability).
	sinceSnap atomic.Uint64
	snapBusy  atomic.Bool
	snapWG    sync.WaitGroup
	walFails  atomic.Uint64
	snaps     atomic.Uint64
	closed    atomic.Bool

	// tuner is the heap's contention controller (Config.Adaptive; nil when
	// the store runs static). Owned by the store: started at construction,
	// stopped by Close.
	tuner *htm.Tuner
}

// NewStore builds a purely in-memory Store on a private heap per cfg. A
// config with Durability set must go through Open instead — recovery can
// fail, and NewStore has no error to return it through.
func NewStore(cfg Config) *Store {
	if cfg.Durability != nil {
		panic("kv: NewStore cannot attach durability; use kv.Open")
	}
	return newStoreCore(cfg)
}

// newStoreCore builds the heap-backed engine without any durability wiring.
func newStoreCore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	h := htm.NewHeap(htm.Config{
		Words:           cfg.HeapWords,
		EnableTLE:       true,
		GlobalFallback:  cfg.GlobalFallback,
		AllowAllocInTxn: false, // entries are pre-allocated, Rock-style
		MaxRetries:      cfg.MaxRetries,
		ClockShards:     cfg.ClockShards,
		StripeShift:     cfg.StripeShift,
		Faults:          cfg.Faults,
		Adaptive:        cfg.Adaptive != nil,
	})
	s := &Store{
		cfg:  cfg,
		heap: h,
		pool: make(chan *htm.Thread, cfg.PoolThreads),
		mask: uint64(cfg.Slots - 1),
	}
	if ac := cfg.Adaptive; ac != nil {
		s.tuner = h.StartTuner(htm.TunerConfig{Interval: ac.Interval, Pinned: ac.Pinned})
	}
	setup := h.NewThread()
	s.table = setup.Alloc(cfg.Slots)
	s.dir = setup.Alloc(dirWords)
	s.pool <- setup // the setup thread serves as the first pool context
	for i := 1; i < cfg.PoolThreads; i++ {
		s.pool <- h.NewThread()
	}
	return s
}

// Heap exposes the backing heap (stats endpoint, job pipeline, tests).
func (s *Store) Heap() *htm.Heap { return s.heap }

// Tuner exposes the store's contention controller, nil when Config.Adaptive
// is unset.
func (s *Store) Tuner() *htm.Tuner { return s.tuner }

// Slots returns the index capacity; Scan cursors range over [0, Slots()).
func (s *Store) Slots() uint64 { return uint64(s.cfg.Slots) }

// PoolSize returns the engine's concurrency ceiling (Config.PoolThreads).
func (s *Store) PoolSize() int { return s.cfg.PoolThreads }

// withThread runs f on a pooled execution context. The pool bounds engine
// concurrency at Config.PoolThreads; the deferred put-back keeps the context
// usable even when f panics (e.g. arena exhaustion surfacing through the
// HTTP recovery middleware).
func (s *Store) withThread(f func(th *htm.Thread)) {
	th := <-s.pool
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.pool <- th
	}()
	f(th)
}

// withThreadCtx is withThread with a context gate: a request whose context is
// already done — or that expires while queued for a pool slot — is abandoned
// with ErrDeadline before it touches the engine. Internal paths (jobs,
// Len/Tombstones) keep using withThread; only the client-facing operations
// carry deadlines.
func (s *Store) withThreadCtx(ctx context.Context, f func(th *htm.Thread)) error {
	done := ctx.Done()
	if done == nil {
		s.withThread(f)
		return nil
	}
	// Check before the select: a free pool slot must not win the race against
	// an already-dead context.
	if ctx.Err() != nil {
		return s.deadlineErr(ctx)
	}
	var th *htm.Thread
	select {
	case th = <-s.pool:
	case <-done:
		return s.deadlineErr(ctx)
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.pool <- th
	}()
	f(th)
	return nil
}

// stopFor converts a context into an AtomicUntil abandon hook: nil for
// never-cancellable contexts so the common Background case adds nothing to
// the retry loop.
func stopFor(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// deadlineErr records and materializes an ErrDeadline for an operation whose
// retry loop was abandoned mid-flight.
func (s *Store) deadlineErr(ctx context.Context) error {
	s.deadlines.Add(1)
	return fmt.Errorf("%w: %v", ErrDeadline, ctx.Err())
}

// InFlight returns the number of operations currently holding a pool context.
func (s *Store) InFlight() int { return int(s.inflight.Load()) }

// DeadlineHits returns the number of operations abandoned at their deadline.
func (s *Store) DeadlineHits() uint64 { return s.deadlines.Load() }

// loadKeyEq reports whether the entry block at e holds key (hash already
// matched). Runs inside the transaction: the key words it loads join the
// read set, so a concurrent replace of this entry aborts us rather than
// letting the comparison tear.
func loadKeyEq(t *htm.Txn, e htm.Addr, hash uint64, key []byte) bool {
	if t.Load(e+entryHash) != hash {
		return false
	}
	lens := t.Load(e + entryLens)
	if int(lens>>32) != len(key) {
		return false
	}
	kw := wordsFor(len(key))
	var buf [8]byte
	for i := 0; i < kw; i++ {
		w := t.Load(e + entryHdrWords + htm.Addr(i))
		n := len(key) - i*8
		if n > 8 {
			n = 8
		}
		b := unpackWord(buf[:0], w, n)
		for j := 0; j < n; j++ {
			if b[j] != key[i*8+j] {
				return false
			}
		}
	}
	return true
}

// probe walks the linear-probe cluster for hash/key inside txn t. It returns
// the slot index holding the key (found=true), or the first reusable slot
// (tombstone, else the terminating empty slot) with found=false. insert=-1
// means the cluster spans the whole table with no reusable slot.
func (s *Store) probe(t *htm.Txn, hash uint64, key []byte) (slot uint64, entry htm.Addr, found bool, insert int64) {
	insert = -1
	i := hash & s.mask
	for n := uint64(0); n <= s.mask; n++ {
		w := t.Load(s.table + htm.Addr(i))
		switch w {
		case slotEmpty:
			if insert < 0 {
				insert = int64(i)
			}
			return 0, 0, false, insert
		case slotTombstone:
			if insert < 0 {
				insert = int64(i)
			}
		default:
			e := htm.Addr(w)
			if loadKeyEq(t, e, hash, key) {
				return i, e, true, insert
			}
		}
		i = (i + 1) & s.mask
	}
	return 0, 0, false, insert
}

// expired reports whether an entry's expiry deadline (0 = never) has passed.
func expired(deadline uint64, now int64) bool {
	return deadline != 0 && int64(deadline) <= now
}

// Get returns a copy of the value stored under key. Expired entries read as
// missing (their storage is reclaimed by the background expiry job). The
// whole lookup — probe, key compare, value copy — is one transaction, so the
// returned value is an atomic snapshot of a committed Put. The context bounds
// the whole operation: pool-slot wait and transaction retries both abandon
// with ErrDeadline when it expires.
func (s *Store) Get(ctx context.Context, key []byte) (val []byte, ok bool, err error) {
	if err := s.validateKey(key); err != nil {
		return nil, false, err
	}
	hash := hashKey(key)
	now := s.cfg.Now()
	s.gets.Add(1)
	var opErr error
	err = s.withThreadCtx(ctx, func(th *htm.Thread) {
		committed := th.AtomicUntil(func(t *htm.Txn) {
			val, ok = val[:0], false // restartable body: reset on every attempt
			_, e, found, _ := s.probe(t, hash, key)
			if !found {
				return
			}
			if expired(t.Load(e+entryExpiry), now) {
				return
			}
			lens := t.Load(e + entryLens)
			vlen := int(lens & 0xffffffff)
			voff := htm.Addr(entryHdrWords + wordsFor(int(lens>>32)))
			for i := 0; i < wordsFor(vlen); i++ {
				n := vlen - i*8
				if n > 8 {
					n = 8
				}
				val = unpackWord(val, t.Load(e+voff+htm.Addr(i)), n)
			}
			ok = true
		}, stopFor(ctx))
		if !committed {
			opErr = s.deadlineErr(ctx)
		}
	})
	if err == nil {
		err = opErr
	}
	if err != nil || !ok {
		return nil, false, err
	}
	return val, true, nil
}

// Put stores val under key, replacing any existing value. ttl bounds the
// entry's lifetime (0 = no expiry). The entry block is allocated and filled
// outside the transaction — it is private until the slot write that
// publishes it commits, the same discipline as the paper's queue nodes — so
// the transaction itself writes at most three words (slot + two counters;
// five with durability, adding the sequence stamps) and fits any store
// buffer.
func (s *Store) Put(ctx context.Context, key, val []byte, ttl time.Duration) error {
	if err := s.validateKey(key); err != nil {
		return err
	}
	if len(val) > s.cfg.MaxValueBytes {
		return fmt.Errorf("%w (%d > %d bytes)", ErrValueTooLarge, len(val), s.cfg.MaxValueBytes)
	}
	hash := hashKey(key)
	var deadline uint64
	if ttl > 0 {
		deadline = uint64(s.cfg.Now() + int64(ttl))
	}
	s.puts.Add(1)
	durable := s.wal != nil
	var opErr error
	err := s.withThreadCtx(ctx, func(th *htm.Thread) {
		e := s.fillEntry(th, hash, key, val, deadline)
		published := false
		var seq uint64
		committed := th.AtomicUntil(func(t *htm.Txn) {
			opErr, published = nil, false
			slot, old, found, insert := s.probe(t, hash, key)
			if found {
				t.Store(s.table+htm.Addr(slot), uint64(e))
				t.FreeOnCommit(old)
				seq = s.tickSeq(t, e, durable)
				published = true
				return
			}
			if insert < 0 {
				opErr = ErrFull
				return
			}
			reusing := t.Load(s.table+htm.Addr(insert)) == slotTombstone
			count := t.Load(s.dir + dirCount)
			tombs := t.Load(s.dir + dirTombstones)
			if !reusing && count+tombs >= uint64(maxEntries(s.cfg.Slots)) {
				opErr = ErrFull
				return
			}
			t.Store(s.table+htm.Addr(insert), uint64(e))
			t.Store(s.dir+dirCount, count+1)
			if reusing {
				t.Store(s.dir+dirTombstones, tombs-1)
			}
			seq = s.tickSeq(t, e, durable)
			published = true
		}, stopFor(ctx))
		if !committed {
			// An aborted final attempt may have left published=true from its
			// sandboxed run; nothing actually landed.
			published = false
			opErr = s.deadlineErr(ctx)
		}
		if !published {
			th.Free(e) // rejected or abandoned: reclaim the staged entry
			return
		}
		if durable && opErr == nil {
			opErr = s.logMutation(func() error { return s.wal.AppendPut(seq, deadline, key, val) })
		}
	})
	if err != nil {
		return err
	}
	return opErr
}

// tickSeq assigns the next durability sequence number inside the publishing
// transaction, stamping it into the entry block at e (0 = no entry word to
// stamp, for deletes). Non-durable stores skip the tick: the extra shared
// word would make every pair of write transactions conflict for nothing.
func (s *Store) tickSeq(t *htm.Txn, e htm.Addr, durable bool) uint64 {
	if !durable {
		return 0
	}
	seq := t.Load(s.dir+dirSeq) + 1
	t.Store(s.dir+dirSeq, seq)
	if e != 0 {
		t.Store(e+entrySeq, seq)
	}
	return seq
}

// logMutation frames one acknowledged mutation into the commit log and
// blocks until it is durable, converting failures into ErrDurability. On
// success it advances the snapshot trigger.
func (s *Store) logMutation(appendRec func() error) error {
	if err := appendRec(); err != nil {
		s.walFails.Add(1)
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	s.noteMutation()
	return nil
}

// fillEntry allocates and fills an entry block non-transactionally. The
// block is exclusively ours until published; NT stores are strongly atomic,
// so even a misbehaving concurrent reader would abort rather than tear.
func (s *Store) fillEntry(th *htm.Thread, hash uint64, key, val []byte, deadline uint64) htm.Addr {
	kw, vw := wordsFor(len(key)), wordsFor(len(val))
	e := th.Alloc(entryWords(len(key), len(val)))
	h := th.Heap()
	h.StoreNT(e+entryHash, hash)
	h.StoreNT(e+entryLens, uint64(len(key))<<32|uint64(len(val)))
	h.StoreNT(e+entryExpiry, deadline)
	words := make([]uint64, kw+vw)
	packWords(key, words[:kw])
	packWords(val, words[kw:])
	for i, w := range words {
		h.StoreNT(e+entryHdrWords+htm.Addr(i), w)
	}
	return e
}

// Delete removes key, returning whether it was present (and unexpired). The
// slot becomes a tombstone — probes must keep running through it — and the
// entry block is freed the instant the transaction commits; the background
// compaction job later reclaims the slot itself.
func (s *Store) Delete(ctx context.Context, key []byte) (bool, error) {
	if err := s.validateKey(key); err != nil {
		return false, err
	}
	hash := hashKey(key)
	now := s.cfg.Now()
	s.deletes.Add(1)
	durable := s.wal != nil
	var existed bool
	var opErr error
	err := s.withThreadCtx(ctx, func(th *htm.Thread) {
		mutated := false
		var seq uint64
		committed := th.AtomicUntil(func(t *htm.Txn) {
			existed, mutated = false, false
			slot, e, found, _ := s.probe(t, hash, key)
			if !found {
				return
			}
			existed = !expired(t.Load(e+entryExpiry), now)
			t.Store(s.table+htm.Addr(slot), slotTombstone)
			t.Store(s.dir+dirCount, t.Load(s.dir+dirCount)-1)
			t.Store(s.dir+dirTombstones, t.Load(s.dir+dirTombstones)+1)
			t.FreeOnCommit(e)
			seq = s.tickSeq(t, 0, durable)
			mutated = true
		}, stopFor(ctx))
		if !committed {
			opErr = s.deadlineErr(ctx)
			return
		}
		// The record is logged whenever the index changed — even for an
		// expired entry (existed=false): the tombstone is a state change a
		// crash must not resurrect.
		if durable && mutated {
			opErr = s.logMutation(func() error { return s.wal.AppendDelete(seq, key) })
		}
	})
	if err == nil {
		err = opErr
	}
	if err != nil {
		return false, err
	}
	return existed, nil
}

// Pair is one key/value returned by Scan.
type Pair struct {
	Key   []byte `json:"key"`
	Value []byte `json:"value"`
}

// scanSlotWindow bounds how many index slots one Scan transaction examines,
// keeping its read set well inside the heap's capacity; callers page through
// the table with the returned cursor.
const scanSlotWindow = 2048

// Scan returns up to limit live entries starting at slot index cursor, with
// the cursor to resume from. The scan is complete when next == Slots(). Each
// call is ONE transaction: the returned page is an atomic snapshot of the
// slots it covered (entries may move under concurrent writes between pages —
// the usual cursor-scan contract).
func (s *Store) Scan(ctx context.Context, cursor uint64, limit int) (pairs []Pair, next uint64, err error) {
	if limit <= 0 {
		limit = 64
	}
	nslots := uint64(s.cfg.Slots)
	if cursor >= nslots {
		return nil, nslots, nil
	}
	end := cursor + scanSlotWindow
	if end > nslots {
		end = nslots
	}
	now := s.cfg.Now()
	s.scans.Add(1)
	var opErr error
	err = s.withThreadCtx(ctx, func(th *htm.Thread) {
		committed := th.AtomicUntil(func(t *htm.Txn) {
			pairs, next = pairs[:0], end // restartable body
			for i := cursor; i < end; i++ {
				if len(pairs) >= limit {
					next = i
					return
				}
				w := t.Load(s.table + htm.Addr(i))
				if w == slotEmpty || w == slotTombstone {
					continue
				}
				e := htm.Addr(w)
				if expired(t.Load(e+entryExpiry), now) {
					continue
				}
				lens := t.Load(e + entryLens)
				klen, vlen := int(lens>>32), int(lens&0xffffffff)
				p := Pair{Key: make([]byte, 0, klen), Value: make([]byte, 0, vlen)}
				for j := 0; j < wordsFor(klen); j++ {
					n := klen - j*8
					if n > 8 {
						n = 8
					}
					p.Key = unpackWord(p.Key, t.Load(e+entryHdrWords+htm.Addr(j)), n)
				}
				voff := htm.Addr(entryHdrWords + wordsFor(klen))
				for j := 0; j < wordsFor(vlen); j++ {
					n := vlen - j*8
					if n > 8 {
						n = 8
					}
					p.Value = unpackWord(p.Value, t.Load(e+voff+htm.Addr(j)), n)
				}
				pairs = append(pairs, p)
			}
		}, stopFor(ctx))
		if !committed {
			opErr = s.deadlineErr(ctx)
		}
	})
	if err == nil {
		err = opErr
	}
	if err != nil {
		return nil, 0, err
	}
	return pairs, next, nil
}

// Len returns the number of live entries (including not-yet-expired-swept
// TTL'd entries).
func (s *Store) Len() int {
	var n uint64
	s.withThread(func(th *htm.Thread) {
		th.Atomic(func(t *htm.Txn) {
			n = t.Load(s.dir + dirCount)
		})
	})
	return int(n)
}

// Tombstones returns the number of slots awaiting compaction (diagnostics).
func (s *Store) Tombstones() int {
	var n uint64
	s.withThread(func(th *htm.Thread) {
		th.Atomic(func(t *htm.Txn) {
			n = t.Load(s.dir + dirTombstones)
		})
	})
	return int(n)
}

// ExpireRange sweeps slots [lo, hi), tombstoning entries whose deadline has
// passed and freeing their blocks. One small transaction per expired entry
// keeps the sweep's conflict footprint to the single slot it rewrites, so a
// background sweep never stalls foreground traffic. Returns entries expired.
func (s *Store) ExpireRange(lo, hi uint64) int {
	nslots := uint64(s.cfg.Slots)
	if hi > nslots {
		hi = nslots
	}
	now := s.cfg.Now()
	n := 0
	s.withThread(func(th *htm.Thread) {
		for i := lo; i < hi; i++ {
			removed := false
			th.Atomic(func(t *htm.Txn) {
				removed = false
				w := t.Load(s.table + htm.Addr(i))
				if w == slotEmpty || w == slotTombstone {
					return
				}
				e := htm.Addr(w)
				if !expired(t.Load(e+entryExpiry), now) {
					return
				}
				t.Store(s.table+htm.Addr(i), slotTombstone)
				t.Store(s.dir+dirCount, t.Load(s.dir+dirCount)-1)
				t.Store(s.dir+dirTombstones, t.Load(s.dir+dirTombstones)+1)
				t.FreeOnCommit(e)
				removed = true
			})
			if removed {
				n++
			}
		}
	})
	s.expired.Add(uint64(n))
	return n
}

// CompactRange clears tombstones in [lo, hi) that no probe sequence needs:
// a tombstone immediately followed (mod table size) by an empty slot
// terminates its cluster, so probes that would pass through it stop one slot
// earlier — it can become empty. Sweeping high-to-low lets clearings cascade
// down a tombstone run in a single pass. Each fix is one two-slot
// transaction. Returns tombstones cleared.
//
// This reclaims cluster tails only; interior tombstones are retained (they
// are still reusable by Put) — the trade for never relocating a live entry,
// which keeps every committed entry address stable for the lifetime of the
// entry, the invariant Get/Scan's entry reads rely on.
func (s *Store) CompactRange(lo, hi uint64) int {
	nslots := uint64(s.cfg.Slots)
	if hi > nslots {
		hi = nslots
	}
	n := 0
	s.withThread(func(th *htm.Thread) {
		for i := hi; i > lo; i-- {
			slot := i - 1
			cleared := false
			th.Atomic(func(t *htm.Txn) {
				cleared = false
				if t.Load(s.table+htm.Addr(slot)) != slotTombstone {
					return
				}
				nextSlot := (slot + 1) & s.mask
				if t.Load(s.table+htm.Addr(nextSlot)) != slotEmpty {
					return
				}
				t.Store(s.table+htm.Addr(slot), slotEmpty)
				t.Store(s.dir+dirTombstones, t.Load(s.dir+dirTombstones)-1)
				cleared = true
			})
			if cleared {
				n++
			}
		}
	})
	s.compacted.Add(uint64(n))
	return n
}

// Counters is a snapshot of the store's operation counters.
type Counters struct {
	Gets, Puts, Deletes, Scans uint64
	Expired, Compacted         uint64
	Deadlines                  uint64
}

// OpCounters returns a snapshot of cumulative operation counts.
func (s *Store) OpCounters() Counters {
	return Counters{
		Gets:      s.gets.Load(),
		Puts:      s.puts.Load(),
		Deletes:   s.deletes.Load(),
		Scans:     s.scans.Load(),
		Expired:   s.expired.Load(),
		Compacted: s.compacted.Load(),
		Deadlines: s.deadlines.Load(),
	}
}
