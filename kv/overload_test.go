package kv

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/htm"
)

// TestDeadlineAlreadyExpired hits the earliest abandon point: a dead context
// never reaches the engine, and the typed error surfaces from every op.
func TestDeadlineAlreadyExpired(t *testing.T) {
	s := NewStore(Config{Slots: 64, PoolThreads: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Put(ctx, []byte("k"), []byte("v"), 0); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Put on dead ctx = %v, want ErrDeadline", err)
	}
	if _, _, err := s.Get(ctx, []byte("k")); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Get on dead ctx = %v, want ErrDeadline", err)
	}
	if _, err := s.Delete(ctx, []byte("k")); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Delete on dead ctx = %v, want ErrDeadline", err)
	}
	if _, _, err := s.Scan(ctx, 0, 8); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Scan on dead ctx = %v, want ErrDeadline", err)
	}
	if got := s.DeadlineHits(); got != 4 {
		t.Errorf("DeadlineHits = %d, want 4", got)
	}
	// The abandoned ops must not have taken effect or leaked pool contexts.
	if _, ok, _ := s.Get(bg, []byte("k")); ok {
		t.Error("abandoned Put took effect")
	}
	if s.InFlight() != 0 {
		t.Errorf("InFlight = %d after quiescence", s.InFlight())
	}
}

// TestDeadlineMidRetry abandons between retry attempts: unconditional fault
// injection with no TLE escape hatch would retry forever, so only the
// context's expiry lets the operation return — with ErrDeadline, uncommitted.
func TestDeadlineMidRetry(t *testing.T) {
	s := NewStore(Config{
		Slots:       64,
		PoolThreads: 1,
		MaxRetries:  1 << 30,                               // fallback out of reach: only the deadline ends the loop
		Faults:      &htm.FaultPlan{Seed: 1, BeginProb: 1}, // kill every hardware attempt
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := s.Put(ctx, []byte("k"), []byte("v"), 0)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("Put under 100%% injection = %v, want ErrDeadline", err)
	}
	// Verification must not run a transaction — on this store NO transaction
	// can ever commit (that is the point of the configuration) — so read the
	// directory count and heap accounting non-transactionally: the store is
	// quiescent now.
	if n := s.Heap().LoadNT(s.dir + dirCount); n != 0 {
		t.Errorf("abandoned Put published an entry (count=%d)", n)
	}
	// The staged entry block must have been reclaimed (no heap leak).
	if live := s.Heap().Stats().LiveWords; live != s.heapBaseline() {
		t.Errorf("LiveWords = %d after abandon, want baseline %d", live, s.heapBaseline())
	}
}

// heapBaseline is the live-word footprint of an empty store: index + directory.
func (s *Store) heapBaseline() uint64 {
	return uint64(s.cfg.Slots + dirWords)
}

// TestGovernorStormDetection drives the sampling window with a fake clock and
// real injected abort traffic.
func TestGovernorStormDetection(t *testing.T) {
	s := NewStore(Config{
		Slots:       64,
		PoolThreads: 2,
		Faults:      &htm.FaultPlan{Seed: 3, BeginProb: 1, MaxPerOp: 200}, // ~200 spurious aborts per op
	})
	var now atomic.Int64
	g := NewGovernor(s, AdmissionConfig{
		Window:    time.Millisecond,
		StormRate: 0.5,
		MinStarts: 10,
		Now:       now.Load,
	})
	if !g.Allow() {
		t.Fatal("fresh governor must admit")
	}
	// Generate a storm: each op burns ~200 killed attempts before committing.
	for i := 0; i < 5; i++ {
		if err := s.Put(bg, []byte{byte(i)}, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	now.Add(int64(2 * time.Millisecond)) // roll the window: next Allow samples
	if g.Allow() {
		t.Fatal("governor admitted during an abort storm")
	}
	if g.Sheds() == 0 {
		t.Error("refused admission not counted")
	}
	// Quiet window: no new attempts → rate resets → admission resumes.
	now.Add(int64(2 * time.Millisecond))
	if !g.Allow() {
		t.Fatal("governor still shedding after the storm passed")
	}
}

// TestGovernorSaturation checks the pool-occupancy signal directly.
func TestGovernorSaturation(t *testing.T) {
	s := NewStore(Config{Slots: 64, PoolThreads: 1})
	g := NewGovernor(s, AdmissionConfig{})
	release := make(chan struct{})
	started := make(chan struct{})
	go s.withThread(func(th *htm.Thread) { close(started); <-release })
	<-started
	if g.Allow() {
		t.Error("governor admitted at pool saturation")
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("pool context never released")
		}
		time.Sleep(time.Millisecond)
	}
	if !g.Allow() {
		t.Error("governor still shedding after the pool drained")
	}
}

// TestAdmissionMiddleware checks the HTTP contract: shed requests answer 503
// with Retry-After and count into Metrics.Sheds, while /healthz and /stats
// stay reachable.
func TestAdmissionMiddleware(t *testing.T) {
	store := NewStore(Config{Slots: 256})
	var now atomic.Int64
	sv := NewServer(store, WithAdmissionControl(AdmissionConfig{Now: now.Load}))
	ts := httptest.NewServer(sv)
	defer ts.Close()

	// Normal operation admits.
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/kv/a", []byte("1")); resp.StatusCode != 204 {
		t.Fatalf("PUT while healthy: %d", resp.StatusCode)
	}
	// Force the storm flag directly: the governor's signal sources have their
	// own tests; here only the middleware contract is at stake.
	sv.governor.storm.Store(true)
	sv.governor.nextSample.Store(1 << 62) // freeze sampling
	resp, _ := doReq(t, http.MethodPut, ts.URL+"/kv/b", []byte("2"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("PUT under storm = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Errorf("/healthz shed: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/stats", nil); resp.StatusCode != 200 {
		t.Errorf("/stats shed: %d", resp.StatusCode)
	}
	if sv.Metrics().Sheds.Load() == 0 {
		t.Error("shed not counted into Metrics.Sheds")
	}
}

// TestRequestTimeoutMapsToRetryAfter drives a full HTTP request into an
// engine that cannot commit in time and checks the 503 + Retry-After mapping
// plus the deadline_hits counter.
func TestRequestTimeoutMapsToRetryAfter(t *testing.T) {
	store := NewStore(Config{
		Slots:  64,
		Faults: &htm.FaultPlan{Seed: 5, BeginProb: 1},
	})
	sv := NewServer(store, WithRequestTimeout(5*time.Millisecond))
	ts := httptest.NewServer(sv)
	defer ts.Close()
	resp, _ := doReq(t, http.MethodPut, ts.URL+"/kv/slow", []byte("v"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("PUT past timeout = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("deadline response missing Retry-After")
	}
	if sv.Metrics().DeadlineHits.Load() == 0 {
		t.Error("deadline not counted into Metrics.DeadlineHits")
	}
}
