package kv

import (
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/htm"
)

// Admission control: under injected (or real) adversity the engine's retry
// loops burn attempts instead of committing, and every queued request makes
// the storm worse. Shedding excess requests at the door — 503 + Retry-After,
// before they touch the engine — keeps the latency of ADMITTED requests
// bounded, which is the graceful-degradation property the chaos harness
// measures. Two signals gate admission:
//
//   - Saturation: every pooled execution context is checked out. One more
//     request would only queue behind the pool; its deadline is better spent
//     by the client retrying later.
//   - Abort storm: the heap-wide rate of conflict + spurious aborts over the
//     last sampling window exceeds AdmissionConfig.StormRate. A storm means
//     attempts are being killed faster than they commit; admitting more
//     traffic adds fuel.

// AdmissionConfig tunes the Governor. The zero value selects the defaults.
type AdmissionConfig struct {
	// Window is the abort-rate sampling cadence. Default 100ms.
	Window time.Duration
	// StormRate is the windowed (conflict+spurious)/starts ratio at or above
	// which requests are shed. Default 0.85. With an adaptive store
	// (Config.Adaptive) this is only the starting point: the Governor tracks
	// the heap's epoch abort mix and moves the threshold a fixed margin above
	// the workload's running-average abort rate (see TrackAbortMix), so a
	// workload that is normally contended is not permanently "storming" and a
	// normally calm one sheds at the first sign of trouble.
	StormRate float64
	// MinStarts is the minimum transaction attempts a window must contain for
	// its rate to be meaningful; quieter windows clear the storm flag.
	// Default 64.
	MinStarts uint64
	// RetryAfter is the Retry-After header value, in seconds, on shed
	// responses. Default 1.
	RetryAfter int
	// Now overrides the sampling clock (unix nanoseconds); tests. Defaults to
	// time.Now-based.
	Now func() int64
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Window <= 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.StormRate <= 0 {
		c.StormRate = 0.85
	}
	if c.MinStarts == 0 {
		c.MinStarts = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

// Governor decides request admission for a Store. It is safe for concurrent
// use; the abort-rate sample is time-gated by a CAS so at most one request
// per window pays for the stats snapshot.
type Governor struct {
	store *Store
	cfg   AdmissionConfig

	nextSample atomic.Int64
	lastStarts atomic.Uint64
	lastAborts atomic.Uint64
	storm      atomic.Bool
	sheds      atomic.Uint64

	// stormRate is the live shed threshold (float64 bits): cfg.StormRate
	// until TrackAbortMix moves it. ewma is the tracked abort-mix average,
	// written only by the Tuner goroutine; retrySeq steps the Retry-After
	// jitter.
	stormRate atomic.Uint64
	ewma      atomic.Uint64
	retrySeq  atomic.Uint64
}

// NewGovernor builds a Governor over s.
func NewGovernor(s *Store, cfg AdmissionConfig) *Governor {
	g := &Governor{store: s, cfg: cfg.withDefaults()}
	g.stormRate.Store(math.Float64bits(g.cfg.StormRate))
	return g
}

// Allow reports whether a new request should be admitted.
func (g *Governor) Allow() bool {
	g.maybeSample()
	if g.store.InFlight() >= g.store.PoolSize() {
		g.sheds.Add(1)
		return false
	}
	if g.storm.Load() {
		g.sheds.Add(1)
		return false
	}
	return true
}

// RetryAfterSeconds is the backoff hint attached to shed responses: jittered
// per call over [RetryAfter, 2·RetryAfter] so that a thundering herd shed in
// one window does not return in lockstep and re-trigger the shed that sent it
// away. The jitter is a counter sweep, not a PRNG — adjacent shed responses
// get different hints deterministically, which keeps chaos-harness runs
// reproducible.
func (g *Governor) RetryAfterSeconds() int {
	base := g.cfg.RetryAfter
	return base + int(g.retrySeq.Add(1)%uint64(base+1))
}

// StormRate returns the live shed threshold (diagnostics, /stats).
func (g *Governor) StormRate() float64 {
	return math.Float64frombits(g.stormRate.Load())
}

// SetStormRate replaces the shed threshold, clamped to [0.05, 0.99].
func (g *Governor) SetStormRate(r float64) {
	if r < 0.05 {
		r = 0.05
	} else if r > 0.99 {
		r = 0.99
	}
	g.stormRate.Store(math.Float64bits(r))
}

// abortMixMargin is how far above the workload's running-average abort rate
// the adaptive shed threshold sits: far enough that the normal mix never
// sheds, close enough that a genuine storm crosses it within a window or two.
const abortMixMargin = 0.25

// TrackAbortMix is the Governor's Tuner-client hook (htm.Tuner.Observe): each
// epoch folds the heap's abort rate into an exponentially-weighted average
// and re-derives the shed threshold as that average plus a fixed margin. A
// static-threshold governor declares a permanently contended workload to be
// in permanent storm (or never notices trouble on a calm one); tracking the
// mix makes "storm" mean "worse than this workload's normal", which is the
// signal admission control actually wants. Idle epochs carry no evidence and
// leave the average untouched.
func (g *Governor) TrackAbortMix(e htm.TunerEpoch) {
	if e.Starts == 0 {
		return
	}
	prev := math.Float64frombits(g.ewma.Load())
	next := 0.8*prev + 0.2*e.AbortRate
	g.ewma.Store(math.Float64bits(next))
	g.SetStormRate(next + abortMixMargin)
}

// Sheds returns the cumulative count of refused admissions.
func (g *Governor) Sheds() uint64 { return g.sheds.Load() }

// Storming reports the current abort-storm flag (diagnostics, /stats).
func (g *Governor) Storming() bool {
	g.maybeSample()
	return g.storm.Load()
}

// maybeSample refreshes the windowed abort rate if the window has elapsed.
// The CAS elects one sampler; losers use the flag as-is.
func (g *Governor) maybeSample() {
	now := g.cfg.Now()
	next := g.nextSample.Load()
	if now < next || !g.nextSample.CompareAndSwap(next, now+int64(g.cfg.Window)) {
		return
	}
	st := g.store.Heap().Stats()
	aborts := st.Aborts[htm.AbortConflict] + st.Aborts[htm.AbortSpurious]
	ds := st.Starts - g.lastStarts.Swap(st.Starts)
	da := aborts - g.lastAborts.Swap(aborts)
	g.storm.Store(ds >= g.cfg.MinStarts && float64(da) >= g.StormRate()*float64(ds))
}

// WithAdmission sheds requests the governor refuses with 503 + Retry-After.
// Health and stats stay exempt: an operator diagnosing an overloaded server
// needs exactly those two endpoints to keep answering. The Retry-After value
// is computed per response — it jitters (see RetryAfterSeconds).
func WithAdmission(g *Governor, m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case "/healthz", "/stats":
				next.ServeHTTP(w, r)
				return
			}
			if !g.Allow() {
				if m != nil {
					m.Sheds.Add(1)
				}
				w.Header().Set("Retry-After", strconv.Itoa(g.RetryAfterSeconds()))
				http.Error(w, "overloaded: retry later", http.StatusServiceUnavailable)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
