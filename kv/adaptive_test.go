package kv

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/htm"
)

// TestRetryAfterJitter checks the shed backoff hint spreads over
// [RetryAfter, 2·RetryAfter] instead of herding every client to the same
// second.
func TestRetryAfterJitter(t *testing.T) {
	s := NewStore(Config{Slots: 64})
	g := NewGovernor(s, AdmissionConfig{RetryAfter: 3})
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		v := g.RetryAfterSeconds()
		if v < 3 || v > 6 {
			t.Fatalf("RetryAfterSeconds = %d, want within [3, 6]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("no jitter: every hint was the same value %v", seen)
	}
}

// TestGovernorTracksAbortMix drives the Tuner-client hook directly: the shed
// threshold must follow the workload's abort-mix average — tightening on a
// calm workload, loosening past the static default on a hot one — while idle
// epochs leave it alone.
func TestGovernorTracksAbortMix(t *testing.T) {
	s := NewStore(Config{Slots: 64})
	g := NewGovernor(s, AdmissionConfig{StormRate: 0.85})
	if got := g.StormRate(); got != 0.85 {
		t.Fatalf("initial StormRate = %v, want config value 0.85", got)
	}

	// A calm workload (2% aborts) converges the threshold to ~margin above
	// it — well below the static 0.85, so trouble is noticed sooner.
	for i := 0; i < 50; i++ {
		g.TrackAbortMix(htm.TunerEpoch{Starts: 1000, AbortRate: 0.02})
	}
	if got := g.StormRate(); got > 0.35 {
		t.Errorf("StormRate = %v after calm epochs, want tightened below 0.35", got)
	}

	// Idle epochs carry no evidence.
	before := g.StormRate()
	g.TrackAbortMix(htm.TunerEpoch{Starts: 0, AbortRate: 0})
	if got := g.StormRate(); got != before {
		t.Errorf("idle epoch moved StormRate %v -> %v", before, got)
	}

	// A permanently contended workload (90% aborts) pushes the threshold
	// above its own normal, up to the clamp — no permanent false storm.
	for i := 0; i < 50; i++ {
		g.TrackAbortMix(htm.TunerEpoch{Starts: 1000, AbortRate: 0.9})
	}
	if got := g.StormRate(); got < 0.9 {
		t.Errorf("StormRate = %v after hot epochs, want loosened above the workload's 0.9", got)
	}
	g.SetStormRate(5)
	if got := g.StormRate(); got != 0.99 {
		t.Errorf("SetStormRate(5) = %v, want clamped 0.99", got)
	}
}

// TestAdaptiveStoreLifecycle checks the Config.Adaptive plumb-through: the
// store owns a running Tuner, epochs tick against real traffic, and Close
// stops it (idempotently).
func TestAdaptiveStoreLifecycle(t *testing.T) {
	if NewStore(Config{Slots: 64}).Tuner() != nil {
		t.Fatal("static store grew a Tuner")
	}
	s := NewStore(Config{Slots: 64, Adaptive: &AdaptiveConfig{Interval: time.Millisecond}})
	tu := s.Tuner()
	if tu == nil {
		t.Fatal("adaptive store has no Tuner")
	}
	if !s.Heap().Adaptive() {
		t.Fatal("adaptive store's heap is not adaptive")
	}
	if err := s.Put(bg, []byte("k"), []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for tu.State().Epochs == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tu.State().Epochs == 0 {
		t.Error("tuner never ticked an epoch")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestStatsAdaptiveSection checks the /stats surface: an adaptive store
// reports the tuner block (and the admission block its live storm_rate); a
// static store omits it.
func TestStatsAdaptiveSection(t *testing.T) {
	store := NewStore(Config{Slots: 256, Adaptive: &AdaptiveConfig{Pinned: true}})
	defer store.Close()
	sv := NewServer(store, WithAdmissionControl(AdmissionConfig{}))
	ts := httptest.NewServer(sv)
	defer ts.Close()

	resp, body := doReq(t, http.MethodGet, ts.URL+"/stats", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("/stats = %d", resp.StatusCode)
	}
	var st struct {
		Adaptive  map[string]any `json:"adaptive"`
		Admission map[string]any `json:"admission"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Adaptive == nil {
		t.Fatal("adaptive store /stats missing adaptive section")
	}
	if st.Adaptive["mode"] != "fine" {
		t.Errorf("adaptive.mode = %v, want fine", st.Adaptive["mode"])
	}
	if st.Adaptive["pinned"] != true {
		t.Errorf("adaptive.pinned = %v, want true", st.Adaptive["pinned"])
	}
	for _, k := range []string{"mode_switches", "fallback_spins", "dedup_bypass", "epochs"} {
		if _, ok := st.Adaptive[k]; !ok {
			t.Errorf("adaptive section missing %q", k)
		}
	}
	if _, ok := st.Admission["storm_rate"]; !ok {
		t.Error("admission section missing storm_rate")
	}

	// Static store: no adaptive block.
	sv2 := NewServer(NewStore(Config{Slots: 64}))
	ts2 := httptest.NewServer(sv2)
	defer ts2.Close()
	resp2, body2 := doReq(t, http.MethodGet, ts2.URL+"/stats", nil)
	if resp2.StatusCode != 200 {
		t.Fatalf("/stats = %d", resp2.StatusCode)
	}
	var st2 struct {
		Adaptive map[string]any `json:"adaptive"`
	}
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Adaptive != nil {
		t.Error("static store /stats grew an adaptive section")
	}
}
